"""Loopback throughput of the framed socket tier vs its baselines.

Three transports replay the identical fleet schedule (same sessions,
same chunk slices, same gateway configuration) and must produce
bit-identical event sequences:

* **in-process** — ``serve_round_robin`` straight into a
  ``StreamGateway``; the ceiling (no serialization, no syscalls);
* **framed socket** — the same driver through a pipelined
  :class:`~repro.serving.net.client.GatewayClient` against a
  :class:`~repro.serving.net.server.GatewayServer` over loopback TCP
  (zero-copy chunk frames, windowed in-flight chunks, coalesced
  event bursts);
* **pickle RPC** — the transport the framed tier replaces: one
  length-prefixed ``pickle.dumps`` request + blocking reply round-trip
  per chunk over a *fresh TCP connection per call* (the one-shot
  request/reply discipline of a naive HTTP/XML-RPC integration),
  implemented in-test with a threaded server around the same gateway.
  The keep-alive variant of the same baseline (persistent connection,
  still blocking per chunk) is measured too and reported alongside.

Events/sec for all three and the framed client's per-event p50/p99
latency land in ``benchmark.extra_info`` (the ``BENCH_*.json``
artifact).  Under ``REPRO_BENCH_ASSERT_SOCKET=1`` the framed path must
clear 3x the naive pickle baseline and hold >= 0.5x in-process — the
acceptance gates of the zero-copy transport.
"""

import os
import pickle
import socket
import struct
import threading
import time

import pytest

from repro.ecg.synth import RecordSynthesizer, RhythmConfig, SynthesisConfig
from repro.serving import StreamGateway, replay_fleet, serve_round_robin
from repro.serving.net import GatewayClient, serve_in_thread

_LEN = struct.Struct("<I")
CHUNK_SECONDS = 0.025


@pytest.fixture(scope="module")
def socket_sessions():
    """Four high-rate (~140 bpm) live sessions: enough classification
    work that transport overhead is measured against a busy gateway,
    not an idle one."""
    config = SynthesisConfig(n_leads=1, rhythm=RhythmConfig(mean_rr=0.42))
    return [
        RecordSynthesizer(config, seed=90 + s).synthesize(30.0) for s in range(6)
    ]


def _streams(records):
    return {f"s{i}": record.signal for i, record in enumerate(records)}


def _make_gateway(classifier, fs):
    # Wire-speed serving config: input coalescing amortizes the
    # front-end kernels over the tiny per-frame chunks (identical for
    # all three transports, so the comparison isolates the wire).
    return StreamGateway(
        classifier, fs, n_leads=1, max_batch=256, max_latency_ticks=256,
        coalesce=int(0.5 * fs),
    )


class PickleRPCServer(threading.Thread):
    """The naive baseline: per-chunk pickle request/reply over TCP.

    Every call pickles ``(op, session_id, payload)``, ships it behind a
    4-byte length prefix, and blocks for the pickled reply — no
    pipelining, no shared framing with the events, a full object
    serialization per chunk.  This is the wire discipline the framed
    protocol replaces.  Connections are served sequentially so the
    same server backs both the connection-per-call and the keep-alive
    client.
    """

    def __init__(self, gateway):
        super().__init__(name="pickle-rpc-server", daemon=True)
        self.gateway = gateway
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(128)
        self.address = self.listener.getsockname()

    @staticmethod
    def _read_msg(sock):
        header = b""
        while len(header) < _LEN.size:
            piece = sock.recv(_LEN.size - len(header))
            if not piece:
                return None
            header += piece
        (length,) = _LEN.unpack(header)
        body = bytearray()
        while len(body) < length:
            piece = sock.recv(length - len(body))
            if not piece:
                return None
            body.extend(piece)
        return pickle.loads(bytes(body))

    @staticmethod
    def _send_msg(sock, obj):
        body = pickle.dumps(obj)
        sock.sendall(_LEN.pack(len(body)) + body)

    def run(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with conn:
                while True:
                    request = self._read_msg(conn)
                    if request is None:
                        break
                    op, session_id, payload = request
                    if op == "open":
                        self.gateway.open_session(session_id)
                        result = None
                    elif op == "ingest":
                        result = self.gateway.ingest(session_id, payload)
                    else:
                        result = self.gateway.close_session(session_id)
                    self._send_msg(conn, result)

    def stop(self):
        self.listener.close()


class PickleRPCClient:
    """Blocking per-chunk RPC client; drop-in ``serve_round_robin`` target.

    ``persistent=False`` (the naive default) opens a fresh TCP
    connection for every call, exactly like a one-shot HTTP/XML-RPC
    request; ``persistent=True`` keeps one connection alive — the
    best-case variant of the same blocking discipline.
    """

    def __init__(self, address, persistent=False):
        self.address = address
        self.persistent = persistent
        self.sock = None
        if persistent:
            self.sock = self._connect()

    def _connect(self):
        sock = socket.create_connection(self.address, timeout=30.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _call(self, op, session_id, payload=None):
        sock = self.sock if self.persistent else self._connect()
        try:
            PickleRPCServer._send_msg(sock, (op, session_id, payload))
            return PickleRPCServer._read_msg(sock)
        finally:
            if not self.persistent:
                sock.close()

    def open_session(self, session_id, **_qos):
        self._call("open", session_id)

    def ingest(self, session_id, chunk):
        return self._call("ingest", session_id, chunk)

    def close_session(self, session_id):
        return self._call("close", session_id)

    def close(self):
        if self.sock is not None:
            self.sock.close()


def _keyed(per_session):
    return {
        sid: [(e.peak, e.label, e.flagged, e.tx_bytes) for e in events]
        for sid, events in per_session.items()
    }


def test_socket_vs_inprocess_vs_pickle_rpc(
    benchmark, bench_embedded_classifier, socket_sessions
):
    records = socket_sessions
    fs = records[0].fs
    chunk = int(CHUNK_SECONDS * fs)
    streams = _streams(records)

    # -- ceiling: the in-process gateway (min of 3) -------------------
    inproc_times = []
    for _ in range(3):
        gateway = _make_gateway(bench_embedded_classifier, fs)
        start = time.perf_counter()
        inproc_events = serve_round_robin(gateway, streams, chunk)
        inproc_times.append(time.perf_counter() - start)
    inproc_s = min(inproc_times)

    # -- baseline: naive pickle-per-chunk RPC -------------------------
    # Two reps each (not three) to bound the TIME_WAIT churn of the
    # connection-per-call variant on loopback.
    def run_pickle(persistent):
        times = []
        events = None
        for _ in range(2):
            server = PickleRPCServer(_make_gateway(bench_embedded_classifier, fs))
            server.start()
            client = PickleRPCClient(server.address, persistent=persistent)
            start = time.perf_counter()
            events = serve_round_robin(client, streams, chunk)
            times.append(time.perf_counter() - start)
            client.close()
            server.stop()
            server.join(timeout=5.0)
        return min(times), events

    pickle_s, pickle_events = run_pickle(persistent=False)
    keepalive_s, keepalive_events = run_pickle(persistent=True)

    # -- the framed socket tier ---------------------------------------
    # The gated timing covers only the replay (server spawn, connect
    # and handshake excluded) so all three transports are measured
    # over the identical region; ``benchmark`` still records the full
    # round for the artifact.
    framed_times = []

    def run_framed():
        handle = serve_in_thread(_make_gateway(bench_embedded_classifier, fs))
        try:
            with GatewayClient(handle.host, handle.port, window=64, send_buffer=1 << 14) as client:
                start = time.perf_counter()
                events = serve_round_robin(client, streams, chunk)
                framed_times.append(time.perf_counter() - start)
                return events
        finally:
            handle.stop()

    framed_events = benchmark.pedantic(run_framed, rounds=4, warmup_rounds=1, iterations=1)
    framed_s = min(framed_times)

    # One contract, all transports: bit-identical event sequences.
    assert _keyed(framed_events) == _keyed(inproc_events)
    assert _keyed(pickle_events) == _keyed(inproc_events)
    assert _keyed(keepalive_events) == _keyed(inproc_events)

    n_events = sum(len(events) for events in framed_events.values())
    assert n_events > 300

    # Per-event latency (chunk ingest -> verdict) of one unpaced
    # framed replay: the artifact carries both axes of the serving SLO.
    handle = serve_in_thread(_make_gateway(bench_embedded_classifier, fs))
    try:
        with GatewayClient(handle.host, handle.port, window=64, send_buffer=1 << 14) as client:
            latency = replay_fleet(client, streams, fs=fs, chunk=chunk)
    finally:
        handle.stop()

    speedup_vs_pickle = pickle_s / framed_s
    ratio_vs_inproc = inproc_s / framed_s
    benchmark.extra_info["n_sessions"] = len(records)
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["inprocess_events_per_s"] = n_events / inproc_s
    benchmark.extra_info["pickle_rpc_events_per_s"] = n_events / pickle_s
    benchmark.extra_info["pickle_keepalive_events_per_s"] = n_events / keepalive_s
    benchmark.extra_info["framed_events_per_s"] = n_events / framed_s
    benchmark.extra_info["speedup_vs_pickle_rpc"] = speedup_vs_pickle
    benchmark.extra_info["ratio_vs_inprocess"] = ratio_vs_inproc
    benchmark.extra_info["latency_p50_ms"] = latency.p50_ms
    benchmark.extra_info["latency_p99_ms"] = latency.p99_ms

    print("\n=== loopback serving transports ===")
    print(f"in-process : {n_events / inproc_s:10.0f} events/s")
    print(f"framed     : {n_events / framed_s:10.0f} events/s "
          f"(p50 {latency.p50_ms:.2f} ms, p99 {latency.p99_ms:.2f} ms)")
    print(f"pickle RPC : {n_events / pickle_s:10.0f} events/s "
          f"(framed is {speedup_vs_pickle:.1f}x)")
    print(f"  keepalive: {n_events / keepalive_s:10.0f} events/s "
          f"(framed is {keepalive_s / framed_s:.1f}x)")

    if os.environ.get("REPRO_BENCH_ASSERT_SOCKET") == "1":
        # The acceptance gates of the zero-copy framed transport: it
        # must bury the naive RPC it replaces and stay within 2x of
        # the no-transport ceiling.
        assert speedup_vs_pickle >= 3.0
        assert ratio_vs_inproc >= 0.5
