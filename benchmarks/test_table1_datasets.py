"""Table I — size and composition of the training and test beat sets.

Paper values:

==============  =====  ====  ====  =====
set               N      V     L   total
==============  =====  ====  ====  =====
training set 1    150   150   150    450
training set 2  10024   892  1084  12000
test set        74355  6618  8039  89012
==============  =====  ====  ====  =====

The benchmark regenerates the (scaled) sets and times the generator; at
``REPRO_BENCH_SCALE=1.0`` the composition equals the paper's exactly
(asserted here for the scale-1 invariant via the count arithmetic).
"""

from repro.ecg.mitbih import TABLE_I, scaled_counts
from repro.experiments.datasets import format_table1, make_beat_datasets


def test_table1_composition(benchmark, bench_scale, bench_seed):
    datasets = benchmark.pedantic(
        make_beat_datasets,
        kwargs={"scale": bench_scale, "seed": bench_seed + 1},
        rounds=1,
        iterations=1,
    )
    composition = datasets.composition()

    # The generator must honour the scaled Table I exactly.
    for set_name, per_class in composition.items():
        assert per_class == scaled_counts(TABLE_I[set_name], bench_scale)

    # At scale 1.0 the scaled counts ARE the paper counts.
    assert scaled_counts(TABLE_I["test"], 1.0) == TABLE_I["test"]

    benchmark.extra_info["composition"] = composition
    benchmark.extra_info["paper"] = TABLE_I
    print("\n=== Table I (scale %.2f) ===" % bench_scale)
    print(format_table1(composition))
    print("paper (scale 1.0):")
    print(format_table1(TABLE_I))
