"""Substrate validation — delineator accuracy vs synthetic ground truth.

The gated system only saves energy if the fiducials it transmits are
worth transmitting.  This benchmark scores the MMD delineator against
the synthesizer's exact wave boundaries, in the format delineation
papers use (per-fiducial mean ± std error in ms, sensitivity).
Published wavelet/MMD delineators achieve ~5-30 ms std on real data;
the synthetic substrate should land in the same order of magnitude.
"""

import numpy as np
import pytest

from repro.dsp.delineation_eval import evaluate_delineation, format_delineation_report
from repro.dsp.morphological import filter_lead
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig


@pytest.fixture(scope="module")
def evaluation():
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=2024)
    record = synth.synthesize(90.0, name="delineation-bench")
    filtered = np.column_stack(
        [filter_lead(record.signal[:, i], record.fs) for i in range(3)]
    )
    return record, filtered


def test_delineation_accuracy(benchmark, evaluation):
    record, filtered = evaluation
    stats = benchmark.pedantic(
        evaluate_delineation, args=(record, filtered), rounds=1, iterations=1
    )
    benchmark.extra_info["stats"] = {
        name: {
            "mean_ms": s.mean_ms,
            "std_ms": s.std_ms,
            "mad_ms": s.mad_ms,
            "sensitivity": s.sensitivity,
        }
        for name, s in stats.items()
    }
    print("\n=== Delineation accuracy vs ground truth ===")
    print(format_delineation_report(stats))

    # R peak comes from detection: essentially exact.
    assert abs(stats["r_peak"].mean_ms) < 2.0
    # QRS boundaries within literature-scale tolerances.
    assert stats["qrs_onset"].mad_ms < 60.0
    assert stats["qrs_end"].mad_ms < 60.0
    # Wave peaks found reliably on normal beats.
    assert stats["t_peak"].sensitivity > 0.75
    assert stats["p_peak"].sensitivity > 0.6
