"""Durability tax and recovery speed of the journaled serving tier.

Two measurements, one fleet:

* **Overhead** — the same fleet replays through an unjournaled
  two-worker :class:`~repro.serving.sharded.ShardedGateway` and then a
  :class:`~repro.serving.durability.SupervisedGateway` journaling every
  chunk write-ahead into a :class:`FileJournalStore` (snapshots on the
  default cadence).  Both must produce bit-identical event sequences;
  the journaled events/sec over the unjournaled is the durability tax.
* **Recovery** — half the fleet is ingested, one worker is
  ``SIGKILL``ed, and ``check_workers()`` is timed end to end: respawn
  + snapshot import + chunk-log replay for every lost session.  The
  recovered fleet then finishes its streams and must stay bit-exact.

Events/sec for both modes, the overhead ratio, and the recovery wall
time land in ``benchmark.extra_info`` (the ``BENCH_*.json`` artifact).
Under ``REPRO_BENCH_ASSERT_DURABILITY=1`` (the CI durability job) the
journaled path must hold >= 0.7x the unjournaled throughput — the
acceptance gate of the durability tier.
"""

import os
import signal
import time

import pytest

from repro.serving import (
    ShardedGateway,
    SupervisedGateway,
    open_journal,
    synthesize_fleet,
)
from repro.serving.gateway import serve_round_robin

FS = 360.0
CHUNK_SECONDS = 0.100
WORKERS = 2
GATEWAY_KWARGS = dict(
    n_leads=1, max_batch=256, max_latency_ticks=256,
)


@pytest.fixture(scope="module")
def durability_fleet():
    streams, _ = synthesize_fleet(8, 30.0, fs=FS, seed=13)
    return streams


def _keyed(per_session):
    return {
        sid: [(e.peak, e.label, e.flagged, e.tx_bytes) for e in events]
        for sid, events in per_session.items()
    }


def test_journaled_vs_unjournaled_throughput(
    benchmark, bench_embedded_classifier, durability_fleet, tmp_path_factory
):
    streams = durability_fleet
    chunk = int(CHUNK_SECONDS * FS)

    def replay(gateway, times):
        start = time.perf_counter()
        events = serve_round_robin(gateway, streams, chunk)
        times.append(time.perf_counter() - start)
        return events

    # -- baseline: no journal ------------------------------------------
    plain_times = []
    with ShardedGateway(
        bench_embedded_classifier, FS, workers=WORKERS, **GATEWAY_KWARGS
    ) as gateway:
        for _ in range(3):
            plain_events = replay(gateway, plain_times)
    plain_s = min(plain_times)

    # -- journaled + supervised ----------------------------------------
    # A fresh journal dir per round: each replay journals every chunk
    # write-ahead and snapshots on the default cadence, exactly the
    # production `repro serve --journal DIR` configuration.
    journal_root = tmp_path_factory.mktemp("journal-bench")
    rounds = {"n": 0}
    journaled_times = []

    def journaled_replay():
        rounds["n"] += 1
        journal = open_journal(str(journal_root / f"round-{rounds['n']}"))
        with SupervisedGateway(
            bench_embedded_classifier, FS, journal=journal,
            workers=WORKERS, **GATEWAY_KWARGS,
        ) as gateway:
            events = replay(gateway, journaled_times)
        journal.close()
        return events

    journaled_events = benchmark.pedantic(
        journaled_replay, rounds=3, warmup_rounds=1, iterations=1
    )
    journaled_s = min(journaled_times)

    # Durability must be invisible in content: bit-identical sequences.
    assert _keyed(journaled_events) == _keyed(plain_events)
    n_events = sum(len(events) for events in journaled_events.values())
    assert n_events > 250

    ratio = plain_s / journaled_s
    benchmark.extra_info["n_sessions"] = len(streams)
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["unjournaled_events_per_s"] = n_events / plain_s
    benchmark.extra_info["journaled_events_per_s"] = n_events / journaled_s
    benchmark.extra_info["journaled_vs_unjournaled"] = ratio

    print("\n=== durability tax (file journal, write-ahead) ===")
    print(f"unjournaled: {n_events / plain_s:10.0f} events/s")
    print(f"journaled  : {n_events / journaled_s:10.0f} events/s "
          f"({ratio:.2f}x of unjournaled)")

    if os.environ.get("REPRO_BENCH_ASSERT_DURABILITY") == "1":
        # The acceptance gate of the durability tier: the write-ahead
        # journal may cost at most 30% of throughput.
        assert ratio >= 0.7


def test_recovery_time_after_worker_kill(
    benchmark, bench_embedded_classifier, durability_fleet, tmp_path_factory
):
    streams = durability_fleet
    chunk = int(CHUNK_SECONDS * FS)
    journal_root = tmp_path_factory.mktemp("journal-recovery")
    rounds = {"n": 0}
    recovery = {}

    def kill_and_recover():
        rounds["n"] += 1
        journal = open_journal(str(journal_root / f"round-{rounds['n']}"))
        with SupervisedGateway(
            bench_embedded_classifier, FS, journal=journal,
            workers=WORKERS, **GATEWAY_KWARGS,
        ) as gateway:
            events = {sid: [] for sid in streams}
            for sid in streams:
                gateway.open_session(sid)
            # First half of every stream, round-robin.
            longest = max(len(s) for s in streams.values())
            half = (longest // 2) // chunk * chunk
            for start in range(0, half, chunk):
                for sid, stream in streams.items():
                    piece = stream[start : start + chunk]
                    if len(piece):
                        events[sid].extend(gateway.ingest(sid, piece))
            victim = gateway.worker_of(next(iter(streams)))
            lost = gateway.sessions_on(victim)
            proc = gateway.gateway._procs[victim]
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(5.0)
            start = time.perf_counter()
            n_recovered = gateway.check_workers()
            recovery["s"] = time.perf_counter() - start
            recovery["sessions"] = n_recovered
            assert n_recovered == len(lost)
            # Finish the streams on the healed pool.
            for begin in range(half, longest, chunk):
                for sid, stream in streams.items():
                    piece = stream[begin : begin + chunk]
                    if len(piece):
                        events[sid].extend(gateway.ingest(sid, piece))
            for sid in streams:
                events[sid].extend(gateway.close_session(sid))
        journal.close()
        return events

    events = benchmark.pedantic(
        kill_and_recover, rounds=3, warmup_rounds=0, iterations=1
    )

    # Recovery must be invisible in content (the whole point): every
    # sequence matches a standalone node fed the full stream.
    from repro.dsp.streaming import StreamingNode

    for sid, stream in streams.items():
        node = StreamingNode(bench_embedded_classifier, FS, n_leads=1)
        reference = node.push(stream) + node.flush()
        assert _keyed({sid: events[sid]}) == _keyed({sid: reference})

    benchmark.extra_info["recovery_s"] = recovery["s"]
    benchmark.extra_info["recovered_sessions"] = recovery["sessions"]
    benchmark.extra_info["recovery_s_per_session"] = (
        recovery["s"] / max(1, recovery["sessions"])
    )
    print("\n=== recovery after SIGKILL (last timed round) ===")
    print(f"recovered {recovery['sessions']} sessions in "
          f"{recovery['s'] * 1e3:.0f} ms "
          f"({recovery['s'] * 1e3 / max(1, recovery['sessions']):.0f} "
          "ms/session)")
