"""Streaming-analytics tax on the live gateway hot path.

One fleet, two replays: six high-rate (~140 bpm, classification-heavy)
sessions stream through a plain :class:`StreamGateway` and then
through the same gateway with the full ``default_pipeline`` attached
to every session — incremental RR statistics, cadenced spectral HRV,
tachy/brady episode machines and arrhythmia-run aggregation, folded
once per batched flush.

The event sequences must be bit-identical (analytics are a pure
consumer of the event bus, never a participant in classification),
and the analytics rollup must account for every served beat.  Both
events/sec figures and their ratio land in ``benchmark.extra_info``
(the ``BENCH_*.json`` artifact).  Under
``REPRO_BENCH_ASSERT_ANALYTICS=1`` (the CI analytics job) the full
pipeline must hold >= 0.9x plain-gateway throughput — the O(1)-per-beat
acceptance gate of the analytics tier.
"""

import os
import time

import pytest

from repro.ecg.synth import RecordSynthesizer, RhythmConfig, SynthesisConfig
from repro.serving import StreamGateway, default_pipeline
from repro.serving.gateway import serve_round_robin

FS = 360.0
GATEWAY_KWARGS = dict(n_leads=1, max_batch=256, max_latency_ticks=24)


@pytest.fixture(scope="module")
def analytics_sessions():
    """Six high-rate (~140 bpm) live sessions: the densest beat-event
    stream the synthesizer produces, so per-beat analytics cost has
    nowhere to hide behind DSP time."""
    config = SynthesisConfig(n_leads=1, rhythm=RhythmConfig(mean_rr=0.42))
    return [
        RecordSynthesizer(config, seed=70 + s).synthesize(30.0) for s in range(6)
    ]


def _keyed(per_session):
    return {
        sid: [(e.peak, e.label, e.flagged, e.tx_bytes) for e in events]
        for sid, events in per_session.items()
    }


def test_gateway_analytics_overhead(
    benchmark, bench_embedded_classifier, analytics_sessions
):
    records = analytics_sessions
    streams = {f"s{i}": record.signal for i, record in enumerate(records)}
    block = int(1.0 * FS)

    def run(analytics):
        gateway = StreamGateway(
            bench_embedded_classifier, FS, analytics=analytics,
            **GATEWAY_KWARGS,
        )
        events = serve_round_robin(gateway, streams, block)
        return events, gateway.stats()["analytics"], gateway.take_summaries()

    # -- baseline: plain gateway, min of 3 -----------------------------
    plain_times = []
    for _ in range(3):
        start = time.perf_counter()
        plain_events, _, _ = run(analytics=None)
        plain_times.append(time.perf_counter() - start)
    plain_s = min(plain_times)

    # -- full analytics pipeline on every session ----------------------
    analytics_events, rollup, summaries = benchmark(
        lambda: run(analytics=default_pipeline)
    )
    analytics_s = benchmark.stats.stats.min

    # Analytics are a pure event-bus consumer: bit-identical events.
    assert _keyed(analytics_events) == _keyed(plain_events)
    n_events = sum(len(events) for events in analytics_events.values())
    assert n_events > 250
    # ... and the rollup accounts for every served beat.
    assert rollup["sessions"] == len(records)
    assert rollup["beats"] == n_events
    assert set(summaries) == set(streams)

    ratio = plain_s / analytics_s
    benchmark.extra_info["n_sessions"] = len(records)
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["n_episodes"] = rollup["episodes"]
    benchmark.extra_info["plain_events_per_s"] = n_events / plain_s
    benchmark.extra_info["analytics_events_per_s"] = n_events / analytics_s
    benchmark.extra_info["analytics_vs_plain"] = ratio

    print("\n=== streaming-analytics tax (full default pipeline) ===")
    print(f"plain gateway : {n_events / plain_s:10.0f} events/s")
    print(f"with analytics: {n_events / analytics_s:10.0f} events/s "
          f"({ratio:.2f}x of plain; {rollup['episodes']} episodes, "
          f"{rollup['alerts']} alerts)")

    if os.environ.get("REPRO_BENCH_ASSERT_ANALYTICS") == "1":
        # The acceptance gate of the analytics tier: O(1)-per-beat
        # operators folded once per flush may cost at most 10% of
        # gateway throughput.
        assert ratio >= 0.9
