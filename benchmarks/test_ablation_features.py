"""Ablation — dimensionality-reduction front ends feeding the same NFC.

Extends Table II's RP-vs-PCA comparison with the DCT and Haar-DWT
front ends the paper's related-work section cites (Neagoe et al.,
Guler & Ubeyli).  The claim to check is the paper's premise: random
projections are *competitive* with the trained/transform-based
reductions while being the only one cheap enough for the WBSN
(additions only, no training pass, 2-bit storage).
"""

import pytest

from repro.baselines.dct import DCTFeatures
from repro.baselines.dwt import HaarWaveletFeatures
from repro.baselines.harness import FeaturePipeline
from repro.baselines.pca import PCAFeatures

K = 8
TARGET_ARR = 0.97


@pytest.fixture(scope="module")
def feature_scores(bench_datasets, bench_pipeline):
    data = bench_datasets
    scores = {}
    rp = bench_pipeline.tuned_for(data.test, TARGET_ARR).evaluate(data.test)
    scores["RP"] = 100.0 * rp.ndr
    for name, extractor in (
        ("PCA", PCAFeatures(K)),
        ("DCT", DCTFeatures(K)),
        ("DWT", HaarWaveletFeatures(K)),
    ):
        pipeline = FeaturePipeline.train(
            extractor, data.train1, data.train2, target_arr=TARGET_ARR, scg_iterations=100
        )
        report = pipeline.tuned_for(data.test, TARGET_ARR).evaluate(data.test)
        scores[name] = 100.0 * report.ndr
    return scores


def test_feature_frontend_ablation(benchmark, feature_scores, bench_datasets):
    # Time one PCA training (the unit of work in this ablation).
    benchmark.pedantic(
        FeaturePipeline.train,
        args=(PCAFeatures(K), bench_datasets.train1, bench_datasets.train2),
        kwargs={"scg_iterations": 100},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["ndr_at_97_arr"] = feature_scores
    print("\n=== Feature front-end ablation (NDR @ ARR >= 97%) ===")
    for name, ndr in feature_scores.items():
        print(f"  {name:<4} {ndr:6.2f}%")

    # RP must be competitive: within a few points of the best front end
    # (the paper's Table II shows RP ~= PCA at k = 8).
    best = max(feature_scores.values())
    assert feature_scores["RP"] > best - 8.0
    # Everything must be a real classifier.
    assert min(feature_scores.values()) > 60.0
