"""Ablation — GA-optimized projection vs best-of-random draws.

"Empirical evidence shows that certain projections perform better than
others.  Our experiments show that even a rather simple optimization,
such as the one performed by a genetic algorithm in few generations,
can find a proper projection to obtain optimal classification results."

The ablation compares three training regimes on training-set-2 score
(NDR at 97% ARR, the GA's own fitness):

* single random projection (no selection at all);
* best of N random draws (the GA's initial population, no evolution);
* the full GA (same population, plus crossover/mutation generations).
"""

import numpy as np
import pytest

from repro.core.training import (
    TrainingConfig,
    train_classifier,
    train_random_baseline,
)


@pytest.fixture(scope="module")
def ga_ablation(bench_datasets, bench_ga, bench_seed):
    config = TrainingConfig(n_coefficients=8, genetic=bench_ga, scg_iterations=100)
    single = train_random_baseline(
        bench_datasets.train1, bench_datasets.train2, config, n_draws=1, seed=bench_seed
    )
    best_of_n = train_random_baseline(
        bench_datasets.train1,
        bench_datasets.train2,
        config,
        n_draws=bench_ga.population_size,
        seed=bench_seed,
    )
    ga = train_classifier(
        bench_datasets.train1, bench_datasets.train2, config, seed=bench_seed
    )
    return single, best_of_n, ga


def test_ga_vs_random(benchmark, ga_ablation, bench_datasets, bench_ga, bench_seed):
    config = TrainingConfig(n_coefficients=8, genetic=bench_ga, scg_iterations=100)
    benchmark.pedantic(
        train_classifier,
        args=(bench_datasets.train1, bench_datasets.train2, config),
        kwargs={"seed": bench_seed + 1},
        rounds=1,
        iterations=1,
    )
    single, best_of_n, ga = ga_ablation
    scores = {
        "single_random": 100.0 * single.score,
        "best_of_population": 100.0 * best_of_n.score,
        "genetic_algorithm": 100.0 * ga.score,
    }
    benchmark.extra_info["scores"] = scores
    benchmark.extra_info["ga_history"] = [100.0 * v for v in ga.ga_result.history]
    print("\n=== GA ablation (training-set-2 NDR @ 97% ARR) ===")
    for name, score in scores.items():
        print(f"  {name:<20} {score:6.2f}%")
    print("  GA best-fitness history:", np.round(ga.ga_result.history, 4).tolist())

    # Selection helps: more candidates can only improve the score.
    assert best_of_n.score >= single.score - 1e-12
    # Evolution helps (or at worst matches) the initial population.
    assert ga.score >= ga.ga_result.history[0] - 1e-12
    # The paper's premise: projections differ enough to optimize over.
    assert ga.score >= best_of_n.score - 0.02
