"""Ablation — single-lead vs multi-lead RP classification.

The paper classifies one lead; its precursor work (Bogdanova et al.,
ICASSP 2012, reference [18]) projected multi-lead ECG.  The ablation
quantifies what the extra leads buy (NDR at the ARR target) and what
they cost (projection-matrix bytes, which scale with d, and two more
always-on ADC channels — the reason the paper stays single-lead).
"""

import pytest

from repro.experiments.multilead import (
    MultileadConfig,
    format_multilead,
    run_multilead,
)


@pytest.fixture(scope="module")
def multilead_results(bench_scale, bench_seed, bench_ga):
    config = MultileadConfig(
        scale=bench_scale, seed=bench_seed, genetic=bench_ga, scg_iterations=100
    )
    return run_multilead(config)


def test_multilead_ablation(benchmark, multilead_results, bench_seed, bench_ga):
    config = MultileadConfig(
        scale=0.03, seed=bench_seed + 1, genetic=bench_ga, scg_iterations=100
    )
    benchmark.pedantic(run_multilead, args=(config,), rounds=1, iterations=1)

    results = multilead_results
    benchmark.extra_info["results"] = results
    print("\n=== Multi-lead ablation ===")
    print(format_multilead(results))

    # Cost scales with leads.
    assert results["multilead"]["matrix_bytes"] > 2.5 * results["single"]["matrix_bytes"]
    # Benefit: extra leads never hurt materially, usually help.
    assert results["multilead"]["ndr"] >= results["single"]["ndr"] - 3.0
    # Both variants honour the ARR target.
    assert results["single"]["arr"] >= 96.5
    assert results["multilead"]["arr"] >= 96.5
