"""Table III — code size and duty cycle of the Figure 6 sub-systems.

Paper values (8 coefficients, icyflex at 6 MHz):

====================================  ==============  ==========
sub-system                            Code Size (KB)  Duty Cycle
====================================  ==============  ==========
RP-classifier                                   1.64      < 0.01
RP + filtering + peak detection (1)            30.29        0.12
Multi-lead delineation (2)                     46.39        0.83
Proposed system (3)                            76.68        0.30
====================================  ==============  ==========

Duty cycles here are computed from measured operation profiles of this
repository's implementations through the calibrated icyflex cycle
table; code sizes come from the calibrated static model.  Checked shape
claims: classifier < 0.01 duty and ~2 KB; (1) ≪ (2); the gated system
(3) runs well below the always-on delineator; (3)'s code = (1) + (2).
"""

import pytest

from repro.experiments.table3 import ROW_LABELS, Table3Config, format_table3, run_table3
from repro.platform.memory import data_memory_report
from repro.platform.icyheart import IcyHeartConfig

PAPER_TABLE3 = {
    "rp_classifier": (1.64, 0.01),
    "subsystem1": (30.29, 0.12),
    "delineation": (46.39, 0.83),
    "proposed_system": (76.68, 0.30),
}


@pytest.fixture(scope="module")
def table3_rows(bench_scale, bench_seed, bench_ga, bench_embedded_classifier, bench_embedded_datasets):
    config = Table3Config(
        scale=bench_scale, seed=bench_seed, genetic=bench_ga, scg_iterations=100
    )
    activation = bench_embedded_classifier.evaluate(bench_embedded_datasets.test).activation
    return run_table3(config, bench_embedded_classifier, activation), activation


def test_table3_regeneration(benchmark, table3_rows, bench_embedded_classifier):
    rows, activation = table3_rows
    config = Table3Config()
    benchmark.pedantic(
        run_table3,
        args=(config, bench_embedded_classifier, activation),
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["measured"] = {
        key: {"code_kb": row.code_size_kb, "duty": row.duty_cycle}
        for key, row in rows.items()
    }
    benchmark.extra_info["paper"] = {
        key: {"code_kb": kb, "duty": duty} for key, (kb, duty) in PAPER_TABLE3.items()
    }
    benchmark.extra_info["activation_rate"] = activation

    print("\n=== Table III (measured) ===")
    print(format_table3(rows))
    print("paper:")
    for key, (kb, duty) in PAPER_TABLE3.items():
        label = ROW_LABELS[key]
        print(f"{label:<38}{kb:>16.2f}{duty:>12.2f}")
    print(f"activation rate: {100 * activation:.1f}%")

    # Code sizes are the calibrated model: match the paper closely.
    for key, (kb, _) in PAPER_TABLE3.items():
        assert rows[key].code_size_kb == pytest.approx(kb, abs=0.5)

    # Duty-cycle shape claims.
    assert rows["rp_classifier"].duty_cycle < 0.01
    assert 0.03 < rows["subsystem1"].duty_cycle < 0.35
    assert rows["delineation"].duty_cycle > 2.0 * rows["subsystem1"].duty_cycle
    assert rows["proposed_system"].duty_cycle < 0.6 * rows["delineation"].duty_cycle


def test_table3_data_memory(benchmark, bench_embedded_classifier):
    config = IcyHeartConfig()
    report = benchmark(
        data_memory_report, bench_embedded_classifier, config.sampling_rate_hz
    )
    benchmark.extra_info["data_memory"] = report
    print("\ndata memory (bytes):", report)
    # Paper: "a small fraction of the available SoC memory".
    assert report["total"] < 0.25 * config.ram_bytes
    # Classifier tables alone stay under 2 KB (Table III discussion).
    assert report["classifier_tables"] < 2048


def test_classifier_throughput(benchmark, bench_embedded_classifier, bench_embedded_datasets):
    """Python-side throughput of the integer classifier (not a paper
    number — a regression guard for this implementation)."""
    X = bench_embedded_datasets.test.X[:2000]
    X_int = bench_embedded_classifier.quantize_beats(X)
    benchmark(bench_embedded_classifier.predict, X_int)
