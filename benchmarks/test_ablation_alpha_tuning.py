"""Ablation — alpha_test decoupling from alpha_train (Section III-B).

Checks the paper's deployment-flexibility claim: re-tuning the
defuzzification coefficient at test time reaches the deployment ARR
target regardless of the training-time target, at essentially the same
NDR — so the embedded classifier can be re-targeted in the field
without retraining the membership functions.
"""

import numpy as np
import pytest

from repro.experiments.alpha_tuning import (
    AlphaTuningConfig,
    format_alpha_tuning,
    run_alpha_tuning,
)


@pytest.fixture(scope="module")
def alpha_results(bench_scale, bench_seed, bench_ga):
    config = AlphaTuningConfig(
        scale=bench_scale, seed=bench_seed, genetic=bench_ga, scg_iterations=100
    )
    return run_alpha_tuning(config)


def test_alpha_decoupling(benchmark, alpha_results, bench_seed, bench_ga):
    config = AlphaTuningConfig(
        scale=0.03, seed=bench_seed, genetic=bench_ga, scg_iterations=100
    )
    benchmark.pedantic(run_alpha_tuning, args=(config,), rounds=1, iterations=1)

    results = alpha_results
    benchmark.extra_info["results"] = {str(k): v for k, v in results.items()}
    print("\n=== alpha_train vs alpha_test decoupling ===")
    print(format_alpha_tuning(results))

    retuned_ndr = [row["retuned_ndr"] for row in results.values()]
    retuned_arr = [row["retuned_arr"] for row in results.values()]

    # (a) Re-tuned deployment always hits the target ARR...
    assert min(retuned_arr) >= 96.9
    # ...at an NDR independent of the training-time target (same
    # projection and MFs -> identical margins -> identical tuning).
    assert max(retuned_ndr) - min(retuned_ndr) < 0.5

    # (b) alpha_train grows with the training target (more beats must
    # be pushed to Unknown to recognize more abnormals).
    alphas = [row["alpha_train"] for row in results.values()]
    assert all(b >= a - 1e-12 for a, b in zip(alphas, alphas[1:]))

    # (c) The frozen policy's ARR moves with the training target —
    # exactly the inflexibility re-tuning removes.
    frozen_arr = [row["frozen_arr"] for row in results.values()]
    assert frozen_arr == sorted(frozen_arr)
