"""Figure 5 — NDR/ARR Pareto fronts for the three membership shapes.

Paper callouts: with 8 coefficients from 50 samples at 90 Hz, the
linear-approximation front closely follows the Gaussian front (both
reach ~98.5% ARR at ~87% NDR), while the triangular front collapses at
high ARR (~62% NDR at the same recognition rate, and it "cannot scale
well if higher recognition rates of abnormal beats are desired").
"""

import numpy as np
import pytest

from repro.core.metrics import ndr_at_arr
from repro.experiments.figure5 import (
    Figure5Config,
    figure5_summary,
    format_figure5,
    run_figure5,
)

PAPER_FIGURE5_AT_985 = {"gaussian": 0.87, "linear": 0.87, "triangular": 0.62}


@pytest.fixture(scope="module")
def figure5_results(bench_scale, bench_seed, bench_ga, bench_embedded_pipeline):
    config = Figure5Config(
        scale=bench_scale, seed=bench_seed, genetic=bench_ga, scg_iterations=100
    )
    return run_figure5(config, pipeline=bench_embedded_pipeline)


def test_figure5_fronts(benchmark, figure5_results, bench_embedded_pipeline, bench_embedded_datasets):
    # Time one shape sweep (the unit of work behind the figure).
    benchmark.pedantic(
        bench_embedded_pipeline.sweep,
        args=(bench_embedded_datasets.test,),
        rounds=3,
        iterations=1,
    )

    summary = figure5_summary(figure5_results, arr_targets=(0.97, 0.985))
    benchmark.extra_info["measured"] = {
        shape: {str(t): v for t, v in vals.items()} for shape, vals in summary.items()
    }
    benchmark.extra_info["paper_ndr_at_arr_985"] = PAPER_FIGURE5_AT_985
    print("\n=== Figure 5 (NDR at ARR targets, measured) ===")
    print(format_figure5(summary))
    print(f"paper at ARR >= 98.5%: {PAPER_FIGURE5_AT_985}")

    gaussian = summary["gaussian"]
    linear = summary["linear"]
    triangular = summary["triangular"]

    # Shape claim 1: linear closely follows gaussian at the ARR target.
    assert abs(gaussian[0.97] - linear[0.97]) < 0.12

    # Shape claim 2: triangular is the worst shape at high ARR — it
    # either cannot reach 98.5% ARR at all (NaN) or pays heavily.
    tri_985 = triangular[0.985]
    best_985 = max(v for v in (gaussian[0.985], linear[0.985]) if not np.isnan(v))
    assert np.isnan(tri_985) or tri_985 <= best_985 + 1e-9

    # Shape claim 3: the gaussian/linear classifiers stay useful at
    # high recognition rates.
    assert best_985 > 0.6
