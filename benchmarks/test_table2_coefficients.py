"""Table II — NDR at a fixed 97% ARR vs the number of RP coefficients.

Paper values (percent):

============  =====  =====  =====
coefficients      8     16     32
============  =====  =====  =====
NDR-PC        93.74  95.16  93.05
NDR-WBSN      92.31  92.53  93.04
PCA-PC        93.66  95.78  89.75
============  =====  =====  =====

Shape claims checked: every configuration exceeds 90% NDR at the
(larger-scale) defaults; growing k from 8 to 32 brings no tangible
gain; float vs embedded vs PCA stay within a few points of each other.
"""

import pytest

from repro.experiments.table2 import Table2Config, format_table2, run_table2

PAPER_TABLE2 = {
    8: {"NDR-PC": 93.74, "NDR-WBSN": 92.31, "PCA-PC": 93.66},
    16: {"NDR-PC": 95.16, "NDR-WBSN": 92.53, "PCA-PC": 95.78},
    32: {"NDR-PC": 93.05, "NDR-WBSN": 93.04, "PCA-PC": 89.75},
}


@pytest.fixture(scope="module")
def table2_results(bench_scale, bench_seed, bench_ga):
    config = Table2Config(
        scale=bench_scale, seed=bench_seed, genetic=bench_ga, scg_iterations=100
    )
    return run_table2(config)


def test_table2_regeneration(benchmark, table2_results, bench_scale, bench_seed, bench_ga):
    config = Table2Config(
        coefficients=(8,),
        scale=bench_scale,
        seed=bench_seed + 1,
        genetic=bench_ga,
        scg_iterations=100,
    )
    benchmark.pedantic(run_table2, args=(config,), rounds=1, iterations=1)

    results = table2_results
    benchmark.extra_info["measured"] = results
    benchmark.extra_info["paper"] = PAPER_TABLE2
    print("\n=== Table II (measured, scale %.2f) ===" % bench_scale)
    print(format_table2(results))
    print("paper:")
    print(format_table2(PAPER_TABLE2))

    # Shape claim 1: small k already gives > 85% NDR (paper: > 90%).
    for k in results:
        assert results[k]["NDR-PC"] > 85.0

    # Shape claim 2: no tangible benefit from 8 -> 32 coefficients
    # (paper sees < 2.2 points of spread; allow a wider band).
    pc_values = [results[k]["NDR-PC"] for k in results]
    assert max(pc_values) - min(pc_values) < 12.0

    # Shape claim 3: the embedded version gives up only a few points.
    for k in results:
        assert results[k]["NDR-PC"] - results[k]["NDR-WBSN"] < 10.0
