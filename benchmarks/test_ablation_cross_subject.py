"""Ablation — intra- vs inter-patient generalization.

The paper's protocol trains and tests on the same record pool; the
subject-oriented protocol (de Chazal et al., paper reference [13])
holds patients out.  MIT-BIH studies consistently report a large gap
between the two; this benchmark reproduces that gap on the synthetic
substrate, contextualizing the paper's class-oriented numbers.
"""

import pytest

from repro.experiments.cross_subject import (
    CrossSubjectConfig,
    format_cross_subject,
    run_cross_subject,
)


@pytest.fixture(scope="module")
def cross_subject_results(bench_seed, bench_ga):
    config = CrossSubjectConfig(seed=bench_seed, genetic=bench_ga, scg_iterations=100)
    return run_cross_subject(config)


def test_cross_subject_gap(benchmark, cross_subject_results, bench_seed, bench_ga):
    config = CrossSubjectConfig(
        seed=bench_seed + 1,
        genetic=bench_ga,
        n_train_subjects=6,
        n_test_subjects=3,
        scg_iterations=100,
    )
    benchmark.pedantic(run_cross_subject, args=(config,), rounds=1, iterations=1)

    results = cross_subject_results
    benchmark.extra_info["results"] = results
    print("\n=== Intra- vs inter-patient generalization ===")
    print(format_cross_subject(results))

    # Both protocols meet the ARR target (alpha re-tuned per stream).
    assert results["intra"]["arr"] >= 96.5
    assert results["inter"]["arr"] >= 96.5
    # The generalization gap exists and has the expected sign.
    assert results["gap"]["ndr"] > 0.0
    # Held-out subjects remain far above chance: the projection +
    # morphology features do transfer, just less cleanly.
    assert results["inter"]["ndr"] > 30.0
