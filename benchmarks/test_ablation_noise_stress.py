"""Ablation — classification robustness under noise stress.

NST-style sweep: the trained classifier is evaluated on the test set
contaminated with electrode-motion (em), muscle (ma) and baseline-
wander (bw) noise at decreasing SNR, re-tuning alpha_test per condition
to hold ARR >= 97%.  Checked shape: graceful degradation (no cliff
before 12 dB) and wideband EMG hurting at least as much as baseline
wander at equal SNR is *not* required — what matters is that all
curves decrease monotonically-ish and stay usable at 12 dB.
"""

import pytest

from repro.experiments.noise_robustness import (
    NoiseRobustnessConfig,
    format_noise_robustness,
    run_noise_robustness,
)


@pytest.fixture(scope="module")
def noise_results(bench_scale, bench_seed, bench_ga, bench_pipeline):
    config = NoiseRobustnessConfig(
        scale=bench_scale, seed=bench_seed, genetic=bench_ga, scg_iterations=100
    )
    return run_noise_robustness(config, pipeline=bench_pipeline)


def test_noise_stress(benchmark, noise_results, bench_pipeline, bench_seed, bench_ga):
    config = NoiseRobustnessConfig(
        scale=0.03,
        seed=bench_seed,
        genetic=bench_ga,
        snrs_db=(12.0,),
        kinds=("ma",),
        scg_iterations=100,
    )
    benchmark.pedantic(
        run_noise_robustness, args=(config,), kwargs={"pipeline": bench_pipeline},
        rounds=1, iterations=1,
    )

    results = noise_results
    benchmark.extra_info["results"] = {
        kind: {str(snr): v for snr, v in vals.items()} for kind, vals in results.items()
    }
    print("\n=== Noise-stress sweep (NDR @ ARR >= 97%) ===")
    print(format_noise_robustness(results))

    clean = results["clean"][float("inf")]
    for kind in ("em", "ma", "bw"):
        # Graceful degradation down to 12 dB.
        assert results[kind][12.0] > clean - 25.0
        # More noise cannot help (small sampling slack).
        assert results[kind][6.0] <= results[kind][24.0] + 3.0
