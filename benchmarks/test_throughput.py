"""Throughput micro-benchmarks of the hot per-sample path.

Tracks the trajectory of the O(n) front end and the batched serving
layer (the ``BENCH_*.json`` artifacts record these over time):

* ``filter_lead`` over 10 s of 360 Hz signal (the acceptance metric of
  the vHGW kernel rewrite — the seed implementation took ~2.3 ms);
* amortized ``BlockFilter.push`` / ``StreamingPeakDetector.push`` cost
  at ADC-realistic 0.5 s blocks (the incremental engine must not
  re-run batch kernels over its context);
* multi-record node simulation and fleet-batched stream
  classification, the serving layer's building blocks.
"""

import numpy as np
import pytest

from repro.dsp.morphological import filter_lead
from repro.dsp.streaming import BlockFilter, StreamingPeakDetector
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.node_sim import NodeSimulator
from repro.serving import classify_streams, simulate_records


@pytest.fixture(scope="module")
def record_10s():
    return RecordSynthesizer(SynthesisConfig(n_leads=1), seed=2).synthesize(10.0)


@pytest.fixture(scope="module")
def record_60s():
    return RecordSynthesizer(SynthesisConfig(n_leads=1), seed=3).synthesize(60.0)


@pytest.fixture(scope="module")
def fleet_records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=3), seed=s).synthesize(30.0)
        for s in (21, 22, 23)
    ]


def test_filter_lead_per_10s(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(3600)
    benchmark(filter_lead, x, 360.0)


def test_block_filter_push_amortized(benchmark, record_60s):
    """Amortized per-push cost of the incremental filter (0.5 s blocks)."""
    x = record_60s.lead(0)
    fs = record_60s.fs
    block = int(0.5 * fs)

    def run():
        block_filter = BlockFilter(fs)
        for i in range(0, x.size, block):
            block_filter.push(x[i : i + block])
        return block_filter.flush()

    benchmark(run)


def test_streaming_detector_push_amortized(benchmark, record_60s):
    """Amortized per-push cost of the stateful detector (0.5 s blocks)."""
    x = filter_lead(record_60s.lead(0), record_60s.fs)
    fs = record_60s.fs
    block = int(0.5 * fs)

    def run():
        detector = StreamingPeakDetector(fs)
        for i in range(0, x.size, block):
            detector.push(x[i : i + block])
        detector.flush()
        return detector.peaks

    benchmark(run)


def test_streaming_chain_realtime_factor(benchmark, record_10s):
    """Full incremental chain (filter + detect) over 10 s of signal."""
    x = record_10s.lead(0)
    fs = record_10s.fs
    block = int(0.5 * fs)

    def run():
        block_filter = BlockFilter(fs)
        detector = StreamingPeakDetector(fs)
        for i in range(0, x.size, block):
            out = block_filter.push(x[i : i + block])
            if out.size:
                detector.push(out)
        tail = block_filter.flush()
        if tail.size:
            detector.push(tail)
        detector.flush()
        return detector.peaks

    peaks = benchmark(run)
    assert peaks.size > 5


def test_simulate_records_fleet(benchmark, bench_embedded_classifier, fleet_records):
    simulator = NodeSimulator(bench_embedded_classifier)
    fleet = benchmark(simulate_records, simulator, fleet_records)
    assert fleet.n_beats > 0
    benchmark.extra_info["n_beats"] = fleet.n_beats
    benchmark.extra_info["deadline_misses"] = fleet.deadline_misses


def test_classify_streams_fleet(benchmark, bench_embedded_classifier, fleet_records):
    streams = [r.lead(0) for r in fleet_records]
    fs = fleet_records[0].fs
    results = benchmark(classify_streams, bench_embedded_classifier, streams, fs)
    assert sum(r.n_beats for r in results) > 0
    benchmark.extra_info["n_beats"] = sum(r.n_beats for r in results)
