"""Throughput micro-benchmarks of the hot per-sample path.

Tracks the trajectory of the O(n) front end, the batched delineation
kernel and the sharded serving layer (the ``BENCH_*.json`` artifacts
record these over time):

* ``filter_lead`` over 10 s of 360 Hz signal (the acceptance metric of
  the vHGW kernel rewrite — the seed implementation took ~2.3 ms);
* amortized ``BlockFilter.push`` / ``StreamingPeakDetector.push`` cost
  at ADC-realistic 0.5 s blocks (the incremental engine must not
  re-run batch kernels over its context);
* batched ``delineate_beats`` vs the per-beat ``delineate_multilead``
  loop on a high-activation record (the gated-path acceptance metric:
  the per-beat loop took ~115 ms for ~160 beats; the batched kernel
  ~80 ms, bit-exact);
* multi-record node simulation and fleet-batched stream
  classification, plus ``ServingEngine``-sharded variants of both
  (process sharding only pays off with >= 2 CPUs — the speedup over
  serial is recorded in ``extra_info`` either way);
* the session gateway vs per-beat classification of the same live
  sessions (the batched-classifier amortization of ``StreamGateway``;
  asserted >= 2x events/sec — plus an absolute events/sec floor under
  ``REPRO_BENCH_ASSERT_FLOOR=1``, the post-flattening figure — with an
  unpaced loadgen replay recording p50/p99 per-event latency);
* the closed-loop loadgen smoke: ramp a synthesized mixed fleet to its
  max sustained offered rate; achieved events/sec and p50/p99 latency
  always land in ``extra_info`` (>= 20x the fleet's nominal rate under
  ``REPRO_BENCH_ASSERT_FLOOR=1``);
* the multi-worker ``ShardedGateway`` vs the single-process gateway on
  the same live fleet (the cross-process sharding payoff; >= 1.3x on
  two workers, asserted on >= 2-CPU hosts under
  ``REPRO_BENCH_ASSERT_SHARDED=1``);
* the autoscaled gateway vs a statically hash-placed one under a
  *skewed* load (every hot session hashes onto worker 0): the
  ``AutoBalancer`` migrates sessions onto the idle worker, so the
  elastic tier recovers the parallelism static placement loses
  (>= 1.2x events/sec, asserted on >= 2-CPU hosts under
  ``REPRO_BENCH_ASSERT_SHARDED=1``).
"""

import os
import time
import zlib

import numpy as np
import pytest

from repro.dsp.delineation import delineate_beats, delineate_multilead
from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.dsp.streaming import BlockFilter, StreamingNode, StreamingPeakDetector
from repro.ecg.synth import RecordSynthesizer, RhythmConfig, SynthesisConfig
from repro.platform.node_sim import NodeSimulator
from repro.platform.opcount import OpCounter
from repro.serving import (
    AutoBalancer,
    ServingEngine,
    ShardedGateway,
    StreamGateway,
    classify_streams,
    find_max_sustained,
    replay_fleet,
    serve_autoscaled,
    serve_round_robin,
    simulate_records,
    synthesize_fleet,
)


@pytest.fixture(scope="module")
def record_10s():
    return RecordSynthesizer(SynthesisConfig(n_leads=1), seed=2).synthesize(10.0)


@pytest.fixture(scope="module")
def record_60s():
    return RecordSynthesizer(SynthesisConfig(n_leads=1), seed=3).synthesize(60.0)


@pytest.fixture(scope="module")
def fleet_records():
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=3), seed=s).synthesize(30.0)
        for s in (21, 22, 23)
    ]


def test_filter_lead_per_10s(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(3600)
    benchmark(filter_lead, x, 360.0)


def test_block_filter_push_amortized(benchmark, record_60s):
    """Amortized per-push cost of the incremental filter (0.5 s blocks)."""
    x = record_60s.lead(0)
    fs = record_60s.fs
    block = int(0.5 * fs)

    def run():
        block_filter = BlockFilter(fs)
        for i in range(0, x.size, block):
            block_filter.push(x[i : i + block])
        return block_filter.flush()

    benchmark(run)


def test_streaming_detector_push_amortized(benchmark, record_60s):
    """Amortized per-push cost of the stateful detector (0.5 s blocks)."""
    x = filter_lead(record_60s.lead(0), record_60s.fs)
    fs = record_60s.fs
    block = int(0.5 * fs)

    def run():
        detector = StreamingPeakDetector(fs)
        for i in range(0, x.size, block):
            detector.push(x[i : i + block])
        detector.flush()
        return detector.peaks

    benchmark(run)


def test_streaming_chain_realtime_factor(benchmark, record_10s):
    """Full incremental chain (filter + detect) over 10 s of signal."""
    x = record_10s.lead(0)
    fs = record_10s.fs
    block = int(0.5 * fs)

    def run():
        block_filter = BlockFilter(fs)
        detector = StreamingPeakDetector(fs)
        for i in range(0, x.size, block):
            out = block_filter.push(x[i : i + block])
            if out.size:
                detector.push(out)
        tail = block_filter.flush()
        if tail.size:
            detector.push(tail)
        detector.flush()
        return detector.peaks

    peaks = benchmark(run)
    assert peaks.size > 5


def test_simulate_records_fleet(benchmark, bench_embedded_classifier, fleet_records):
    simulator = NodeSimulator(bench_embedded_classifier)
    fleet = benchmark(simulate_records, simulator, fleet_records)
    assert fleet.n_beats > 0
    benchmark.extra_info["n_beats"] = fleet.n_beats
    benchmark.extra_info["deadline_misses"] = fleet.deadline_misses


def test_classify_streams_fleet(benchmark, bench_embedded_classifier, fleet_records):
    streams = [r.lead(0) for r in fleet_records]
    fs = fleet_records[0].fs
    results = benchmark(classify_streams, bench_embedded_classifier, streams, fs)
    assert sum(r.n_beats for r in results) > 0
    benchmark.extra_info["n_beats"] = sum(r.n_beats for r in results)


@pytest.fixture(scope="module")
def high_activation_delineation():
    """Filtered 3-lead high-PVC record + detected peaks (most flagged)."""
    record = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=55).synthesize(
        60.0, class_mix={"N": 0.3, "V": 0.55, "L": 0.15}
    )
    fs = record.fs
    filtered = np.column_stack(
        [filter_lead(record.lead(i), fs) for i in range(record.n_leads)]
    )
    peaks = detect_peaks(filtered[:, 0], fs)
    previous = [None] + [int(p) for p in peaks[:-1]]
    return fs, filtered, peaks, previous


def test_delineate_per_beat_loop(benchmark, high_activation_delineation):
    """Baseline: the seed's per-beat multi-lead delineation loop."""
    fs, filtered, peaks, previous = high_activation_delineation

    def run():
        cycles = []
        for peak, prev in zip(peaks, previous):
            counter = OpCounter()
            delineate_multilead(filtered, int(peak), fs, counter=counter, previous_peak=prev)
            cycles.append(counter.total)
        return cycles

    ops = benchmark(run)
    benchmark.extra_info["n_beats"] = len(ops)


def test_delineate_beats_batched(benchmark, high_activation_delineation):
    """Batched kernel: one MMD pass per lead/scale over the segment union."""
    fs, filtered, peaks, previous = high_activation_delineation

    def run():
        counters = [OpCounter() for _ in range(peaks.size)]
        delineate_beats(filtered, peaks, fs, counters=counters, previous_peaks=previous)
        return counters

    counters = benchmark(run)
    benchmark.extra_info["n_beats"] = len(counters)


@pytest.fixture(scope="module")
def sharding_streams():
    """>= 8 streams, long enough for process sharding to amortize pools."""
    return [
        RecordSynthesizer(SynthesisConfig(n_leads=1), seed=40 + s).synthesize(60.0).lead(0)
        for s in range(8)
    ]


def test_classify_streams_sharded_processes(
    benchmark, bench_embedded_classifier, sharding_streams
):
    """Process-sharded serving vs serial on >= 8 streams.

    Records the serial-vs-sharded speedup in ``extra_info``.  The
    "sharded beats serial" assertion is opt-in via
    ``REPRO_BENCH_ASSERT_SHARDED=1`` (and still requires >= 2 CPUs):
    on a single core sharding can only add pool overhead, and on small
    shared CI runners the wall-clock comparison is too noisy to gate a
    ``-x`` suite on.
    """
    fs = 360.0
    engine = ServingEngine(executor="processes", workers=4)

    serial_times = []
    for _ in range(3):
        start = time.perf_counter()
        serial = classify_streams(bench_embedded_classifier, sharding_streams, fs)
        serial_times.append(time.perf_counter() - start)

    results = benchmark(
        classify_streams, bench_embedded_classifier, sharding_streams, fs, engine=engine
    )
    for serial_result, sharded_result in zip(serial, results):
        np.testing.assert_array_equal(serial_result.peaks, sharded_result.peaks)
        np.testing.assert_array_equal(serial_result.labels, sharded_result.labels)

    serial_s = min(serial_times)
    sharded_s = benchmark.stats.stats.min
    benchmark.extra_info["n_streams"] = len(sharding_streams)
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["speedup_vs_serial"] = serial_s / sharded_s
    if os.environ.get("REPRO_BENCH_ASSERT_SHARDED") == "1" and (os.cpu_count() or 1) >= 2:
        assert sharded_s < serial_s


def test_simulate_records_sharded_processes(
    benchmark, bench_embedded_classifier, fleet_records
):
    engine = ServingEngine(executor="processes", workers=4)
    simulator = NodeSimulator(bench_embedded_classifier)
    fleet = benchmark(simulate_records, simulator, fleet_records, engine=engine)
    assert fleet.n_beats > 0
    benchmark.extra_info["n_beats"] = fleet.n_beats


@pytest.fixture(scope="module")
def gateway_sessions():
    """Six high-rate (~140 bpm) live sessions: classification-heavy
    load, where per-beat predict overhead dominates the savings."""
    config = SynthesisConfig(n_leads=1, rhythm=RhythmConfig(mean_rr=0.42))
    return [
        RecordSynthesizer(config, seed=70 + s).synthesize(30.0) for s in range(6)
    ]


def test_gateway_vs_per_beat_classification(
    benchmark, bench_embedded_classifier, gateway_sessions
):
    """Session gateway (one batched classifier pass per tick) vs the
    same sessions on inline per-beat-classifying ``StreamingNode``s.

    Both paths run identical front ends and identical chunk schedules;
    only the classification batching differs, so the events/sec ratio
    is the batched-classifier amortization.  The events themselves are
    asserted bit-identical, and the gateway must clear 2x.

    Unlike the sharded-process assertion above, this one asserts by
    default: the amortization is architectural (per-call classifier
    overhead vs one batched pass), holds on a single core, and both
    sides are single-threaded on the same host — measured ~2.7x
    against the 2x gate, with the baseline taken as a min-of-3 and the
    gateway as the benchmark minimum.  Set
    ``REPRO_BENCH_ASSERT_GATEWAY=0`` to record without asserting on a
    host too oversubscribed for any wall-clock comparison.
    """
    records = gateway_sessions
    fs = records[0].fs
    block = int(1.0 * fs)

    def run_per_beat():
        events = []
        for record in records:
            node = StreamingNode(bench_embedded_classifier, fs, n_leads=1)
            for i in range(0, record.n_samples, block):
                events += node.push(record.signal[i : i + block])
            events += node.flush()
        return events

    def run_gateway():
        gateway = StreamGateway(
            bench_embedded_classifier, fs, n_leads=1,
            max_batch=256, max_latency_ticks=24,
        )
        per_session = serve_round_robin(
            gateway, {f"s{i}": record.signal for i, record in enumerate(records)}, block
        )
        return [event for session in per_session.values() for event in session]

    per_beat_times = []
    for _ in range(3):
        start = time.perf_counter()
        per_beat_events = run_per_beat()
        per_beat_times.append(time.perf_counter() - start)

    gateway_events = benchmark(run_gateway)
    assert [(e.peak, e.label) for e in gateway_events] == [
        (e.peak, e.label) for e in per_beat_events
    ]

    n_events = len(gateway_events)
    per_beat_s = min(per_beat_times)
    gateway_s = benchmark.stats.stats.min
    speedup = per_beat_s / gateway_s
    benchmark.extra_info["n_sessions"] = len(records)
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["per_beat_events_per_s"] = n_events / per_beat_s
    benchmark.extra_info["gateway_events_per_s"] = n_events / gateway_s
    benchmark.extra_info["speedup_vs_per_beat"] = speedup

    # Per-event latency (chunk ingest -> verdict returned) of one
    # unpaced replay of the same fleet, recorded alongside throughput
    # so the artifact always carries both axes of the serving SLO.
    latency_report = replay_fleet(
        StreamGateway(
            bench_embedded_classifier, fs, n_leads=1,
            max_batch=256, max_latency_ticks=24,
        ),
        {f"s{i}": record.signal for i, record in enumerate(records)},
        fs=fs,
        chunk=block,
    )
    benchmark.extra_info["latency_p50_ms"] = latency_report.p50_ms
    benchmark.extra_info["latency_p99_ms"] = latency_report.p99_ms
    assert n_events > 300
    if os.environ.get("REPRO_BENCH_ASSERT_GATEWAY") != "0":
        assert speedup >= 2.0
    if os.environ.get("REPRO_BENCH_ASSERT_FLOOR") == "1":
        # Absolute post-flattening floor, not a ratio: the vectorized
        # hot path sped up the per-beat BASELINE too (decode-once
        # projection, batched delineation), so speedup-vs-per-beat
        # understates the win.  The flattening measured ~1.5x the
        # pre-flattening 2619 events/s on the reference runner; the
        # gate is 1.3x that with slack for host variance, overridable
        # for other runner classes via REPRO_BENCH_FLOOR_EPS.
        floor_eps = float(os.environ.get("REPRO_BENCH_FLOOR_EPS", "3400"))
        assert n_events / gateway_s >= floor_eps


@pytest.fixture(scope="module")
def sharded_gateway_sessions():
    """Eight high-rate live sessions whose ids hash 4 + 4 onto two
    workers — a balanced load for the multi-worker speedup metric."""
    config = SynthesisConfig(n_leads=1, rhythm=RhythmConfig(mean_rr=0.42))
    return [
        RecordSynthesizer(config, seed=80 + s).synthesize(30.0) for s in range(8)
    ]


def test_sharded_gateway_vs_single_process(
    benchmark, bench_embedded_classifier, sharded_gateway_sessions
):
    """Multi-worker ``ShardedGateway`` vs the single-process gateway on
    the same live fleet (identical chunk schedule, identical flush
    policy per worker).

    The sharded tier moves the per-sample front ends *and* the batched
    classifier passes into worker processes while the parent only
    slices and routes chunks, so its payoff — like the
    process-executor engine above — needs real cores.  The measured
    events/sec for both tiers and their ratio land in ``extra_info``
    always; the ">= 1.3x on two workers" gate is opt-in via
    ``REPRO_BENCH_ASSERT_SHARDED=1`` (requires >= 2 CPUs), which the
    2-core CI job sets.  Events are asserted identical either way —
    sharding must never buy throughput with correctness.
    """
    records = sharded_gateway_sessions
    fs = records[0].fs
    block = int(0.5 * fs)
    streams = {f"s{i}": record.signal for i, record in enumerate(records)}
    gateway_kwargs = dict(n_leads=1, max_batch=256, max_latency_ticks=24)

    def run_single():
        gateway = StreamGateway(bench_embedded_classifier, fs, **gateway_kwargs)
        per_session = serve_round_robin(gateway, streams, block)
        return [event for session in per_session.values() for event in session]

    def run_sharded():
        with ShardedGateway(
            bench_embedded_classifier, fs, workers=2, **gateway_kwargs
        ) as gateway:
            per_session = serve_round_robin(gateway, streams, block)
        return [event for session in per_session.values() for event in session]

    single_times = []
    for _ in range(3):
        start = time.perf_counter()
        single_events = run_single()
        single_times.append(time.perf_counter() - start)

    sharded_events = benchmark(run_sharded)
    assert [(e.peak, e.label) for e in sharded_events] == [
        (e.peak, e.label) for e in single_events
    ]

    n_events = len(sharded_events)
    single_s = min(single_times)
    sharded_s = benchmark.stats.stats.min
    speedup = single_s / sharded_s
    benchmark.extra_info["n_sessions"] = len(records)
    benchmark.extra_info["workers"] = 2
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["single_events_per_s"] = n_events / single_s
    benchmark.extra_info["sharded_events_per_s"] = n_events / sharded_s
    benchmark.extra_info["speedup_vs_single_process"] = speedup
    assert n_events > 400
    if os.environ.get("REPRO_BENCH_ASSERT_SHARDED") == "1" and (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.3


@pytest.fixture(scope="module")
def skewed_gateway_sessions():
    """Eight hot sessions whose ids all CRC-32 hash onto worker 0 of a
    two-worker pool — the pathological skew static hash placement
    cannot recover from."""
    config = SynthesisConfig(n_leads=1, rhythm=RhythmConfig(mean_rr=0.42))
    sessions, k = {}, 0
    while len(sessions) < 8:
        sid = f"hot-{k}"
        k += 1
        if zlib.crc32(sid.encode()) % 2 == 0:
            record = RecordSynthesizer(config, seed=200 + k).synthesize(30.0)
            sessions[sid] = record.signal
    return sessions


def test_autoscaled_vs_static_skewed_load(
    benchmark, bench_embedded_classifier, skewed_gateway_sessions
):
    """Autoscaled gateway vs static hash placement on a skewed load.

    Every session id hashes onto worker 0, so the static two-worker
    pool runs the whole fleet on one worker while the other idles.
    The autoscaled run serves the *same* pool size and ids but ticks
    an ``AutoBalancer`` between ingest rounds: it detects the load
    spread and live-migrates sessions onto the idle worker, recovering
    the lost parallelism.  Events are asserted identical (rebalancing
    must never change a session's sequence); events/sec for both modes
    land in ``extra_info``, and the ">= 1.2x" gate is opt-in via
    ``REPRO_BENCH_ASSERT_SHARDED=1`` on >= 2-CPU hosts (like the
    sharded-vs-single benchmark above, a single core has no
    parallelism for rebalancing to recover).
    """
    streams = skewed_gateway_sessions
    fs = 360.0
    block = int(0.5 * fs)
    gateway_kwargs = dict(n_leads=1, max_batch=256, max_latency_ticks=24)

    def run_static():
        with ShardedGateway(
            bench_embedded_classifier, fs, workers=2, placement="hash",
            **gateway_kwargs,
        ) as gateway:
            per_session = serve_round_robin(gateway, streams, block)
            assert gateway.stats()["per_worker"][1]["n_flushes"] == 0  # all skewed
        return [event for session in per_session.values() for event in session]

    def run_autoscaled():
        with ShardedGateway(
            bench_embedded_classifier, fs, workers=2, placement="hash",
            **gateway_kwargs,
        ) as gateway:
            balancer = AutoBalancer(
                gateway, imbalance_threshold=1, cooldown_ticks=0,
                max_migrations_per_tick=4,
            )
            per_session = serve_autoscaled(gateway, streams, block, balancer=balancer)
            n_migrations = gateway.n_migrations
        assert n_migrations >= 4  # the hot worker actually drained
        return [event for session in per_session.values() for event in session]

    static_times = []
    for _ in range(3):
        start = time.perf_counter()
        static_events = run_static()
        static_times.append(time.perf_counter() - start)

    autoscaled_events = benchmark(run_autoscaled)
    assert [(e.peak, e.label) for e in autoscaled_events] == [
        (e.peak, e.label) for e in static_events
    ]

    n_events = len(autoscaled_events)
    static_s = min(static_times)
    autoscaled_s = benchmark.stats.stats.min
    speedup = static_s / autoscaled_s
    benchmark.extra_info["n_sessions"] = len(streams)
    benchmark.extra_info["workers"] = 2
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["static_events_per_s"] = n_events / static_s
    benchmark.extra_info["autoscaled_events_per_s"] = n_events / autoscaled_s
    benchmark.extra_info["speedup_vs_static"] = speedup
    assert n_events > 400
    if os.environ.get("REPRO_BENCH_ASSERT_SHARDED") == "1" and (os.cpu_count() or 1) >= 2:
        assert speedup >= 1.2


def test_loadgen_max_sustained_smoke(benchmark, bench_embedded_classifier):
    """Closed-loop loadgen smoke: ramp a small mixed fleet to its max
    sustained offered rate and record throughput + latency percentiles.

    This is the end-to-end serving SLO number: a synthesized
    morphology/noise/rate-skewed fleet is replayed at a geometrically
    ramped offered events/sec until the gateway can no longer keep the
    schedule; the best sustained step's achieved rate and p50/p99
    per-event latency land in ``extra_info`` (and the benchmark JSON
    artifact) on every run.  Under ``REPRO_BENCH_ASSERT_FLOOR=1`` the
    max sustained rate must clear 20x the fleet's nominal (real-time)
    event rate — far below what one core delivers, so the gate catches
    regressions, not noisy hosts.
    """
    fs = 360.0
    streams, nominal_eps = synthesize_fleet(4, 10.0, fs=fs, seed=31)
    chunk = int(0.25 * fs)

    def make_gateway():
        return StreamGateway(
            bench_embedded_classifier, fs, n_leads=1,
            max_batch=64, max_latency_ticks=8,
        )

    def run():
        return find_max_sustained(
            make_gateway, streams, fs=fs, chunk=chunk,
            nominal_eps=nominal_eps, start_eps=25.0 * nominal_eps,
            growth=2.0, max_steps=3,
        )

    # The ramp is itself a timing loop (paced replays); one round is
    # the measurement, re-running it would only repeat the schedule.
    best, reports = benchmark.pedantic(run, rounds=1, iterations=1)
    assert reports, "ramp ran no steps"
    benchmark.extra_info["n_sessions"] = len(streams)
    benchmark.extra_info["nominal_eps"] = nominal_eps
    benchmark.extra_info["ramp_steps"] = len(reports)
    if best is not None:
        benchmark.extra_info["max_sustained_eps"] = best.achieved_eps
        benchmark.extra_info["p50_ms"] = best.p50_ms
        benchmark.extra_info["p99_ms"] = best.p99_ms
        benchmark.extra_info["n_events"] = best.n_events
    if os.environ.get("REPRO_BENCH_ASSERT_FLOOR") == "1":
        assert best is not None, "no sustained operating point"
        assert best.achieved_eps >= 20.0 * nominal_eps
