"""Section IV-E — energy-efficiency improvement.

Paper: "we achieve a 68% energy consumption reduction in the wireless
module and 63% reduction in the energy consumption of the bio-signal
analysis part.  Thus, overall we achieve an estimated 23% total energy
reduction" (computation + radio being ~34% of the node budget).
"""

import pytest

from repro.experiments.energy import format_energy, run_energy
from repro.experiments.table3 import Table3Config

PAPER = {"compute_saving": 0.63, "radio_saving": 0.68, "total_saving": 0.23}


@pytest.fixture(scope="module")
def energy_result(bench_scale, bench_seed, bench_ga):
    config = Table3Config(
        scale=bench_scale, seed=bench_seed, genetic=bench_ga, scg_iterations=100
    )
    return run_energy(config)


def test_energy_savings(benchmark, energy_result, bench_scale, bench_seed, bench_ga):
    config = Table3Config(
        scale=min(bench_scale, 0.05),
        seed=bench_seed,
        genetic=bench_ga,
        scg_iterations=100,
    )
    benchmark.pedantic(run_energy, args=(config,), rounds=1, iterations=1)

    result = energy_result
    benchmark.extra_info["measured"] = {
        "compute_saving": result.compute_saving,
        "radio_saving": result.radio_saving,
        "total_saving": result.total_saving,
        "activation_rate": result.activation_rate,
    }
    benchmark.extra_info["paper"] = PAPER
    print("\n=== Section IV-E (measured) ===")
    print(format_energy(result))

    # Shape claims: all three savings land in the paper's regime.
    assert 0.45 < result.compute_saving < 0.80  # paper: 0.63
    assert 0.50 < result.radio_saving < 0.80  # paper: 0.68
    assert 0.15 < result.total_saving < 0.30  # paper: ~0.23
    # Consistency: total = weighted components, below the 34% cap.
    assert result.total_saving < 0.34
