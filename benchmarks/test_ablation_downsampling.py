"""Ablation — downsampling factor vs accuracy and matrix memory.

Section III-B: "Downsampling can also be applied to reduce the memory
occupied by the random projection matrix.  If, for example, one every
four samples of the acquired signal is considered, the size of the
matrix is reduced by a factor of four."  The paper deploys factor 4
(360 Hz -> 90 Hz).  This ablation sweeps factors 1/2/4/8 and reports
the NDR at 97% ARR plus the packed-matrix footprint, locating the
paper's operating point on the trade-off curve.
"""

import pytest

from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig
from repro.experiments.datasets import decimate_labeled
from repro.fixedpoint.packed_matrix import PackedTernaryMatrix

FACTORS = (1, 2, 4, 8)
TARGET_ARR = 0.97


@pytest.fixture(scope="module")
def downsampling_results(bench_datasets, bench_ga, bench_seed):
    results = {}
    for factor in FACTORS:
        if factor == 1:
            train1, train2, test = (
                bench_datasets.train1,
                bench_datasets.train2,
                bench_datasets.test,
            )
        else:
            train1 = decimate_labeled(bench_datasets.train1, factor)
            train2 = decimate_labeled(bench_datasets.train2, factor)
            test = decimate_labeled(bench_datasets.test, factor)
        config = TrainingConfig(n_coefficients=8, genetic=bench_ga, scg_iterations=100)
        pipeline = RPClassifierPipeline.train(
            train1, train2, 8, seed=bench_seed, config=config
        )
        report = pipeline.tuned_for(test, TARGET_ARR).evaluate(test)
        packed = PackedTernaryMatrix.pack(pipeline.projection)
        results[factor] = {
            "ndr": 100.0 * report.ndr,
            "arr": 100.0 * report.arr,
            "matrix_bytes": packed.n_bytes,
            "beat_samples": train1.X.shape[1],
        }
    return results


def test_downsampling_ablation(benchmark, downsampling_results, bench_datasets, bench_ga, bench_seed):
    # Time one factor-4 training run.
    train1 = decimate_labeled(bench_datasets.train1, 4)
    train2 = decimate_labeled(bench_datasets.train2, 4)
    config = TrainingConfig(n_coefficients=8, genetic=bench_ga, scg_iterations=100)
    benchmark.pedantic(
        RPClassifierPipeline.train,
        args=(train1, train2, 8),
        kwargs={"seed": bench_seed, "config": config},
        rounds=1,
        iterations=1,
    )
    results = downsampling_results
    benchmark.extra_info["results"] = results
    print("\n=== Downsampling ablation (8 coefficients) ===")
    print(f"{'factor':>6}{'samples':>9}{'NDR %':>8}{'matrix B':>10}")
    for factor, row in results.items():
        print(
            f"{factor:>6}{row['beat_samples']:>9}{row['ndr']:>8.2f}{row['matrix_bytes']:>10}"
        )

    # Memory claim: factor 4 shrinks the matrix ~4x vs factor 1.
    assert results[1]["matrix_bytes"] >= 3.5 * results[4]["matrix_bytes"]

    # Accuracy claim: the paper's factor-4 point stays within a few
    # points of the full-rate classifier.
    assert results[4]["ndr"] > results[1]["ndr"] - 10.0

    # All factors remain usable classifiers.
    for row in results.values():
        assert row["ndr"] > 60.0
