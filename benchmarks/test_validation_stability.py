"""Statistical context — bootstrap intervals and training stability.

Not a paper table: this benchmark quantifies how tight the reproduced
point estimates are, so paper-vs-measured gaps in EXPERIMENTS.md can be
read against the run-to-run noise floor.

* bootstrap CI of NDR/ARR for the fixed benchmark classifier;
* seed sweep of the full two-step training (projection randomness).
"""

import numpy as np
import pytest

from repro.core.genetic import GeneticConfig
from repro.core.training import TrainingConfig
from repro.core.validation import bootstrap_metrics, seed_sweep


def test_bootstrap_intervals(benchmark, bench_pipeline, bench_datasets):
    tuned = bench_pipeline.tuned_for(bench_datasets.test, 0.97)
    y_pred = tuned.predict(bench_datasets.test.X)
    intervals = benchmark.pedantic(
        bootstrap_metrics,
        args=(bench_datasets.test.y, y_pred),
        kwargs={"n_resamples": 500, "rng": 0},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["ndr_ci"] = [intervals["ndr"].lower, intervals["ndr"].upper]
    benchmark.extra_info["arr_ci"] = [intervals["arr"].lower, intervals["arr"].upper]
    print("\n=== Bootstrap 95% CIs ===")
    for name, ci in intervals.items():
        print(f"  {name.upper()}: {100 * ci.point:.2f}% [{100 * ci.lower:.2f}, {100 * ci.upper:.2f}]")
    assert intervals["ndr"].contains(intervals["ndr"].point)
    # With thousands of test beats the CI must be tight.
    assert intervals["ndr"].width < 0.08


def test_training_seed_stability(benchmark, bench_datasets, bench_seed):
    config = TrainingConfig(
        n_coefficients=8,
        genetic=GeneticConfig(population_size=6, generations=3),
        scg_iterations=80,
    )
    result = benchmark.pedantic(
        seed_sweep,
        args=(bench_datasets.train1, bench_datasets.train2, bench_datasets.test, config),
        kwargs={"seeds": (0, 1, 2)},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["ndr_per_seed"] = result.ndr.tolist()
    print("\n=== Seed sweep ===")
    print(" ", result.summary())
    # The GA tames projection randomness: spread stays within a few
    # points (the paper's premise that a good projection is findable).
    assert result.ndr_std < 0.06
    assert np.all(result.arr >= 0.965)
