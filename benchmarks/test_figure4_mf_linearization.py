"""Figure 4 — linear approximation of Gaussian membership functions.

The paper's figure is qualitative (curve shapes on [-4.7 sigma, 0]);
the quantitative content is that the 4-segment linearization tracks the
Gaussian closely while the triangular interpolation does not.  The
benchmark regenerates the three curves, reports approximation errors,
and times the three evaluators on a beat-sized workload (their relative
cost motivates the embedded design).
"""

import numpy as np

from repro.core.membership import (
    gaussian_membership,
    linearized_membership,
    triangular_membership,
)
from repro.experiments.figure4 import format_figure4, run_figure4, run_figure4_errors


def test_figure4_curves_and_errors(benchmark):
    curves = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    errors = run_figure4_errors()

    benchmark.extra_info["errors"] = errors
    print("\n=== Figure 4 (MF approximation error vs Gaussian) ===")
    print(format_figure4(errors))

    # Shape claims: the linear approximation is everywhere close to the
    # Gaussian (its worst deviation, mid-segment, is ~0.087 of full
    # scale); the triangle is visibly worse.
    assert errors["linear"]["max_error"] < 0.1
    assert errors["triangular"]["max_error"] > 2 * errors["linear"]["max_error"]
    # All three curves coincide at the center.
    assert curves["linear"][-1] == curves["triangular"][-1] == 1.0


def test_figure4_gaussian_eval_speed(benchmark, rng_data=None):
    rng = np.random.default_rng(0)
    u = rng.normal(0, 2, size=(1000, 8))
    centers = rng.normal(0, 1, size=(8, 3))
    sigmas = 0.5 + rng.random((8, 3))
    benchmark(gaussian_membership, u, centers, sigmas)


def test_figure4_linear_eval_speed(benchmark):
    rng = np.random.default_rng(0)
    u = rng.normal(0, 2, size=(1000, 8))
    centers = rng.normal(0, 1, size=(8, 3))
    sigmas = 0.5 + rng.random((8, 3))
    benchmark(linearized_membership, u, centers, sigmas)


def test_figure4_triangular_eval_speed(benchmark):
    rng = np.random.default_rng(0)
    u = rng.normal(0, 2, size=(1000, 8))
    centers = rng.normal(0, 1, size=(8, 3))
    sigmas = 0.5 + rng.random((8, 3))
    benchmark(triangular_membership, u, centers, sigmas)
