"""System validation — real-time feasibility on the simulated node.

Table III reports *average* duty cycles; a WBSN must also meet its
per-beat deadline in the worst case (a flagged beat pays classification
+ 3-lead window filtering + MMD delineation before the next beat
lands).  The event-driven simulator replays a record through the
deployed schedule and reports worst-case utilization and deadline
misses at the IcyHeart clock.
"""

import pytest

from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.platform.node_sim import NodeSimulator


@pytest.fixture(scope="module")
def node_trace(bench_embedded_classifier):
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=314)
    record = synth.synthesize(90.0, name="realtime")
    simulator = NodeSimulator(bench_embedded_classifier)
    return simulator.process_record(record)


def test_realtime_feasibility(benchmark, node_trace, bench_embedded_classifier):
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=315)
    short_record = synth.synthesize(20.0, name="realtime-bench")
    simulator = NodeSimulator(bench_embedded_classifier)
    benchmark.pedantic(simulator.process_record, args=(short_record,), rounds=1, iterations=1)

    trace = node_trace
    benchmark.extra_info["duty_cycle"] = trace.duty_cycle
    benchmark.extra_info["worst_case_utilization"] = trace.worst_case_utilization
    benchmark.extra_info["deadline_misses"] = trace.deadline_misses
    print("\n=== Node real-time simulation ===")
    print(" ", trace.summary())

    # The paper's system is real-time at 6 MHz: no beat may miss its
    # inter-beat deadline, with comfortable worst-case headroom.
    assert trace.deadline_misses == 0
    assert trace.worst_case_utilization < 0.9
    # Average duty must agree with the Table III regime.
    assert 0.05 < trace.duty_cycle < 0.40
    # Gating visible in the trace: flagged beats are the expensive ones.
    assert 0.02 < trace.activation_rate < 0.6
