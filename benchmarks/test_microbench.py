"""Micro-benchmarks of the per-beat embedded kernels.

These are implementation regression guards (the paper's runtime
numbers come from the cycle model, not Python timing): projection from
the packed matrix, integer membership + block fuzzification, the
wavelet transform and the morphological filter, per unit of work.
"""

import numpy as np
import pytest

from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.dsp.wavelet import dyadic_wavelet


@pytest.fixture(scope="module")
def beat_block(bench_embedded_classifier, bench_embedded_datasets):
    X = bench_embedded_datasets.test.X[:1000]
    return bench_embedded_classifier.quantize_beats(X)


def test_packed_projection(benchmark, bench_embedded_classifier, beat_block):
    benchmark(bench_embedded_classifier.matrix.project, beat_block)


def test_integer_fuzzification(benchmark, bench_embedded_classifier, beat_block):
    U = bench_embedded_classifier.matrix.project(beat_block)
    benchmark(bench_embedded_classifier.nfc.fuzzy_values, U)


def test_float_fuzzy_values(benchmark, bench_embedded_pipeline, bench_embedded_datasets):
    X = bench_embedded_datasets.test.X[:1000]
    benchmark(bench_embedded_pipeline.fuzzy_values, X)


def test_wavelet_transform_per_minute(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(360 * 60)
    benchmark(dyadic_wavelet, x)


def test_morphological_filter_per_10s(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(3600)
    benchmark(filter_lead, x, 360.0)


def test_peak_detector_per_10s(benchmark):
    from repro.ecg.synth import RecordSynthesizer, SynthesisConfig

    record = RecordSynthesizer(SynthesisConfig(), seed=2).synthesize(10.0)
    filtered = filter_lead(record.lead(0), record.fs)
    benchmark(detect_peaks, filtered, record.fs)
