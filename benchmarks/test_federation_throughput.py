"""Horizontal scale-out of the federation tier: 1 host vs 2 hosts.

The same skewed fleet replays through the identical
:class:`~repro.serving.federation.FederatedGateway` front door against
one and then two :func:`~repro.serving.federation.spawn_host` backend
processes (each host owns its own core, event loop and gateway).  The
router keeps every host's client pipeline full — a round-robin ingest
pass fans chunks across hosts back to back with no cross-host
head-of-line blocking — so aggregate events/sec must scale with hosts
until the producer core saturates.

Both fleets must produce bit-identical event sequences (the federation
contract: placement is invisible in per-session streams).  Aggregate
and per-host events/sec plus the fleet migration counters land in
``benchmark.extra_info`` (the ``BENCH_*.json`` artifact).  Under
``REPRO_BENCH_ASSERT_FEDERATION=1`` (the 2-core CI job) the 2-host
fleet must clear 1.5x the 1-host fleet — the acceptance gate of the
federation tier.  The gate stays off by default: on a single-core box
both fleets share one core and the ratio is meaningless.
"""

import os
import time

import pytest

from repro.serving import FederatedGateway, spawn_host, synthesize_fleet
from repro.serving.gateway import serve_round_robin

FS = 360.0
CHUNK_SECONDS = 0.100


@pytest.fixture(scope="module")
def federation_fleet():
    """A rate/noise/mix-skewed fleet: sessions differ in beat rate and
    SNR, so naive static placement leaves hosts unevenly loaded — the
    regime the pipelined router (and the balancers above it) target."""
    streams, _ = synthesize_fleet(8, 30.0, fs=FS, seed=13)
    return streams


def _keyed(per_session):
    return {
        sid: [(e.peak, e.label, e.flagged, e.tx_bytes) for e in events]
        for sid, events in per_session.items()
    }


def _spawn_fleet(classifier, n_hosts):
    # Wire-speed host config (identical for both fleet sizes): input
    # coalescing amortizes the front-end kernels over the ~100 ms wire
    # chunks, large batch/latency bounds keep the classifier batched.
    return [
        spawn_host(
            classifier, FS,
            gateway_kwargs=dict(
                n_leads=1, max_batch=256, max_latency_ticks=256,
                coalesce=int(0.5 * FS),
            ),
        )
        for _ in range(n_hosts)
    ]


def test_federation_two_hosts_vs_one(
    benchmark, bench_embedded_classifier, federation_fleet
):
    streams = federation_fleet
    chunk = int(CHUNK_SECONDS * FS)

    def replay(fed, times):
        start = time.perf_counter()
        events = serve_round_robin(fed, streams, chunk)
        times.append(time.perf_counter() - start)
        return events

    # -- baseline: one backend host -----------------------------------
    single_times = []
    single_hosts = _spawn_fleet(bench_embedded_classifier, 1)
    try:
        with FederatedGateway(
            [h.address for h in single_hosts],
            placement="round-robin", window=64, send_buffer=1 << 14,
        ) as fed:
            for _ in range(3):
                single_events = replay(fed, single_times)
    finally:
        for host in single_hosts:
            host.stop()
    single_s = min(single_times)

    # -- the federated fleet: two backend hosts -----------------------
    # Hosts persist across rounds (spawn cost excluded); the timed
    # region is exactly the replay, as in the single-host baseline.
    double_times = []
    double_hosts = _spawn_fleet(bench_embedded_classifier, 2)
    try:
        with FederatedGateway(
            [h.address for h in double_hosts],
            placement="round-robin", window=64, send_buffer=1 << 14,
        ) as fed:
            double_events = benchmark.pedantic(
                replay, args=(fed, double_times),
                rounds=3, warmup_rounds=1, iterations=1,
            )
            fleet_stats = fed.stats()
    finally:
        for host in double_hosts:
            host.stop()
    double_s = min(double_times)

    # One contract, any fleet size: bit-identical event sequences.
    assert _keyed(double_events) == _keyed(single_events)
    n_events = sum(len(events) for events in double_events.values())
    assert n_events > 250

    total_double = sum(double_times)
    per_host_eps = [
        host_stats["n_classified"] / total_double
        for host_stats in fleet_stats["per_host"]
    ]
    scaling = single_s / double_s
    benchmark.extra_info["n_sessions"] = len(streams)
    benchmark.extra_info["n_events"] = n_events
    benchmark.extra_info["hosts"] = fleet_stats["hosts"]
    benchmark.extra_info["single_host_events_per_s"] = n_events / single_s
    benchmark.extra_info["two_host_events_per_s"] = n_events / double_s
    benchmark.extra_info["per_host_events_per_s"] = per_host_eps
    benchmark.extra_info["scaling_vs_single_host"] = scaling
    benchmark.extra_info["cross_host_migrations"] = fleet_stats["migrations"]
    benchmark.extra_info["within_host_migrations"] = sum(
        host_stats["migrations"] for host_stats in fleet_stats["per_host"]
    )

    print("\n=== federation scale-out (1 vs 2 local hosts) ===")
    print(f"1 host : {n_events / single_s:10.0f} events/s")
    print(f"2 hosts: {n_events / double_s:10.0f} events/s "
          f"({scaling:.2f}x)")
    print("  per host: "
          + ", ".join(f"{eps:.0f}" for eps in per_host_eps)
          + " events/s (cumulative over timed rounds)")

    if os.environ.get("REPRO_BENCH_ASSERT_FEDERATION") == "1":
        # The acceptance gate of the federation tier, meaningful only
        # with >= 2 cores: adding the second host must buy >= 1.5x.
        assert scaling >= 1.5
