"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables and figures at a reduced (but
larger-than-test) scale so they complete in minutes.  The scale and GA
budget can be raised to the paper's full configuration via environment
variables:

``REPRO_BENCH_SCALE``
    Fraction of the Table-I set sizes (default 0.1; 1.0 = paper).
``REPRO_BENCH_GA_POP`` / ``REPRO_BENCH_GA_GEN``
    GA population / generations (defaults 8 / 5; paper: 20 / 30).

Each benchmark prints the regenerated table alongside the paper's
reported numbers and records both in ``benchmark.extra_info`` so the
JSON output carries the comparison.
"""

from __future__ import annotations

import os

import pytest

from repro.core.genetic import GeneticConfig

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
BENCH_GA = GeneticConfig(
    population_size=int(os.environ.get("REPRO_BENCH_GA_POP", "8")),
    generations=int(os.environ.get("REPRO_BENCH_GA_GEN", "5")),
)


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


@pytest.fixture(scope="session")
def bench_ga() -> GeneticConfig:
    return BENCH_GA


@pytest.fixture(scope="session")
def bench_datasets(bench_scale, bench_seed):
    from repro.experiments.datasets import make_beat_datasets

    return make_beat_datasets(scale=bench_scale, seed=bench_seed)


@pytest.fixture(scope="session")
def bench_embedded_datasets(bench_scale, bench_seed):
    from repro.experiments.datasets import make_embedded_datasets

    return make_embedded_datasets(scale=bench_scale, seed=bench_seed)


@pytest.fixture(scope="session")
def bench_pipeline(bench_datasets, bench_ga, bench_seed):
    """Float pipeline at 360 Hz, 8 coefficients."""
    from repro.core.pipeline import RPClassifierPipeline
    from repro.core.training import TrainingConfig

    config = TrainingConfig(n_coefficients=8, genetic=bench_ga, scg_iterations=100)
    return RPClassifierPipeline.train(
        bench_datasets.train1, bench_datasets.train2, 8, seed=bench_seed, config=config
    )


@pytest.fixture(scope="session")
def bench_embedded_pipeline(bench_embedded_datasets, bench_ga, bench_seed):
    """Float pipeline at the 90 Hz embedded configuration."""
    from repro.core.pipeline import RPClassifierPipeline
    from repro.core.training import TrainingConfig

    config = TrainingConfig(n_coefficients=8, genetic=bench_ga, scg_iterations=100)
    return RPClassifierPipeline.train(
        bench_embedded_datasets.train1,
        bench_embedded_datasets.train2,
        8,
        seed=bench_seed,
        config=config,
    )


@pytest.fixture(scope="session")
def bench_embedded_classifier(bench_embedded_pipeline, bench_embedded_datasets):
    from repro.fixedpoint.convert import convert_pipeline, tune_embedded_alpha

    classifier = convert_pipeline(bench_embedded_pipeline, shape="linear")
    return tune_embedded_alpha(classifier, bench_embedded_datasets.test, 0.97)
