"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1`` / ``table2`` / ``table3`` / ``figure4`` / ``figure5`` /
``energy``
    Regenerate one of the paper's artifacts and print it next to the
    paper's reported values.
``all``
    Run every artifact in sequence (the content of EXPERIMENTS.md).
``train``
    Train a classifier and save both its float and embedded forms.
``codegen``
    Emit the C header for a saved embedded classifier.
``loadgen``
    Closed-loop fleet load generator: replay a synthesized mixed
    fleet (morphology x noise x rate-skew) at a geometrically ramped
    offered rate and report the max sustained throughput with p50/p99
    event latency (:mod:`repro.serving.loadgen`).
``serve``
    Run many concurrently live session streams through the
    :class:`~repro.serving.gateway.StreamGateway` — or, with
    ``--workers N``, through a multi-process
    :class:`~repro.serving.sharded.ShardedGateway` pool — and report
    the fleet's throughput and batching statistics.  With
    ``--autoscale`` the pool is elastic: an
    :class:`~repro.serving.autoscale.Autoscaler` grows/shrinks it
    between ``--min-workers`` and ``--max-workers`` and an
    :class:`~repro.serving.autoscale.AutoBalancer` migrates sessions
    off hot workers, both ticked between ingest rounds.  With
    ``--listen HOST:PORT`` the gateway is instead exposed on a TCP
    socket speaking the zero-copy framed protocol
    (:mod:`repro.serving.net`).
``connect``
    Client side of ``serve --listen``: stream a synthesized fleet
    into a remote gateway over TCP via the pipelined
    :class:`~repro.serving.net.client.GatewayClient` and report the
    client-observed throughput and latency.  ``loadgen --connect``
    runs the closed-loop ramp against a remote gateway the same way —
    and accepts ``--connect`` repeatedly to drive several hosts
    through one :class:`~repro.serving.federation.FederatedGateway`
    front door.
``federate``
    Horizontal scale-out demo: spawn ``--hosts N`` local gateway host
    processes (:func:`~repro.serving.federation.spawn_host`), route a
    synthesized fleet through a
    :class:`~repro.serving.federation.FederatedGateway` with the
    across-host :class:`~repro.serving.autoscale.AutoBalancer` in the
    loop, and report aggregate throughput with the per-host breakdown
    and migration counts.

Common options: ``--scale`` (fraction of the Table-I set sizes;
``--full`` is shorthand for the paper's exact configuration, including
the 20 x 30 GA) and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.genetic import GeneticConfig
from repro.serving.executors import PLACEMENTS, WORKER_MODES


def _genetic(args) -> GeneticConfig:
    if args.full:
        return GeneticConfig()
    return GeneticConfig(population_size=args.ga_pop, generations=args.ga_gen)


def _scale(args) -> float:
    return 1.0 if args.full else args.scale


def _parse_hostport(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"error: expected HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"error: bad port in {value!r}") from None


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's dataset sizes")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--full", action="store_true",
                        help="paper configuration: scale 1.0, GA 20 x 30")
    parser.add_argument("--ga-pop", type=int, default=8)
    parser.add_argument("--ga-gen", type=int, default=5)


def cmd_table1(args) -> int:
    from repro.experiments.datasets import format_table1, table1_counts

    print(format_table1(table1_counts(scale=_scale(args), seed=args.seed)))
    print("\npaper (Table I):")
    from repro.ecg.mitbih import TABLE_I

    print(format_table1(TABLE_I))
    return 0


def cmd_table2(args) -> int:
    from repro.experiments.table2 import Table2Config, format_table2, run_table2

    config = Table2Config(
        scale=_scale(args), seed=args.seed, genetic=_genetic(args)
    )
    print(format_table2(run_table2(config)))
    print("\npaper (Table II): NDR-PC 93.74/95.16/93.05  "
          "NDR-WBSN 92.31/92.53/93.04  PCA-PC 93.66/95.78/89.75")
    return 0


def cmd_figure4(args) -> int:
    from repro.experiments.figure4 import format_figure4, run_figure4_errors

    print(format_figure4(run_figure4_errors()))
    return 0


def cmd_figure5(args) -> int:
    from repro.experiments.figure5 import (
        Figure5Config,
        figure5_summary,
        format_figure5,
        run_figure5,
    )

    config = Figure5Config(scale=_scale(args), seed=args.seed, genetic=_genetic(args))
    results = run_figure5(config)
    print(format_figure5(figure5_summary(results)))
    print("\npaper (Figure 5 at ARR 98.5%): gaussian ~87, linear ~87, triangular ~62")
    return 0


def cmd_table3(args) -> int:
    from repro.experiments.table3 import Table3Config, format_table3, run_table3

    config = Table3Config(scale=_scale(args), seed=args.seed, genetic=_genetic(args))
    print(format_table3(run_table3(config)))
    print("\npaper (Table III): 1.64/<0.01, 30.29/0.12, 46.39/0.83, 76.68/0.30")
    return 0


def cmd_energy(args) -> int:
    from repro.experiments.energy import format_energy, run_energy
    from repro.experiments.table3 import Table3Config

    config = Table3Config(scale=_scale(args), seed=args.seed, genetic=_genetic(args))
    print(format_energy(run_energy(config)))
    return 0


def cmd_multilead(args) -> int:
    from repro.experiments.multilead import (
        MultileadConfig,
        format_multilead,
        run_multilead,
    )

    config = MultileadConfig(scale=_scale(args), seed=args.seed, genetic=_genetic(args))
    print(format_multilead(run_multilead(config)))
    return 0


def cmd_noise(args) -> int:
    from repro.experiments.noise_robustness import (
        NoiseRobustnessConfig,
        format_noise_robustness,
        run_noise_robustness,
    )

    config = NoiseRobustnessConfig(
        scale=_scale(args), seed=args.seed, genetic=_genetic(args)
    )
    print(format_noise_robustness(run_noise_robustness(config)))
    return 0


def cmd_alpha(args) -> int:
    from repro.experiments.alpha_tuning import (
        AlphaTuningConfig,
        format_alpha_tuning,
        run_alpha_tuning,
    )

    config = AlphaTuningConfig(
        scale=_scale(args), seed=args.seed, genetic=_genetic(args)
    )
    print(format_alpha_tuning(run_alpha_tuning(config)))
    return 0


def cmd_simulate(args) -> int:
    from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
    from repro.experiments.table3 import Table3Config, build_embedded_classifier
    from repro.platform.node_sim import NodeSimulator

    config = Table3Config(scale=_scale(args), seed=args.seed, genetic=_genetic(args))
    classifier, _ = build_embedded_classifier(config)
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=args.seed)
    record = synth.synthesize(args.duration, name="cli-sim")
    trace = NodeSimulator(classifier).process_record(record)
    print(trace.summary())
    return 0


def cmd_serve(args) -> int:
    """Serve a fleet of live sessions through the session gateway."""
    import time

    import numpy as np

    from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
    from repro.experiments.table3 import Table3Config, build_embedded_classifier
    from repro.serving import (
        AutoBalancer,
        Autoscaler,
        ShardedGateway,
        StreamGateway,
        SupervisedGateway,
        open_journal,
        serve_autoscaled,
        serve_round_robin,
    )

    # Fail on bad serving knobs before the (slow) training, not after.
    if args.listen and args.autoscale:
        raise SystemExit("error: --listen does not support --autoscale yet")
    if args.autoscale:
        if not 1 <= args.min_workers <= args.max_workers:
            raise SystemExit("error: need 1 <= --min-workers <= --max-workers")
        if args.target_depth < 1:
            raise SystemExit("error: --target-depth must be >= 1")
    if args.placement is not None and not (args.autoscale or args.workers > 1):
        raise SystemExit(
            "error: --placement requires --autoscale or --workers > 1"
        )
    if args.snapshot_every < 1:
        raise SystemExit("error: --snapshot-every must be >= 1")
    if args.journal is None and args.journal_backend != "file":
        raise SystemExit("error: --journal-backend requires --journal")

    config = Table3Config(scale=_scale(args), seed=args.seed, genetic=_genetic(args))
    print("Training + quantizing the shared classifier ...")
    classifier, _ = build_embedded_classifier(config)

    if args.listen:
        return _serve_listen(args, classifier)

    print(f"Synthesizing {args.sessions} live session streams ...")
    rng = np.random.default_rng(args.seed)
    records = []
    for i in range(args.sessions):
        pvc = float(rng.uniform(0.05, 0.3))
        mix = {"N": 1.0 - pvc - 0.05, "V": pvc, "L": 0.05}
        records.append(
            RecordSynthesizer(SynthesisConfig(n_leads=3), seed=args.seed + i).synthesize(
                args.duration, class_mix=mix, name=f"session-{i}"
            )
        )
    fs = records[0].fs
    chunk = max(1, int(round(args.chunk_ms * 1e-3 * fs)))
    gateway_kwargs = dict(
        n_leads=3,
        max_batch=args.max_batch,
        max_latency_ticks=args.max_latency_ticks,
    )
    if args.analytics:
        from repro.serving import default_pipeline

        # The factory (not an instance) ships to process workers, so
        # every session builds its own operator set worker-side.
        gateway_kwargs["analytics"] = default_pipeline

    from contextlib import nullcontext

    autoscaled = args.autoscale
    sharded = autoscaled or args.workers > 1
    # Mode-aware default: least-loaded suits an elastic pool (new
    # workers fill immediately), hash keeps the static pool's stable
    # assignment.  An explicit --placement wins in either sharded mode.
    placement = args.placement or ("least-loaded" if autoscaled else "hash")
    journal = None
    if args.journal is not None:
        journal = open_journal(
            args.journal, args.journal_backend,
            snapshot_every=args.snapshot_every,
        )
    # A supervisor only helps where workers can die independently.
    supervised = journal is not None and sharded and args.worker_mode == "process"
    if autoscaled:
        tier = (
            f"elastic pool {args.min_workers}..{args.max_workers} workers, "
            f"{placement} placement"
        )
    elif sharded:
        tier = f"{args.workers} {args.worker_mode} workers, {placement} placement"
    else:
        tier = "single process"
    if journal is not None:
        tier += (
            f", {args.journal_backend}-journaled"
            + (" + supervised" if supervised else "")
        )
    print(
        f"Ingesting round-robin ({tier}, {args.chunk_ms:.0f} ms chunks, "
        f"max_batch={args.max_batch}, max_latency_ticks={args.max_latency_ticks}) ..."
    )
    if sharded:
        pool_kwargs = dict(
            workers=args.min_workers if autoscaled else args.workers,
            placement=placement, worker_mode=args.worker_mode,
            **gateway_kwargs,
        )
        if supervised:
            context = SupervisedGateway(
                classifier, fs, journal=journal, **pool_kwargs
            )
        else:
            context = ShardedGateway(
                classifier, fs, journal=journal, **pool_kwargs
            )
    else:
        context = nullcontext(
            StreamGateway(classifier, fs, journal=journal, **gateway_kwargs)
        )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    with context as gateway:
        if profiler is not None:
            profiler.enable()
        start = time.perf_counter()
        if autoscaled:
            autoscaler = Autoscaler(
                gateway,
                target_depth=args.target_depth,
                min_workers=args.min_workers,
                max_workers=args.max_workers,
            )
            balancer = AutoBalancer(gateway)
            events = serve_autoscaled(
                gateway,
                {record.name: record.signal for record in records},
                chunk,
                autoscaler=autoscaler,
                balancer=balancer,
            )
        else:
            events = serve_round_robin(
                gateway, {record.name: record.signal for record in records}, chunk
            )
        elapsed = time.perf_counter() - start
        if profiler is not None:
            profiler.disable()
        if sharded:
            stats = gateway.stats()
            n_classified, n_flushes = stats["n_classified"], stats["n_flushes"]
            if autoscaled:
                # stats() has current-pool semantics: retired workers
                # take their flush/classified counters with them, so
                # the batching figures below describe the final pool.
                print(
                    f"  autoscaler: {stats['workers']} workers at end, "
                    f"{stats['scale_events']} scale events "
                    f"({autoscaler.n_scale_ups} up / {autoscaler.n_scale_downs} down), "
                    f"{stats['migrations']} session migrations; "
                    f"batching stats cover the final pool"
                )
            if supervised:
                print(
                    f"  journal: {args.journal_backend} store at "
                    f"{args.journal}, snapshot every {args.snapshot_every} "
                    f"chunks; {stats['respawns']} worker respawns, "
                    f"{stats['sessions_recovered']} sessions recovered"
                )
        else:
            n_classified, n_flushes = gateway.n_classified, gateway.n_flushes
        rollup = gateway.stats().get("analytics") if args.analytics else None
        summaries = dict(gateway.take_summaries()) if args.analytics else {}

    for record in records:
        session = events[record.name]
        flagged = sum(1 for e in session if e.flagged)
        line = f"  {record.name}: {len(session)} beats, {flagged} flagged abnormal"
        summary = summaries.get(record.name)
        if summary is not None:
            rr = summary["operators"].get("rr", {})
            hr = rr.get("mean_hr_bpm")
            line += (
                f"; HR {hr:.0f} bpm" if hr is not None else ""
            ) + f", {summary['n_episodes']} episode(s)"
        print(line)
    total = sum(len(session) for session in events.values())
    signal_s = sum(r.n_samples for r in records) / fs
    print(
        f"served {total} beats from {signal_s:.0f} s of live signal in "
        f"{elapsed * 1e3:.0f} ms ({total / elapsed:.0f} events/s, "
        f"{signal_s / elapsed:.0f}x realtime); "
        f"{n_classified} beats classified in {n_flushes} batched "
        f"passes ({n_classified / max(1, n_flushes):.1f} beats/pass)"
    )
    if rollup is not None:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(rollup["by_kind"].items())
        ) or "none"
        print(
            f"analytics: {rollup['beats']} beats folded across "
            f"{rollup['sessions']} session(s), {rollup['episodes']} "
            f"episode(s) ({kinds}), {rollup['alerts']} alert(s)"
        )
    if profiler is not None:
        import pstats

        print(
            f"\n--profile: top {args.profile_top} functions by cumulative "
            "time (serve loop only; training excluded)"
        )
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.profile_top)
    return 0


def _serve_listen(args, classifier) -> int:
    """Expose the gateway on a TCP socket (``repro serve --listen``)."""
    import asyncio
    from contextlib import nullcontext

    from repro.serving import (
        ShardedGateway,
        StreamGateway,
        SupervisedGateway,
        open_journal,
        recover_sessions,
    )
    from repro.serving.net import GatewayServer

    host, port = _parse_hostport(args.listen)
    fs = 360.0
    # One-lead sessions: the wire fleet (`repro connect` / `repro
    # loadgen --connect`) streams the synthesize_fleet shape.
    gateway_kwargs = dict(
        n_leads=1,
        max_batch=args.max_batch,
        max_latency_ticks=args.max_latency_ticks,
    )
    if args.analytics:
        from repro.serving import default_pipeline

        gateway_kwargs["analytics"] = default_pipeline
    journal = None
    if args.journal is not None:
        journal = open_journal(
            args.journal, args.journal_backend,
            snapshot_every=args.snapshot_every,
        )
    supervised = (
        journal is not None and args.workers > 1
        and args.worker_mode == "process"
    )
    if args.workers > 1:
        pool_kwargs = dict(
            workers=args.workers,
            placement=args.placement or "hash",
            worker_mode=args.worker_mode, **gateway_kwargs,
        )
        if supervised:
            context = SupervisedGateway(
                classifier, fs, journal=journal, **pool_kwargs
            )
        else:
            context = ShardedGateway(
                classifier, fs, journal=journal, **pool_kwargs
            )
        tier = f"{args.workers} {args.worker_mode} workers"
    else:
        context = nullcontext(
            StreamGateway(classifier, fs, journal=journal, **gateway_kwargs)
        )
        tier = "single process"
    if journal is not None:
        tier += (
            f", {args.journal_backend}-journaled"
            + (" + supervised" if supervised else "")
        )

    async def _run(gateway) -> None:
        server = GatewayServer(gateway, host=host, port=port)
        await server.start()
        print(
            f"serving on {server.host}:{server.port} ({tier}, fs={fs:.0f} Hz, "
            "1-lead sessions; Ctrl-C to stop)",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    with context as gateway:
        if journal is not None:
            # Restart recovery: rebuild any sessions journaled by a
            # previous process before accepting connections.
            if supervised:
                recovered = gateway.check_workers()
            else:
                recovered = len(recover_sessions(journal, gateway))
            if recovered:
                print(
                    f"recovered {recovered} journaled session(s) "
                    "from a previous run",
                    flush=True,
                )
        try:
            asyncio.run(_run(gateway))
        except KeyboardInterrupt:
            print("stopped")
    return 0


def cmd_connect(args) -> int:
    """Stream a synthesized fleet into a remote ``repro serve --listen``."""
    from repro.serving import replay_fleet, synthesize_fleet
    from repro.serving.net import GatewayClient

    host, port = _parse_hostport(args.connect)
    fs = 360.0
    print(
        f"Synthesizing a {args.sessions}-session fleet "
        f"({args.duration:.0f} s each, mixed morphology/noise/rate) ..."
    )
    streams, nominal_eps = synthesize_fleet(
        args.sessions, args.duration, fs=fs, seed=args.seed
    )
    chunk = max(1, int(round(args.chunk_ms * 1e-3 * fs)))
    print(f"Connecting to {host}:{port} (window {args.window}) ...")
    client = GatewayClient(host, port, window=args.window).connect()
    try:
        report = replay_fleet(
            client,
            streams,
            fs=fs,
            chunk=chunk,
            target_eps=args.target_eps,
            nominal_eps=nominal_eps if args.target_eps is not None else None,
            collect_analytics=args.analytics,
        )
    finally:
        client.close()
    pacing = (
        "unpaced" if args.target_eps is None
        else f"paced at {args.target_eps:.0f} events/s"
    )
    print(
        f"streamed {report.n_events} events over the socket ({pacing}): "
        f"{report.achieved_eps:.0f} events/s achieved, "
        f"p50 {report.p50_ms:.1f} ms / p99 {report.p99_ms:.1f} ms, "
        f"{'sustained' if report.sustained else 'UNSUSTAINED'}"
    )
    if args.analytics:
        rollup = report.analytics
        if rollup is None:
            print("analytics: server reported no rollup (serve without "
                  "--analytics?)")
        else:
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(rollup["by_kind"].items())
            ) or "none"
            print(
                f"analytics (server-side): {rollup['beats']} beats across "
                f"{rollup['sessions']} session(s), {rollup['episodes']} "
                f"episode(s) ({kinds}), {rollup['alerts']} alert(s)"
            )
    return 0


def cmd_loadgen(args) -> int:
    """Find the max sustained fleet throughput via a closed-loop ramp."""
    from repro.experiments.table3 import Table3Config, build_embedded_classifier
    from repro.serving import (
        ShardedGateway,
        StreamGateway,
        find_max_sustained,
        synthesize_fleet,
    )

    if args.workers < 1:
        raise SystemExit("error: --workers must be >= 1")
    if args.connect and args.workers > 1:
        raise SystemExit(
            "error: --connect drives a remote server; sharding is the "
            "server's choice (repro serve --listen --workers N)"
        )

    if args.connect:
        # The remote servers own the classifier; nothing to train here.
        endpoints = [_parse_hostport(spec) for spec in args.connect]
        classifier = None
    else:
        config = Table3Config(
            scale=_scale(args), seed=args.seed, genetic=_genetic(args)
        )
        print("Training + quantizing the shared classifier ...")
        classifier, _ = build_embedded_classifier(config)

    fs = 360.0
    print(
        f"Synthesizing a {args.sessions}-session fleet "
        f"({args.duration:.0f} s each, mixed morphology/noise/rate) ..."
    )
    streams, nominal_eps = synthesize_fleet(
        args.sessions, args.duration, fs=fs, seed=args.seed
    )
    chunk = max(1, int(round(args.chunk_ms * 1e-3 * fs)))
    gateway_kwargs = dict(
        n_leads=1,
        max_batch=args.max_batch,
        max_latency_ticks=args.max_latency_ticks,
    )

    def make_target():
        if args.connect:
            from repro.serving.net import GatewayClient

            if len(endpoints) > 1:
                from repro.serving.federation import FederatedGateway

                return FederatedGateway(endpoints, window=args.window)
            return GatewayClient(
                endpoints[0][0], endpoints[0][1], window=args.window
            ).connect()
        if args.workers > 1:
            return ShardedGateway(
                classifier, fs, workers=args.workers,
                worker_mode=args.worker_mode, **gateway_kwargs,
            )
        return StreamGateway(classifier, fs, **gateway_kwargs)

    if args.connect and len(endpoints) > 1:
        tier = f"federated over {len(endpoints)} hosts (window {args.window})"
    elif args.connect:
        tier = f"remote {args.connect[0]} (window {args.window})"
    elif args.workers > 1:
        tier = f"{args.workers} {args.worker_mode} workers"
    else:
        tier = "single process"
    print(
        f"Ramping offered load ({tier}, nominal fleet rate "
        f"{nominal_eps:.1f} events/s, growth x{args.growth:.2f}, "
        f"up to {args.steps} steps) ..."
    )
    best, reports = find_max_sustained(
        make_target,
        streams,
        fs=fs,
        chunk=chunk,
        nominal_eps=nominal_eps,
        start_eps=args.start_eps,
        growth=args.growth,
        max_steps=args.steps,
    )
    header = (
        f"  {'target':>10} {'offered':>10} {'achieved':>10} "
        f"{'p50':>9} {'p99':>9}  status"
    )
    print(header)
    for report in reports:
        status = "sustained" if report.sustained else "UNSUSTAINED"
        print(
            f"  {report.target_eps:>8.1f}/s {report.offered_eps:>8.1f}/s "
            f"{report.achieved_eps:>8.1f}/s {report.p50_ms:>6.1f} ms "
            f"{report.p99_ms:>6.1f} ms  {status}"
        )
    if best is None:
        print("no sustained operating point found; lower --start-eps")
        return 1
    print(
        f"max sustained: {best.achieved_eps:.0f} events/s "
        f"({best.achieved_eps / nominal_eps:.1f}x the nominal fleet rate) "
        f"at p50 {best.p50_ms:.1f} ms / p99 {best.p99_ms:.1f} ms over "
        f"{best.n_events} events"
    )
    return 0


def cmd_federate(args) -> int:
    """Scale-out demo: a FederatedGateway over N local host processes."""
    from repro.experiments.table3 import Table3Config, build_embedded_classifier
    from repro.serving import (
        AutoBalancer,
        FederatedGateway,
        replay_fleet,
        spawn_host,
        synthesize_fleet,
    )

    if args.hosts < 1:
        raise SystemExit("error: --hosts must be >= 1")
    if args.workers < 1:
        raise SystemExit("error: --workers must be >= 1")

    config = Table3Config(
        scale=_scale(args), seed=args.seed, genetic=_genetic(args)
    )
    print("Training + quantizing the shared classifier ...")
    classifier, _ = build_embedded_classifier(config)

    fs = 360.0
    chunk = max(1, int(round(args.chunk_ms * 1e-3 * fs)))
    gateway_kwargs = dict(
        n_leads=1,
        max_batch=args.max_batch,
        max_latency_ticks=args.max_latency_ticks,
    )
    if args.workers == 1:
        # Single-gateway hosts coalesce tiny wire chunks before the
        # front-end kernels (the sharded tier has its own batching).
        gateway_kwargs["coalesce"] = max(1, int(0.5 * fs))
    print(f"Spawning {args.hosts} local gateway host process(es) ...")
    hosts = [
        spawn_host(
            classifier, fs,
            workers=args.workers,
            worker_mode=args.worker_mode,
            balance_every=64 if args.workers > 1 else None,
            gateway_kwargs=gateway_kwargs,
        )
        for _ in range(args.hosts)
    ]
    try:
        streams, nominal_eps = synthesize_fleet(
            args.sessions, args.duration, fs=fs, seed=args.seed
        )
        with FederatedGateway(
            [h.address for h in hosts],
            placement=args.placement or "least-loaded",
            window=args.window,
            send_buffer=1 << 14,
        ) as fed:
            balancer = AutoBalancer(fed)
            print(
                f"Replaying {len(streams)} sessions across {fed.hosts} "
                f"host(s) (chunk {args.chunk_ms:.0f} ms, window "
                f"{args.window}, across-host balancer in the loop) ..."
            )
            report = replay_fleet(
                fed, streams, fs=fs, chunk=chunk, on_round=balancer.tick
            )
            stats = fed.stats()
            migrations = fed.n_migrations
    finally:
        for host in hosts:
            host.stop()
    print(
        f"aggregate: {report.n_events} events at "
        f"{report.achieved_eps:.0f} events/s "
        f"({report.achieved_eps / nominal_eps:.1f}x the nominal fleet "
        f"rate), p50 {report.p50_ms:.1f} ms / p99 {report.p99_ms:.1f} ms"
    )
    for index, host_stats in enumerate(stats["per_host"]):
        print(
            f"  host {index}: {host_stats['n_flushes']} flushes, "
            f"{host_stats['n_classified']} beats classified"
        )
    print(f"cross-host migrations: {migrations}")
    return 0


def cmd_subjects(args) -> int:
    from repro.experiments.cross_subject import (
        CrossSubjectConfig,
        format_cross_subject,
        run_cross_subject,
    )

    config = CrossSubjectConfig(seed=args.seed, genetic=_genetic(args))
    print(format_cross_subject(run_cross_subject(config)))
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report import ReportConfig, generate_report

    config = ReportConfig(scale=_scale(args), seed=args.seed, genetic=_genetic(args))
    path = generate_report(args.output_dir, config)
    print(f"wrote {path} (+ CSV sweeps alongside)")
    return 0


def cmd_all(args) -> int:
    for title, command in (
        ("Table I", cmd_table1),
        ("Table II", cmd_table2),
        ("Figure 4", cmd_figure4),
        ("Figure 5", cmd_figure5),
        ("Table III", cmd_table3),
        ("Section IV-E energy", cmd_energy),
        ("Extension: multi-lead", cmd_multilead),
        ("Extension: noise stress", cmd_noise),
        ("Extension: alpha decoupling", cmd_alpha),
    ):
        print(f"\n===== {title} =====")
        command(args)
    return 0


def cmd_train(args) -> int:
    from repro.core.pipeline import RPClassifierPipeline
    from repro.core.training import TrainingConfig
    from repro.experiments.datasets import make_embedded_datasets
    from repro.fixedpoint.convert import convert_pipeline, tune_embedded_alpha
    from repro.io import save_embedded, save_pipeline

    data = make_embedded_datasets(scale=_scale(args), seed=args.seed)
    config = TrainingConfig(
        n_coefficients=args.coefficients, genetic=_genetic(args)
    )
    pipeline = RPClassifierPipeline.train(
        data.train1, data.train2, args.coefficients, seed=args.seed, config=config
    )
    report = pipeline.tuned_for(data.test, 0.97).evaluate(data.test)
    print(f"float:    {report.summary()}")
    classifier = tune_embedded_alpha(
        convert_pipeline(pipeline, shape="linear"), data.test, 0.97
    )
    print(f"embedded: {classifier.evaluate(data.test).summary()}")
    save_pipeline(pipeline, args.output + ".pipeline.npz")
    save_embedded(classifier, args.output + ".embedded.npz")
    print(f"saved {args.output}.pipeline.npz and {args.output}.embedded.npz")
    return 0


def cmd_codegen(args) -> int:
    from repro.fixedpoint.codegen import generate_c_header
    from repro.io import load_embedded

    classifier = load_embedded(args.model)
    header = generate_c_header(classifier, name=args.name)
    if args.output == "-":
        sys.stdout.write(header)
    else:
        with open(args.output, "w") as handle:
            handle.write(header)
        print(f"wrote {args.output} ({len(header)} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Embedded Classification of Heartbeats "
        "Using Random Projections' (DATE 2013)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, fn, help_text in (
        ("table1", cmd_table1, "dataset composition (Table I)"),
        ("table2", cmd_table2, "NDR vs coefficient count (Table II)"),
        ("figure4", cmd_figure4, "MF linearization error (Figure 4)"),
        ("figure5", cmd_figure5, "NDR/ARR Pareto fronts (Figure 5)"),
        ("table3", cmd_table3, "code size and duty cycle (Table III)"),
        ("energy", cmd_energy, "energy savings (Section IV-E)"),
        ("multilead", cmd_multilead, "extension: multi-lead RP classification"),
        ("noise", cmd_noise, "extension: noise-stress robustness"),
        ("alpha", cmd_alpha, "extension: alpha_train/alpha_test decoupling"),
        ("subjects", cmd_subjects, "extension: intra- vs inter-patient protocol"),
        ("all", cmd_all, "run every artifact"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common(sub)
        sub.set_defaults(fn=fn)

    simulate = subparsers.add_parser(
        "simulate", help="event-driven node simulation on a synthetic record"
    )
    _add_common(simulate)
    simulate.add_argument("--duration", type=float, default=60.0,
                          help="record length in seconds")
    simulate.set_defaults(fn=cmd_simulate)

    serve = subparsers.add_parser(
        "serve",
        help="session gateway: live multi-session streams, batched classification",
    )
    _add_common(serve)
    serve.add_argument("--sessions", type=int, default=6,
                       help="number of concurrently live streams")
    serve.add_argument("--duration", type=float, default=30.0,
                       help="per-session stream length in seconds")
    serve.add_argument("--chunk-ms", type=float, default=250.0,
                       help="ingest chunk size in milliseconds")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="flush the cross-session batch at this many beats")
    serve.add_argument("--max-latency-ticks", type=int, default=8,
                       help="flush when the oldest beat waited this many ingests")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes; > 1 shards the sessions "
                            "across a ShardedGateway pool")
    serve.add_argument("--autoscale", action="store_true",
                       help="elastic pool: an Autoscaler grows/shrinks the "
                            "workers and an AutoBalancer migrates sessions "
                            "off hot workers between ingest rounds")
    serve.add_argument("--min-workers", type=int, default=1,
                       help="lower pool bound for --autoscale (also the "
                            "starting size)")
    serve.add_argument("--max-workers", type=int, default=4,
                       help="upper pool bound for --autoscale")
    serve.add_argument("--target-depth", type=int, default=4,
                       help="autoscaler target load (sessions + queued beats) "
                            "per worker")
    serve.add_argument("--placement", default=None, choices=PLACEMENTS,
                       help="session placement policy for sharded pools "
                            "(default: least-loaded with --autoscale, "
                            "hash with --workers N)")
    serve.add_argument("--worker-mode", default="process", choices=WORKER_MODES,
                       help="sharded worker execution: separate processes, or "
                            "inline in-process workers sharing one batch")
    serve.add_argument("--journal", default=None, metavar="DIR",
                       help="write-ahead session journal directory: chunks "
                            "are journaled before processing, snapshots taken "
                            "on a cadence, and (with --workers N process "
                            "mode) a supervisor respawns crashed workers and "
                            "recovers their sessions bit-exactly")
    serve.add_argument("--journal-backend", default="file",
                       choices=("file", "sqlite"),
                       help="journal persistence: file-per-session logs or a "
                            "single sqlite database under the --journal dir")
    serve.add_argument("--snapshot-every", type=int, default=64,
                       help="journal snapshot cadence in accepted chunks per "
                            "session (bounds recovery replay length)")
    serve.add_argument("--analytics", action="store_true",
                       help="attach the default streaming-analytics pipeline "
                            "(RR stats, HRV, rate/arrhythmia episodes) to "
                            "every session and print the fleet rollup")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="expose the gateway on a TCP socket (zero-copy "
                            "framed protocol) instead of replaying a local "
                            "fleet; clients attach with 'repro connect' or "
                            "'repro loadgen --connect'")
    serve.add_argument("--profile", action="store_true",
                       help="cProfile the serve loop (training excluded) and "
                            "print the hottest functions on exit")
    serve.add_argument("--profile-top", type=int, default=15,
                       help="rows to print from the --profile stats")
    serve.set_defaults(fn=cmd_serve)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="closed-loop load generator: ramp a synthetic fleet to its "
             "max sustained events/s with p50/p99 latency",
    )
    _add_common(loadgen)
    loadgen.add_argument("--sessions", type=int, default=6,
                         help="fleet size (morphology/noise/rate mixed)")
    loadgen.add_argument("--duration", type=float, default=30.0,
                         help="per-session stream length in seconds")
    loadgen.add_argument("--chunk-ms", type=float, default=250.0,
                         help="ingest chunk size in milliseconds")
    loadgen.add_argument("--max-batch", type=int, default=64,
                         help="flush the cross-session batch at this many beats")
    loadgen.add_argument("--max-latency-ticks", type=int, default=8,
                         help="flush when the oldest beat waited this many ingests")
    loadgen.add_argument("--workers", type=int, default=1,
                         help="worker count; > 1 shards across a ShardedGateway")
    loadgen.add_argument("--worker-mode", default="process", choices=WORKER_MODES,
                         help="sharded worker execution mode")
    loadgen.add_argument("--start-eps", type=float, default=None,
                         help="first ramp step's offered events/s "
                              "(default: the fleet's nominal rate)")
    loadgen.add_argument("--growth", type=float, default=1.4,
                         help="offered-rate multiplier between ramp steps")
    loadgen.add_argument("--steps", type=int, default=6,
                         help="max ramp steps")
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         action="append",
                         help="drive a remote 'repro serve --listen' gateway "
                              "over TCP instead of an in-process one (skips "
                              "local training); repeat the flag to federate "
                              "across several hosts through one front door")
    loadgen.add_argument("--window", type=int, default=8,
                         help="client pipelining depth for --connect")
    loadgen.set_defaults(fn=cmd_loadgen)

    federate = subparsers.add_parser(
        "federate",
        help="horizontal scale-out demo: N local gateway host processes "
             "behind a FederatedGateway front door",
    )
    _add_common(federate)
    federate.add_argument("--hosts", type=int, default=2,
                          help="local gateway host processes to spawn")
    federate.add_argument("--sessions", type=int, default=8,
                          help="fleet size (morphology/noise/rate mixed)")
    federate.add_argument("--duration", type=float, default=30.0,
                          help="per-session stream length in seconds")
    federate.add_argument("--chunk-ms", type=float, default=100.0,
                          help="ingest chunk size in milliseconds")
    federate.add_argument("--max-batch", type=int, default=64,
                          help="flush the cross-session batch at this many beats")
    federate.add_argument("--max-latency-ticks", type=int, default=8,
                          help="flush when the oldest beat waited this many ingests")
    federate.add_argument("--workers", type=int, default=1,
                          help="workers per host; > 1 runs a ShardedGateway "
                               "with a within-host balancer on each host")
    federate.add_argument("--worker-mode", default="inline", choices=WORKER_MODES,
                          help="per-host sharded worker execution mode")
    federate.add_argument("--placement", default=None, choices=PLACEMENTS,
                          help="cross-host session placement policy "
                               "(default: least-loaded)")
    federate.add_argument("--window", type=int, default=32,
                          help="per-host client pipelining depth")
    federate.set_defaults(fn=cmd_federate)

    connect = subparsers.add_parser(
        "connect",
        help="stream a synthesized fleet into a remote 'repro serve --listen' "
             "gateway and report client-observed throughput/latency",
    )
    connect.add_argument("connect", metavar="HOST:PORT",
                         help="address of the remote gateway")
    connect.add_argument("--sessions", type=int, default=6,
                         help="fleet size (morphology/noise/rate mixed)")
    connect.add_argument("--duration", type=float, default=30.0,
                         help="per-session stream length in seconds")
    connect.add_argument("--chunk-ms", type=float, default=250.0,
                         help="ingest chunk size in milliseconds")
    connect.add_argument("--window", type=int, default=8,
                         help="chunks in flight per session (pipelining)")
    connect.add_argument("--target-eps", type=float, default=None,
                         help="pace the replay at this offered events/s "
                              "(default: unpaced, as fast as accepted)")
    connect.add_argument("--analytics", action="store_true",
                         help="fetch and print the server-side streaming-"
                              "analytics rollup after the replay (pair with "
                              "'repro serve --listen --analytics')")
    connect.add_argument("--seed", type=int, default=7)
    connect.set_defaults(fn=cmd_connect)

    report = subparsers.add_parser(
        "report", help="write report.md + CSV sweeps for every artifact"
    )
    _add_common(report)
    report.add_argument("--output-dir", default="report",
                        help="directory for report.md and the CSVs")
    report.set_defaults(fn=cmd_report)

    train = subparsers.add_parser("train", help="train and save a classifier")
    _add_common(train)
    train.add_argument("--coefficients", type=int, default=8)
    train.add_argument("--output", default="rp_classifier",
                       help="output path prefix for the saved models")
    train.set_defaults(fn=cmd_train)

    codegen = subparsers.add_parser("codegen", help="emit a C header for a saved model")
    codegen.add_argument("model", help="path to a saved .embedded.npz model")
    codegen.add_argument("--output", default="-", help="header path ('-' = stdout)")
    codegen.add_argument("--name", default="rp_classifier")
    codegen.set_defaults(fn=cmd_codegen)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
