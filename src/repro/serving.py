"""Batched multi-record / multi-stream serving layer.

The per-record APIs (:meth:`repro.platform.node_sim.NodeSimulator.process_record`,
the :mod:`repro.dsp.streaming` classes) model one WBSN node.  A
gateway — or the roadmap's heavy-traffic scenario — serves *many*
nodes at once; this module is the building block for that workload:

* :func:`simulate_records` replays a whole batch of records through a
  :class:`~repro.platform.node_sim.NodeSimulator` and aggregates the
  per-record traces into a :class:`FleetTrace` (fleet-level duty
  cycle, radio traffic, worst-case real-time margin);
* :func:`classify_streams` runs the incremental front end
  (:class:`~repro.dsp.streaming.BlockFilter` +
  :class:`~repro.dsp.streaming.StreamingPeakDetector`) over many
  streams, then classifies the beats of *all* streams in a single
  batched call — one projection and one fuzzification pass instead of
  one per stream, which is where the vectorized classifier earns its
  keep under load.

Both entry points accept plain lists, so callers can shard/queue above
them without this module taking a position on the transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.defuzz import is_abnormal
from repro.dsp.streaming import BlockFilter, StreamingPeakDetector
from repro.ecg.resample import decimate_beats
from repro.ecg.segmentation import BeatWindow, segment_beats
from repro.platform.node_sim import NodeSimulator, NodeTrace


@dataclass
class FleetTrace:
    """Aggregate outcome of simulating a batch of records.

    Wraps the per-record :class:`~repro.platform.node_sim.NodeTrace`
    objects and exposes the fleet-level numbers a gateway dashboard
    would plot.
    """

    traces: list[NodeTrace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def n_beats(self) -> int:
        """Beats processed across the fleet."""
        return sum(len(t) for t in self.traces)

    @property
    def n_flagged(self) -> int:
        """Beats that activated the delineator, fleet-wide."""
        return sum(t.n_flagged for t in self.traces)

    @property
    def activation_rate(self) -> float:
        """Fraction of beats flagged abnormal across all records."""
        beats = self.n_beats
        return self.n_flagged / beats if beats else 0.0

    @property
    def total_tx_bytes(self) -> int:
        """Radio bytes queued by every node."""
        return sum(t.total_tx_bytes for t in self.traces)

    @property
    def deadline_misses(self) -> int:
        """Beats that exceeded their inter-beat budget, fleet-wide."""
        return sum(t.deadline_misses for t in self.traces)

    @property
    def worst_case_utilization(self) -> float:
        """Worst per-beat load over budget across every node."""
        if not self.traces:
            return 0.0
        return max(t.worst_case_utilization for t in self.traces)

    @property
    def mean_duty_cycle(self) -> float:
        """Average of the per-record duty cycles."""
        if not self.traces:
            return 0.0
        return float(np.mean([t.duty_cycle for t in self.traces]))

    def summary(self) -> str:
        """One-paragraph fleet report."""
        return (
            f"{len(self.traces)} records, {self.n_beats} beats: "
            f"mean duty={self.mean_duty_cycle:.3f}, "
            f"activation={100 * self.activation_rate:.1f}%, "
            f"tx={self.total_tx_bytes} B, worst-case load="
            f"{100 * self.worst_case_utilization:.1f}% of a beat budget, "
            f"{self.deadline_misses} deadline misses"
        )


def simulate_records(
    simulator: NodeSimulator, records, lead: int = 0
) -> FleetTrace:
    """Replay a batch of records; return the aggregate fleet trace.

    Parameters
    ----------
    simulator:
        The node model every record is replayed through.
    records:
        Iterable of :class:`repro.ecg.database.Record`.
    lead:
        Classification lead index (same for every record).
    """
    return FleetTrace([simulator.process_record(r, lead=lead) for r in records])


@dataclass(frozen=True)
class StreamResult:
    """Per-stream outcome of :func:`classify_streams`."""

    peaks: np.ndarray
    labels: np.ndarray

    @property
    def abnormal(self) -> np.ndarray:
        """Boolean mask of beats flagged abnormal."""
        return is_abnormal(self.labels)

    @property
    def n_beats(self) -> int:
        return int(self.labels.size)


def classify_streams(
    classifier,
    streams,
    fs: float,
    block_s: float = 0.5,
    decimation: int = 4,
    window: BeatWindow | None = None,
    config=None,
) -> list[StreamResult]:
    """Run the streaming front end over many streams, classify in one batch.

    Each stream goes through its own :class:`BlockFilter` and
    :class:`StreamingPeakDetector` (both incremental, both carrying
    state across blocks), beats are segmented per stream, and the
    classifier then sees **one** concatenated beat matrix — a single
    projection + fuzzification pass for the whole fleet.

    Parameters
    ----------
    classifier:
        Anything with ``predict(beats)`` — the float
        :class:`~repro.core.pipeline.RPClassifierPipeline` or the
        integer :class:`~repro.fixedpoint.convert.EmbeddedClassifier`.
    streams:
        Iterable of 1-D sample arrays, all at ``fs``.
    fs:
        Sampling frequency in Hz.
    block_s:
        ADC block size in seconds fed to the front end.
    decimation:
        Beat decimation factor before classification (paper: 4).
    window:
        Segmentation window (paper default 100 + 100).
    config:
        Optional :class:`~repro.dsp.peak_detection.PeakDetectorConfig`.

    Returns
    -------
    list[StreamResult]
        One entry per input stream, in order.
    """
    if fs <= 0:
        raise ValueError("sampling frequency must be positive")
    block = max(1, int(round(block_s * fs)))
    window = window or BeatWindow(100, 100)

    per_stream_peaks: list[np.ndarray] = []
    per_stream_beats: list[np.ndarray] = []
    for stream in streams:
        x = np.asarray(stream, dtype=float)
        if x.ndim != 1:
            raise ValueError("streams must be 1-D sample arrays")
        block_filter = BlockFilter(fs)
        detector = StreamingPeakDetector(fs, config=config)
        filtered_parts: list[np.ndarray] = []
        for i in range(0, x.size, block):
            out = block_filter.push(x[i : i + block])
            if out.size:
                filtered_parts.append(out)
                detector.push(out)
        tail = block_filter.flush()
        if tail.size:
            filtered_parts.append(tail)
            detector.push(tail)
        detector.flush()
        filtered = (
            np.concatenate(filtered_parts) if filtered_parts else np.empty(0)
        )
        beats, kept = segment_beats(filtered, detector.peaks, window)
        per_stream_peaks.append(detector.peaks[kept])
        per_stream_beats.append(beats)

    # One classification pass for the whole fleet.
    counts = [b.shape[0] for b in per_stream_beats]
    total = sum(counts)
    if total:
        stacked = np.vstack([b for b in per_stream_beats if b.shape[0]])
        stacked_ds, _ = decimate_beats(stacked, window, decimation)
        labels = np.asarray(classifier.predict(stacked_ds))
    else:
        labels = np.empty(0, dtype=np.int64)

    results: list[StreamResult] = []
    start = 0
    for peaks, count in zip(per_stream_peaks, counts):
        results.append(StreamResult(peaks=peaks, labels=labels[start : start + count]))
        start += count
    return results
