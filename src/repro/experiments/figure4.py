"""Figure 4: linear / triangular approximations of the Gaussian MF.

The paper's figure plots the original Gaussian, the proposed 4-segment
linear approximation and the simpler triangular interpolation on the
``[-4.7 sigma, 0]`` range.  This harness regenerates the three curves
(for plotting) and summarizes the approximation error of each shape —
the quantitative content behind the figure: the 4-segment shape tracks
the Gaussian closely while the triangle over-estimates the tails and
truncates to zero beyond 2S.
"""

from __future__ import annotations

import numpy as np

from repro.core.membership import (
    S_FACTOR,
    gaussian_membership,
    linearization_error,
    linearized_membership,
    triangular_membership,
)


def run_figure4(sigma: float = 1.0, n_points: int = 512) -> dict[str, np.ndarray]:
    """Sample the three MF shapes on the paper's plotting range.

    Returns
    -------
    dict
        ``x`` (the abscissa, in sigma units relative to the center) and
        one curve per shape: ``gaussian``, ``linear``, ``triangular``.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    x = np.linspace(-2.0 * S_FACTOR * sigma, 0.0, n_points)[:, np.newaxis]
    centers = np.zeros((1, 1))
    sigmas = np.full((1, 1), sigma)
    return {
        "x": x[:, 0],
        "gaussian": gaussian_membership(x, centers, sigmas)[:, 0, 0],
        "linear": linearized_membership(x, centers, sigmas)[:, 0, 0],
        "triangular": triangular_membership(x, centers, sigmas)[:, 0, 0],
    }


def run_figure4_errors(sigma: float = 1.0) -> dict[str, dict[str, float]]:
    """Max / mean / RMS approximation error of each embedded shape."""
    return {
        "linear": linearization_error(sigma, shape="linear"),
        "triangular": linearization_error(sigma, shape="triangular"),
    }


def format_figure4(errors: dict[str, dict[str, float]]) -> str:
    """Render the error summary as fixed-width text."""
    lines = [f"{'shape':<12}{'max':>10}{'mean':>10}{'rms':>10}"]
    for shape, metrics in errors.items():
        lines.append(
            f"{shape:<12}{metrics['max_error']:>10.4f}"
            f"{metrics['mean_error']:>10.4f}{metrics['rms_error']:>10.4f}"
        )
    return "\n".join(lines)
