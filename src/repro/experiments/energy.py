"""Section IV-E: energy-efficiency improvement of the gated system.

"Considering all beats in the test set described in Table I as input
signals, we achieve a 68% energy consumption reduction in the wireless
module and 63% reduction in the energy consumption of the bio-signal
analysis part.  Thus, overall we achieve an estimated 23% total energy
reduction."

The harness classifies the (scaled) test set with the embedded
classifier, derives the gated and always-on per-second op profiles,
and feeds both plus the predicted labels into the system energy model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.datasets import make_embedded_datasets
from repro.experiments.table3 import Table3Config, build_embedded_classifier
from repro.platform.energy import SystemEnergyModel
from repro.platform.icyheart import IcyHeartConfig
from repro.platform.profiles import (
    delineator_system_profile,
    proposed_system_profile,
)
from repro.platform.radio import RadioModel


@dataclass(frozen=True)
class EnergyResult:
    """The Section IV-E numbers."""

    compute_saving: float
    radio_saving: float
    total_saving: float
    activation_rate: float
    gated_duty: float
    baseline_duty: float
    gated_bytes: float
    baseline_bytes: float


def run_energy(
    config: Table3Config | None = None,
    platform: IcyHeartConfig | None = None,
    radio: RadioModel | None = None,
) -> EnergyResult:
    """Compute the compute / radio / total energy savings."""
    config = config or Table3Config()
    platform = platform or IcyHeartConfig()
    radio = radio or RadioModel(energy_per_byte_j=platform.radio_energy_per_byte_j)

    classifier, activation = build_embedded_classifier(config)
    data = make_embedded_datasets(scale=config.scale, seed=config.seed)
    predicted = classifier.predict(data.test.X)
    duration_s = data.test.X.shape[0] / config.heart_rate_hz

    fs = platform.sampling_rate_hz
    gated_profile = proposed_system_profile(
        classifier, activation, fs, config.heart_rate_hz, seed=config.seed
    )
    baseline_profile = delineator_system_profile(fs, config.heart_rate_hz, seed=config.seed)

    model = SystemEnergyModel(platform, radio)
    savings = model.savings(gated_profile, baseline_profile, predicted, duration_s)
    return EnergyResult(
        compute_saving=savings["compute_saving"],
        radio_saving=savings["radio_saving"],
        total_saving=savings["total_saving"],
        activation_rate=activation,
        gated_duty=savings["gated_duty"],
        baseline_duty=savings["baseline_duty"],
        gated_bytes=savings["gated_bytes"],
        baseline_bytes=savings["baseline_bytes"],
    )


def format_energy(result: EnergyResult) -> str:
    """Render the Section IV-E summary as text."""
    return "\n".join(
        [
            f"activation rate            {100 * result.activation_rate:.1f}%",
            f"bio-signal analysis saving {100 * result.compute_saving:.1f}%  (paper: 63%)",
            f"wireless saving            {100 * result.radio_saving:.1f}%  (paper: 68%)",
            f"total energy saving        {100 * result.total_saving:.1f}%  (paper: ~23%)",
            f"duty: gated {result.gated_duty:.3f} vs always-on {result.baseline_duty:.3f}",
        ]
    )


def battery_outlook(
    result: EnergyResult, platform: IcyHeartConfig | None = None
) -> dict[str, float]:
    """Translate the measured savings into monitoring days.

    The node's total power is anchored so that compute + radio of the
    *always-on* architecture represent the configured ~34% share; the
    gated architecture then reduces exactly those two components by the
    measured ratios.
    """
    from repro.platform.battery import BatteryModel

    platform = platform or IcyHeartConfig()
    model = BatteryModel(config=platform)
    # Anchor an arbitrary baseline combined power; only ratios matter.
    combined = 100e-6
    baseline_compute = combined * platform.compute_energy_share / platform.combined_energy_share
    baseline_radio = combined * platform.radio_energy_share / platform.combined_energy_share
    return model.compare(
        baseline_compute,
        baseline_radio,
        gated_compute_w=baseline_compute * (1.0 - result.compute_saving),
        gated_radio_w=baseline_radio * (1.0 - result.radio_saving),
    )
