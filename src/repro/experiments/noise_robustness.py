"""Extension experiment: classification robustness vs contamination SNR.

A noise-stress sweep in the spirit of the MIT-BIH NST protocol: the
trained classifier is evaluated on test beats contaminated with
electrode-motion (``em``), muscle (``ma``) or baseline-wander (``bw``)
noise at decreasing SNR, with ``alpha_test`` re-tuned per condition to
hold the ARR target.  The output is an NDR-vs-SNR curve per noise kind
— the robustness margin a deployment on moving subjects would consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig
from repro.ecg.mitbih import LabeledBeats
from repro.ecg.noise_stress import NOISE_KINDS, add_noise_at_snr
from repro.experiments.datasets import make_beat_datasets

#: Default SNR grid (dB), clean-to-dirty.
DEFAULT_SNRS = (24.0, 18.0, 12.0, 6.0)


@dataclass(frozen=True)
class NoiseRobustnessConfig:
    """Knobs of the noise-stress sweep."""

    n_coefficients: int = 8
    scale: float = 0.05
    seed: int = 7
    target_arr: float = 0.97
    snrs_db: tuple[float, ...] = DEFAULT_SNRS
    kinds: tuple[str, ...] = NOISE_KINDS
    genetic: GeneticConfig = field(
        default_factory=lambda: GeneticConfig(population_size=6, generations=4)
    )
    scg_iterations: int = 80


def run_noise_robustness(
    config: NoiseRobustnessConfig | None = None,
    pipeline: RPClassifierPipeline | None = None,
) -> dict[str, dict[float, float]]:
    """NDR at the ARR target per (noise kind, SNR).

    Returns
    -------
    dict
        ``{kind: {snr_db: ndr_percent}}``, plus a ``"clean"`` entry
        holding the uncontaminated reference under key ``inf``.
    """
    config = config or NoiseRobustnessConfig()
    data = make_beat_datasets(scale=config.scale, seed=config.seed)
    if pipeline is None:
        training = TrainingConfig(
            n_coefficients=config.n_coefficients,
            target_arr=config.target_arr,
            scg_iterations=config.scg_iterations,
            genetic=config.genetic,
        )
        pipeline = RPClassifierPipeline.train(
            data.train1,
            data.train2,
            config.n_coefficients,
            seed=config.seed,
            config=training,
        )

    results: dict[str, dict[float, float]] = {}
    clean_report = pipeline.tuned_for(data.test, config.target_arr).evaluate(data.test)
    results["clean"] = {float("inf"): 100.0 * clean_report.ndr}

    rng = np.random.default_rng(config.seed + 99)
    for kind in config.kinds:
        results[kind] = {}
        for snr in config.snrs_db:
            noisy = add_noise_at_snr(data.test.X, snr, kind=kind, rng=rng)
            noisy_set = LabeledBeats(noisy, data.test.y, data.test.window, data.test.fs)
            tuned = pipeline.tuned_for(noisy_set, config.target_arr)
            report = tuned.evaluate(noisy_set)
            results[kind][snr] = 100.0 * report.ndr
    return results


def format_noise_robustness(results: dict[str, dict[float, float]]) -> str:
    """Render the NDR-vs-SNR grid as fixed-width text."""
    kinds = [k for k in results if k != "clean"]
    snrs = sorted(results[kinds[0]].keys(), reverse=True)
    header = f"{'kind':<6}" + "".join(f"{snr:>8.0f}dB" for snr in snrs)
    lines = [f"clean NDR: {results['clean'][float('inf')]:.2f}%", header]
    for kind in kinds:
        cells = "".join(f"{results[kind][snr]:>10.2f}" for snr in snrs)
        lines.append(f"{kind:<6}{cells}")
    return "\n".join(lines)
