"""Figure 5: NDR/ARR Pareto fronts for the three membership shapes.

Protocol (Section IV-C): 50 samples acquired at 90 Hz are randomly
projected on 8 coefficients; ``alpha_train`` is fixed for a minimum ARR
of 97% on training set 2; ``alpha_test`` is swept to trace the NDR/ARR
trade-off on the test set, once per membership shape (Gaussian,
4-segment linear, triangular).

The claims to check: the linear front hugs the Gaussian front; the
triangular front collapses at high ARR (paper: at ARR = 98.5% the
gaussian/linear NDR is ~87% while triangular drops to ~62%).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.genetic import GeneticConfig
from repro.core.metrics import ndr_at_arr, pareto_front
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig, train_classifier
from repro.experiments.datasets import make_embedded_datasets

#: Membership shapes compared by the figure.
FIGURE5_SHAPES = ("gaussian", "linear", "triangular")


@dataclass(frozen=True)
class Figure5Config:
    """Knobs of the Figure 5 run (reduced defaults for CI speed)."""

    n_coefficients: int = 8
    scale: float = 0.05
    seed: int = 7
    target_arr: float = 0.97
    genetic: GeneticConfig = field(
        default_factory=lambda: GeneticConfig(population_size=6, generations=4)
    )
    scg_iterations: int = 80
    n_alphas: int = 201

    def paper_scale(self) -> "Figure5Config":
        """Full paper configuration."""
        return replace(self, scale=1.0, genetic=GeneticConfig())


def train_figure5_pipeline(config: Figure5Config | None = None) -> RPClassifierPipeline:
    """Train the 8-coefficient, 90 Hz pipeline the figure evaluates."""
    config = config or Figure5Config()
    data = make_embedded_datasets(scale=config.scale, seed=config.seed)
    training = TrainingConfig(
        n_coefficients=config.n_coefficients,
        target_arr=config.target_arr,
        scg_iterations=config.scg_iterations,
        genetic=config.genetic,
    )
    trained = train_classifier(data.train1, data.train2, training, seed=config.seed)
    return RPClassifierPipeline.from_trained(trained)


def run_figure5(
    config: Figure5Config | None = None,
    pipeline: RPClassifierPipeline | None = None,
) -> dict[str, dict[str, np.ndarray]]:
    """Trace the three Pareto fronts.

    Returns
    -------
    dict
        Per shape: ``alphas``, ``ndr``, ``arr`` (the full sweep) and
        ``front`` (indices of the Pareto-optimal sweep points).
    """
    config = config or Figure5Config()
    if pipeline is None:
        pipeline = train_figure5_pipeline(config)
    data = make_embedded_datasets(scale=config.scale, seed=config.seed)
    alphas = np.linspace(0.0, 1.0, config.n_alphas)
    results: dict[str, dict[str, np.ndarray]] = {}
    for shape in FIGURE5_SHAPES:
        shaped = pipeline.with_shape(shape)
        swept_alphas, ndr, arr = shaped.sweep(data.test, alphas)
        results[shape] = {
            "alphas": swept_alphas,
            "ndr": ndr,
            "arr": arr,
            "front": pareto_front(ndr, arr),
        }
    return results


def figure5_summary(
    results: dict[str, dict[str, np.ndarray]], arr_targets: tuple[float, ...] = (0.97, 0.985)
) -> dict[str, dict[float, float]]:
    """NDR achievable at chosen ARR targets, per shape (paper's callouts)."""
    summary: dict[str, dict[float, float]] = {}
    for shape, sweep in results.items():
        summary[shape] = {
            target: ndr_at_arr(sweep["ndr"], sweep["arr"], target) for target in arr_targets
        }
    return summary


def format_figure5(summary: dict[str, dict[float, float]]) -> str:
    """Render the per-shape NDR-at-ARR summary as fixed-width text."""
    targets = sorted(next(iter(summary.values())))
    header = f"{'shape':<12}" + "".join(f"NDR@ARR>={100 * t:.1f}%" .rjust(16) for t in targets)
    lines = [header]
    for shape, per_target in summary.items():
        cells = "".join(f"{100 * per_target[t]:>16.2f}" for t in targets)
        lines.append(f"{shape:<12}{cells}")
    return "\n".join(lines)
