"""Experiment harnesses regenerating every table and figure of the paper.

Each module owns one artifact and exposes a ``run_*`` function returning
plain data (dicts / arrays) plus a ``format_*`` helper printing the same
rows the paper reports:

* :mod:`repro.experiments.datasets` — Table I set composition;
* :mod:`repro.experiments.table2` — NDR at 97% ARR vs coefficient count
  (NDR-PC / NDR-WBSN / PCA-PC);
* :mod:`repro.experiments.figure4` — membership-function linearization
  error curves;
* :mod:`repro.experiments.figure5` — NDR/ARR Pareto fronts for the
  three MF shapes;
* :mod:`repro.experiments.table3` — code size and duty cycle of the
  Figure 6 sub-systems;
* :mod:`repro.experiments.energy` — Section IV-E energy savings.

All harnesses take a ``scale`` knob (fraction of the paper's dataset
sizes) and reduced GA budgets so they can run in CI; passing
``scale=1.0`` and the paper's GA configuration reproduces the full
experiments.
"""

from repro.experiments.datasets import make_beat_datasets, make_embedded_datasets

__all__ = ["make_beat_datasets", "make_embedded_datasets"]
