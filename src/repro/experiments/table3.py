"""Table III: code size and duty cycle of the Figure 6 sub-systems.

Rows (8 coefficients, IcyHeart at 6 MHz):

1. the RP classifier alone;
2. sub-system (1): RP + filtering + peak detection;
3. sub-system (2): always-on multi-lead delineation;
4. the proposed gated system (3).

Code sizes come from the calibrated static model
(:mod:`repro.platform.memory`); duty cycles are computed from *measured*
operation profiles of the actual implementations
(:mod:`repro.platform.profiles`) through the icyflex cycle table.  The
gated system's delineation traffic uses the classifier's activation
rate measured on the test set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig, train_classifier
from repro.experiments.datasets import make_embedded_datasets
from repro.fixedpoint.convert import EmbeddedClassifier, convert_pipeline, tune_embedded_alpha
from repro.platform.cpu import CycleModel
from repro.platform.icyheart import IcyHeartConfig
from repro.platform.memory import CodeSizeModel
from repro.platform.profiles import (
    DEFAULT_HEART_RATE_HZ,
    classifier_beat_profile,
    delineator_system_profile,
    proposed_system_profile,
    subsystem1_profile,
)


@dataclass(frozen=True)
class Table3Config:
    """Knobs of the Table III run (reduced defaults for CI speed)."""

    n_coefficients: int = 8
    scale: float = 0.05
    seed: int = 7
    target_arr: float = 0.97
    genetic: GeneticConfig = field(
        default_factory=lambda: GeneticConfig(population_size=6, generations=4)
    )
    scg_iterations: int = 80
    heart_rate_hz: float = DEFAULT_HEART_RATE_HZ

    def paper_scale(self) -> "Table3Config":
        """Full paper configuration."""
        return replace(self, scale=1.0, genetic=GeneticConfig())


@dataclass(frozen=True)
class Table3Row:
    """One Table III row."""

    code_size_kb: float
    duty_cycle: float


def build_embedded_classifier(
    config: Table3Config | None = None,
) -> tuple[EmbeddedClassifier, float]:
    """Train the 90 Hz pipeline, convert it, measure its activation rate.

    Returns
    -------
    (classifier, activation_rate):
        The deployable integer classifier and the fraction of test
        beats it flags abnormal at the ARR target.
    """
    config = config or Table3Config()
    data = make_embedded_datasets(scale=config.scale, seed=config.seed)
    training = TrainingConfig(
        n_coefficients=config.n_coefficients,
        target_arr=config.target_arr,
        scg_iterations=config.scg_iterations,
        genetic=config.genetic,
    )
    trained = train_classifier(data.train1, data.train2, training, seed=config.seed)
    pipeline = RPClassifierPipeline.from_trained(trained)
    classifier = convert_pipeline(pipeline, shape="linear")
    classifier = tune_embedded_alpha(classifier, data.test, config.target_arr)
    report = classifier.evaluate(data.test)
    return classifier, report.activation


def run_table3(
    config: Table3Config | None = None,
    classifier: EmbeddedClassifier | None = None,
    activation_rate: float | None = None,
    platform: IcyHeartConfig | None = None,
    code_model: CodeSizeModel | None = None,
) -> dict[str, Table3Row]:
    """Produce the four Table III rows."""
    config = config or Table3Config()
    platform = platform or IcyHeartConfig()
    code_model = code_model or CodeSizeModel()
    if classifier is None or activation_rate is None:
        classifier, activation_rate = build_embedded_classifier(config)

    fs = platform.sampling_rate_hz
    cycle_model: CycleModel = platform.cycle_model
    clock = platform.clock_hz
    heart_rate = config.heart_rate_hz

    classifier_per_s = classifier_beat_profile(classifier).scaled(heart_rate)
    sub1 = subsystem1_profile(classifier, fs, heart_rate, seed=config.seed)
    sub2 = delineator_system_profile(fs, heart_rate, seed=config.seed)
    sub3 = proposed_system_profile(
        classifier, activation_rate, fs, heart_rate, seed=config.seed
    )

    code_kb = code_model.table3_column()
    return {
        "rp_classifier": Table3Row(
            code_kb["rp_classifier"], cycle_model.duty_cycle(classifier_per_s, clock)
        ),
        "subsystem1": Table3Row(
            code_kb["subsystem1"], cycle_model.duty_cycle(sub1, clock)
        ),
        "delineation": Table3Row(
            code_kb["delineation"], cycle_model.duty_cycle(sub2, clock)
        ),
        "proposed_system": Table3Row(
            code_kb["proposed_system"], cycle_model.duty_cycle(sub3, clock)
        ),
    }


#: Paper row labels, for rendering.
ROW_LABELS = {
    "rp_classifier": "RP-classifier",
    "subsystem1": "RP + filtering + peak detection (1)",
    "delineation": "Multi-lead delineation (2)",
    "proposed_system": "Proposed system (3)",
}


def format_table3(rows: dict[str, Table3Row]) -> str:
    """Render Table III as fixed-width text."""
    lines = [f"{'sub-system':<38}{'Code Size (KB)':>16}{'Duty Cycle':>12}"]
    for key, label in ROW_LABELS.items():
        row = rows[key]
        duty = "< 0.01" if row.duty_cycle < 0.01 else f"{row.duty_cycle:.2f}"
        lines.append(f"{label:<38}{row.code_size_kb:>16.2f}{duty:>12}")
    return "\n".join(lines)
