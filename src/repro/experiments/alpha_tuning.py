"""Section III-B claim: alpha_test decouples from alpha_train.

"It is possible to tune the defuzzification coefficient alpha_test
independently of the alpha_train chosen during the training phase,
giving the opportunity to adjust the ratio of detected normal and
abnormal beats."

The experiment trains once, then compares two deployment policies over
a grid of training-time ARR targets:

* **frozen** — deploy with ``alpha_train`` as-is;
* **re-tuned** — re-tune ``alpha_test`` on the test stream for the
  deployment ARR target.

The claim holds if the re-tuned NDR is (a) nearly independent of the
training-time target and (b) never worse than the frozen policy at the
deployment target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.defuzz import defuzzify, tune_alpha
from repro.core.genetic import GeneticConfig
from repro.core.metrics import abnormal_recognition_rate, normal_discard_rate
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig, train_classifier
from repro.experiments.datasets import make_beat_datasets

#: Training-time ARR targets explored.  The top targets push into the
#: regime where alpha_train must actually rise above zero, so the
#: frozen-vs-retuned divergence is visible.
DEFAULT_TRAIN_TARGETS = (0.90, 0.97, 0.99, 0.995)


@dataclass(frozen=True)
class AlphaTuningConfig:
    """Knobs of the alpha-decoupling experiment."""

    n_coefficients: int = 8
    scale: float = 0.05
    seed: int = 7
    deploy_target_arr: float = 0.97
    train_targets: tuple[float, ...] = DEFAULT_TRAIN_TARGETS
    genetic: GeneticConfig = field(
        default_factory=lambda: GeneticConfig(population_size=6, generations=4)
    )
    scg_iterations: int = 80


def run_alpha_tuning(config: AlphaTuningConfig | None = None) -> dict[float, dict[str, float]]:
    """Grid over training ARR targets.

    Returns
    -------
    dict
        Per training target: ``alpha_train``, frozen-policy NDR/ARR
        and re-tuned-policy NDR/ARR on the test set (percent).
    """
    config = config or AlphaTuningConfig()
    data = make_beat_datasets(scale=config.scale, seed=config.seed)

    # One projection + NFC fit; only the alpha tuning differs per row
    # (matching the paper: "across experiments, the defuzzification
    # coefficient alpha_train was chosen to have a minimum ARR...").
    training = TrainingConfig(
        n_coefficients=config.n_coefficients,
        target_arr=config.train_targets[0],
        scg_iterations=config.scg_iterations,
        genetic=config.genetic,
    )
    trained = train_classifier(data.train1, data.train2, training, seed=config.seed)
    pipeline = RPClassifierPipeline.from_trained(trained)

    fuzzy_train2 = pipeline.fuzzy_values(data.train2.X)
    fuzzy_test = pipeline.fuzzy_values(data.test.X)

    results: dict[float, dict[str, float]] = {}
    for target in config.train_targets:
        alpha_train = tune_alpha(fuzzy_train2, data.train2.y, target)
        frozen_labels = defuzzify(fuzzy_test, alpha_train)
        alpha_test = tune_alpha(fuzzy_test, data.test.y, config.deploy_target_arr)
        retuned_labels = defuzzify(fuzzy_test, alpha_test)
        results[target] = {
            "alpha_train": alpha_train,
            "frozen_ndr": 100.0 * normal_discard_rate(data.test.y, frozen_labels),
            "frozen_arr": 100.0 * abnormal_recognition_rate(data.test.y, frozen_labels),
            "retuned_ndr": 100.0 * normal_discard_rate(data.test.y, retuned_labels),
            "retuned_arr": 100.0 * abnormal_recognition_rate(data.test.y, retuned_labels),
        }
    return results


def format_alpha_tuning(results: dict[float, dict[str, float]]) -> str:
    """Render the decoupling grid as fixed-width text."""
    lines = [
        f"{'train ARR':>10}{'a_train':>9}{'frozen NDR':>12}{'frozen ARR':>12}"
        f"{'retuned NDR':>13}{'retuned ARR':>13}"
    ]
    for target, row in results.items():
        lines.append(
            f"{100 * target:>9.1f}%{row['alpha_train']:>9.4f}{row['frozen_ndr']:>12.2f}"
            f"{row['frozen_arr']:>12.2f}{row['retuned_ndr']:>13.2f}{row['retuned_arr']:>13.2f}"
        )
    return "\n".join(lines)
