"""Extension experiment: multi-lead random-projection classification.

The paper classifies a single lead; its own prior work (Bogdanova,
Rincon, Atienza — ICASSP 2012, reference [18]) projects *multi-lead*
ECG and motivated the methodology.  This extension reproduces that
variant: the per-lead beat windows are concatenated (d grows from 200
to ``n_leads x 200``) and projected onto the same small coefficient
count — the Achlioptas matrix grows with d, but the classifier's
compute stays O(k) per stage after the projection.

The expected shape: the extra leads carry correlated signal but
independent noise, so multi-lead NDR at the ARR target should match or
beat single-lead, at the cost of a ~``n_leads``-times-larger packed
matrix and sampling three ADC channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig, train_classifier
from repro.ecg.mitbih import TABLE_I, LabeledBeats, scaled_counts
from repro.ecg.segmentation import BeatWindow
from repro.ecg.synth import synthesize_beat_windows
from repro.fixedpoint.packed_matrix import PackedTernaryMatrix

#: Electrode-projection gains of the three modelled leads.
LEAD_GAINS = (1.0, 0.75, -0.55)


@dataclass(frozen=True)
class MultileadConfig:
    """Knobs of the multi-lead extension experiment."""

    n_coefficients: int = 8
    scale: float = 0.05
    seed: int = 7
    target_arr: float = 0.97
    genetic: GeneticConfig = field(
        default_factory=lambda: GeneticConfig(population_size=6, generations=4)
    )
    scg_iterations: int = 80


def _make_sets(config: MultileadConfig, lead_gains: tuple[float, ...]):
    """Table-I-shaped sets with the given lead count."""
    window = BeatWindow()
    sets = []
    for offset, name in enumerate(("train1", "train2", "test")):
        counts = scaled_counts(TABLE_I[name], config.scale)
        X, y = synthesize_beat_windows(
            counts,
            seed=config.seed * 1000 + offset + 500,
            lead_gains=lead_gains,
        )
        effective_window = BeatWindow(window.pre, X.shape[1] - window.pre)
        sets.append(LabeledBeats(X, y, effective_window, 360.0))
    return tuple(sets)


def run_multilead(config: MultileadConfig | None = None) -> dict[str, dict[str, float]]:
    """Compare single-lead vs three-lead RP classification.

    Returns
    -------
    dict
        Per variant (``single``, ``multilead``): NDR/ARR percent at the
        ARR target plus the packed projection-matrix bytes.
    """
    config = config or MultileadConfig()
    results: dict[str, dict[str, float]] = {}
    for name, gains in (("single", LEAD_GAINS[:1]), ("multilead", LEAD_GAINS)):
        train1, train2, test = _make_sets(config, gains)
        training = TrainingConfig(
            n_coefficients=config.n_coefficients,
            target_arr=config.target_arr,
            scg_iterations=config.scg_iterations,
            genetic=config.genetic,
        )
        trained = train_classifier(train1, train2, training, seed=config.seed)
        pipeline = RPClassifierPipeline.from_trained(trained).tuned_for(
            test, config.target_arr
        )
        report = pipeline.evaluate(test)
        packed = PackedTernaryMatrix.pack(pipeline.projection)
        results[name] = {
            "ndr": 100.0 * report.ndr,
            "arr": 100.0 * report.arr,
            "matrix_bytes": float(packed.n_bytes),
            "beat_length": float(train1.X.shape[1]),
        }
    return results


def format_multilead(results: dict[str, dict[str, float]]) -> str:
    """Render the comparison as fixed-width text."""
    lines = [f"{'variant':<10}{'d':>6}{'NDR %':>8}{'ARR %':>8}{'matrix B':>10}"]
    for name, row in results.items():
        lines.append(
            f"{name:<10}{int(row['beat_length']):>6}{row['ndr']:>8.2f}"
            f"{row['arr']:>8.2f}{int(row['matrix_bytes']):>10}"
        )
    return "\n".join(lines)
