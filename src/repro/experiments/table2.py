"""Table II: NDR at a fixed 97% ARR, varying the coefficient count.

Three rows per coefficient count k in {8, 16, 32}:

* ``NDR-PC`` — the float pipeline (Gaussian MFs, 360 Hz, GA-optimized
  projection), ``alpha_test`` tuned on the test set for ARR >= 97%;
* ``NDR-WBSN`` — the embedded version: trained at the deployment
  configuration (90 Hz / 50-sample beats, i.e. the 4x-decimated
  stream), then linearized and quantized, integer arithmetic end to
  end;
* ``PCA-PC`` — the PCA baseline feeding the same NFC.

The paper's conclusions to check: NDR > 90% everywhere, no tangible
gain from 8 -> 32 coefficients, and only a few points between the
three rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.harness import FeaturePipeline
from repro.baselines.pca import PCAFeatures
from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig, train_classifier
from repro.experiments.datasets import (
    EmbeddedDatasets,
    make_beat_datasets,
    make_embedded_datasets,
)
from repro.fixedpoint.convert import convert_pipeline, tune_embedded_alpha

#: The coefficient counts of Table II.
TABLE2_COEFFICIENTS = (8, 16, 32)

#: Target ARR of the whole evaluation section.
TARGET_ARR = 0.97


@dataclass(frozen=True)
class Table2Config:
    """Knobs of the Table II run (reduced defaults for CI speed)."""

    coefficients: tuple[int, ...] = TABLE2_COEFFICIENTS
    scale: float = 0.05
    seed: int = 7
    target_arr: float = TARGET_ARR
    genetic: GeneticConfig = field(
        default_factory=lambda: GeneticConfig(population_size=6, generations=4)
    )
    scg_iterations: int = 80

    def paper_scale(self) -> "Table2Config":
        """The full paper configuration (Table I sizes, GA 20 x 30)."""
        return replace(self, scale=1.0, genetic=GeneticConfig())


def run_table2(config: Table2Config | None = None) -> dict[int, dict[str, float]]:
    """Produce the Table II grid: ``{k: {row_name: NDR_percent}}``."""
    config = config or Table2Config()
    data = make_beat_datasets(scale=config.scale, seed=config.seed)
    embedded_data = make_embedded_datasets(scale=config.scale, seed=config.seed)

    results: dict[int, dict[str, float]] = {}
    for k in config.coefficients:
        training = TrainingConfig(
            n_coefficients=k,
            target_arr=config.target_arr,
            scg_iterations=config.scg_iterations,
            genetic=config.genetic,
        )
        trained = train_classifier(data.train1, data.train2, training, seed=config.seed)
        pipeline = RPClassifierPipeline.from_trained(trained)

        pc = pipeline.tuned_for(data.test, config.target_arr).evaluate(data.test)
        wbsn = _wbsn_report(embedded_data, training, config.target_arr, config.seed)
        pca = (
            FeaturePipeline.train(
                PCAFeatures(k),
                data.train1,
                data.train2,
                target_arr=config.target_arr,
                scg_iterations=config.scg_iterations,
            )
            .tuned_for(data.test, config.target_arr)
            .evaluate(data.test)
        )
        results[k] = {
            "NDR-PC": 100.0 * pc.ndr,
            "NDR-WBSN": 100.0 * wbsn.ndr,
            "PCA-PC": 100.0 * pca.ndr,
            "ARR-PC": 100.0 * pc.arr,
            "ARR-WBSN": 100.0 * wbsn.arr,
            "ARR-PCA": 100.0 * pca.arr,
        }
    return results


def _wbsn_report(
    embedded_data: EmbeddedDatasets,
    training: TrainingConfig,
    target_arr: float,
    seed: int,
):
    """Train at the 90 Hz deployment configuration, quantize, evaluate."""
    trained = train_classifier(
        embedded_data.train1,
        embedded_data.train2,
        training,
        seed=seed,
    )
    embedded_pipeline = RPClassifierPipeline.from_trained(trained)
    classifier = convert_pipeline(embedded_pipeline, shape="linear")
    classifier = tune_embedded_alpha(classifier, embedded_data.test, target_arr)
    return classifier.evaluate(embedded_data.test)


def format_table2(results: dict[int, dict[str, float]]) -> str:
    """Render the Table II grid as fixed-width text."""
    coefficients = sorted(results)
    lines = ["coefficients" + "".join(f"{k:>10}" for k in coefficients)]
    for row in ("NDR-PC", "NDR-WBSN", "PCA-PC"):
        cells = "".join(f"{results[k][row]:>10.2f}" for k in coefficients)
        lines.append(f"{row:<12}{cells}")
    return "\n".join(lines)
