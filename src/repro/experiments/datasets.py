"""Dataset construction shared by all experiments (Table I).

Wraps :mod:`repro.ecg.mitbih` with a process-level cache (experiments
and benchmarks repeatedly ask for the same configuration) and adds the
"embedded" variant: the same beats decimated 4x to 90 Hz / 50 samples,
as consumed by the WBSN rows of Table II and by Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecg.mitbih import BeatDatasets, LabeledBeats, make_datasets
from repro.ecg.resample import decimate_beats
from repro.ecg.synth import BeatNoiseConfig

#: Paper defaults.
FULL_RATE_HZ = 360.0
EMBEDDED_DECIMATION = 4

_CACHE: dict[tuple, BeatDatasets] = {}


def make_beat_datasets(
    scale: float = 1.0, seed: int = 0, noise: BeatNoiseConfig | None = None
) -> BeatDatasets:
    """Table-I beat sets at 360 Hz (cached per configuration)."""
    key = (round(scale, 6), seed, noise)
    if key not in _CACHE:
        _CACHE[key] = make_datasets(scale=scale, seed=seed, noise=noise)
    return _CACHE[key]


def decimate_labeled(beats: LabeledBeats, factor: int = EMBEDDED_DECIMATION) -> LabeledBeats:
    """Decimate a labeled set, preserving the R-peak column."""
    X_ds, window_ds = decimate_beats(beats.X, beats.window, factor)
    return LabeledBeats(X_ds, beats.y, window_ds, beats.fs / factor)


@dataclass(frozen=True)
class EmbeddedDatasets:
    """The Table-I sets decimated to the 90 Hz embedded configuration."""

    train1: LabeledBeats
    train2: LabeledBeats
    test: LabeledBeats


def make_embedded_datasets(
    scale: float = 1.0,
    seed: int = 0,
    noise: BeatNoiseConfig | None = None,
    factor: int = EMBEDDED_DECIMATION,
) -> EmbeddedDatasets:
    """90 Hz / 50-sample variant of the Table-I sets.

    Decimates the *same* underlying beats as
    :func:`make_beat_datasets`, so full-rate and embedded experiments
    are paired sample-for-sample (as on the node, where the 90 Hz
    stream is the decimated 360 Hz acquisition).
    """
    full = make_beat_datasets(scale=scale, seed=seed, noise=noise)
    return EmbeddedDatasets(
        train1=decimate_labeled(full.train1, factor),
        train2=decimate_labeled(full.train2, factor),
        test=decimate_labeled(full.test, factor),
    )


def table1_counts(scale: float = 1.0, seed: int = 0) -> dict[str, dict[str, int]]:
    """The content of Table I for a given scale (exact at scale=1)."""
    return make_beat_datasets(scale=scale, seed=seed).composition()


def format_table1(counts: dict[str, dict[str, int]]) -> str:
    """Render Table I as fixed-width text."""
    lines = [f"{'set':<14}{'N':>8}{'V':>8}{'L':>8}{'total':>8}"]
    for set_name, per_class in counts.items():
        total = sum(per_class.values())
        lines.append(
            f"{set_name:<14}{per_class['N']:>8}{per_class['V']:>8}"
            f"{per_class['L']:>8}{total:>8}"
        )
    return "\n".join(lines)
