"""One-shot report generation: every artifact into a directory.

:func:`generate_report` runs all table/figure harnesses plus the
extension experiments at one configuration and writes

* ``report.md`` — every regenerated table next to the paper's values;
* ``figure5_<shape>.csv`` — the full NDR/ARR sweeps (plot-ready);
* ``figure4_curves.csv`` — the three MF shapes on the plotting range;
* ``noise_robustness.csv`` — the NDR-vs-SNR grid.

The CLI exposes this as ``python -m repro report`` (not wired through
``all``, which prints to stdout instead).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from repro.core.genetic import GeneticConfig
from repro.ecg.mitbih import TABLE_I
from repro.experiments.alpha_tuning import (
    AlphaTuningConfig,
    format_alpha_tuning,
    run_alpha_tuning,
)
from repro.experiments.datasets import format_table1, table1_counts
from repro.experiments.energy import format_energy, run_energy
from repro.experiments.figure4 import format_figure4, run_figure4, run_figure4_errors
from repro.experiments.figure5 import (
    Figure5Config,
    figure5_summary,
    format_figure5,
    run_figure5,
)
from repro.experiments.multilead import (
    MultileadConfig,
    format_multilead,
    run_multilead,
)
from repro.experiments.noise_robustness import (
    NoiseRobustnessConfig,
    format_noise_robustness,
    run_noise_robustness,
)
from repro.experiments.table2 import Table2Config, format_table2, run_table2
from repro.experiments.table3 import Table3Config, format_table3, run_table3

#: The paper's reported values, quoted in the report for comparison.
PAPER_NOTES = {
    "table2": "paper: NDR-PC 93.74/95.16/93.05, NDR-WBSN 92.31/92.53/93.04, "
    "PCA-PC 93.66/95.78/89.75",
    "figure5": "paper at ARR >= 98.5%: gaussian ~87%, linear ~87%, triangular ~62%",
    "table3": "paper: 1.64 KB / <0.01, 30.29 / 0.12, 46.39 / 0.83, 76.68 / 0.30",
    "energy": "paper: 63% compute, 68% wireless, ~23% total",
}


@dataclass(frozen=True)
class ReportConfig:
    """Scale/seed/GA knobs shared by every section of the report."""

    scale: float = 0.05
    seed: int = 7
    genetic: GeneticConfig = GeneticConfig(population_size=8, generations=5)


def _write_csv(path: Path, header: list[str], rows) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def generate_report(output_dir: str | Path, config: ReportConfig | None = None) -> Path:
    """Run everything and write the artifact bundle.

    Returns the path of the written ``report.md``.
    """
    config = config or ReportConfig()
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    sections: list[str] = [
        "# Reproduction report",
        "",
        f"Configuration: scale={config.scale}, seed={config.seed}, "
        f"GA {config.genetic.population_size} x {config.genetic.generations}.",
    ]

    def add(title: str, body: str, note: str | None = None) -> None:
        sections.append(f"\n## {title}\n\n```\n{body}\n```")
        if note:
            sections.append(f"\n*{note}*")

    add(
        "Table I — dataset composition",
        format_table1(table1_counts(scale=config.scale, seed=config.seed))
        + "\n\npaper:\n"
        + format_table1(TABLE_I),
    )

    table2 = run_table2(
        Table2Config(scale=config.scale, seed=config.seed, genetic=config.genetic)
    )
    add("Table II — NDR at 97% ARR", format_table2(table2), PAPER_NOTES["table2"])

    errors = run_figure4_errors()
    add("Figure 4 — MF approximation error", format_figure4(errors))
    curves = run_figure4()
    _write_csv(
        out / "figure4_curves.csv",
        ["x_sigma", "gaussian", "linear", "triangular"],
        zip(curves["x"], curves["gaussian"], curves["linear"], curves["triangular"]),
    )

    fig5_config = Figure5Config(
        scale=config.scale, seed=config.seed, genetic=config.genetic
    )
    fig5 = run_figure5(fig5_config)
    add(
        "Figure 5 — NDR/ARR Pareto fronts",
        format_figure5(figure5_summary(fig5)),
        PAPER_NOTES["figure5"],
    )
    for shape, sweep in fig5.items():
        _write_csv(
            out / f"figure5_{shape}.csv",
            ["alpha", "ndr", "arr"],
            zip(sweep["alphas"], sweep["ndr"], sweep["arr"]),
        )

    table3_config = Table3Config(
        scale=config.scale, seed=config.seed, genetic=config.genetic
    )
    add("Table III — code size and duty cycle", format_table3(run_table3(table3_config)),
        PAPER_NOTES["table3"])
    add("Section IV-E — energy", format_energy(run_energy(table3_config)),
        PAPER_NOTES["energy"])

    add(
        "Extension — multi-lead RP",
        format_multilead(
            run_multilead(
                MultileadConfig(
                    scale=config.scale, seed=config.seed, genetic=config.genetic
                )
            )
        ),
    )

    noise = run_noise_robustness(
        NoiseRobustnessConfig(scale=config.scale, seed=config.seed, genetic=config.genetic)
    )
    add("Extension — noise stress", format_noise_robustness(noise))
    kinds = [k for k in noise if k != "clean"]
    snrs = sorted(noise[kinds[0]].keys(), reverse=True)
    _write_csv(
        out / "noise_robustness.csv",
        ["kind"] + [f"snr_{snr:g}db" for snr in snrs],
        [[kind] + [noise[kind][snr] for snr in snrs] for kind in kinds],
    )

    add(
        "Extension — alpha decoupling",
        format_alpha_tuning(
            run_alpha_tuning(
                AlphaTuningConfig(
                    scale=config.scale, seed=config.seed, genetic=config.genetic
                )
            )
        ),
    )

    report_path = out / "report.md"
    report_path.write_text("\n".join(sections) + "\n")
    return report_path
