"""Extension experiment: intra- vs inter-patient generalization.

The paper follows the "class-oriented" protocol (training and test
beats drawn from the same record pool).  The stricter "subject-
oriented" protocol of de Chazal et al. (the paper's reference [13])
holds entire patients out of training.  This experiment measures the
gap between the two on the synthetic substrate:

* **intra** — train and test beats from the *same* subjects
  (disjoint beats, shared morphology factors): the paper's setting;
* **inter** — test beats from subjects never seen in training.

The expected shape: inter-patient NDR at the ARR target drops relative
to intra-patient — the classical generalization gap every MIT-BIH
study reports — while remaining clearly above chance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig, train_classifier
from repro.ecg.mitbih import LabeledBeats
from repro.ecg.segmentation import BeatWindow
from repro.ecg.subjects import SubjectVariability, synthesize_subject_windows


@dataclass(frozen=True)
class CrossSubjectConfig:
    """Knobs of the generalization experiment."""

    n_coefficients: int = 8
    n_train_subjects: int = 12
    n_test_subjects: int = 6
    beats_per_subject: dict[str, int] = field(
        default_factory=lambda: {"N": 60, "V": 6, "L": 7}
    )
    seed: int = 7
    target_arr: float = 0.97
    variability: SubjectVariability = field(default_factory=SubjectVariability)
    genetic: GeneticConfig = field(
        default_factory=lambda: GeneticConfig(population_size=6, generations=4)
    )
    scg_iterations: int = 80


def _to_labeled(X: np.ndarray, y: np.ndarray) -> LabeledBeats:
    return LabeledBeats(X, y, BeatWindow(100, 100), 360.0)


def run_cross_subject(config: CrossSubjectConfig | None = None) -> dict[str, dict[str, float]]:
    """Train once, evaluate on seen-subject and held-out-subject beats.

    Returns
    -------
    dict
        ``intra`` and ``inter`` rows with NDR/ARR percent at the ARR
        target (alpha re-tuned per evaluation stream, as a deployment
        would).
    """
    config = config or CrossSubjectConfig()
    total_subjects = config.n_train_subjects + config.n_test_subjects
    X, y, subjects = synthesize_subject_windows(
        total_subjects,
        config.beats_per_subject,
        variability=config.variability,
        seed=config.seed,
        subject_seed=config.seed,
    )
    train_mask = subjects < config.n_train_subjects

    X_train, y_train = X[train_mask], y[train_mask]
    # Split the training subjects' beats into the paper's two sets.
    half = X_train.shape[0] // 3
    train1 = _to_labeled(X_train[:half], y_train[:half])
    train2 = _to_labeled(X_train[half:], y_train[half:])

    training = TrainingConfig(
        n_coefficients=config.n_coefficients,
        target_arr=config.target_arr,
        scg_iterations=config.scg_iterations,
        genetic=config.genetic,
    )
    trained = train_classifier(train1, train2, training, seed=config.seed)
    pipeline = RPClassifierPipeline.from_trained(trained)

    # Intra: *fresh* beats of the *seen* subjects — same subject seed
    # (so the morphology factors persist) but a different beat seed.
    X_intra, y_intra, subj_intra = synthesize_subject_windows(
        total_subjects,
        config.beats_per_subject,
        variability=config.variability,
        seed=config.seed + 10_000,
        subject_seed=config.seed,
    )
    intra_mask = subj_intra < config.n_train_subjects
    intra = _to_labeled(X_intra[intra_mask], y_intra[intra_mask])
    inter = _to_labeled(X[~train_mask], y[~train_mask])

    results: dict[str, dict[str, float]] = {}
    for name, beats in (("intra", intra), ("inter", inter)):
        tuned = pipeline.tuned_for(beats, config.target_arr)
        report = tuned.evaluate(beats)
        results[name] = {
            "ndr": 100.0 * report.ndr,
            "arr": 100.0 * report.arr,
            "n_beats": float(len(beats)),
        }
    results["gap"] = {
        "ndr": results["intra"]["ndr"] - results["inter"]["ndr"],
        "arr": results["intra"]["arr"] - results["inter"]["arr"],
        "n_beats": 0.0,
    }
    return results


def format_cross_subject(results: dict[str, dict[str, float]]) -> str:
    """Render the generalization comparison as fixed-width text."""
    lines = [f"{'protocol':<8}{'NDR %':>8}{'ARR %':>8}{'beats':>8}"]
    for name in ("intra", "inter"):
        row = results[name]
        lines.append(f"{name:<8}{row['ndr']:>8.2f}{row['arr']:>8.2f}{int(row['n_beats']):>8}")
    lines.append(f"{'gap':<8}{results['gap']['ndr']:>8.2f}{results['gap']['arr']:>8.2f}")
    return "\n".join(lines)
