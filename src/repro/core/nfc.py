"""The three-layer neuro-fuzzy classifier (NFC).

Structure (Figure 3 of the paper):

1. **Membership layer** — per (coefficient k, class l) membership
   functions; Gaussian during training, linearized or triangular in the
   embedded approximations.
2. **Fuzzification layer** — the grades of all coefficients are
   multiplied per class: :math:`f_l = \\prod_k \\mu_{k,l}(u_k)`.
3. **Defuzzification layer** — the rule
   :math:`(M_{1f} - M_{2f}) \\ge \\alpha S` assigns the argmax class or
   ``Unknown`` (see :mod:`repro.core.defuzz`).

With Gaussian MFs the log-fuzzy value is a negative scaled squared
distance, so the classifier is trained stably in the log domain; only
ratios of fuzzy values matter to the defuzzifier, so fuzzy values are
reported normalized to a unit maximum per beat.

Training minimizes the cross-entropy of the softmax of the log-fuzzy
values (equivalently: the negative log of the *normalized* fuzzy value
of the true class) with :mod:`repro.core.scg`.  Sigmas are parameterized
by their logarithm to stay positive, with a light pull toward their
initial values that prevents degenerate collapse on small training
sets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.membership import (
    gaussian_membership,
    log_gaussian_membership,
    membership_by_name,
)
from repro.core.scg import scg_minimize

#: Default number of classes (N, V, L).
DEFAULT_N_CLASSES = 3


@dataclass(frozen=True)
class NeuroFuzzyClassifier:
    """A trained NFC: per-(coefficient, class) centers and sigmas.

    Attributes
    ----------
    centers, sigmas:
        ``(k, L)`` membership-function parameters.
    shape:
        Membership shape used at inference: ``"gaussian"``,
        ``"linear"`` or ``"triangular"``.  Training always uses
        Gaussian MFs; the embedded shapes reuse the trained parameters.
    """

    centers: np.ndarray
    sigmas: np.ndarray
    shape: str = "gaussian"

    def __post_init__(self) -> None:
        centers = np.asarray(self.centers, dtype=float)
        sigmas = np.asarray(self.sigmas, dtype=float)
        if centers.shape != sigmas.shape or centers.ndim != 2:
            raise ValueError("centers and sigmas must both be (k, L)")
        if np.any(sigmas <= 0):
            raise ValueError("sigmas must be positive")
        # Validates the shape name; resolved once here so the forward
        # passes skip the registry lookup on every call.
        object.__setattr__(self, "_membership", membership_by_name(self.shape))
        object.__setattr__(self, "centers", centers)
        object.__setattr__(self, "sigmas", sigmas)

    @property
    def n_coefficients(self) -> int:
        """Number of input coefficients k."""
        return int(self.centers.shape[0])

    @property
    def n_classes(self) -> int:
        """Number of classes L."""
        return int(self.centers.shape[1])

    def with_shape(self, shape: str) -> "NeuroFuzzyClassifier":
        """Same parameters, different membership shape."""
        membership_by_name(shape)
        return replace(self, shape=shape)

    # ------------------------------------------------------------------
    # Forward passes
    # ------------------------------------------------------------------
    def membership_grades(self, U: np.ndarray) -> np.ndarray:
        """Membership-layer output, shape ``(n, k, L)`` (or ``(k, L)``)."""
        return self._membership(U, self.centers, self.sigmas)

    def fuzzy_values(self, U: np.ndarray) -> np.ndarray:
        """Fuzzification-layer output, normalized to unit max per beat.

        Only the *ratios* of the per-class fuzzy values are meaningful
        (the defuzzification rule is scale-invariant), so the product
        over coefficients is computed in the log domain and shifted so
        the per-beat maximum is 1 — this never under- or overflows even
        for k = 32 Gaussian grades.

        Beats whose fuzzy values vanish for *all* classes (possible
        with the triangular shape, which has no positive floor) return
        an all-zero row; the defuzzifier maps those to Unknown.
        """
        U = np.asarray(U, dtype=float)
        single = U.ndim == 1
        if single:
            U = U[np.newaxis, :]
        if self.shape == "gaussian":
            logs = log_gaussian_membership(U, self.centers, self.sigmas).sum(axis=1)
            values = np.exp(logs - logs.max(axis=1, keepdims=True))
        else:
            # Grades lie in [0, 1] and k <= a few tens, so the direct
            # product stays within float64 range (>= 65535^-k > 1e-160
            # for non-zero grades); normalization restores unit max.
            products = self.membership_grades(U).prod(axis=1)
            peak = products.max(axis=1, keepdims=True)
            values = products / np.where(peak > 0.0, peak, 1.0)
        return values[0] if single else values

    def log_fuzzy_values(self, U: np.ndarray) -> np.ndarray:
        """Unnormalized log fuzzy values (Gaussian shape only).

        These are the logits the trainer differentiates; inference
        should use :meth:`fuzzy_values`.
        """
        if self.shape != "gaussian":
            raise ValueError("log fuzzy values are only defined for the gaussian shape")
        return log_gaussian_membership(U, self.centers, self.sigmas).sum(axis=1)

    def posterior(self, U: np.ndarray) -> np.ndarray:
        """Normalized fuzzy values summing to 1 per beat (softmax form)."""
        values = np.atleast_2d(self.fuzzy_values(U))
        totals = values.sum(axis=1, keepdims=True)
        safe = np.where(totals > 0.0, totals, 1.0)
        posterior = values / safe
        return posterior[0] if np.asarray(U).ndim == 1 else posterior

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @classmethod
    def initialize(
        cls, U: np.ndarray, y: np.ndarray, n_classes: int = DEFAULT_N_CLASSES
    ) -> "NeuroFuzzyClassifier":
        """Moment-matching initialization.

        Centers are the per-class means of the projected coefficients
        and sigmas the per-class standard deviations (floored at 5% of
        the global coefficient scale so no MF starts degenerate) —
        i.e. the diagonal-Gaussian classifier SCG then refines.
        """
        U = np.asarray(U, dtype=float)
        y = np.asarray(y)
        if U.ndim != 2:
            raise ValueError("U must be (n, k)")
        if y.shape != (U.shape[0],):
            raise ValueError("one label per beat required")
        k = U.shape[1]
        global_scale = float(U.std()) or 1.0
        centers = np.zeros((k, n_classes))
        sigmas = np.full((k, n_classes), global_scale)
        for label in range(n_classes):
            members = U[y == label]
            if members.shape[0] == 0:
                continue
            centers[:, label] = members.mean(axis=0)
            sigmas[:, label] = np.maximum(members.std(axis=0), 0.05 * global_scale)
        return cls(centers, sigmas)

    @classmethod
    def fit(
        cls,
        U: np.ndarray,
        y: np.ndarray,
        n_classes: int = DEFAULT_N_CLASSES,
        max_iterations: int = 150,
        sigma_regularization: float = 1e-3,
    ) -> "NeuroFuzzyClassifier":
        """Train Gaussian MFs with scaled conjugate gradient.

        Parameters
        ----------
        U:
            ``(n, k)`` projected training coefficients (training set 1).
        y:
            ``(n,)`` integer labels.
        n_classes:
            Number of classes (3 for N/V/L).
        max_iterations:
            SCG iteration budget.
        sigma_regularization:
            Weight of the pull of ``log sigma`` toward its
            initialization (prevents width collapse on tiny classes).

        Returns
        -------
        NeuroFuzzyClassifier
            Trained classifier with the ``gaussian`` shape.
        """
        initial = cls.initialize(U, y, n_classes)
        U = np.asarray(U, dtype=float)
        y = np.asarray(y)
        n, k = U.shape
        log_sigma0 = np.log(initial.sigmas)
        one_hot = np.zeros((n, n_classes))
        one_hot[np.arange(n), y] = 1.0

        def unpack(theta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            centers = theta[: k * n_classes].reshape(k, n_classes)
            log_sigmas = theta[k * n_classes :].reshape(k, n_classes)
            return centers, log_sigmas

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            centers, log_sigmas = unpack(theta)
            sigmas = np.exp(np.clip(log_sigmas, -20.0, 20.0))
            diff = U[:, :, np.newaxis] - centers[np.newaxis]  # (n, k, L)
            z2 = (diff / sigmas[np.newaxis]) ** 2
            logits = -0.5 * z2.sum(axis=1)  # (n, L)
            shifted = logits - logits.max(axis=1, keepdims=True)
            log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            log_posterior = shifted - log_norm
            loss = -float((one_hot * log_posterior).sum()) / n
            posterior = np.exp(log_posterior)
            dlogits = (posterior - one_hot) / n  # (n, L)
            # dz_l/dc = diff / sigma^2 ; dz_l/dlog sigma = diff^2 / sigma^2
            grad_centers = np.einsum("nl,nkl->kl", dlogits, diff / sigmas[np.newaxis] ** 2)
            grad_log_sigmas = np.einsum("nl,nkl->kl", dlogits, z2)
            reg = log_sigmas - log_sigma0
            loss += 0.5 * sigma_regularization * float((reg**2).sum())
            grad_log_sigmas = grad_log_sigmas + sigma_regularization * reg
            return loss, np.concatenate([grad_centers.ravel(), grad_log_sigmas.ravel()])

        theta0 = np.concatenate([initial.centers.ravel(), log_sigma0.ravel()])
        result = scg_minimize(objective, theta0, max_iterations=max_iterations)
        centers, log_sigmas = unpack(result.x)
        return cls(centers, np.exp(np.clip(log_sigmas, -20.0, 20.0)))
