"""The complete two-step training procedure (Section III-A).

Step 1 (inner): for a candidate projection matrix P, project *training
set 1* and fit the NFC membership functions with scaled conjugate
gradient.

Step 2 (outer): score the candidate by projecting *training set 2*,
tuning ``alpha_train`` so the ARR on that set reaches the target
(97% across the paper's experiments), and reading off the resulting
NDR — "the performance (score) of the trained classifier is then the
corresponding percentage of normal beats correctly detected".  A
genetic algorithm searches the projection space for the
highest-scoring P.

:func:`train_classifier` packages the whole procedure and returns a
:class:`TrainedClassifier` carrying the optimized projection, the
fitted NFC and the tuned ``alpha_train``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.achlioptas import AchlioptasMatrix, generate_achlioptas
from repro.core.defuzz import defuzzify, tune_alpha
from repro.core.genetic import GeneticConfig, GeneticResult, optimize_projection
from repro.core.metrics import normal_discard_rate
from repro.core.nfc import NeuroFuzzyClassifier
from repro.ecg.mitbih import LabeledBeats


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of the two-step training.

    Attributes
    ----------
    n_coefficients:
        Projection size k (paper: 8, 16 or 32).
    target_arr:
        Minimum ARR enforced on training set 2 when tuning
        ``alpha_train`` (paper: 0.97).
    scg_iterations:
        SCG budget of each inner NFC fit.
    genetic:
        GA hyper-parameters (paper: population 20, 30 generations).
    sigma_regularization:
        Regularization of the NFC fit (see
        :meth:`repro.core.nfc.NeuroFuzzyClassifier.fit`).
    """

    n_coefficients: int = 8
    target_arr: float = 0.97
    scg_iterations: int = 120
    genetic: GeneticConfig = field(default_factory=GeneticConfig)
    sigma_regularization: float = 1e-3

    def __post_init__(self) -> None:
        if self.n_coefficients < 1:
            raise ValueError("n_coefficients must be >= 1")
        if not 0.0 <= self.target_arr <= 1.0:
            raise ValueError("target_arr must be in [0, 1]")


@dataclass(frozen=True)
class TrainedClassifier:
    """Everything the test phase needs.

    Attributes
    ----------
    projection:
        The optimized Achlioptas matrix.
    nfc:
        The fitted neuro-fuzzy classifier (Gaussian shape).
    alpha_train:
        The defuzzification coefficient tuned on training set 2.
    score:
        NDR on training set 2 at ``alpha_train`` (the GA fitness of the
        winning chromosome).
    ga_result:
        Full GA trace (history, evaluation count); ``None`` when the
        projection was supplied rather than optimized.
    """

    projection: AchlioptasMatrix
    nfc: NeuroFuzzyClassifier
    alpha_train: float
    score: float
    ga_result: GeneticResult | None = None


def fit_nfc_for_projection(
    projection: AchlioptasMatrix,
    train1: LabeledBeats,
    config: TrainingConfig,
) -> NeuroFuzzyClassifier:
    """Inner step: fit NFC membership functions for one projection."""
    U1 = projection.project(train1.X)
    return NeuroFuzzyClassifier.fit(
        U1,
        train1.y,
        max_iterations=config.scg_iterations,
        sigma_regularization=config.sigma_regularization,
    )


def score_candidate(
    projection: AchlioptasMatrix,
    nfc: NeuroFuzzyClassifier,
    train2: LabeledBeats,
    target_arr: float,
) -> tuple[float, float]:
    """Outer step: tune alpha on training set 2 and return (score, alpha).

    The score is the NDR at the tuned alpha; infeasible candidates
    (cannot reach the ARR target even at alpha = 1) score the NDR at
    alpha = 1, which is typically poor, steering the GA away.
    """
    U2 = projection.project(train2.X)
    fuzzy = nfc.fuzzy_values(U2)
    alpha = tune_alpha(fuzzy, train2.y, target_arr)
    labels = defuzzify(fuzzy, alpha)
    return normal_discard_rate(train2.y, labels), alpha


def train_classifier(
    train1: LabeledBeats,
    train2: LabeledBeats,
    config: TrainingConfig | None = None,
    seed: int | None = None,
    projection: AchlioptasMatrix | None = None,
) -> TrainedClassifier:
    """Run the full two-step training.

    Parameters
    ----------
    train1:
        Small balanced set for the (expensive) NFC fits.
    train2:
        Larger set for projection scoring and alpha tuning.
    config:
        Training hyper-parameters.
    seed:
        Seed of the GA's generator.
    projection:
        When given, the GA is skipped and the NFC is trained for this
        fixed projection (used by ablations comparing GA-optimized
        against plain random projections).

    Returns
    -------
    TrainedClassifier
    """
    config = config or TrainingConfig()
    if train1.X.shape[1] != train2.X.shape[1]:
        raise ValueError("training sets must share the beat length")
    d = train1.X.shape[1]

    if projection is not None:
        if projection.n_inputs != d:
            raise ValueError("projection width does not match beat length")
        nfc = fit_nfc_for_projection(projection, train1, config)
        score, alpha = score_candidate(projection, nfc, train2, config.target_arr)
        return TrainedClassifier(projection, nfc, alpha, score, ga_result=None)

    cache: dict[bytes, float] = {}

    def fitness(candidate: AchlioptasMatrix) -> float:
        key = candidate.matrix.tobytes()
        if key not in cache:
            nfc_local = fit_nfc_for_projection(candidate, train1, config)
            cache[key], _ = score_candidate(
                candidate, nfc_local, train2, config.target_arr
            )
        return cache[key]

    ga_result = optimize_projection(
        fitness,
        n_coefficients=config.n_coefficients,
        n_inputs=d,
        config=config.genetic,
        rng=seed,
    )
    best = ga_result.best
    nfc = fit_nfc_for_projection(best, train1, config)
    score, alpha = score_candidate(best, nfc, train2, config.target_arr)
    return TrainedClassifier(best, nfc, alpha, score, ga_result=ga_result)


def train_random_baseline(
    train1: LabeledBeats,
    train2: LabeledBeats,
    config: TrainingConfig | None = None,
    n_draws: int = 20,
    seed: int | None = None,
) -> TrainedClassifier:
    """Best-of-``n_draws`` random projections, no GA (ablation baseline).

    Matches the GA's *initial population* quality, isolating the gain
    contributed by crossover/mutation generations.
    """
    config = config or TrainingConfig()
    rng = np.random.default_rng(seed)
    d = train1.X.shape[1]
    best: TrainedClassifier | None = None
    for _ in range(max(1, n_draws)):
        candidate = generate_achlioptas(config.n_coefficients, d, rng)
        trained = train_classifier(train1, train2, config, projection=candidate)
        if best is None or trained.score > best.score:
            best = trained
    assert best is not None
    return best
