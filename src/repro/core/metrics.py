"""Figures of merit: NDR, ARR, confusion matrices, Pareto fronts.

The paper's two metrics (Section IV-A):

* **Normal Discard Rate (NDR)** — "the rate of normal beats that are
  correctly identified as such and thus discarded": among true-N beats,
  the fraction classified as N (with confidence).
* **Abnormal Recognition Rate (ARR)** — "the percentage of abnormal
  beats that correctly activate the delineation block": among true
  V / L beats, the fraction classified as V, L or Unknown.

Both are functions of the defuzzified labels; Unknown counts toward
abnormal by design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.defuzz import NORMAL_LABEL, UNKNOWN_LABEL, is_abnormal
from repro.ecg.morphologies import BEAT_CLASSES


def normal_discard_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of true-N beats predicted N (discarded).

    Returns 1.0 when there are no normal beats (nothing to discard).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    normal = y_true == NORMAL_LABEL
    n = int(normal.sum())
    if n == 0:
        return 1.0
    return float(np.sum(normal & (y_pred == NORMAL_LABEL))) / n


def abnormal_recognition_rate(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of true-abnormal beats flagged abnormal (V, L or U).

    Returns 1.0 when there are no abnormal beats.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    abnormal = y_true != NORMAL_LABEL
    n = int(abnormal.sum())
    if n == 0:
        return 1.0
    return float(np.sum(abnormal & is_abnormal(y_pred))) / n


def activation_rate(y_pred: np.ndarray) -> float:
    """Fraction of beats that activate the detailed analysis.

    This drives the duty-cycle and radio savings: delineation runs only
    for this fraction of the traffic.
    """
    y_pred = np.asarray(y_pred)
    if y_pred.size == 0:
        return 0.0
    return float(np.mean(is_abnormal(y_pred)))


@dataclass(frozen=True)
class ClassificationReport:
    """Aggregate evaluation of a labeled beat set.

    Attributes
    ----------
    ndr, arr:
        The paper's two figures of merit.
    activation:
        Fraction of beats flagged abnormal (drives system savings).
    confusion:
        ``(L, L + 1)`` matrix: rows are true classes in
        :data:`BEAT_CLASSES` order, columns are predicted classes plus a
        final Unknown column.
    n_beats:
        Number of evaluated beats.
    """

    ndr: float
    arr: float
    activation: float
    confusion: np.ndarray
    n_beats: int

    @classmethod
    def from_labels(cls, y_true: np.ndarray, y_pred: np.ndarray) -> "ClassificationReport":
        """Build a report from true and defuzzified labels."""
        y_true = np.asarray(y_true)
        y_pred = np.asarray(y_pred)
        if y_true.shape != y_pred.shape:
            raise ValueError("label arrays must have equal shape")
        n_classes = len(BEAT_CLASSES)
        confusion = np.zeros((n_classes, n_classes + 1), dtype=np.int64)
        for true_label in range(n_classes):
            mask = y_true == true_label
            for predicted in range(n_classes):
                confusion[true_label, predicted] = int(
                    np.sum(mask & (y_pred == predicted))
                )
            confusion[true_label, n_classes] = int(
                np.sum(mask & (y_pred == UNKNOWN_LABEL))
            )
        return cls(
            ndr=normal_discard_rate(y_true, y_pred),
            arr=abnormal_recognition_rate(y_true, y_pred),
            activation=activation_rate(y_pred),
            confusion=confusion,
            n_beats=int(y_true.size),
        )

    def summary(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"NDR={100 * self.ndr:.2f}%  ARR={100 * self.arr:.2f}%  "
            f"activation={100 * self.activation:.2f}%  n={self.n_beats}"
        )


def pareto_front(ndr: np.ndarray, arr: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated (NDR, ARR) points, by ascending ARR.

    A point dominates another when it is at least as good on both axes
    and strictly better on one.  Used to draw the Figure 5 fronts.
    """
    ndr = np.asarray(ndr, dtype=float)
    arr = np.asarray(arr, dtype=float)
    if ndr.shape != arr.shape:
        raise ValueError("ndr and arr must have equal shape")
    order = np.argsort(arr, kind="stable")
    front: list[int] = []
    best_ndr = -np.inf
    # Traverse by descending ARR; keep points that improve NDR.
    for idx in order[::-1]:
        if ndr[idx] > best_ndr + 1e-12:
            front.append(int(idx))
            best_ndr = ndr[idx]
    return np.array(front[::-1], dtype=np.int64)


def ndr_at_arr(
    ndr: np.ndarray, arr: np.ndarray, target_arr: float
) -> float:
    """Best NDR among sweep points whose ARR meets the target.

    Returns ``nan`` when no point satisfies the target — the caller
    should then widen the sweep (or accept that the configuration
    cannot reach the requested ARR).
    """
    ndr = np.asarray(ndr, dtype=float)
    arr = np.asarray(arr, dtype=float)
    feasible = arr >= target_arr - 1e-12
    if not np.any(feasible):
        return float("nan")
    return float(ndr[feasible].max())
