"""The paper's primary contribution: RP-based neuro-fuzzy classification.

Modules
-------
:mod:`repro.core.achlioptas`
    Sparse Achlioptas random-projection matrices and the
    Johnson–Lindenstrauss distortion bound.
:mod:`repro.core.membership`
    Gaussian, linearized and triangular membership functions (float
    reference implementations).
:mod:`repro.core.nfc`
    The three-layer neuro-fuzzy classifier and its loss/gradient.
:mod:`repro.core.scg`
    Møller's scaled conjugate gradient minimizer.
:mod:`repro.core.defuzz`
    The (M1 - M2) >= alpha * S defuzzification rule and alpha tuning.
:mod:`repro.core.metrics`
    NDR / ARR figures of merit, confusion matrices, Pareto fronts.
:mod:`repro.core.genetic`
    Genetic optimization of the projection matrix.
:mod:`repro.core.training`
    The full two-step training procedure of Section III-A.
:mod:`repro.core.pipeline`
    End-to-end trained classifier object (project + NFC + defuzzify).
"""

from repro.core.achlioptas import (
    AchlioptasMatrix,
    generate_achlioptas,
    johnson_lindenstrauss_bound,
    project,
)
from repro.core.defuzz import DefuzzRule, UNKNOWN_LABEL, defuzzify, tune_alpha
from repro.core.metrics import ClassificationReport, abnormal_recognition_rate, normal_discard_rate
from repro.core.nfc import NeuroFuzzyClassifier
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig, train_classifier

__all__ = [
    "AchlioptasMatrix",
    "generate_achlioptas",
    "project",
    "johnson_lindenstrauss_bound",
    "DefuzzRule",
    "UNKNOWN_LABEL",
    "defuzzify",
    "tune_alpha",
    "ClassificationReport",
    "normal_discard_rate",
    "abnormal_recognition_rate",
    "NeuroFuzzyClassifier",
    "RPClassifierPipeline",
    "TrainingConfig",
    "train_classifier",
]
