"""Sparse Achlioptas random-projection matrices.

Achlioptas (JCSS 2003) showed that the dense Gaussian matrix of the
Johnson–Lindenstrauss lemma can be replaced by a sparse ternary matrix

.. math::

    P_{k,d} = \\begin{cases}
        +1 & \\text{with probability } 1/6 \\\\
        -1 & \\text{with probability } 1/6 \\\\
        \\phantom{+}0  & \\text{with probability } 2/3
    \\end{cases}

while keeping the JL distortion guarantee.  For the WBSN this is the
whole point: projecting a beat touches only one third of the samples on
average and needs only additions and subtractions — "database-friendly"
projections become *microcontroller-friendly*.

The paper omits the conventional :math:`\\sqrt{3/k}` scaling because the
NFC is trained directly on the unscaled coefficients (scale is absorbed
by the learned membership-function widths), and the embedded integer
pipeline must avoid the multiplication anyway.  The scaling is available
here as an option for JL-bound experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Probabilities of the elements (+1, -1, 0) of an Achlioptas matrix.
ELEMENT_PROBABILITIES = {+1: 1.0 / 6.0, -1: 1.0 / 6.0, 0: 2.0 / 3.0}


@dataclass(frozen=True)
class AchlioptasMatrix:
    """A ternary projection matrix with convenience accessors.

    Attributes
    ----------
    matrix:
        ``(k, d)`` array with entries in {-1, 0, +1}, dtype ``int8``.
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix)
        if m.ndim != 2:
            raise ValueError("projection matrix must be 2-D")
        values = np.unique(m)
        if not np.all(np.isin(values, (-1, 0, 1))):
            raise ValueError("Achlioptas matrix entries must be in {-1, 0, +1}")
        object.__setattr__(self, "matrix", m.astype(np.int8))

    @property
    def n_coefficients(self) -> int:
        """Output dimensionality k."""
        return int(self.matrix.shape[0])

    @property
    def n_inputs(self) -> int:
        """Input dimensionality d (samples per beat)."""
        return int(self.matrix.shape[1])

    @property
    def nnz(self) -> int:
        """Number of non-zero entries (additions the projection costs)."""
        return int(np.count_nonzero(self.matrix))

    @property
    def density(self) -> float:
        """Fraction of non-zero entries (expected 1/3)."""
        return self.nnz / self.matrix.size

    def project(self, v: np.ndarray, scaled: bool = False) -> np.ndarray:
        """Project beats: ``u = P v`` (rows of ``v`` are beats).

        Parameters
        ----------
        v:
            ``(d,)`` single beat or ``(n, d)`` beat matrix.
        scaled:
            Apply the :math:`\\sqrt{3/k}` JL normalization.
        """
        return project(self.matrix, v, scaled=scaled)

    def column_subsample(self, factor: int, phase: int = 0) -> "AchlioptasMatrix":
        """Matrix acting on a ``factor``-times downsampled input.

        Keeping one of every ``factor`` input samples corresponds to
        keeping the matching matrix columns (the paper's downsampling
        memory optimization: "the size of the matrix is reduced by a
        factor of four").
        """
        if factor < 1:
            raise ValueError("factor must be >= 1")
        if not 0 <= phase < factor:
            raise ValueError("phase must be in [0, factor)")
        return AchlioptasMatrix(self.matrix[:, phase::factor])


def generate_achlioptas(
    n_coefficients: int,
    n_inputs: int,
    rng: np.random.Generator | int | None = None,
) -> AchlioptasMatrix:
    """Draw a k x d Achlioptas matrix.

    Parameters
    ----------
    n_coefficients:
        Projection size k (the paper explores 8, 16, 32).
    n_inputs:
        Beat length d (200 at 360 Hz; 50 after 4x downsampling).
    rng:
        ``numpy`` generator or seed.

    Returns
    -------
    AchlioptasMatrix
        Entries drawn i.i.d. with probabilities (1/6, 2/3, 1/6) for
        (+1, 0, -1).
    """
    if n_coefficients < 1 or n_inputs < 1:
        raise ValueError("matrix dimensions must be positive")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    draws = rng.random((n_coefficients, n_inputs))
    matrix = np.zeros((n_coefficients, n_inputs), dtype=np.int8)
    matrix[draws < 1.0 / 6.0] = 1
    matrix[draws > 5.0 / 6.0] = -1
    return AchlioptasMatrix(matrix)


def project(matrix: np.ndarray, v: np.ndarray, scaled: bool = False) -> np.ndarray:
    """Apply a ternary projection ``u = P v`` (vectorized over beats).

    Parameters
    ----------
    matrix:
        ``(k, d)`` ternary matrix.
    v:
        ``(d,)`` or ``(n, d)`` beats.
    scaled:
        Multiply by :math:`\\sqrt{3/k}` (JL normalization).

    Returns
    -------
    np.ndarray
        ``(k,)`` or ``(n, k)`` projected coefficients, ``float64`` for
        float input, ``int64`` for integer input (overflow-safe for the
        WBSN's 16-bit samples: ``|u| <= d * 2^15 < 2^23``).
    """
    matrix = np.asarray(matrix)
    v = np.asarray(v)
    single = v.ndim == 1
    if single:
        v = v[np.newaxis, :]
    if v.shape[1] != matrix.shape[1]:
        raise ValueError(
            f"beat length {v.shape[1]} does not match matrix inputs {matrix.shape[1]}"
        )
    if np.issubdtype(v.dtype, np.integer):
        u = v.astype(np.int64) @ matrix.T.astype(np.int64)
    else:
        u = v @ matrix.T.astype(np.float64)
    if scaled:
        u = u * np.sqrt(3.0 / matrix.shape[0])
    return u[0] if single else u


def johnson_lindenstrauss_bound(n_points: int, epsilon: float) -> int:
    """Minimum k guaranteeing (1 +- epsilon) pairwise-distance distortion.

    Achlioptas' bound: with :math:`k \\ge k_0 = \\frac{4 + 2\\beta}
    {\\epsilon^2/2 - \\epsilon^3/3} \\log n` (using :math:`\\beta = 1`,
    i.e. success probability :math:`1 - 1/n`), all pairwise distances of
    ``n_points`` vectors are preserved within a factor
    :math:`1 \\pm \\epsilon`.

    The paper's operating point (k = 8..32) is far *below* this bound —
    the empirical observation that classification survives anyway (and
    that a GA can pick a particularly good projection) is one of its
    contributions.
    """
    if n_points < 2:
        raise ValueError("need at least two points")
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    beta = 1.0
    k0 = (4.0 + 2.0 * beta) / (epsilon**2 / 2.0 - epsilon**3 / 3.0) * np.log(n_points)
    return int(np.ceil(k0))


def projection_distortion(
    matrix: np.ndarray, v: np.ndarray, n_pairs: int = 200, rng=None
) -> np.ndarray:
    """Empirical pairwise-distance distortion of a projection.

    Samples ``n_pairs`` random beat pairs and returns the ratios
    ``||P(a-b)||^2 * (3/k) / ||a-b||^2`` (1.0 means perfect isometry).
    Used by tests and by the JL-bound example.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    v = np.asarray(v, dtype=float)
    if v.ndim != 2 or v.shape[0] < 2:
        raise ValueError("need a (n, d) matrix with n >= 2")
    k = matrix.shape[0]
    ratios = np.empty(n_pairs)
    for i in range(n_pairs):
        a, b = rng.choice(v.shape[0], size=2, replace=False)
        difference = v[a] - v[b]
        original = float(np.dot(difference, difference))
        projected = project(matrix, difference)
        ratios[i] = (3.0 / k) * float(np.dot(projected, projected)) / max(original, 1e-12)
    return ratios
