"""Statistical validation: bootstrap confidence intervals and seed sweeps.

The paper reports point estimates (one training run, one test pass).
A reproduction should quantify how much of any discrepancy is noise:

* :func:`bootstrap_metrics` resamples the test set to put confidence
  intervals on NDR and ARR for a *fixed* classifier;
* :func:`seed_sweep` retrains the whole two-step procedure across
  seeds, capturing the variability contributed by the random
  projection draw, the GA trajectory and the SCG fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import abnormal_recognition_rate, normal_discard_rate
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig, train_classifier
from repro.ecg.mitbih import LabeledBeats


@dataclass(frozen=True)
class MetricInterval:
    """A point estimate with a percentile bootstrap interval."""

    point: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        """Interval width."""
        return self.upper - self.lower


def bootstrap_metrics(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: np.random.Generator | int | None = None,
) -> dict[str, MetricInterval]:
    """Percentile-bootstrap intervals for NDR and ARR.

    Parameters
    ----------
    y_true, y_pred:
        True labels and defuzzified predictions over the test set.
    n_resamples:
        Bootstrap resamples.
    confidence:
        Two-sided confidence level.
    rng:
        Generator or seed.

    Returns
    -------
    dict
        ``{"ndr": MetricInterval, "arr": MetricInterval}``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ValueError("need at least 10 resamples")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must have equal shape")
    n = y_true.size
    ndr_samples = np.empty(n_resamples)
    arr_samples = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        ndr_samples[b] = normal_discard_rate(y_true[idx], y_pred[idx])
        arr_samples[b] = abnormal_recognition_rate(y_true[idx], y_pred[idx])
    tail = (1.0 - confidence) / 2.0
    return {
        "ndr": MetricInterval(
            point=normal_discard_rate(y_true, y_pred),
            lower=float(np.quantile(ndr_samples, tail)),
            upper=float(np.quantile(ndr_samples, 1.0 - tail)),
            confidence=confidence,
        ),
        "arr": MetricInterval(
            point=abnormal_recognition_rate(y_true, y_pred),
            lower=float(np.quantile(arr_samples, tail)),
            upper=float(np.quantile(arr_samples, 1.0 - tail)),
            confidence=confidence,
        ),
    }


@dataclass(frozen=True)
class SeedSweepResult:
    """NDR/ARR spread across full training repetitions."""

    seeds: tuple[int, ...]
    ndr: np.ndarray
    arr: np.ndarray

    @property
    def ndr_mean(self) -> float:
        """Mean NDR across seeds."""
        return float(self.ndr.mean())

    @property
    def ndr_std(self) -> float:
        """NDR standard deviation across seeds."""
        return float(self.ndr.std())

    def summary(self) -> str:
        """One-line mean ± std summary."""
        return (
            f"NDR {100 * self.ndr.mean():.2f} ± {100 * self.ndr.std():.2f} %, "
            f"ARR {100 * self.arr.mean():.2f} ± {100 * self.arr.std():.2f} % "
            f"({len(self.seeds)} seeds)"
        )


def seed_sweep(
    train1: LabeledBeats,
    train2: LabeledBeats,
    test: LabeledBeats,
    config: TrainingConfig,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    target_arr: float = 0.97,
) -> SeedSweepResult:
    """Retrain the full two-step procedure per seed and evaluate.

    Each repetition redraws the GA's initial projection population and
    evolution path; the spread of the resulting test NDR quantifies how
    sensitive the methodology is to the projection randomness —
    the variability the paper's GA is meant to tame.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    ndr = np.empty(len(seeds))
    arr = np.empty(len(seeds))
    for i, seed in enumerate(seeds):
        trained = train_classifier(train1, train2, config, seed=seed)
        pipeline = RPClassifierPipeline.from_trained(trained).tuned_for(test, target_arr)
        report = pipeline.evaluate(test)
        ndr[i] = report.ndr
        arr[i] = report.arr
    return SeedSweepResult(seeds=tuple(seeds), ndr=ndr, arr=arr)
