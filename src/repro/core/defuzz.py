"""Defuzzification: the (M1 - M2) >= alpha * S rule and alpha tuning.

The third NFC layer considers the largest and second-largest fuzzy
values :math:`M_{1f}, M_{2f}` and their sum :math:`S = \\sum_l f_l`.
If :math:`M_{1f} - M_{2f} \\ge \\alpha S` (``alpha`` in [0, 1]) the beat
is assigned to the argmax class, otherwise it is marked ``Unknown``.
V, L and Unknown beats are treated as (possibly) pathological; only a
confident N verdict discards a beat.

``alpha`` is the knob that trades Normal Discard Rate against Abnormal
Recognition Rate: raising it sends low-confidence beats to Unknown,
which can only *increase* ARR and *decrease* NDR.  The paper exploits
this monotonicity twice: ``alpha_train`` fixes a minimum ARR during
training, and an independent ``alpha_test`` re-tunes the deployed
trade-off — both are implemented by :func:`tune_alpha` /
:func:`sweep_alpha` below, using the per-beat confidence *margin*
``(M1 - M2) / S``, against which the rule is simply a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Label reported for beats failing the confidence test.  The paper's
#: class labels (N, V, L) are non-negative indices; Unknown is kept
#: distinct and negative so it can never collide with a real class.
UNKNOWN_LABEL = -1

#: Index of the Normal class within the fuzzy-value columns.
NORMAL_LABEL = 0


@dataclass(frozen=True)
class DefuzzRule:
    """The defuzzification rule with a fixed ``alpha``."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")

    def __call__(self, fuzzy: np.ndarray) -> np.ndarray:
        return defuzzify(fuzzy, self.alpha)


def margins(fuzzy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-beat argmax class and confidence margin ``(M1 - M2) / S``.

    Beats whose fuzzy values are all zero get a margin of ``-1`` (they
    can never pass the confidence test, for any alpha >= 0), which is
    how all-zero triangular products become Unknown.
    """
    fuzzy = np.atleast_2d(np.asarray(fuzzy, dtype=float))
    if fuzzy.ndim != 2 or fuzzy.shape[1] < 2:
        raise ValueError("fuzzy values must be (n, L) with L >= 2")
    if np.any(fuzzy < 0):
        raise ValueError("fuzzy values must be non-negative")
    order = np.sort(fuzzy, axis=1)
    m1 = order[:, -1]
    m2 = order[:, -2]
    total = fuzzy.sum(axis=1)
    margin = np.full(fuzzy.shape[0], -1.0)
    alive = total > 0.0
    margin[alive] = (m1[alive] - m2[alive]) / total[alive]
    return fuzzy.argmax(axis=1), margin


def defuzzify(fuzzy: np.ndarray, alpha: float) -> np.ndarray:
    """Apply the rule: argmax class when confident, else Unknown.

    Parameters
    ----------
    fuzzy:
        ``(n, L)`` non-negative fuzzy values (any common scale).
    alpha:
        Defuzzification coefficient in [0, 1].

    Returns
    -------
    np.ndarray
        ``(n,)`` labels: a class index or :data:`UNKNOWN_LABEL`.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    winners, margin = margins(fuzzy)
    labels = np.where(margin >= alpha, winners, UNKNOWN_LABEL)
    return labels.astype(np.int64)


def is_abnormal(labels: np.ndarray) -> np.ndarray:
    """Boolean mask of beats the system treats as pathological.

    Everything except a confident Normal verdict activates the detailed
    analysis: V, L and Unknown all count as abnormal.
    """
    labels = np.asarray(labels)
    return labels != NORMAL_LABEL


def tune_alpha(
    fuzzy: np.ndarray,
    y: np.ndarray,
    target_arr: float = 0.97,
) -> float:
    """Smallest alpha achieving at least ``target_arr`` on labeled data.

    Because ARR is non-decreasing and NDR non-increasing in alpha, the
    smallest feasible alpha is also the NDR-optimal one.  The threshold
    is found exactly from the margins of the *misclassified-as-normal*
    abnormal beats — no grid search.

    Parameters
    ----------
    fuzzy:
        ``(n, L)`` fuzzy values.
    y:
        True labels (0 = N; anything else abnormal).
    target_arr:
        Required Abnormal Recognition Rate in [0, 1].

    Returns
    -------
    float
        The tuned alpha.  Returns 0.0 when the target is met already at
        alpha = 0 and 1.0 when even alpha = 1 cannot meet it (the rule
        caps at 1: a beat with a single non-zero class always passes).
    """
    if not 0.0 <= target_arr <= 1.0:
        raise ValueError("target_arr must be in [0, 1]")
    y = np.asarray(y)
    winners, margin = margins(fuzzy)
    abnormal = y != NORMAL_LABEL
    n_abnormal = int(abnormal.sum())
    if n_abnormal == 0:
        return 0.0
    # Abnormal beats currently (alpha=0) recognized: argmax != N.
    base_recognized = int(np.sum(abnormal & (winners != NORMAL_LABEL)))
    required = int(np.ceil(target_arr * n_abnormal - 1e-9))
    extra = required - base_recognized
    if extra <= 0:
        return 0.0
    # Candidates that flip to Unknown (recognized) once alpha exceeds
    # their margin: abnormal beats whose argmax is N.
    flippable = np.sort(margin[abnormal & (winners == NORMAL_LABEL)])
    if extra > flippable.size:
        return 1.0
    # alpha must exceed the margin of the 'extra' easiest candidates.
    threshold = flippable[extra - 1]
    alpha = float(np.nextafter(threshold, np.inf))
    return min(max(alpha, 0.0), 1.0)


def sweep_alpha(
    fuzzy: np.ndarray,
    y: np.ndarray,
    alphas: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """NDR and ARR as functions of alpha (the Figure 5 sweep).

    Parameters
    ----------
    fuzzy:
        ``(n, L)`` fuzzy values.
    y:
        True labels.
    alphas:
        Grid of alphas; defaults to 201 points covering [0, 1].

    Returns
    -------
    (alphas, ndr, arr):
        Arrays of equal length.  Computed via sorting + cumulative
        counts, O(n log n + m) rather than O(n m).
    """
    if alphas is None:
        alphas = np.linspace(0.0, 1.0, 201)
    alphas = np.asarray(alphas, dtype=float)
    y = np.asarray(y)
    winners, margin = margins(fuzzy)

    normal = y == NORMAL_LABEL
    abnormal = ~normal
    n_normal = max(int(normal.sum()), 1)
    n_abnormal = max(int(abnormal.sum()), 1)

    # NDR(alpha): true-N beats with argmax N and margin >= alpha.
    ndr_margins = np.sort(margin[normal & (winners == NORMAL_LABEL)])
    # ARR(alpha): abnormal beats with argmax != N, plus abnormal argmax-N
    # beats whose margin < alpha (they become Unknown).
    base_recognized = int(np.sum(abnormal & (winners != NORMAL_LABEL)))
    arr_margins = np.sort(margin[abnormal & (winners == NORMAL_LABEL)])

    # Counts with margin >= alpha / < alpha via searchsorted.
    ndr = (ndr_margins.size - np.searchsorted(ndr_margins, alphas, side="left")) / n_normal
    arr = (base_recognized + np.searchsorted(arr_margins, alphas, side="left")) / n_abnormal
    return alphas, ndr, arr
