"""Membership functions of the neuro-fuzzy classifier (float reference).

During training the membership layer uses Gaussian membership functions

.. math::

    \\mu_{k,l}(u_k) = \\exp\\left( \\frac{-(u_k - c_{k,l})^2}
                                      {2 \\sigma_{k,l}^2} \\right)

one per (coefficient k, class l) pair.  The embedded versions — the
4-segment linear approximation of Figure 4 and the simpler triangular
approximation it is compared against — are defined here in float form
(the integer implementations live in :mod:`repro.fixedpoint`), so that
Figure 5's three Pareto fronts can be produced under identical float
conditions, isolating the effect of the MF *shape* from quantization.

All evaluators are vectorized: inputs of shape ``(n, k)`` against
parameter arrays of shape ``(k, L)`` produce grades of shape
``(n, k, L)``.
"""

from __future__ import annotations

import numpy as np

#: Paper constant: the linearization breakpoint unit S = 2.35 sigma
#: (2.35 sigma is the full width at half maximum of a Gaussian).
S_FACTOR = 2.35

#: Value of the Gaussian at |c - x| = S (used as the inner breakpoint).
GAUSSIAN_AT_S = float(np.exp(-(S_FACTOR**2) / 2.0))

#: Smallest non-zero grade of the linearized MF, in units of the MF
#: maximum (1 LSB of the 16-bit embedded range).
LINEAR_FLOOR = 1.0 / 65535.0


def _broadcast(u: np.ndarray, centers: np.ndarray, sigmas: np.ndarray):
    """Shape-check and broadcast inputs to (n, k, L) operands."""
    u = np.asarray(u, dtype=float)
    centers = np.asarray(centers, dtype=float)
    sigmas = np.asarray(sigmas, dtype=float)
    single = u.ndim == 1
    if single:
        u = u[np.newaxis, :]
    if centers.shape != sigmas.shape or centers.ndim != 2:
        raise ValueError("centers and sigmas must both be (k, L)")
    if u.shape[1] != centers.shape[0]:
        raise ValueError(
            f"{u.shape[1]} coefficients vs parameters for {centers.shape[0]}"
        )
    if np.any(sigmas <= 0):
        raise ValueError("sigmas must be positive")
    return u[:, :, np.newaxis], centers[np.newaxis], sigmas[np.newaxis], single


def gaussian_membership(
    u: np.ndarray, centers: np.ndarray, sigmas: np.ndarray
) -> np.ndarray:
    """Gaussian membership grades.

    Parameters
    ----------
    u:
        ``(k,)`` or ``(n, k)`` projected coefficients.
    centers, sigmas:
        ``(k, L)`` per-coefficient, per-class parameters.

    Returns
    -------
    np.ndarray
        Grades in (0, 1], shape ``(k, L)`` or ``(n, k, L)``.
    """
    uu, cc, ss, single = _broadcast(u, centers, sigmas)
    z = (uu - cc) / ss
    grades = np.exp(-0.5 * z * z)
    return grades[0] if single else grades


def log_gaussian_membership(
    u: np.ndarray, centers: np.ndarray, sigmas: np.ndarray
) -> np.ndarray:
    """Log of the Gaussian grades (used by the trainer; never underflows)."""
    uu, cc, ss, single = _broadcast(u, centers, sigmas)
    z = (uu - cc) / ss
    logs = -0.5 * z * z
    return logs[0] if single else logs


def linearized_membership(
    u: np.ndarray, centers: np.ndarray, sigmas: np.ndarray
) -> np.ndarray:
    """Float model of the paper's 4-segment linearized MF (Figure 4).

    With ``S = 2.35 sigma`` and ``r = |c - x|``:

    ======================  ===========================================
    region                  value
    ======================  ===========================================
    ``r >= 4S``             0
    ``2S <= r < 4S``        the floor (1 LSB of the 16-bit range)
    ``S <= r < 2S``         linear from the floor at 2S up to the true
                            Gaussian value at S (~0.0632)
    ``r < S``               linear from the value at S up to 1 at r = 0
    ======================  ===========================================

    The formulation "has the desirable property to be positive in a
    large range; hence, it is rare that a fuzzy value becomes 0 after
    the defuzzification (product) classifier stage."
    """
    uu, cc, ss, single = _broadcast(u, centers, sigmas)
    S = S_FACTOR * ss
    ratio = np.abs(uu - cc) / S
    grades = np.zeros_like(ratio)
    inner = ratio < 1.0
    middle = (ratio >= 1.0) & (ratio < 2.0)
    outer = (ratio >= 2.0) & (ratio < 4.0)
    # r < S: 1 at r = 0 down to GAUSSIAN_AT_S at r = S.
    grades[inner] = 1.0 - (1.0 - GAUSSIAN_AT_S) * ratio[inner]
    # S <= r < 2S: GAUSSIAN_AT_S at S down to the floor at 2S.
    slope = GAUSSIAN_AT_S - LINEAR_FLOOR
    grades[middle] = GAUSSIAN_AT_S - slope * (ratio[middle] - 1.0)
    grades[outer] = LINEAR_FLOOR
    return grades[0] if single else grades


def triangular_membership(
    u: np.ndarray, centers: np.ndarray, sigmas: np.ndarray
) -> np.ndarray:
    """Float model of the simple triangular approximation of Figure 4.

    A single linear segment from 1 at ``r = 0`` to 0 at ``r = 2S``
    (the ``[-4.7 sigma, 4.7 sigma]`` support shown in the figure), zero
    outside.  Unlike the 4-segment version it has no positive floor, so
    products collapse to zero more often — the cause of its poor
    high-ARR behaviour in Figure 5.
    """
    uu, cc, ss, single = _broadcast(u, centers, sigmas)
    S = S_FACTOR * ss
    r = np.abs(uu - cc)
    grades = np.clip(1.0 - r / (2.0 * S), 0.0, 1.0)
    return grades[0] if single else grades


#: Registry of float membership evaluators by shape name.
MEMBERSHIP_SHAPES = {
    "gaussian": gaussian_membership,
    "linear": linearized_membership,
    "triangular": triangular_membership,
}


def membership_by_name(shape: str):
    """Look up a membership evaluator (``gaussian``/``linear``/``triangular``)."""
    try:
        return MEMBERSHIP_SHAPES[shape]
    except KeyError as exc:
        raise ValueError(
            f"unknown membership shape {shape!r}; expected one of {sorted(MEMBERSHIP_SHAPES)}"
        ) from exc


def linearization_error(
    sigmas: float | np.ndarray = 1.0, n_points: int = 1000, shape: str = "linear"
) -> dict[str, float]:
    """Approximation error of a linearized shape vs the Gaussian (Fig. 4).

    Evaluates the requested shape and the true Gaussian on the
    ``[-4.7 sigma, 0]`` range shown in the paper's figure and returns
    max / mean / RMS absolute error.  Used by the Figure 4 benchmark.
    """
    sigma = float(np.asarray(sigmas).reshape(-1)[0])
    x = np.linspace(-2.0 * S_FACTOR * sigma, 0.0, n_points)[:, np.newaxis]
    centers = np.zeros((1, 1))
    sig = np.full((1, 1), sigma)
    reference = gaussian_membership(x, centers, sig)[:, 0, 0]
    approx = membership_by_name(shape)(x, centers, sig)[:, 0, 0]
    error = np.abs(approx - reference)
    return {
        "max_error": float(error.max()),
        "mean_error": float(error.mean()),
        "rms_error": float(np.sqrt(np.mean(error**2))),
    }
