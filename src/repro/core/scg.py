"""Møller's scaled conjugate gradient (SCG) minimizer.

The paper trains the NFC membership functions with the scaled conjugate
gradient of Møller (Neural Networks, 1993), chosen because it needs no
line search (each step costs one extra gradient evaluation instead) and
has the low memory footprint of conjugate-gradient methods — "both
computationally simpler and presenting lower memory requirements than
comparable methods".

This is a faithful implementation of the algorithm's published
pseudocode: second-order information is estimated from a finite
gradient difference along the search direction, a Levenberg–Marquardt
style scalar ``lambda`` keeps the implied Hessian positive definite,
and ``lambda`` is adapted from the comparison parameter ``Delta``
(the ratio of actual to predicted loss reduction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

#: Objective interface: maps parameters to (loss, gradient).
Objective = Callable[[np.ndarray], tuple[float, np.ndarray]]


@dataclass
class SCGResult:
    """Outcome of an SCG run.

    Attributes
    ----------
    x:
        Final parameter vector.
    fun:
        Final loss.
    n_iterations:
        Iterations actually executed.
    converged:
        True when the gradient-norm tolerance was met before the
        iteration budget ran out.
    history:
        Loss after every *successful* step (useful for monotonicity
        checks: SCG only accepts steps that reduce the loss).
    """

    x: np.ndarray
    fun: float
    n_iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)


def scg_minimize(
    objective: Objective,
    x0: np.ndarray,
    max_iterations: int = 200,
    grad_tol: float = 1e-6,
    sigma0: float = 1e-4,
    lambda0: float = 1e-6,
) -> SCGResult:
    """Minimize ``objective`` starting from ``x0``.

    Parameters
    ----------
    objective:
        Callable returning ``(loss, gradient)``.
    x0:
        Initial parameters (flat vector).
    max_iterations:
        Iteration budget (each iteration costs at most two objective
        evaluations).
    grad_tol:
        Convergence threshold on the gradient infinity-norm.
    sigma0:
        Step used for the finite-difference curvature estimate.
    lambda0:
        Initial Levenberg–Marquardt scale.

    Returns
    -------
    SCGResult
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise ValueError("x0 must be a flat parameter vector")
    n = x.size

    f, gradient = objective(x)
    f = float(f)
    r = -np.asarray(gradient, dtype=float)
    p = r.copy()
    success = True
    lam = float(lambda0)
    lam_bar = 0.0
    history = [f]
    delta = 0.0

    k = 0
    converged = bool(np.max(np.abs(r)) <= grad_tol)
    while k < max_iterations and not converged:
        k += 1
        p_norm2 = float(np.dot(p, p))
        if p_norm2 <= 0:
            break

        if success:
            # 2. Second-order information along p.
            sigma_k = sigma0 / np.sqrt(p_norm2)
            _, gradient_trial = objective(x + sigma_k * p)
            s = (np.asarray(gradient_trial, dtype=float) - (-r)) / sigma_k
            delta = float(np.dot(p, s))

        # 3. Scale delta with the LM term.
        delta = delta + (lam - lam_bar) * p_norm2

        # 4. Make the implied Hessian positive definite.
        if delta <= 0:
            lam_bar = 2.0 * (lam - delta / p_norm2)
            delta = -delta + lam * p_norm2
            lam = lam_bar

        # 5. Step size.
        mu = float(np.dot(p, r))
        alpha = mu / delta

        # 6. Comparison parameter (actual vs predicted reduction).
        x_trial = x + alpha * p
        f_trial, gradient_trial = objective(x_trial)
        f_trial = float(f_trial)
        comparison = 2.0 * delta * (f - f_trial) / (mu * mu) if mu != 0 else -1.0

        if comparison >= 0:
            # 7a. Successful step.
            x = x_trial
            f = f_trial
            r_new = -np.asarray(gradient_trial, dtype=float)
            lam_bar = 0.0
            success = True
            history.append(f)
            if k % n == 0:
                p = r_new.copy()  # periodic restart
            else:
                beta = (float(np.dot(r_new, r_new)) - float(np.dot(r_new, r))) / mu
                p = r_new + beta * p
            r = r_new
            if comparison >= 0.75:
                lam = max(lam * 0.25, 1e-15)
            converged = bool(np.max(np.abs(r)) <= grad_tol)
        else:
            # 7b. Unsuccessful step: raise lambda and retry direction.
            lam_bar = lam
            success = False

        # 8. Increase lambda on poor agreement.
        if comparison < 0.25:
            lam = lam + delta * (1.0 - comparison) / p_norm2
        if lam > 1e20:
            break  # numerically stuck; stop rather than loop

    return SCGResult(x=x, fun=f, n_iterations=k, converged=converged, history=history)
