"""End-to-end RP classifier pipeline (project → fuzzify → defuzzify).

:class:`RPClassifierPipeline` bundles a trained projection, NFC and
defuzzification coefficient into the object the rest of the repository
consumes: examples call :meth:`predict` on beat matrices, experiments
call :meth:`evaluate` on labeled sets, and the embedded path is derived
via :meth:`to_embedded` (which delegates to
:mod:`repro.fixedpoint.convert`).

``alpha`` is deliberately mutable-by-copy: the paper tunes
``alpha_test`` independently of ``alpha_train`` "giving the opportunity
to adjust the ratio of detected normal and abnormal beats"; use
:meth:`with_alpha` / :meth:`tuned_for` for that.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace

import numpy as np

from repro.core.achlioptas import AchlioptasMatrix
from repro.core.defuzz import defuzzify, sweep_alpha, tune_alpha
from repro.core.metrics import ClassificationReport
from repro.core.nfc import NeuroFuzzyClassifier
from repro.core.training import TrainingConfig, TrainedClassifier, train_classifier
from repro.ecg.mitbih import LabeledBeats


@dataclass(frozen=True)
class RPClassifierPipeline:
    """A deployable RP + NFC classifier.

    Attributes
    ----------
    projection:
        Achlioptas matrix (k x d).
    nfc:
        Fitted neuro-fuzzy classifier.
    alpha:
        Defuzzification coefficient used by :meth:`predict`.
    """

    projection: AchlioptasMatrix
    nfc: NeuroFuzzyClassifier
    alpha: float

    def __post_init__(self) -> None:
        if self.projection.n_coefficients != self.nfc.n_coefficients:
            raise ValueError("projection and NFC disagree on k")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")

    def __getstate__(self) -> dict:
        """Pickle without the fuzzy-value memo: it holds a ``weakref``
        to the last evaluated beat matrix (unpicklable), and is only a
        per-process cache anyway — e.g. process-pool serving ships the
        pipeline to workers and must not drag the memo along."""
        state = dict(self.__dict__)
        state.pop("_fuzzy_cache", None)
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        train1: LabeledBeats,
        train2: LabeledBeats,
        n_coefficients: int = 8,
        seed: int | None = None,
        config: TrainingConfig | None = None,
    ) -> "RPClassifierPipeline":
        """Train with the paper's two-step procedure and wrap the result."""
        if config is None:
            config = TrainingConfig(n_coefficients=n_coefficients)
        elif config.n_coefficients != n_coefficients:
            config = replace(config, n_coefficients=n_coefficients)
        trained = train_classifier(train1, train2, config, seed=seed)
        return cls.from_trained(trained)

    @classmethod
    def from_trained(cls, trained: TrainedClassifier) -> "RPClassifierPipeline":
        """Wrap a :class:`TrainedClassifier`."""
        return cls(trained.projection, trained.nfc, trained.alpha_train)

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_alpha(self, alpha: float) -> "RPClassifierPipeline":
        """Same classifier, different defuzzification coefficient.

        Projection and NFC are unchanged, so the memoized fuzzy values
        carry over: ``tuned_for`` followed by ``evaluate`` on the same
        beats does not re-project.
        """
        clone = replace(self, alpha=alpha)
        cached = getattr(self, "_fuzzy_cache", None)
        if cached is not None:
            object.__setattr__(clone, "_fuzzy_cache", cached)
        return clone

    def with_shape(self, shape: str) -> "RPClassifierPipeline":
        """Same parameters, different membership shape (Figure 5 rows)."""
        return replace(self, nfc=self.nfc.with_shape(shape))

    def tuned_for(self, beats: LabeledBeats, target_arr: float) -> "RPClassifierPipeline":
        """Re-tune ``alpha_test`` for an ARR target on labeled beats."""
        fuzzy = self.fuzzy_values(beats.X)
        return self.with_alpha(tune_alpha(fuzzy, beats.y, target_arr))

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def project(self, X: np.ndarray) -> np.ndarray:
        """Random projection of beats: ``(n, d) -> (n, k)``."""
        return self.projection.project(X)

    @staticmethod
    def _fingerprint(X: np.ndarray) -> tuple[float, float]:
        """Cheap content fingerprint: plain sum + position-weighted sum.

        The plain sum alone misses balanced in-place edits
        (``X[i] += c; X[j] -= c``); weighting each element by its
        position catches those and element swaps.  Deliberate
        collisions remain possible — this guards against accidental
        mutation, not adversaries.
        """
        flat = np.asarray(X, dtype=float).ravel()
        weights = np.arange(1.0, flat.size + 1.0)
        return float(flat.sum()), float(np.dot(flat, weights))

    def fuzzy_values(self, X: np.ndarray) -> np.ndarray:
        """Per-class fuzzy values of beats (unit max per beat).

        The most recent result is memoized per input array:
        :meth:`sweep` followed by :meth:`tuned_for` — or
        :meth:`evaluate` at several alphas — on the same beat matrix
        shares one projection + fuzzification pass instead of
        re-projecting.  The cache keys on array identity *plus* a
        content fingerprint (so in-place mutation of ``X`` is
        detected) and holds the input only weakly (so it never pins a
        large evaluation matrix in memory).
        """
        fingerprint = None
        cached = getattr(self, "_fuzzy_cache", None)
        if cached is not None:
            ref, cached_fingerprint, cached_values = cached
            if ref() is X:
                fingerprint = self._fingerprint(X)
                if fingerprint == cached_fingerprint:
                    return cached_values
        values = self.nfc.fuzzy_values(self.project(X))
        try:
            ref = weakref.ref(X)
        except TypeError:
            return values  # non-weakrefable input (e.g. a list): skip caching
        if fingerprint is None:
            fingerprint = self._fingerprint(X)
        object.__setattr__(self, "_fuzzy_cache", (ref, fingerprint, values))
        return values

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Defuzzified labels (class index or Unknown)."""
        return defuzzify(np.atleast_2d(self.fuzzy_values(X)), self.alpha)

    def evaluate(self, beats: LabeledBeats) -> ClassificationReport:
        """Full evaluation report on a labeled set."""
        return ClassificationReport.from_labels(beats.y, self.predict(beats.X))

    def sweep(self, beats: LabeledBeats, alphas: np.ndarray | None = None):
        """NDR/ARR trade-off curve over ``alpha_test`` (Figure 5)."""
        fuzzy = self.fuzzy_values(beats.X)
        return sweep_alpha(fuzzy, beats.y, alphas)

    # ------------------------------------------------------------------
    # Embedded conversion
    # ------------------------------------------------------------------
    def to_embedded(self, **kwargs):
        """Convert to the integer WBSN classifier.

        Delegates to :func:`repro.fixedpoint.convert.convert_pipeline`;
        see that function for the quantization options.  Imported
        lazily to keep ``repro.core`` free of a package cycle.
        """
        from repro.fixedpoint.convert import convert_pipeline

        return convert_pipeline(self, **kwargs)
