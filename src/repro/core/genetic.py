"""Genetic optimization of the random-projection matrix.

"The approximation error introduced by random projections is
theoretically bounded, nonetheless empirical evidence shows that certain
projections perform better than others."  The paper therefore treats
each candidate Achlioptas matrix as a chromosome and runs a small
genetic algorithm — population 20, 30 generations — whose fitness is
the NDR score of the NFC trained with that projection.

Genome representation and operators:

* a chromosome is the ternary ``(k, d)`` matrix itself;
* **crossover** exchanges whole rows between parents (each row is one
  projection coefficient, so rows are meaningful building blocks whose
  trained MFs travel with them);
* **mutation** resamples individual entries from the Achlioptas
  distribution, so mutated matrices stay valid chromosomes;
* tournament selection plus elitism preserve the best projections.

The module is generic over the fitness function; the paper's fitness
(train MFs on set 1, score NDR at the ARR target on set 2) is wired up
in :mod:`repro.core.training`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.achlioptas import AchlioptasMatrix, generate_achlioptas

#: Fitness interface: higher is better.
FitnessFunction = Callable[[AchlioptasMatrix], float]


@dataclass(frozen=True)
class GeneticConfig:
    """GA hyper-parameters (paper defaults: population 20, 30 generations)."""

    population_size: int = 20
    generations: int = 30
    crossover_rate: float = 0.9
    mutation_rate: float = 0.01
    tournament_size: int = 3
    elitism: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be >= 1")
        if not 0 <= self.elitism <= self.population_size:
            raise ValueError("elitism must be in [0, population_size]")


@dataclass
class GeneticResult:
    """Outcome of a GA run.

    Attributes
    ----------
    best:
        Highest-fitness projection found across all generations.
    best_fitness:
        Its fitness.
    history:
        Best fitness after each generation (non-decreasing thanks to
        elitism).
    evaluations:
        Number of fitness evaluations spent.
    """

    best: AchlioptasMatrix
    best_fitness: float
    history: list[float] = field(default_factory=list)
    evaluations: int = 0


def crossover_rows(
    a: AchlioptasMatrix, b: AchlioptasMatrix, rng: np.random.Generator
) -> AchlioptasMatrix:
    """Uniform row-wise crossover: each child row comes from either parent."""
    if a.matrix.shape != b.matrix.shape:
        raise ValueError("parents must have equal shapes")
    take_from_a = rng.random(a.n_coefficients) < 0.5
    child = np.where(take_from_a[:, np.newaxis], a.matrix, b.matrix)
    return AchlioptasMatrix(child)


def mutate(
    m: AchlioptasMatrix, rate: float, rng: np.random.Generator
) -> AchlioptasMatrix:
    """Resample a fraction ``rate`` of entries from the Achlioptas law."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("mutation rate must be in [0, 1]")
    if rate == 0.0:
        return m
    mask = rng.random(m.matrix.shape) < rate
    if not mask.any():
        return m
    draws = rng.random(m.matrix.shape)
    fresh = np.zeros_like(m.matrix)
    fresh[draws < 1.0 / 6.0] = 1
    fresh[draws > 5.0 / 6.0] = -1
    child = np.where(mask, fresh, m.matrix)
    return AchlioptasMatrix(child)


def _tournament(
    fitness: np.ndarray, size: int, rng: np.random.Generator
) -> int:
    """Index of the tournament winner."""
    contenders = rng.integers(0, fitness.size, size=size)
    return int(contenders[np.argmax(fitness[contenders])])


def optimize_projection(
    fitness_function: FitnessFunction,
    n_coefficients: int,
    n_inputs: int,
    config: GeneticConfig | None = None,
    rng: np.random.Generator | int | None = None,
    initial_population: list[AchlioptasMatrix] | None = None,
) -> GeneticResult:
    """Run the GA and return the best projection found.

    Parameters
    ----------
    fitness_function:
        Maps a candidate matrix to a score (higher is better).  In the
        paper this is NDR-at-97%-ARR on training set 2.
    n_coefficients, n_inputs:
        Chromosome dimensions (k, d).
    config:
        GA hyper-parameters.
    rng:
        Generator or seed.
    initial_population:
        Optional warm-start population; completed with random matrices
        if shorter than ``config.population_size``.

    Returns
    -------
    GeneticResult
    """
    config = config or GeneticConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    population: list[AchlioptasMatrix] = list(initial_population or [])
    for candidate in population:
        if candidate.matrix.shape != (n_coefficients, n_inputs):
            raise ValueError("initial population has mismatched dimensions")
    while len(population) < config.population_size:
        population.append(generate_achlioptas(n_coefficients, n_inputs, rng))
    population = population[: config.population_size]

    fitness = np.array([fitness_function(p) for p in population], dtype=float)
    evaluations = len(population)
    best_idx = int(np.argmax(fitness))
    best = population[best_idx]
    best_fitness = float(fitness[best_idx])
    history = [best_fitness]

    for _ in range(config.generations):
        elite_order = np.argsort(fitness)[::-1][: config.elitism]
        next_population = [population[i] for i in elite_order]
        next_fitness = [float(fitness[i]) for i in elite_order]
        while len(next_population) < config.population_size:
            parent_a = population[_tournament(fitness, config.tournament_size, rng)]
            parent_b = population[_tournament(fitness, config.tournament_size, rng)]
            if rng.random() < config.crossover_rate:
                child = crossover_rows(parent_a, parent_b, rng)
            else:
                child = parent_a
            child = mutate(child, config.mutation_rate, rng)
            next_population.append(child)
            next_fitness.append(fitness_function(child))
            evaluations += 1
        population = next_population
        fitness = np.array(next_fitness, dtype=float)
        generation_best = int(np.argmax(fitness))
        if fitness[generation_best] > best_fitness:
            best_fitness = float(fitness[generation_best])
            best = population[generation_best]
        history.append(best_fitness)

    return GeneticResult(
        best=best, best_fitness=best_fitness, history=history, evaluations=evaluations
    )
