"""Synthetic MIT-BIH-like ECG substrate.

The paper evaluates on the MIT-BIH Arrhythmia Database (PhysioBank),
restricted to three beat classes: normal sinus beats (``N``), premature
ventricular contractions (``V``) and left-bundle-branch-block beats
(``L``).  The database itself cannot be redistributed with this
reproduction, so this subpackage provides a synthetic equivalent that
exercises the exact same code paths:

* :mod:`repro.ecg.morphologies` — parametric sum-of-Gaussians beat
  templates for the three classes, with class-conditional variability;
* :mod:`repro.ecg.synth` — whole-record synthesis (RR-interval process,
  baseline wander, muscle artifact, powerline interference, ADC);
* :mod:`repro.ecg.database` — ``Record`` / ``Annotation`` containers
  mirroring the small slice of the ``wfdb`` API the pipeline needs;
* :mod:`repro.ecg.mitbih` — a deterministic synthetic "database" whose
  per-class beat counts match Table I of the paper;
* :mod:`repro.ecg.segmentation` — fixed-window beat extraction around
  detected R peaks (100 samples before / 100 after at 360 Hz);
* :mod:`repro.ecg.resample` — integer-factor downsampling used by the
  embedded (90 Hz) configuration.
"""

from repro.ecg.database import Annotation, Record
from repro.ecg.morphologies import (
    BEAT_CLASSES,
    CLASS_TO_INDEX,
    BeatMorphology,
    MorphologyModel,
    WaveComponent,
    lbbb_model,
    normal_model,
    pvc_model,
)
from repro.ecg.segmentation import BeatWindow, segment_beats
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig

__all__ = [
    "Annotation",
    "Record",
    "BEAT_CLASSES",
    "CLASS_TO_INDEX",
    "BeatMorphology",
    "MorphologyModel",
    "WaveComponent",
    "normal_model",
    "lbbb_model",
    "pvc_model",
    "BeatWindow",
    "segment_beats",
    "RecordSynthesizer",
    "SynthesisConfig",
]
