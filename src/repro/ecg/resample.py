"""Integer-factor downsampling for the embedded configuration.

The WBSN version of the classifier operates at 90 Hz — "a four-times
downsampling of the original recordings" — so that "50 samples acquired
at 90 Hz" are randomly projected.  On the embedded platform this is
implemented as sample *decimation* (keeping one of every ``factor``
samples, no anti-aliasing filter: the morphological filtering stage has
already removed out-of-band content, and decimation keeps the operation
free).  The same semantics are reproduced here.

Downsampling a beat *matrix* must preserve the R-peak alignment: the
peak sits at column ``pre`` of each window, so decimation is phased to
keep that column.
"""

from __future__ import annotations

import numpy as np

from repro.ecg.segmentation import BeatWindow


def decimate_signal(signal: np.ndarray, factor: int, phase: int = 0) -> np.ndarray:
    """Keep one of every ``factor`` samples of a 1-D or 2-D signal.

    Parameters
    ----------
    signal:
        ``(n,)`` or ``(n, leads)`` array.
    factor:
        Integer decimation factor (>= 1).
    phase:
        Index of the first retained sample, in ``[0, factor)``.
    """
    if factor < 1:
        raise ValueError("decimation factor must be >= 1")
    if not 0 <= phase < factor:
        raise ValueError("phase must be in [0, factor)")
    signal = np.asarray(signal)
    return signal[phase::factor]


def decimate_beats(
    X: np.ndarray, window: BeatWindow, factor: int
) -> tuple[np.ndarray, BeatWindow]:
    """Decimate a beat matrix while keeping the R-peak column.

    Parameters
    ----------
    X:
        ``(n_beats, window.length)`` beat matrix.
    window:
        Geometry of the input windows (peak at column ``window.pre``).
    factor:
        Integer decimation factor.

    Returns
    -------
    (X_ds, window_ds):
        Decimated beats and the new window geometry.  The phase is
        chosen so the original peak column survives decimation: with
        the paper's 200-sample window and factor 4 this yields
        50-sample beats, i.e. the "50 samples acquired at 90 Hz".
    """
    if factor < 1:
        raise ValueError("decimation factor must be >= 1")
    X = np.asarray(X)
    if X.ndim != 2 or X.shape[1] != window.length:
        raise ValueError(
            f"beat matrix of shape {X.shape} does not match window length {window.length}"
        )
    phase = window.pre % factor
    X_ds = X[:, phase::factor]
    new_pre = (window.pre - phase) // factor
    new_post = X_ds.shape[1] - new_pre
    return X_ds, BeatWindow(new_pre, new_post)


def downsampled_length(length: int, factor: int, phase: int = 0) -> int:
    """Number of samples kept when decimating a length-``length`` signal."""
    if factor < 1:
        raise ValueError("decimation factor must be >= 1")
    if not 0 <= phase < factor:
        raise ValueError("phase must be in [0, factor)")
    if length <= phase:
        return 0
    return (length - phase + factor - 1) // factor
