"""Parametric heartbeat morphologies for the N / V / L beat classes.

Each beat is modelled as a sum of Gaussian wave components (the classic
P-Q-R-S-T decomposition used by McSharry et al.'s dynamical ECG model).
A :class:`WaveComponent` is a single Gaussian bump; a
:class:`BeatMorphology` is a concrete, sampleable beat; a
:class:`MorphologyModel` is a *distribution* over morphologies for one
beat class, from which per-beat realizations are drawn.

The three class models implement the physiology the paper's classifier
relies on:

``N`` (normal sinus)
    Upright narrow QRS (~80 ms), preceding P wave, concordant T wave.
``L`` (left bundle branch block)
    Broad (> 120 ms), slurred/notched QRS without a Q wave, delayed
    intrinsicoid deflection and *discordant* (inverted) T wave.  P wave
    present (supraventricular origin).
``V`` (premature ventricular contraction)
    No P wave, very broad (> 140 ms) bizarre QRS with large amplitude of
    either polarity, large discordant T wave; occurs prematurely (the
    RR-interval handling lives in :mod:`repro.ecg.synth`).

Amplitudes are expressed in millivolts and times in seconds relative to
the R-peak (the sample the peak detector should lock onto).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

#: Beat-class symbols in the order used throughout the package.  The
#: integer label of a class is its index in this tuple.
BEAT_CLASSES = ("N", "V", "L")

#: Mapping from class symbol to integer label.
CLASS_TO_INDEX = {symbol: index for index, symbol in enumerate(BEAT_CLASSES)}

#: Classes the paper treats as pathological ("abnormal").  ``U``
#: (unknown) is also treated as abnormal at defuzzification time but is
#: never a ground-truth label.
ABNORMAL_CLASSES = ("V", "L")


@dataclass(frozen=True)
class WaveComponent:
    """One Gaussian bump of a beat template.

    Parameters
    ----------
    name:
        Conventional wave name (``"P"``, ``"Q"``, ``"R"``, ``"S"``,
        ``"T"``, or a variant such as ``"R2"`` for a notched QRS).
    amplitude:
        Peak amplitude in millivolts (signed).
    center:
        Center of the bump in seconds relative to the R peak.
    width:
        Gaussian standard deviation in seconds.
    """

    name: str
    amplitude: float
    center: float
    width: float

    def evaluate(self, t: np.ndarray) -> np.ndarray:
        """Evaluate the component on a time grid ``t`` (seconds)."""
        z = (t - self.center) / self.width
        return self.amplitude * np.exp(-0.5 * z * z)


@dataclass(frozen=True)
class BeatMorphology:
    """A concrete beat: a list of wave components plus a class symbol."""

    symbol: str
    components: tuple[WaveComponent, ...]

    def waveform(self, t: np.ndarray) -> np.ndarray:
        """Synthesize the beat on a time grid ``t`` (seconds, R peak at 0)."""
        out = np.zeros_like(t, dtype=float)
        for component in self.components:
            out += component.evaluate(t)
        return out

    def sample_window(self, fs: float, pre: int, post: int) -> np.ndarray:
        """Sample the beat on a ``pre + post`` window around the R peak.

        Parameters
        ----------
        fs:
            Sampling frequency in Hz.
        pre, post:
            Number of samples before and after the peak.  The peak
            sample itself is the first of the ``post`` block, matching
            the paper's "100 samples before and 100 samples after its
            peak" (a 200-sample window at 360 Hz).
        """
        t = (np.arange(-pre, post) + 0.0) / fs
        return self.waveform(t)

    @property
    def label(self) -> int:
        """Integer label of the beat class."""
        return CLASS_TO_INDEX[self.symbol]

    def component(self, name: str) -> WaveComponent:
        """Return the first component with the given name.

        Raises
        ------
        KeyError
            If no component carries that name.
        """
        for candidate in self.components:
            if candidate.name == name:
                return candidate
        raise KeyError(f"morphology {self.symbol!r} has no component {name!r}")


def _jitter(rng: np.random.Generator, value: float, rel_std: float, abs_std: float = 0.0) -> float:
    """Gaussian jitter with a relative and an absolute component."""
    return value * (1.0 + rel_std * rng.standard_normal()) + abs_std * rng.standard_normal()


@dataclass(frozen=True)
class MorphologyModel:
    """A distribution over beat morphologies for one class.

    ``template`` holds the mean wave parameters; ``draw`` perturbs
    amplitudes, centers and widths with class-specific variability and
    applies a global per-beat gain, producing the intra-class scatter
    the classifier has to be robust to.

    A fraction of beats is drawn as *intermediate* morphologies blended
    toward another class's template (``ambiguous_fraction`` /
    ``ambiguous_target``).  This models the irreducibly ambiguous beats
    of real Holter data — aberrantly conducted normal beats that
    resemble bundle-branch blocks, near-normal LBBB complexes, and
    ventricular fusion beats — and is what keeps classification
    performance away from 100% *regardless of training-set size*, like
    on MIT-BIH.  Blended beats keep their true class label.

    Parameters
    ----------
    template:
        Mean morphology.
    amplitude_rel_std:
        Relative standard deviation applied to each component amplitude.
    center_abs_std:
        Absolute jitter (seconds) applied to each component center.
    width_rel_std:
        Relative jitter applied to each component width.
    gain_rel_std:
        Relative jitter of a per-beat global gain (electrode contact,
        respiration modulation).
    notch_probability:
        Probability of adding a small notch component to the QRS
        (used by the LBBB model, where QRS notching is characteristic).
    ambiguous_fraction:
        Probability of drawing an intermediate beat.
    ambiguous_target:
        Class symbol the intermediate beats are blended toward.
    ambiguous_blend:
        Range of the blend factor lambda (waveform is
        ``(1 - lambda) * own + lambda * target``).
    """

    template: BeatMorphology
    amplitude_rel_std: float = 0.08
    center_abs_std: float = 0.004
    width_rel_std: float = 0.08
    gain_rel_std: float = 0.10
    notch_probability: float = 0.0
    notch_template: WaveComponent | None = None
    ambiguous_fraction: float = 0.0
    ambiguous_target: str | None = None
    ambiguous_blend: tuple[float, float] = (0.25, 0.6)

    @property
    def symbol(self) -> str:
        """Class symbol of the model."""
        return self.template.symbol

    def _base_components(self, rng: np.random.Generator) -> tuple[WaveComponent, ...]:
        """Template components, possibly blended toward another class."""
        components = self.template.components
        if (
            self.ambiguous_target is not None
            and self.ambiguous_fraction > 0.0
            and rng.random() < self.ambiguous_fraction
        ):
            lam = rng.uniform(*self.ambiguous_blend)
            other = MODEL_FACTORIES[self.ambiguous_target]().template
            components = tuple(
                replace(c, amplitude=c.amplitude * (1.0 - lam)) for c in components
            ) + tuple(
                replace(c, name=f"{c.name}_mix", amplitude=c.amplitude * lam)
                for c in other.components
            )
        return components

    def draw(self, rng: np.random.Generator) -> BeatMorphology:
        """Draw one beat realization."""
        gain = max(0.2, 1.0 + self.gain_rel_std * rng.standard_normal())
        perturbed = []
        for component in self._base_components(rng):
            amplitude = _jitter(rng, component.amplitude, self.amplitude_rel_std) * gain
            center = component.center + self.center_abs_std * rng.standard_normal()
            width = max(1e-3, _jitter(rng, component.width, self.width_rel_std))
            perturbed.append(replace(component, amplitude=amplitude, center=center, width=width))
        if self.notch_template is not None and rng.random() < self.notch_probability:
            notch = self.notch_template
            perturbed.append(
                replace(
                    notch,
                    amplitude=_jitter(rng, notch.amplitude, self.amplitude_rel_std) * gain,
                    center=notch.center + self.center_abs_std * rng.standard_normal(),
                )
            )
        return BeatMorphology(self.template.symbol, tuple(perturbed))


def normal_model() -> MorphologyModel:
    """Distribution of normal sinus beats (class ``N``).

    Narrow QRS (~80 ms between Q and S extremes), upright R of ~1 mV,
    small P wave ~160 ms before the R peak and a concordant T wave.
    """
    template = BeatMorphology(
        "N",
        (
            WaveComponent("P", 0.12, -0.17, 0.022),
            WaveComponent("Q", -0.12, -0.034, 0.009),
            WaveComponent("R", 1.00, 0.0, 0.011),
            WaveComponent("S", -0.20, 0.032, 0.010),
            WaveComponent("T", 0.28, 0.22, 0.045),
        ),
    )
    return MorphologyModel(
        template,
        amplitude_rel_std=0.13,
        center_abs_std=0.005,
        width_rel_std=0.13,
        gain_rel_std=0.15,
        ambiguous_fraction=0.075,
        ambiguous_target="L",
    )


def lbbb_model() -> MorphologyModel:
    """Distribution of left-bundle-branch-block beats (class ``L``).

    Broad slurred QRS without a Q wave: the R component is wider and
    lower, followed by a delayed, wide secondary deflection; the T wave
    is discordant (inverted).  A notch is added with high probability,
    reproducing the characteristic "M-shaped" QRS in lateral leads.
    """
    template = BeatMorphology(
        "L",
        (
            WaveComponent("P", 0.10, -0.19, 0.024),
            WaveComponent("R", 0.85, 0.0, 0.020),
            WaveComponent("R2", 0.45, 0.055, 0.025),
            WaveComponent("S", -0.10, 0.115, 0.022),
            WaveComponent("T", -0.22, 0.27, 0.050),
        ),
    )
    notch = WaveComponent("notch", -0.18, 0.028, 0.008)
    return MorphologyModel(
        template,
        amplitude_rel_std=0.14,
        center_abs_std=0.006,
        width_rel_std=0.14,
        gain_rel_std=0.15,
        notch_probability=0.7,
        notch_template=notch,
        ambiguous_fraction=0.05,
        ambiguous_target="N",
    )


def pvc_model() -> MorphologyModel:
    """Distribution of premature ventricular contractions (class ``V``).

    No P wave; very broad, large-amplitude QRS (the template uses a
    dominant wide R with a deep wide S, i.e. a bizarre biphasic
    complex) and a large discordant T wave.  PVCs are morphologically
    the most variable class, so its jitter parameters are the largest.
    """
    template = BeatMorphology(
        "V",
        (
            WaveComponent("R", 1.25, -0.01, 0.030),
            WaveComponent("S", -0.75, 0.075, 0.035),
            WaveComponent("T", -0.45, 0.30, 0.060),
        ),
    )
    return MorphologyModel(
        template,
        amplitude_rel_std=0.20,
        center_abs_std=0.008,
        width_rel_std=0.17,
        gain_rel_std=0.18,
        ambiguous_fraction=0.05,
        ambiguous_target="N",
    )


#: Factory functions for the three class models, keyed by class symbol.
MODEL_FACTORIES = {
    "N": normal_model,
    "V": pvc_model,
    "L": lbbb_model,
}


def model_for(symbol: str) -> MorphologyModel:
    """Return the morphology model for a class symbol (``N``/``V``/``L``)."""
    try:
        factory = MODEL_FACTORIES[symbol]
    except KeyError as exc:
        raise ValueError(f"unknown beat class {symbol!r}; expected one of {BEAT_CLASSES}") from exc
    return factory()


def qrs_duration(morphology: BeatMorphology, fs: float = 360.0, threshold: float = 0.05) -> float:
    """Estimate the QRS duration of a morphology in seconds.

    The QRS support is measured as the time span around the R peak where
    the rectified high-frequency part of the waveform (P and T removed)
    exceeds ``threshold`` of the absolute maximum.  Used by tests to
    check that the class templates respect the physiological ordering
    ``N < L <= V``.
    """
    qrs_components = tuple(
        component for component in morphology.components if component.name not in ("P", "T")
    )
    qrs_only = BeatMorphology(morphology.symbol, qrs_components)
    t = np.arange(-0.2, 0.25, 1.0 / fs)
    wave = np.abs(qrs_only.waveform(t))
    peak = wave.max()
    if peak <= 0:
        return 0.0
    above = np.flatnonzero(wave >= threshold * peak)
    return float((above[-1] - above[0]) / fs)
