"""Noise-stress tooling: contaminate beats at a controlled SNR.

Modeled on the MIT-BIH Noise Stress Test Database protocol: clean
recordings are mixed with three canonical contaminations —

* ``em`` — electrode-motion artifact (brown-ish noise: integrated
  white noise, the hardest to filter because it overlaps the QRS band);
* ``ma`` — muscle (EMG) artifact (wideband white noise);
* ``bw`` — baseline wander (low-frequency random-phase sinusoids).

— at calibrated signal-to-noise ratios.  :func:`add_noise_at_snr`
scales each beat's contamination so the realized SNR matches the
request, enabling accuracy-vs-SNR robustness curves for the classifier
(the embedded filtering stage is bypassed here: the windows model the
post-filter residual, so SNR is relative to that stage's output).
"""

from __future__ import annotations

import numpy as np

#: Supported contamination kinds.
NOISE_KINDS = ("em", "ma", "bw")


def _unit_noise(kind: str, n: int, fs: float, rng: np.random.Generator) -> np.ndarray:
    """One window of the requested contamination, unit RMS."""
    if kind == "ma":
        noise = rng.standard_normal(n)
    elif kind == "em":
        # Integrated white noise, high-pass detrended to stay in-band.
        steps = rng.standard_normal(n)
        noise = np.cumsum(steps)
        noise = noise - np.linspace(noise[0], noise[-1], n)
    elif kind == "bw":
        t = np.arange(n) / fs
        noise = np.zeros(n)
        for frequency in (0.18, 0.32, 0.5):
            noise += rng.random() * np.sin(
                2.0 * np.pi * frequency * t + rng.uniform(0, 2 * np.pi)
            )
    else:
        raise ValueError(f"unknown noise kind {kind!r}; expected one of {NOISE_KINDS}")
    rms = float(np.sqrt(np.mean(noise**2)))
    return noise / max(rms, 1e-12)


def signal_power(X: np.ndarray) -> np.ndarray:
    """Per-beat AC power (mean squared deviation from the beat mean)."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    centered = X - X.mean(axis=1, keepdims=True)
    return np.mean(centered**2, axis=1)


def add_noise_at_snr(
    X: np.ndarray,
    snr_db: float,
    kind: str = "ma",
    fs: float = 360.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Contaminate beats so each realizes the requested SNR.

    Parameters
    ----------
    X:
        ``(n, d)`` beat matrix (mV).
    snr_db:
        Target per-beat signal-to-noise ratio in dB.
    kind:
        ``"em"``, ``"ma"`` or ``"bw"``.
    fs:
        Sampling frequency (shapes the ``bw`` spectrum).
    rng:
        Generator or seed.

    Returns
    -------
    np.ndarray
        Contaminated copy of ``X``.
    """
    if kind not in NOISE_KINDS:
        raise ValueError(f"unknown noise kind {kind!r}; expected one of {NOISE_KINDS}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    X = np.atleast_2d(np.asarray(X, dtype=float))
    n, d = X.shape
    power = signal_power(X)
    target_noise_power = power / (10.0 ** (snr_db / 10.0))
    out = X.copy()
    for i in range(n):
        noise = _unit_noise(kind, d, fs, rng)
        out[i] += np.sqrt(target_noise_power[i]) * noise
    return out


def realized_snr_db(clean: np.ndarray, noisy: np.ndarray) -> np.ndarray:
    """Per-beat realized SNR of a contamination (sanity instrument)."""
    clean = np.atleast_2d(np.asarray(clean, dtype=float))
    noisy = np.atleast_2d(np.asarray(noisy, dtype=float))
    if clean.shape != noisy.shape:
        raise ValueError("clean and noisy must have equal shapes")
    noise_power = np.mean((noisy - clean) ** 2, axis=1)
    return 10.0 * np.log10(signal_power(clean) / np.maximum(noise_power, 1e-15))
