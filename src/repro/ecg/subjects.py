"""Subject-level variation: persistent per-patient morphology factors.

The paper's protocol draws training and test beats from the same pool
of MIT-BIH records, so the classifier sees every patient's morphology
during training.  The stricter inter-patient protocol (de Chazal et
al., the paper's reference [13]) holds whole patients out.  To support
that experiment the substrate needs a notion of *subject*: a persistent
perturbation of the class templates (electrode placement, heart
orientation, conduction timing) that all of one subject's beats share,
on top of which the usual per-beat jitter applies.

:func:`subject_models` draws one :class:`MorphologyModel` per class for
a subject; :func:`synthesize_subject_windows` generates labeled beat
windows tagged with subject ids, from which inter- vs intra-patient
splits are built.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.ecg.morphologies import BEAT_CLASSES, MorphologyModel, model_for
from repro.ecg.synth import BeatNoiseConfig, _window_residuals


@dataclass(frozen=True)
class SubjectVariability:
    """How strongly subjects differ from the population templates.

    ``amplitude_rel_std`` / ``width_rel_std`` / ``center_abs_std`` are
    the per-subject (persistent) perturbations of each wave component;
    ``gain_rel_std`` is the subject's overall electrode gain.  Values
    are deliberately larger than the per-beat jitter: two subjects
    differ more than two beats of one subject.
    """

    amplitude_rel_std: float = 0.18
    width_rel_std: float = 0.15
    center_abs_std: float = 0.008
    gain_rel_std: float = 0.20


def subject_models(
    rng: np.random.Generator,
    variability: SubjectVariability | None = None,
) -> dict[str, MorphologyModel]:
    """Draw one subject: a persistently perturbed model per beat class.

    The same subject gain applies to all classes (it is a property of
    the electrode contact, not of the beat type); component-level
    perturbations are drawn independently per class.
    """
    variability = variability or SubjectVariability()
    gain = max(0.3, 1.0 + variability.gain_rel_std * rng.standard_normal())
    models: dict[str, MorphologyModel] = {}
    for symbol in BEAT_CLASSES:
        base = model_for(symbol)
        components = tuple(
            replace(
                component,
                amplitude=component.amplitude
                * gain
                * (1.0 + variability.amplitude_rel_std * rng.standard_normal()),
                width=max(
                    1e-3,
                    component.width
                    * (1.0 + variability.width_rel_std * rng.standard_normal()),
                ),
                center=component.center
                + variability.center_abs_std * rng.standard_normal(),
            )
            for component in base.template.components
        )
        models[symbol] = replace(base, template=replace(base.template, components=components))
    return models


def synthesize_subject_windows(
    n_subjects: int,
    beats_per_subject: dict[str, int],
    fs: float = 360.0,
    pre: int = 100,
    post: int = 100,
    noise: BeatNoiseConfig | None = None,
    variability: SubjectVariability | None = None,
    seed: int | None = None,
    subject_seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Beat windows from a population of synthetic subjects.

    Parameters
    ----------
    n_subjects:
        Number of subjects to draw.
    beats_per_subject:
        Per-class beat counts generated for *each* subject.
    fs, pre, post, noise:
        As in :func:`repro.ecg.synth.synthesize_beat_windows`.
    variability:
        Subject-level perturbation strengths.
    seed:
        Seed of the per-beat randomness.
    subject_seed:
        Seed of the persistent subject factors.  Defaults to ``seed``;
        pass the same ``subject_seed`` with different ``seed`` values
        to draw *fresh beats from the same subjects* (the intra-patient
        evaluation protocol needs exactly that).

    Returns
    -------
    (X, y, subjects):
        Beat matrix, class labels and the subject id of every beat.
    """
    if n_subjects < 1:
        raise ValueError("need at least one subject")
    noise = noise or BeatNoiseConfig()
    rng = np.random.default_rng(seed)
    subject_rng = np.random.default_rng(seed if subject_seed is None else subject_seed)
    d = pre + post
    per_subject_total = sum(beats_per_subject.values())
    total = n_subjects * per_subject_total
    X = np.empty((total, d))
    y = np.empty(total, dtype=np.int64)
    subjects = np.empty(total, dtype=np.int64)
    base_time = np.arange(-pre, post) / fs
    row = 0
    for subject in range(n_subjects):
        models = subject_models(subject_rng, variability)
        for symbol, count in beats_per_subject.items():
            if count < 0:
                raise ValueError("beat counts must be non-negative")
            label = BEAT_CLASSES.index(symbol)
            for _ in range(count):
                morphology = models[symbol].draw(rng)
                jitter = noise.jitter_std * rng.standard_normal() / fs
                X[row] = morphology.waveform(base_time + jitter)
                X[row] += _window_residuals(rng, d, fs, noise)
                y[row] = label
                subjects[row] = subject
                row += 1
    order = rng.permutation(total)
    return X[order], y[order], subjects[order]
