"""Whole-record and beat-window synthesis for the MIT-BIH-like substrate.

Two generation paths are provided, matching the two granularities the
experiments need:

1. :class:`RecordSynthesizer` builds full multi-lead records — an
   RR-interval process places beats (PVCs occur prematurely and are
   followed by a compensatory pause), morphologies are drawn per beat,
   and record-level artifacts are added (baseline wander, muscle noise,
   powerline interference).  These records exercise the complete
   embedded chain: filtering -> peak detection -> segmentation ->
   classification -> delineation.

2. :func:`synthesize_beat_windows` directly generates fixed-length beat
   windows (the classifier's input after filtering and segmentation).
   This is used for the large Table-I-sized datasets (~101 000 beats),
   where synthesizing and re-detecting full records would be wasteful.
   The window noise model represents *post-filtering* residuals: a small
   baseline ramp, wideband muscle noise and segmentation jitter of the
   detected peak position.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ecg.database import Annotation, Record
from repro.ecg.morphologies import (
    BEAT_CLASSES,
    MorphologyModel,
    model_for,
)

#: Default per-beat window geometry (samples at 360 Hz), from the paper:
#: "we define each heartbeat as spanning 100 samples before and 100
#: samples after its peak".
DEFAULT_PRE = 100
DEFAULT_POST = 100


@dataclass(frozen=True)
class NoiseConfig:
    """Amplitudes (mV) of the record-level artifact generators.

    ``baseline_amplitude`` is the peak amplitude of the respiration-band
    baseline wander; ``muscle_std`` the standard deviation of the EMG
    band-limited noise; ``powerline_amplitude`` the mains interference
    amplitude; ``wander_frequency`` the respiration frequency in Hz.
    """

    baseline_amplitude: float = 0.35
    wander_frequency: float = 0.28
    muscle_std: float = 0.035
    powerline_amplitude: float = 0.02
    powerline_frequency: float = 60.0


@dataclass(frozen=True)
class BeatNoiseConfig:
    """Residual noise model for directly synthesized beat windows.

    These model what survives the morphological filtering stage:
    ``residual_baseline`` (mV) is the peak of a slow in-window drift,
    ``noise_std`` (mV) the wideband residual noise, ``jitter_std``
    (samples) the R-peak localization error of the wavelet detector.

    ``burst_fraction`` / ``burst_multiplier`` add a heavy tail: a
    fraction of beats is hit by a muscle-artifact burst that multiplies
    the wideband noise.  Ambulatory recordings are heteroscedastic —
    most beats are clean, some arrive during movement — and this tail
    is what gives the classifier's confidence margins a continuum
    (without it, defuzzification margins saturate and the NDR/ARR
    trade-off degenerates into a step).

    The defaults are calibrated so the full pipeline lands in the
    paper's operating region (NDR in the low 90s at 97% ARR with 8
    coefficients); the calibration is recorded in DESIGN.md.
    """

    residual_baseline: float = 0.08
    noise_std: float = 0.06
    jitter_std: float = 2.0
    burst_fraction: float = 0.10
    burst_multiplier: float = 2.0


@dataclass(frozen=True)
class RhythmConfig:
    """RR-interval process parameters.

    The base rhythm is a lognormal-jittered sinus interval around
    ``mean_rr`` seconds with relative std ``rr_rel_std``; a PVC shortens
    its own coupling interval by ``pvc_prematurity`` (fraction of the
    sinus RR) and is followed by a compensatory pause such that the sum
    of pre- and post-PVC intervals equals two sinus intervals.
    """

    mean_rr: float = 0.78
    rr_rel_std: float = 0.06
    pvc_prematurity: float = 0.30


@dataclass(frozen=True)
class SynthesisConfig:
    """Full configuration of a synthetic record."""

    fs: float = 360.0
    n_leads: int = 1
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    rhythm: RhythmConfig = field(default_factory=RhythmConfig)
    #: Per-lead projection gains applied to the beat waveform, emulating
    #: different electrode placements.  Length must be >= n_leads.
    lead_gains: tuple[float, ...] = (1.0, 0.75, -0.55)


class RecordSynthesizer:
    """Synthesizes annotated multi-lead ECG records.

    Parameters
    ----------
    config:
        Synthesis parameters; defaults mirror MIT-BIH conditions
        (360 Hz, ~77 bpm sinus rhythm).
    seed:
        Seed of the internal random generator.
    """

    def __init__(self, config: SynthesisConfig | None = None, seed: int | None = None):
        self.config = config or SynthesisConfig()
        self._rng = np.random.default_rng(seed)
        self._models: dict[str, MorphologyModel] = {s: model_for(s) for s in BEAT_CLASSES}

    def synthesize(
        self,
        duration: float,
        class_mix: dict[str, float] | None = None,
        name: str = "synth",
    ) -> Record:
        """Build one annotated record.

        Parameters
        ----------
        duration:
            Record duration in seconds.
        class_mix:
            Probability of each beat class; defaults to the approximate
            MIT-BIH N/V/L mix of the paper's test set
            (0.835 / 0.074 / 0.090).
        name:
            Record identifier.

        Returns
        -------
        Record
            Physical-units record with a reference :class:`Annotation`.
            Beats whose window would not fit entirely inside the record
            are not annotated.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        mix = class_mix or {"N": 0.835, "V": 0.074, "L": 0.091}
        if any(symbol not in BEAT_CLASSES for symbol in mix):
            raise ValueError(f"class_mix keys must be among {BEAT_CLASSES}")
        symbols_pool = list(mix.keys())
        probabilities = np.array([mix[s] for s in symbols_pool], dtype=float)
        probabilities = probabilities / probabilities.sum()

        config = self.config
        fs = config.fs
        n_samples = int(round(duration * fs))
        peak_times, beat_symbols = self._generate_rhythm(duration, symbols_pool, probabilities)

        signal = np.zeros((n_samples, config.n_leads), dtype=float)
        time_grid = np.arange(n_samples) / fs
        annot_samples: list[int] = []
        annot_symbols: list[str] = []
        annot_fiducials: list[np.ndarray] = []
        margin = 0.45  # seconds of beat support on each side of a peak
        for peak_time, symbol in zip(peak_times, beat_symbols):
            morphology = self._models[symbol].draw(self._rng)
            lo = max(0, int((peak_time - margin) * fs))
            hi = min(n_samples, int((peak_time + margin) * fs) + 1)
            if lo >= hi:
                continue
            local_t = time_grid[lo:hi] - peak_time
            wave = morphology.waveform(local_t)
            for lead in range(config.n_leads):
                signal[lo:hi, lead] += config.lead_gains[lead] * wave
            peak_sample = int(round(peak_time * fs))
            if DEFAULT_PRE <= peak_sample < n_samples - DEFAULT_POST:
                annot_samples.append(peak_sample)
                annot_symbols.append(symbol)
                annot_fiducials.append(
                    true_fiducials(morphology, peak_sample, fs)
                )

        for lead in range(config.n_leads):
            signal[:, lead] += self._record_noise(n_samples, fs)

        annotation = Annotation(np.array(annot_samples, dtype=np.int64), annot_symbols)
        fiducials = (
            np.stack(annot_fiducials, axis=0)
            if annot_fiducials
            else np.empty((0, 9), dtype=np.int64)
        )
        return Record(name, signal, fs=fs, annotation=annotation, fiducials=fiducials)

    def _generate_rhythm(
        self,
        duration: float,
        symbols_pool: list[str],
        probabilities: np.ndarray,
    ) -> tuple[list[float], list[str]]:
        """Generate beat times and symbols with PVC prematurity."""
        rhythm = self.config.rhythm
        rng = self._rng
        peak_times: list[float] = []
        beat_symbols: list[str] = []
        t = 0.4  # first beat placed after a short lead-in
        pending_pause = 0.0
        while t < duration - 0.4:
            symbol = str(rng.choice(symbols_pool, p=probabilities))
            sinus_rr = rhythm.mean_rr * float(
                np.exp(rhythm.rr_rel_std * rng.standard_normal())
            )
            rr = sinus_rr + pending_pause
            pending_pause = 0.0
            if symbol == "V":
                coupling = sinus_rr * (1.0 - rhythm.pvc_prematurity)
                pending_pause = 2.0 * sinus_rr - coupling - sinus_rr
                rr = coupling
            t += rr
            if t >= duration - 0.4:
                break
            peak_times.append(t)
            beat_symbols.append(symbol)
        return peak_times, beat_symbols

    def _record_noise(self, n_samples: int, fs: float) -> np.ndarray:
        """Baseline wander + muscle noise + powerline interference."""
        noise = self.config.noise
        rng = self._rng
        t = np.arange(n_samples) / fs
        phase = rng.uniform(0.0, 2.0 * np.pi)
        frequency = noise.wander_frequency * (1.0 + 0.2 * rng.standard_normal())
        baseline = noise.baseline_amplitude * np.sin(2.0 * np.pi * abs(frequency) * t + phase)
        # Second, slower wander component (electrode drift).
        baseline += 0.5 * noise.baseline_amplitude * np.sin(
            2.0 * np.pi * 0.05 * t + rng.uniform(0.0, 2.0 * np.pi)
        )
        muscle = noise.muscle_std * rng.standard_normal(n_samples)
        powerline = noise.powerline_amplitude * np.sin(
            2.0 * np.pi * noise.powerline_frequency * t + rng.uniform(0.0, 2.0 * np.pi)
        )
        return baseline + muscle + powerline


#: Half-support of a Gaussian wave component, in standard deviations:
#: the wave is considered to start/end where it falls to ~6% of its
#: peak (the same 2.35-sigma unit the MF linearization uses).
WAVE_SUPPORT_SIGMAS = 2.35


def true_fiducials(morphology, peak_sample: int, fs: float) -> np.ndarray:
    """Ground-truth fiducials of a drawn morphology (9 int64 values).

    Wave peaks are the Gaussian component centers; onsets and ends sit
    ``WAVE_SUPPORT_SIGMAS`` component widths away.  Components are
    grouped by name: ``P*`` form the P wave, ``T*`` the T wave,
    everything else the QRS complex (blended ``*_mix`` components fall
    in the same groups, so an aberrant beat's widened support is
    reflected in its truth).  A wave with no components (a PVC's P
    wave) reports ``-1`` for its three fiducials.

    Returns the fiducials in
    :data:`repro.dsp.delineation.FIDUCIAL_NAMES` order, as absolute
    sample indices around ``peak_sample``.
    """

    def group(prefix_test):
        return [c for c in morphology.components if prefix_test(c.name)]

    p_waves = group(lambda n: n.startswith("P"))
    t_waves = group(lambda n: n.startswith("T"))
    qrs = [c for c in morphology.components if c not in p_waves and c not in t_waves]

    def wave_triplet(components):
        if not components:
            return (-1, -1, -1)
        onset = min(c.center - WAVE_SUPPORT_SIGMAS * c.width for c in components)
        end = max(c.center + WAVE_SUPPORT_SIGMAS * c.width for c in components)
        dominant = max(components, key=lambda c: abs(c.amplitude))
        peak = dominant.center
        return (
            peak_sample + int(round(onset * fs)),
            peak_sample + int(round(peak * fs)),
            peak_sample + int(round(end * fs)),
        )

    p_on, p_peak, p_end = wave_triplet(p_waves)
    q_on, _, q_end = wave_triplet(qrs)
    t_on, t_peak, t_end = wave_triplet(t_waves)
    # Blended (ambiguous) morphologies can have overlapping wave
    # supports; clamp the softer boundaries so the truth stays in
    # physiological order (P end <= QRS onset <= ... <= T onset), the
    # convention delineation annotations follow.
    if p_end >= 0 and q_on >= 0:
        p_end = min(p_end, q_on)
        p_peak = min(p_peak, p_end)
        p_on = min(p_on, p_peak)
    if t_on >= 0 and q_end >= 0:
        t_on = max(t_on, q_end)
        t_peak = max(t_peak, t_on)
        t_end = max(t_end, t_peak)
    return np.array(
        [p_on, p_peak, p_end, q_on, peak_sample, q_end, t_on, t_peak, t_end],
        dtype=np.int64,
    )


def synthesize_beat_windows(
    counts: dict[str, int],
    fs: float = 360.0,
    pre: int = DEFAULT_PRE,
    post: int = DEFAULT_POST,
    noise: BeatNoiseConfig | None = None,
    seed: int | None = None,
    shuffle: bool = True,
    lead_gains: tuple[float, ...] = (1.0,),
) -> tuple[np.ndarray, np.ndarray]:
    """Directly synthesize segmented beat windows.

    Parameters
    ----------
    counts:
        Number of beats per class symbol, e.g. ``{"N": 150, "V": 150,
        "L": 150}`` for the paper's training set 1.
    fs:
        Sampling frequency (360 Hz for the PC pipeline; pass the full
        rate here and use :mod:`repro.ecg.resample` for the 90 Hz
        embedded configuration so both see the same underlying beats).
    pre, post:
        Window geometry in samples.
    noise:
        Post-filtering residual noise model.
    seed:
        Random seed.
    shuffle:
        Shuffle beats so classes are interleaved (reproducible).
    lead_gains:
        Per-lead projection gains.  With the default single gain the
        output is the paper's single-lead ``(n, pre + post)`` matrix;
        with several gains the per-lead windows are concatenated along
        the feature axis (``(n, n_leads * (pre + post))``), the input
        of the multi-lead RP extension (Bogdanova et al., ICASSP 2012).
        Noise is drawn independently per lead.

    Returns
    -------
    (X, y):
        ``X`` is ``(n, n_leads * (pre + post))`` float64 (mV); ``y`` is
        ``(n,)`` int64 with labels indexing :data:`BEAT_CLASSES`.
    """
    noise = noise or BeatNoiseConfig()
    if not lead_gains:
        raise ValueError("need at least one lead gain")
    rng = np.random.default_rng(seed)
    d = pre + post
    n_leads = len(lead_gains)
    total = sum(counts.values())
    X = np.empty((total, n_leads * d), dtype=np.float64)
    y = np.empty(total, dtype=np.int64)
    row = 0
    base_time = (np.arange(-pre, post)) / fs
    for symbol, n_beats in counts.items():
        if n_beats < 0:
            raise ValueError("beat counts must be non-negative")
        model = model_for(symbol)
        label = BEAT_CLASSES.index(symbol)
        for _ in range(n_beats):
            morphology = model.draw(rng)
            jitter = noise.jitter_std * rng.standard_normal() / fs
            clean = morphology.waveform(base_time + jitter)
            for lead, gain in enumerate(lead_gains):
                X[row, lead * d : (lead + 1) * d] = gain * clean + _window_residuals(
                    rng, d, fs, noise
                )
            y[row] = label
            row += 1
    if shuffle:
        order = rng.permutation(total)
        X = X[order]
        y = y[order]
    return X, y


def _window_residuals(
    rng: np.random.Generator, d: int, fs: float, noise: BeatNoiseConfig
) -> np.ndarray:
    """Residual baseline drift + (possibly bursty) wideband noise."""
    t = np.arange(d) / fs
    drift_frequency = rng.uniform(0.15, 0.5)
    drift = noise.residual_baseline * np.sin(
        2.0 * np.pi * drift_frequency * t + rng.uniform(0.0, 2.0 * np.pi)
    )
    noise_std = noise.noise_std
    if noise.burst_fraction > 0.0 and rng.random() < noise.burst_fraction:
        noise_std *= noise.burst_multiplier
    wideband = noise_std * rng.standard_normal(d)
    return drift + wideband
