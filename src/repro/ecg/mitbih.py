"""Synthetic stand-in for the MIT-BIH Arrhythmia Database subsets.

Table I of the paper fixes the composition of the three beat sets:

==============  =====  ====  ====  =====
set               N      V     L   total
==============  =====  ====  ====  =====
training set 1    150   150   150    450
training set 2  10024   892  1084  12000
test set        74355  6618  8039  89012
==============  =====  ====  ====  =====

:func:`make_datasets` reproduces exactly these compositions (optionally
scaled down by a factor for fast tests) from the synthetic morphology
models, with three *independent* draws so no beat is shared between
sets — mirroring the paper's "two randomly-selected excerpts of the
database" for training plus "all N, V, L beats" for test.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from repro.ecg.morphologies import BEAT_CLASSES
from repro.ecg.segmentation import BeatWindow
from repro.ecg.synth import BeatNoiseConfig, synthesize_beat_windows

#: Per-class beat counts of Table I.
TABLE_I = {
    "train1": {"N": 150, "V": 150, "L": 150},
    "train2": {"N": 10024, "V": 892, "L": 1084},
    "test": {"N": 74355, "V": 6618, "L": 8039},
}

#: Database sampling rate (Hz).
DATABASE_FS = 360.0


@dataclass(frozen=True)
class LabeledBeats:
    """A set of segmented, labeled beats.

    Attributes
    ----------
    X:
        ``(n, d)`` beat matrix (mV, float64).
    y:
        ``(n,)`` integer labels indexing
        :data:`repro.ecg.morphologies.BEAT_CLASSES`.
    window:
        Window geometry of the rows of ``X``.
    fs:
        Sampling frequency of the rows of ``X``.
    """

    X: np.ndarray
    y: np.ndarray
    window: BeatWindow
    fs: float

    def __post_init__(self) -> None:
        if self.X.ndim != 2:
            raise ValueError("beat matrix must be 2-D")
        if self.y.shape != (self.X.shape[0],):
            raise ValueError("one label per beat required")
        if self.X.shape[1] != self.window.length:
            raise ValueError("beat length does not match window geometry")

    def __len__(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_samples_per_beat(self) -> int:
        """Samples per beat (the classifier input dimensionality d)."""
        return int(self.X.shape[1])

    def counts(self) -> dict[str, int]:
        """Beats per class symbol."""
        return {
            symbol: int(np.sum(self.y == index))
            for index, symbol in enumerate(BEAT_CLASSES)
        }

    def subset(self, mask: np.ndarray) -> "LabeledBeats":
        """Select a subset of beats by boolean mask or index array."""
        return LabeledBeats(self.X[mask], self.y[mask], self.window, self.fs)


@dataclass(frozen=True)
class BeatDatasets:
    """The three Table-I beat sets."""

    train1: LabeledBeats
    train2: LabeledBeats
    test: LabeledBeats

    def composition(self) -> dict[str, dict[str, int]]:
        """Per-set, per-class beat counts (the content of Table I)."""
        return {
            "train1": self.train1.counts(),
            "train2": self.train2.counts(),
            "test": self.test.counts(),
        }


def scaled_counts(counts: dict[str, int], scale: float) -> dict[str, int]:
    """Scale per-class counts by a factor, keeping every class non-empty."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return {symbol: max(2, ceil(count * scale)) for symbol, count in counts.items()}


def make_datasets(
    scale: float = 1.0,
    seed: int = 0,
    noise: BeatNoiseConfig | None = None,
    window: BeatWindow | None = None,
    fs: float = DATABASE_FS,
) -> BeatDatasets:
    """Build the three Table-I beat sets.

    Parameters
    ----------
    scale:
        Fraction of the paper's set sizes to generate (1.0 reproduces
        Table I exactly; tests use small fractions).
    seed:
        Base random seed; each set uses an independent substream.
    noise:
        Post-filtering residual noise model shared by all sets.
    window:
        Window geometry (paper default: 100 + 100 samples at 360 Hz).
    fs:
        Sampling frequency.

    Returns
    -------
    BeatDatasets
        ``train1`` / ``train2`` / ``test`` with the (scaled) Table-I
        composition.
    """
    window = window or BeatWindow()
    sets = {}
    for offset, set_name in enumerate(("train1", "train2", "test")):
        counts = TABLE_I[set_name]
        if scale != 1.0:
            counts = scaled_counts(counts, scale)
        X, y = synthesize_beat_windows(
            counts,
            fs=fs,
            pre=window.pre,
            post=window.post,
            noise=noise,
            seed=seed * 1000 + offset,
        )
        sets[set_name] = LabeledBeats(X, y, window, fs)
    return BeatDatasets(**sets)
