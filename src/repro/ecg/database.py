"""Record and annotation containers mirroring the slice of the ``wfdb``
API the pipeline needs.

The MIT-BIH Arrhythmia Database stores each half-hour recording as a
multi-lead signal file plus an annotation file giving, for every beat,
the sample index of the R peak and a beat-type symbol.  This module
provides equivalent in-memory containers for the synthetic substrate:

* :class:`Annotation` — parallel arrays of peak sample indices and beat
  symbols;
* :class:`Record` — a ``(n_samples, n_leads)`` signal with sampling
  frequency, ADC metadata and an attached :class:`Annotation`.

Signals can be held either as physical units (millivolts, ``float64``)
or as ADC counts (integers), matching the two representations used by
the PC-side and WBSN-side of the paper's framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ecg.morphologies import BEAT_CLASSES, CLASS_TO_INDEX

#: MIT-BIH uses an 11-bit ADC centred on 1024 with 200 adu/mV.
DEFAULT_ADC_GAIN = 200.0
DEFAULT_ADC_ZERO = 1024
DEFAULT_ADC_BITS = 11
DEFAULT_FS = 360.0


@dataclass
class Annotation:
    """Beat annotations for one record.

    Parameters
    ----------
    samples:
        R-peak sample indices, strictly increasing (``int64``).
    symbols:
        Beat-class symbol per peak (``"N"``, ``"V"``, ``"L"``).
    """

    samples: np.ndarray
    symbols: list[str]

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=np.int64)
        if self.samples.ndim != 1:
            raise ValueError("annotation samples must be one-dimensional")
        if len(self.symbols) != self.samples.size:
            raise ValueError(
                f"{self.samples.size} samples but {len(self.symbols)} symbols"
            )
        if self.samples.size > 1 and not np.all(np.diff(self.samples) > 0):
            raise ValueError("annotation samples must be strictly increasing")
        unknown = sorted(set(self.symbols) - set(BEAT_CLASSES))
        if unknown:
            raise ValueError(f"unknown beat symbols: {unknown}")

    def __len__(self) -> int:
        return int(self.samples.size)

    @property
    def labels(self) -> np.ndarray:
        """Integer labels (index into :data:`BEAT_CLASSES`) per beat."""
        return np.array([CLASS_TO_INDEX[s] for s in self.symbols], dtype=np.int64)

    def counts(self) -> dict[str, int]:
        """Number of beats per class symbol (zero included)."""
        result = {symbol: 0 for symbol in BEAT_CLASSES}
        for symbol in self.symbols:
            result[symbol] += 1
        return result

    def select(self, mask: np.ndarray) -> "Annotation":
        """Return a sub-annotation selected by a boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        symbols = [s for s, keep in zip(self.symbols, mask) if keep]
        return Annotation(self.samples[mask], symbols)


@dataclass
class Record:
    """A multi-lead ECG recording.

    Parameters
    ----------
    name:
        Record identifier (e.g. ``"synth-100"``).
    signal:
        ``(n_samples, n_leads)`` array.  ``float64`` when in physical
        units (mV); integer when holding ADC counts.
    fs:
        Sampling frequency in Hz.
    annotation:
        Reference beat annotations, or ``None`` for unlabeled data.
    adc_gain, adc_zero, adc_bits:
        ADC conversion metadata (MIT-BIH defaults: 200 adu/mV, zero at
        1024, 11 bits).
    """

    name: str
    signal: np.ndarray
    fs: float = DEFAULT_FS
    annotation: Annotation | None = None
    adc_gain: float = DEFAULT_ADC_GAIN
    adc_zero: int = DEFAULT_ADC_ZERO
    adc_bits: int = DEFAULT_ADC_BITS
    lead_names: tuple[str, ...] = field(default_factory=tuple)
    #: Optional ground-truth fiducials, ``(len(annotation), 9)`` int64
    #: in :data:`repro.dsp.delineation.FIDUCIAL_NAMES` order (-1 =
    #: wave absent).  Only synthetic records carry these; they exist so
    #: the delineator can be evaluated against known wave boundaries.
    fiducials: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.signal = np.asarray(self.signal)
        if self.signal.ndim == 1:
            self.signal = self.signal[:, np.newaxis]
        if self.signal.ndim != 2:
            raise ValueError("signal must be (n_samples,) or (n_samples, n_leads)")
        if self.fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if not self.lead_names:
            self.lead_names = tuple(f"lead{i}" for i in range(self.n_leads))
        if len(self.lead_names) != self.n_leads:
            raise ValueError("one lead name per signal column required")

    @property
    def n_samples(self) -> int:
        """Number of samples per lead."""
        return int(self.signal.shape[0])

    @property
    def n_leads(self) -> int:
        """Number of leads (signal columns)."""
        return int(self.signal.shape[1])

    @property
    def duration(self) -> float:
        """Record duration in seconds."""
        return self.n_samples / self.fs

    @property
    def is_digital(self) -> bool:
        """True when the signal holds integer ADC counts."""
        return np.issubdtype(self.signal.dtype, np.integer)

    def lead(self, index: int) -> np.ndarray:
        """Return one lead as a 1-D array."""
        return self.signal[:, index]

    def to_digital(self) -> "Record":
        """Convert physical units (mV) to clipped ADC counts.

        The conversion mirrors the WFDB convention:
        ``adu = round(mV * adc_gain) + adc_zero`` clipped to the ADC
        range.  Returns ``self`` if the record is already digital.
        """
        if self.is_digital:
            return self
        full_scale = (1 << self.adc_bits) - 1
        counts = np.rint(self.signal * self.adc_gain) + self.adc_zero
        counts = np.clip(counts, 0, full_scale).astype(np.int32)
        return Record(
            self.name,
            counts,
            fs=self.fs,
            annotation=self.annotation,
            adc_gain=self.adc_gain,
            adc_zero=self.adc_zero,
            adc_bits=self.adc_bits,
            lead_names=self.lead_names,
            fiducials=self.fiducials,
        )

    def to_physical(self) -> "Record":
        """Convert ADC counts back to millivolts (float)."""
        if not self.is_digital:
            return self
        physical = (self.signal.astype(np.float64) - self.adc_zero) / self.adc_gain
        return Record(
            self.name,
            physical,
            fs=self.fs,
            annotation=self.annotation,
            adc_gain=self.adc_gain,
            adc_zero=self.adc_zero,
            adc_bits=self.adc_bits,
            lead_names=self.lead_names,
            fiducials=self.fiducials,
        )
