"""Fixed-window beat segmentation around detected R peaks.

The paper defines a heartbeat as "spanning 100 samples before and 100
samples after its peak" at 360 Hz.  :func:`segment_beats` extracts those
windows from a record lead given peak positions (either detected by
:mod:`repro.dsp.peak_detection` or taken from reference annotations),
discarding peaks whose window would cross a record boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecg.database import Record

#: Paper window geometry at 360 Hz.
DEFAULT_PRE = 100
DEFAULT_POST = 100


@dataclass(frozen=True)
class BeatWindow:
    """Window geometry: ``pre`` samples before the peak, ``post`` after.

    The peak sample itself is included in the ``post`` block, so the
    window length is ``pre + post`` and the peak sits at index ``pre``.
    """

    pre: int = DEFAULT_PRE
    post: int = DEFAULT_POST

    def __post_init__(self) -> None:
        if self.pre < 0 or self.post <= 0:
            raise ValueError("window must have pre >= 0 and post > 0")

    @property
    def length(self) -> int:
        """Total number of samples per beat window."""
        return self.pre + self.post

    def scaled(self, factor: int) -> "BeatWindow":
        """Window geometry after downsampling by an integer factor."""
        if factor < 1:
            raise ValueError("downsampling factor must be >= 1")
        return BeatWindow(self.pre // factor, max(1, self.post // factor))


def segment_beats(
    signal: np.ndarray,
    peaks: np.ndarray,
    window: BeatWindow | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Extract beat windows around peaks.

    Parameters
    ----------
    signal:
        One lead, 1-D array (physical or digital units).
    peaks:
        R-peak sample indices.
    window:
        Window geometry (paper default 100 + 100).

    Returns
    -------
    (X, kept):
        ``X`` is ``(n_kept, window.length)`` with the same dtype as the
        input signal; ``kept`` is the boolean mask over ``peaks`` of
        beats whose window fit inside the record.
    """
    signal = np.asarray(signal)
    if signal.ndim != 1:
        raise ValueError("segment_beats expects a single lead (1-D signal)")
    window = window or BeatWindow()
    peaks = np.asarray(peaks, dtype=np.int64)
    kept = (peaks >= window.pre) & (peaks + window.post <= signal.shape[0])
    valid = peaks[kept]
    X = np.empty((valid.size, window.length), dtype=signal.dtype)
    for i, peak in enumerate(valid):
        X[i] = signal[peak - window.pre : peak + window.post]
    return X, kept


def segment_record(
    record: Record,
    lead: int = 0,
    window: BeatWindow | None = None,
    peaks: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Segment a record lead using its reference annotation.

    Parameters
    ----------
    record:
        Annotated record (unless explicit ``peaks`` are given).
    lead:
        Lead index to segment.
    window:
        Window geometry.
    peaks:
        Optional explicit peak indices; overrides the annotation.

    Returns
    -------
    (X, y):
        Beat matrix and integer labels.  When explicit ``peaks`` are
        provided the labels are derived by matching each peak to the
        nearest annotated beat within half a window; unmatched peaks are
        dropped.
    """
    window = window or BeatWindow()
    if peaks is None:
        if record.annotation is None:
            raise ValueError("record has no annotation and no peaks were given")
        X, kept = segment_beats(record.lead(lead), record.annotation.samples, window)
        y = record.annotation.labels[kept]
        return X, y
    if record.annotation is None:
        X, _ = segment_beats(record.lead(lead), peaks, window)
        return X, np.full(X.shape[0], -1, dtype=np.int64)
    matched_labels, matched_mask = match_peaks_to_annotation(
        np.asarray(peaks, dtype=np.int64), record.annotation, tolerance=window.pre // 2
    )
    usable = np.asarray(peaks, dtype=np.int64)[matched_mask]
    X, kept = segment_beats(record.lead(lead), usable, window)
    return X, matched_labels[matched_mask][kept]


def match_peaks_to_annotation(
    peaks: np.ndarray,
    annotation,
    tolerance: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Match detected peaks to annotated beats.

    Each detected peak is matched to the closest annotated peak within
    ``tolerance`` samples; an annotated beat can be claimed by at most
    one detection (the closest).

    Returns
    -------
    (labels, matched):
        ``labels[i]`` is the class label of the annotation matched by
        ``peaks[i]`` (or ``-1``); ``matched`` is the boolean mask of
        matched peaks.
    """
    peaks = np.asarray(peaks, dtype=np.int64)
    ann_samples = annotation.samples
    ann_labels = annotation.labels
    labels = np.full(peaks.size, -1, dtype=np.int64)
    claimed = np.zeros(ann_samples.size, dtype=bool)

    # Candidate (distance, peak, annotation) triples within tolerance;
    # greedy by increasing distance so the closest detection wins.
    candidates: list[tuple[int, int, int]] = []
    for idx, peak in enumerate(peaks):
        j = int(np.searchsorted(ann_samples, peak))
        for candidate in (j - 1, j):
            if 0 <= candidate < ann_samples.size:
                dist = abs(int(ann_samples[candidate]) - int(peak))
                if dist <= tolerance:
                    candidates.append((dist, idx, candidate))
    for dist, idx, candidate in sorted(candidates):
        if labels[idx] >= 0 or claimed[candidate]:
            continue
        labels[idx] = ann_labels[candidate]
        claimed[candidate] = True
    return labels, labels >= 0
