"""Off-box serving: the wire transport layer of the gateway tier.

This subpackage moves the serving surface off-host without giving up
the throughput the in-process tier earned:

* :mod:`repro.serving.net.protocol` — a length-prefixed binary frame
  codec that carries ingest chunks and event batches as raw numpy
  buffers behind small packed headers (no per-chunk pickle);
* :mod:`repro.serving.net.server` — an asyncio socket server fronting
  any gateway-shaped object, coalescing each gateway flush into one
  framed burst per connection;
* :mod:`repro.serving.net.client` — a pipelined synchronous client
  that multiplexes sessions over one connection, with retry/backoff/
  timeout discipline and bit-exact reconnect-resume built on the
  gateway's :class:`~repro.serving.gateway.SessionExport` handshake.

The client mirrors the gateway session surface, so fleet drivers such
as :func:`repro.serving.loadgen.replay_fleet` run unmodified against a
remote server.
"""

from repro.serving.net.client import (
    ClientError,
    ClientTimeout,
    ConnectError,
    GatewayClient,
    MigratedSession,
    RemoteError,
)
from repro.serving.net.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameTooLarge,
    ProtocolError,
)
from repro.serving.net.server import GatewayServer, ServerHandle, serve_in_thread

__all__ = [
    "ClientError",
    "ClientTimeout",
    "ConnectError",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "FrameTooLarge",
    "GatewayClient",
    "GatewayServer",
    "MigratedSession",
    "ProtocolError",
    "RemoteError",
    "ServerHandle",
    "serve_in_thread",
]
