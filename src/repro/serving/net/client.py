"""Pipelined client SDK for the off-box serving protocol.

:class:`GatewayClient` is the producer-side counterpart of
:class:`~repro.serving.net.server.GatewayServer`: it multiplexes many
sessions over **one** TCP connection and mirrors the gateway session
surface — ``open_session`` / ``ingest`` / ``poll`` / ``close_session``
— so every existing driver (:func:`~repro.serving.gateway.serve_round_robin`,
:func:`~repro.serving.loadgen.replay_fleet`, the benchmarks) drives a
remote gateway unchanged.

Throughput comes from **pipelining**, mirroring the sharded tier's
pipe IPC: ``ingest`` frames a chunk, sends it and returns the events
that have already come back — no per-chunk round trip.  Up to
``window`` chunks per session ride unacknowledged; when the window
fills, one ``POLL`` round trip synchronizes (the server's FIFO
guarantees every prior chunk was processed by then) and refills it.
Events stream back whenever the server's batch flushes, read
opportunistically (without blocking) on every call.

Reliability discipline:

* **retry/backoff** — connection attempts (initial and reconnect)
  retry up to ``max_retries`` times with exponential backoff
  (``backoff_base * 2**attempt``, capped at ``backoff_max``), via an
  injectable ``sleep``/``monotonic`` pair so the policy is testable
  against a fake clock;
* **timeouts** — every synchronous wait (handshake, open, poll,
  close, resume) is bounded by ``timeout`` seconds and raises
  :class:`ClientTimeout`;
* **reconnect-resume** — a dead connection is re-established
  transparently: the client reconnects (with backoff), sends
  ``RESUME`` for every open session, learns from ``RESUME_OK`` which
  chunks the server never processed and retransmits exactly those from
  its bounded replay buffer, while the server replays exactly the
  events the client never acknowledged.  The combined per-session
  event sequence is bit-exact with an uninterrupted connection — the
  chaos suite pins it.

Server-side errors arrive either as the reply to a synchronous request
(raised immediately as :class:`RemoteError`) or asynchronously for a
pipelined ingest (parked, raised by that session's next call — the
same discipline as :class:`~repro.serving.sharded.ShardedGateway`).
"""

from __future__ import annotations

import select
import socket
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.serving.net import protocol as wire

__all__ = [
    "ClientError",
    "ClientTimeout",
    "ConnectError",
    "GatewayClient",
    "MigratedSession",
    "RemoteError",
]

_RECV_CHUNK = 256 * 1024


class ClientError(RuntimeError):
    """Base class of the client SDK's failures."""


class ConnectError(ClientError):
    """Could not establish a connection within the retry budget."""


class ClientTimeout(ClientError):
    """A synchronous wait exceeded the client's timeout."""


class RemoteError(ClientError):
    """The server reported an error for a request or a session."""


class _ConnectionLost(Exception):
    """Internal: the transport died mid-operation (triggers resume)."""


@dataclass(frozen=True)
class MigratedSession:
    """A session captured off one host, ready to import into another.

    Produced by :meth:`GatewayClient.migrate_out`, consumed by
    :meth:`GatewayClient.migrate_in` on the destination host's client.
    ``blob`` is the server-pickled ``SessionExport`` (opaque here);
    ``base_events`` is the receive count the capture was taken at —
    the importing host restarts its delivery index there, so the
    client-side dedupe seam lines up across hosts.  ``events`` holds
    whatever the source host delivered between that stamp and the
    capture acknowledgment (the caller must hand them to the consumer
    — they are part of the session's event sequence), and
    ``events_received`` is the post-drain receive count the importing
    client must continue from.
    """

    session_id: str
    blob: bytes = field(repr=False)
    base_events: int = 0
    events: list = field(default_factory=list)
    events_received: int = 0


class _SessionState:
    """Client-side reliability state for one open session."""

    __slots__ = ("seq_next", "pending", "events_received", "buffered")

    def __init__(self) -> None:
        self.seq_next = 0
        #: Replay buffer of ``(seq, chunk)`` not yet acknowledged —
        #: bounded by the pipelining window.
        self.pending: deque = deque()
        self.events_received = 0
        self.buffered: list = []

    def drain(self) -> list:
        events = self.buffered
        self.buffered = []
        return events


def _default_connect(address: tuple[str, int], timeout: float):
    return socket.create_connection(address, timeout=timeout)


class GatewayClient:
    """Multiplex live sessions over one pipelined gateway connection.

    Parameters
    ----------
    host / port:
        The :class:`~repro.serving.net.server.GatewayServer` address.
    window:
        Per-session pipelining depth (>= 1): chunks in flight before
        ``ingest`` synchronizes.  Also bounds the replay buffer a
        resume retransmits from.
    timeout:
        Bound in seconds on every synchronous wait.
    connect_timeout:
        Bound on one TCP connection attempt.
    max_retries:
        Connection attempts beyond the first before
        :class:`ConnectError` (applies to initial connect and to every
        reconnect).
    backoff_base / backoff_max:
        Exponential-backoff schedule between attempts:
        ``min(backoff_max, backoff_base * 2**attempt)``.
    max_frame:
        Local frame bound; the effective outgoing bound is the minimum
        of this and the server's advertised one.
    send_buffer:
        Write-coalescing threshold in bytes (default 0 = every frame
        is sent immediately).  When set, pipelined ``ingest`` frames
        accumulate and go out in one ``sendall`` per burst; any
        synchronous operation flushes first, so ordering and the
        resume contract are unchanged.  Cuts per-chunk syscall cost
        when producers stream tiny high-rate chunks.
    resume:
        When ``False``, a dead connection raises instead of resuming
        (for callers that manage sessions themselves).
    retry_budget:
        Optional cap in seconds on the **total** wall time one public
        operation may spend retrying (connection attempts, backoff
        sleeps and reconnect-resume rounds combined).  ``timeout``
        bounds each synchronous wait individually, so against a
        flapping host the per-attempt bounds compound; the budget is
        armed when the operation enters the SDK and every retry seam
        checks it — backoff sleeps and connect timeouts are truncated
        to what remains, and exhaustion raises :class:`ConnectError`.
        ``None`` (default) preserves the per-op-only behavior.
    sleep / monotonic:
        Injectable clock (defaults :func:`time.sleep` /
        :func:`time.monotonic`) so retry/backoff/timeout behavior is
        testable against a fake clock.
    connect_factory:
        Injectable ``(address, timeout) -> socket`` (defaults to
        :func:`socket.create_connection`) for scripted connection
        failures in tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        window: int = 8,
        timeout: float = 10.0,
        connect_timeout: float = 5.0,
        max_retries: int = 5,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        max_frame: int = wire.DEFAULT_MAX_FRAME,
        send_buffer: int = 0,
        resume: bool = True,
        retry_budget: float | None = None,
        sleep=time.sleep,
        monotonic=time.monotonic,
        connect_factory=_default_connect,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.host = host
        self.port = port
        self.window = int(window)
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self.max_frame = int(max_frame)
        self.send_buffer = int(send_buffer)
        self.resume = bool(resume)
        self.retry_budget = None if retry_budget is None else float(retry_budget)
        self._retry_deadline: float | None = None
        self._sleep = sleep
        self._monotonic = monotonic
        self._connect_factory = connect_factory
        self._sock = None
        self._decoder: wire.FrameDecoder | None = None
        self._sendbuf = bytearray()
        self._send_max_frame = self.max_frame
        self._sessions: dict[str, _SessionState] = {}
        self._errors: dict[str, str] = {}
        self._mail: deque = deque()
        self.n_connects = 0
        self.n_reconnects = 0
        self.n_retransmitted = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    def connect(self) -> "GatewayClient":
        """Establish the connection (retry/backoff) and handshake."""
        if self._sock is None:
            self._arm_budget()
            self._connect_raw()
        return self

    def close(self) -> None:
        """Drop the connection.  Open sessions are parked server-side
        (resumable by a later client); call :meth:`close_session` first
        for a clean end-of-stream."""
        self._teardown()
        self._sessions.clear()
        self._errors.clear()
        self._mail.clear()

    #: Alias so gateway-shaped drivers (``find_max_sustained``) can
    #: tear a client down exactly like a local gateway.
    shutdown = close

    def __enter__(self) -> "GatewayClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- session surface -------------------------------------------------

    def open_session(
        self,
        session_id: str,
        *,
        max_latency_ticks: int | None = None,
        evict_after_ticks: int | None = None,
    ) -> None:
        """Open a session on the remote gateway (synchronous)."""
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        self.connect()
        self._arm_budget()
        payload = wire.encode_open(
            session_id,
            max_latency_ticks=max_latency_ticks,
            evict_after_ticks=evict_after_ticks,
        )
        for _ in self._op_attempts():
            try:
                self._send_payload(payload)
                self._wait_for("open_ok", session_id)
                self._sessions[session_id] = _SessionState()
                return
            except _ConnectionLost:
                self._reconnect_and_resume()
                if self._try_adopt(session_id):
                    return

    def resume_session(self, session_id: str, *, events_received: int = 0) -> None:
        """Adopt a session parked on the server and continue it bit-exactly.

        A producer that vanishes (process crash, dropped link) leaves
        its sessions parked server-side via the ``SessionExport``
        migration path; a successor calls this with the number of the
        session's events it already holds (``0`` for a fresh adopter
        that persisted nothing) and receives a replay of everything
        after that index — the combined event sequence across both
        producers is exactly the standalone node's.
        """
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        self.connect()
        self._arm_budget()
        sess = _SessionState()
        sess.events_received = int(events_received)
        # Registered before the RESUME so the replay EVENTS frame (and
        # any reconnect mid-handshake) routes to it.
        self._sessions[session_id] = sess
        try:
            for _ in self._op_attempts():
                try:
                    self._send_payload(
                        wire.encode_resume(session_id, sess.events_received)
                    )
                    resume_ok = self._wait_for("resume_ok", session_id)
                    sess.seq_next = resume_ok.next_seq
                    return
                except _ConnectionLost:
                    self._reconnect_and_resume()
                    return  # the resume loop above re-attached it
        except BaseException:
            self._sessions.pop(session_id, None)
            raise

    def ingest(self, session_id: str, chunk) -> list:
        """Frame and send one chunk; return already-resolved events.

        Pipelined: does not wait for the server to process the chunk.
        When the per-session window is full, one ``POLL`` round trip
        synchronizes first (collecting every ack and event the server
        has produced), then the chunk is sent.
        """
        sess = self._session(session_id)
        self._arm_budget()
        # In write-coalescing mode the opportunistic drain happens at
        # burst boundaries (buffer empty = a flush or sync just ran),
        # not per chunk — one readiness syscall per burst, not per 10 ms
        # frame.  Unbuffered clients keep the per-call drain.
        if not self._sendbuf:
            self._pump()
        self._raise_parked(session_id)
        if len(sess.pending) >= self.window:
            self._sync(session_id)
            self._raise_parked(session_id)
        arr = np.ascontiguousarray(chunk, dtype="<f8")
        sess.pending.append((sess.seq_next, arr))
        payload = wire.encode_ingest(
            session_id, sess.seq_next, sess.events_received, arr
        )
        sess.seq_next += 1
        try:
            self._send_payload(payload, buffered=True)
        except _ConnectionLost:
            self._reconnect_and_resume()  # retransmits from the buffer
        return sess.drain()

    def poll(self, session_id: str) -> list:
        """Synchronize with the server; return the session's events."""
        self._session(session_id)
        self._arm_budget()
        self._raise_parked(session_id)
        self._sync(session_id)
        self._raise_parked(session_id)
        return self._sessions[session_id].drain()

    def close_session(self, session_id: str) -> list:
        """End a session; return the remainder of its event sequence."""
        sess = self._session(session_id)
        self._arm_budget()
        self._raise_parked(session_id)
        for _ in self._op_attempts():
            try:
                self._send_payload(
                    wire.encode_close(session_id, sess.events_received)
                )
                self._wait_for("final", session_id)
                break
            except _ConnectionLost:
                self._reconnect_and_resume()
        events = sess.drain()
        del self._sessions[session_id]
        return events

    def discard_session(self, session_id: str) -> None:
        """Drop a session's client-side state without touching the wire.

        For sessions the *server* already ended (evicted, closed on
        its side): there is nothing left to close remotely, but the
        local replay/delivery state must not linger into a resume or a
        reused id.  Unknown ids are ignored.
        """
        self._sessions.pop(session_id, None)
        self._errors.pop(session_id, None)

    # -- cross-host migration + fleet stats ------------------------------

    def migrate_out(self, session_id: str) -> MigratedSession:
        """Capture a live session off this host for import elsewhere.

        Sends ``MIGRATE`` (no blob) — the server processes every
        pipelined chunk still in flight first (FIFO), releases the
        session via its ``SessionExport`` path, and ships the capture
        back in ``MIGRATE_OK``.  Events delivered between the request
        and the acknowledgment land in :attr:`MigratedSession.events`;
        hand them to the consumer, then feed the capture to
        :meth:`migrate_in` on the destination client.

        Not resume-safe mid-handshake: if the connection dies after
        the server released the session but before ``MIGRATE_OK``
        arrived, the capture is lost with the socket (the federation
        tier treats the move as an atomic control-plane step).
        """
        sess = self._session(session_id)
        self._arm_budget()
        self._raise_parked(session_id)
        ok = None
        base = sess.events_received
        for _ in self._op_attempts():
            try:
                base = sess.events_received
                self._send_payload(wire.encode_migrate(session_id, base))
                ok = self._wait_for("migrate_ok", session_id)
                break
            except _ConnectionLost:
                self._reconnect_and_resume()
        migrated = MigratedSession(
            session_id=session_id,
            blob=ok.blob,
            base_events=base,
            events=sess.drain(),
            events_received=sess.events_received,
        )
        del self._sessions[session_id]
        self._errors.pop(session_id, None)
        return migrated

    def migrate_in(self, migrated: MigratedSession) -> None:
        """Import a session captured by another host's :meth:`migrate_out`.

        The ``MIGRATE`` frame carries the opaque capture blob plus the
        receive count the capture was taken at; the server imports the
        session and restarts its delivery index there, so redelivered
        events dedupe against what the source host already shipped.
        """
        session_id = migrated.session_id
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        self.connect()
        self._arm_budget()
        payload = wire.encode_migrate(
            session_id, migrated.base_events, migrated.blob
        )
        sess = _SessionState()
        sess.events_received = migrated.events_received
        self._sessions[session_id] = sess
        try:
            for _ in self._op_attempts():
                try:
                    self._send_payload(payload)
                    self._wait_for("migrate_ok", session_id)
                    return
                except _ConnectionLost:
                    # The import may or may not have landed before the
                    # transport died.  Deregister so the resume loop
                    # skips it, then probe: if the server holds the
                    # session, adopt it; otherwise re-send the import.
                    del self._sessions[session_id]
                    self._reconnect_and_resume()
                    if self._try_adopt(
                        session_id, events_received=migrated.events_received
                    ):
                        return
                    self._sessions[session_id] = sess
        except BaseException:
            self._sessions.pop(session_id, None)
            raise

    def stats(self) -> dict:
        """Fetch the remote gateway's statistics snapshot."""
        self.connect()
        self._arm_budget()
        for _ in self._op_attempts():
            try:
                self._send_payload(wire.encode_stats())
                return self._wait_for("stats_ok").stats
            except _ConnectionLost:
                self._reconnect_and_resume()

    # -- internals -------------------------------------------------------

    def _session(self, session_id: str) -> _SessionState:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    def _raise_parked(self, session_id: str) -> None:
        message = self._errors.pop(session_id, None)
        if message is not None:
            raise RemoteError(message)

    def _op_attempts(self):
        """At most ``1 + max_retries`` tries for one synchronous op,
        abandoned early when the armed retry budget runs out."""
        for attempt in range(1 + self.max_retries):
            if attempt and self._budget_exhausted():
                raise ConnectError(
                    f"operation abandoned after {attempt} attempts: retry "
                    f"budget of {self.retry_budget:.3f} s exhausted"
                )
            yield attempt
        raise ConnectError(
            f"operation failed after {1 + self.max_retries} attempts"
        )

    # -- retry budget ----------------------------------------------------

    def _arm_budget(self) -> None:
        """Start the total-retry-wall-time clock for one public op."""
        if self.retry_budget is not None:
            self._retry_deadline = self._monotonic() + self.retry_budget

    def _budget_remaining(self) -> float | None:
        if self.retry_budget is None or self._retry_deadline is None:
            return None
        return self._retry_deadline - self._monotonic()

    def _budget_exhausted(self) -> bool:
        remaining = self._budget_remaining()
        return remaining is not None and remaining <= 0.0

    def _sync(self, session_id: str) -> None:
        """One ``POLL`` round trip: the pipelining barrier.

        The server answers in FIFO order, so by the time the ``SYNC``
        events frame arrives every previously sent chunk has been
        processed and acknowledged — the window is empty again.
        """
        sess = self._sessions[session_id]
        for _ in self._op_attempts():
            try:
                self._send_payload(
                    wire.encode_poll(session_id, sess.events_received)
                )
                self._wait_for("sync", session_id)
                return
            except _ConnectionLost:
                self._reconnect_and_resume()

    def _try_adopt(self, session_id: str, *, events_received: int = 0) -> bool:
        """After a reconnect mid-``open`` (or mid-``migrate_in``), check
        whether the server had in fact registered the session — and if
        so, adopt it at the given receive count."""
        if session_id in self._sessions:
            return True
        try:
            self._send_payload(wire.encode_resume(session_id, events_received))
            resume_ok = self._wait_for("resume_ok", session_id)
        except (RemoteError, _ConnectionLost):
            return False
        sess = _SessionState()
        sess.events_received = events_received
        sess.seq_next = resume_ok.next_seq
        self._sessions[session_id] = sess
        return True

    # -- transport -------------------------------------------------------

    def _connect_raw(self) -> None:
        attempt = 0
        while True:
            connect_timeout = self.connect_timeout
            remaining = self._budget_remaining()
            if remaining is not None:
                if remaining <= 0.0:
                    raise ConnectError(
                        f"could not connect to {self.host}:{self.port}: retry "
                        f"budget of {self.retry_budget:.3f} s exhausted after "
                        f"{attempt} attempts"
                    )
                connect_timeout = min(connect_timeout, remaining)
            try:
                sock = self._connect_factory(
                    (self.host, self.port), connect_timeout
                )
                break
            except OSError as exc:
                if attempt >= self.max_retries:
                    raise ConnectError(
                        f"could not connect to {self.host}:{self.port} after "
                        f"{attempt + 1} attempts: {exc}"
                    ) from exc
                delay = min(self.backoff_max, self.backoff_base * (2.0 ** attempt))
                remaining = self._budget_remaining()
                if remaining is not None:
                    if remaining <= 0.0:
                        raise ConnectError(
                            f"could not connect to {self.host}:{self.port}: "
                            f"retry budget of {self.retry_budget:.3f} s "
                            f"exhausted after {attempt + 1} attempts: {exc}"
                        ) from exc
                    delay = min(delay, remaining)
                self._sleep(delay)
                attempt += 1
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, AttributeError):  # fake sockets in tests
            pass
        try:
            sock.setblocking(True)
        except (OSError, AttributeError):
            pass
        self._sock = sock
        self._decoder = wire.FrameDecoder(self.max_frame)
        self.n_connects += 1
        try:
            self._send_payload(wire.encode_hello(self.max_frame))
            hello = self._wait_for("hello_ok")
        except _ConnectionLost as exc:
            self._teardown()
            raise ConnectError(f"handshake failed: {exc}") from None
        self._send_max_frame = min(self.max_frame, hello.max_frame)

    def _teardown(self) -> None:
        sock, self._sock = self._sock, None
        self._decoder = None
        self._sendbuf.clear()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _reconnect_and_resume(self) -> None:
        """Re-establish the transport and resume every open session.

        ``RESUME_OK`` carries the next chunk sequence the server
        expects; everything at or above it in the session's replay
        buffer is retransmitted (with its original sequence number),
        and the buffer drops what the server already processed.  The
        replay ``EVENTS`` frame the server sends alongside is handled
        by the ordinary frame path.
        """
        if not self.resume:
            self._teardown()
            raise ConnectError("connection lost (resume disabled)")
        self._teardown()
        self.n_reconnects += 1
        self._connect_raw()
        try:
            for session_id, sess in self._sessions.items():
                self._send_payload(
                    wire.encode_resume(session_id, sess.events_received)
                )
                resume_ok = self._wait_for("resume_ok", session_id)
                next_seq = resume_ok.next_seq
                sess.seq_next = max(sess.seq_next, next_seq)
                sess.pending = deque(
                    (seq, chunk) for seq, chunk in sess.pending if seq >= next_seq
                )
                for seq, chunk in sess.pending:
                    self._send_payload(
                        wire.encode_ingest(
                            session_id, seq, sess.events_received, chunk
                        )
                    )
                    self.n_retransmitted += 1
        except _ConnectionLost as exc:
            # A second transport failure mid-resume surfaces here with
            # the *private* retry signal still in flight; callers of
            # the public surface (ingest, poll, _pump) re-raise what
            # lands here verbatim, so convert to the public error at
            # this boundary like the handshake path does.
            self._teardown()
            raise ConnectError(
                f"connection to {self.host}:{self.port} lost again while "
                f"resuming sessions: {exc}"
            ) from None

    def _send_payload(self, payload: bytes, *, buffered: bool = False) -> None:
        if self._sock is None:
            self._connect_raw()
        frame = wire.pack_frame(payload, self._send_max_frame)
        if buffered and self.send_buffer > 0:
            # Write-coalescing: pipelined frames accumulate and go out
            # in one syscall per burst.  Chunks in the buffer are also
            # in the session replay deque, so a connection lost before
            # the flush retransmits them via the ordinary resume path.
            self._sendbuf += frame
            if len(self._sendbuf) >= self.send_buffer:
                self._flush_sendbuf()
            return
        self._flush_sendbuf()
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise _ConnectionLost(str(exc)) from None

    def _flush_sendbuf(self) -> None:
        if not self._sendbuf:
            return
        data = bytes(self._sendbuf)
        self._sendbuf.clear()  # never replay stale frames post-reconnect
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise _ConnectionLost(str(exc)) from None

    def _wait_readable(self, timeout: float) -> bool:
        sock = self._sock
        if sock is None:
            raise _ConnectionLost("not connected")
        waiter = getattr(sock, "wait_readable", None)
        if waiter is not None:  # scripted sockets in tests
            return bool(waiter(timeout))
        try:
            readable, _, _ = select.select([sock], [], [], timeout)
        except (OSError, ValueError) as exc:  # closed fd mid-stream
            raise _ConnectionLost(str(exc)) from None
        return bool(readable)

    def _recv_once(self) -> None:
        try:
            data = self._sock.recv(_RECV_CHUNK)
        except OSError as exc:
            raise _ConnectionLost(str(exc)) from None
        if not data:
            raise _ConnectionLost("server closed the connection")
        for payload in self._decoder.feed(data):
            self._handle(wire.decode(payload))

    def _pump(self) -> None:
        """Read and handle whatever is available, without blocking."""
        if self._sock is None:
            return
        try:
            while self._wait_readable(0.0):
                self._recv_once()
        except _ConnectionLost:
            self._reconnect_and_resume()

    def _wait_for(self, kind: str, session_id: str | None = None):
        """Block (bounded by ``timeout``) until a sync reply arrives."""
        deadline = self._monotonic() + self.timeout
        while True:
            result = self._take_mail(kind, session_id)
            if result is not None:
                return result
            remaining = deadline - self._monotonic()
            if remaining <= 0:
                raise ClientTimeout(
                    f"timed out after {self.timeout:.3f} s waiting for "
                    f"{kind!r}" + (f" of session {session_id!r}" if session_id else "")
                )
            if self._wait_readable(remaining):
                self._recv_once()

    def _take_mail(self, kind: str, session_id: str | None):
        for i, (mail_kind, mail_sid, payload) in enumerate(self._mail):
            if mail_kind == "error" and mail_sid in ("", session_id):
                del self._mail[i]
                raise RemoteError(payload)
            if mail_kind == kind and (
                session_id is None or mail_sid == session_id
            ):
                del self._mail[i]
                return payload
        return None

    # -- frame handling --------------------------------------------------

    def _handle(self, message) -> None:
        if isinstance(message, wire.Events):
            self._handle_events(message)
        elif isinstance(message, wire.HelloOk):
            self._mail.append(("hello_ok", "", message))
        elif isinstance(message, wire.OpenOk):
            self._mail.append(("open_ok", message.session_id, message))
        elif isinstance(message, wire.ResumeOk):
            self._mail.append(("resume_ok", message.session_id, message))
        elif isinstance(message, wire.MigrateOk):
            self._mail.append(("migrate_ok", message.session_id, message))
        elif isinstance(message, wire.StatsOk):
            self._mail.append(("stats_ok", "", message))
        elif isinstance(message, wire.Error):
            if message.sync:
                self._mail.append(("error", message.session_id, message.message))
            else:
                self._errors[message.session_id] = message.message
        else:
            raise wire.ProtocolError(
                f"unexpected {type(message).__name__} frame from server"
            )

    def _handle_events(self, message: wire.Events) -> None:
        sess = self._sessions.get(message.session_id)
        if sess is not None:
            # Dedupe against what we already have: a resume replay
            # starts exactly at our ack, but be defensive about
            # overlap; a gap is a protocol violation.
            skip = sess.events_received - message.base_index
            if skip < 0:
                raise wire.ProtocolError(
                    f"event gap for {message.session_id!r}: have "
                    f"{sess.events_received}, frame starts at {message.base_index}"
                )
            fresh = message.events[skip:] if skip else message.events
            sess.buffered.extend(fresh)
            sess.events_received += len(fresh)
            while sess.pending and sess.pending[0][0] < message.acked_seq:
                sess.pending.popleft()
        if message.sync:
            self._mail.append(("sync", message.session_id, message))
        if message.final:
            self._mail.append(("final", message.session_id, message))
