"""Asyncio socket server fronting a session gateway.

:class:`GatewayServer` exposes a :class:`~repro.serving.gateway.StreamGateway`
(or a :class:`~repro.serving.sharded.ShardedGateway` — anything with the
open/ingest/poll/close/release/import session surface) over the framed
binary protocol of :mod:`repro.serving.net.protocol`, one asyncio task
pair per connection:

* the **reader** task decodes frames in order and dispatches them
  against the gateway — ingest is pipelined exactly like the sharded
  tier's pipe IPC: the chunk is applied and whatever events are
  already resolved ship back without a per-chunk round trip;
* the **writer** task drains a bounded per-connection queue, joining
  everything queued into a single ``write()`` per wakeup — so all the
  events a gateway flush resolved leave as **one framed burst** per
  connection (the writev-style coalescing the wire-speed design calls
  for), with ``TCP_NODELAY`` set so the burst departs immediately.

Backpressure end to end: the writer queue is bounded, so a slow reader
stalls the writer, which stalls the reader task's ``put``, which stops
reading the socket — TCP flow control then pushes back on the client,
whose pipelining window bounds its chunks in flight.  No tier buffers
unboundedly.

**Flush coalescing**: when the fronted gateway exposes ``n_flushes``
(the single-process and inline-sharded tiers do), the server detects
that an ingest triggered a cross-session flush and immediately harvests
*every* tracked session's newly resolved events — batching them into
one burst per owning connection instead of waiting for each session's
next ingest.  Process-mode sharded gateways deliver per-session on
their own pipelined responses, so no harvest is needed (or possible)
there.

**Reconnect-resume**: sessions survive their connection.  When a
connection dies, every session it owns is captured via the existing
:meth:`~repro.serving.gateway.StreamGateway.release_session` /
:class:`~repro.serving.gateway.SessionExport` migration path and
parked, together with its chunk sequence number and the recently
delivered-but-unacknowledged events.  A client that reconnects and
sends ``RESUME`` gets the session imported back bit-exactly:
``RESUME_OK`` tells it the next chunk sequence the server expects (so
it retransmits exactly the chunks that were lost in flight) and a
replay ``EVENTS`` frame re-sends exactly the events it never
acknowledged.  The chaos suite pins that a forced mid-stream
disconnect is invisible in the per-session event sequence.

:func:`serve_in_thread` runs a server on a background event-loop
thread — the harness the benchmarks, the chaos suite and the
``repro serve --listen`` CLI all build on.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import threading
from dataclasses import dataclass, field, replace

from repro.serving.analytics import empty_rollup
from repro.serving.net import protocol as wire

__all__ = ["GatewayServer", "ServerHandle", "serve_in_thread"]

#: Default bound on a connection's outgoing queue (bursts, not bytes).
DEFAULT_QUEUE_BURSTS = 64

#: Socket read size for the bulk reader loop.
_READ_BUF = 1 << 16


class _NetSession:
    """Server-side reliability state for one live or parked session.

    ``seq`` counts the chunks the gateway has processed (the next
    expected :attr:`~repro.serving.net.protocol.Ingest.seq`);
    ``delivered`` counts the events written toward the client;
    ``retained`` keeps the delivered-but-unacknowledged tail for
    resume replay (bounded by the client's acks, which ride on every
    ingest/poll/close/resume frame).
    """

    __slots__ = ("session_id", "seq", "delivered", "retained")

    def __init__(self, session_id: str):
        self.session_id = session_id
        self.seq = 0
        self.delivered = 0
        self.retained: list = []

    @property
    def retained_base(self) -> int:
        """Stream index of the first retained (unacked) event."""
        return self.delivered - len(self.retained)

    def ack(self, n_received: int) -> None:
        """Drop retained events the client has confirmed receiving."""
        drop = n_received - self.retained_base
        if drop > 0:
            del self.retained[:drop]

    def deliver(self, events: list) -> None:
        self.retained.extend(events)
        self.delivered += len(events)

    def replay_from(self, n_received: int) -> list:
        start = n_received - self.retained_base
        if start < 0:
            raise wire.ProtocolError(
                f"cannot resume {self.session_id!r}: events "
                f"[{n_received}, {self.retained_base}) are no longer retained"
            )
        return self.retained[start:]


@dataclass
class _Parked:
    """A disconnected connection's session, waiting for a ``RESUME``."""

    export: object
    state: _NetSession = field(repr=False)


class _Connection:
    """Per-connection bookkeeping: owned sessions + the outgoing queue."""

    def __init__(self, queue_bursts: int):
        self.owned: set[str] = set()
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_bursts)
        self.alive = True

    async def send_burst(self, frames: list[bytes]) -> None:
        if frames and self.alive:
            await self.queue.put(b"".join(frames))


class GatewayServer:
    """Serve a session gateway over the framed binary wire protocol.

    Parameters
    ----------
    gateway:
        The fronted gateway — opened sessions, chunk ingestion and
        event resolution all happen here, in the server's thread.
    host / port:
        Listen address; ``port=0`` picks an ephemeral port (read the
        bound address back from :attr:`address` after :meth:`start`).
    max_frame:
        Payload bound for both directions, advertised in the
        ``HELLO_OK`` handshake and enforced on every incoming length
        prefix before allocation.
    queue_bursts:
        Outgoing-queue bound per connection (coalesced bursts); the
        server-side backpressure knob for slow readers.
    tick_hook / tick_every:
        Optional control-plane callback fired from the event-loop
        thread after every ``tick_every`` ingest dispatches.  The hook
        runs where the gateway lives, so it may safely call
        ``stats()`` / ``migrate_session()`` — the seam a within-host
        :class:`~repro.serving.autoscale.AutoBalancer` ticks through
        when the host is fronted remotely.
    """

    def __init__(
        self,
        gateway,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = wire.DEFAULT_MAX_FRAME,
        queue_bursts: int = DEFAULT_QUEUE_BURSTS,
        tick_hook=None,
        tick_every: int = 64,
    ):
        self.gateway = gateway
        self.host = host
        self.port = port
        self.max_frame = int(max_frame)
        self.queue_bursts = int(queue_bursts)
        self.tick_hook = tick_hook
        self.tick_every = max(1, int(tick_every))
        self._ingests_since_tick = 0
        self._server: asyncio.AbstractServer | None = None
        self._sessions: dict[str, _NetSession] = {}
        self._owners: dict[str, _Connection] = {}
        self._parked: dict[str, _Parked] = {}
        self.n_connections = 0
        self.n_resumes = 0
        self.n_migrations_in = 0
        self.n_migrations_out = 0
        #: TCP_NODELAY readback from the most recently accepted socket
        #: (``None`` until a connection arrives) — regression-test seam.
        self.last_accept_nodelay: bool | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        return (self.host, self.port)

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; return the address."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection lifecycle -------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self.last_accept_nodelay = bool(
                sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY)
            )
        self.n_connections += 1
        conn = _Connection(self.queue_bursts)
        writer_task = asyncio.ensure_future(self._writer_loop(conn, writer))
        try:
            await self._reader_loop(conn, reader)
        except (
            wire.ProtocolError,
            ConnectionError,
            asyncio.IncompleteReadError,
            OSError,
        ):
            pass  # the connection is unusable; park and move on
        finally:
            conn.alive = False
            self._park_connection(conn)
            writer_task.cancel()
            try:
                await writer_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            # Parting frames (e.g. the pre-handshake refusal) may still
            # sit in the queue if the writer was cancelled between
            # wakeups: flush them best-effort before closing.
            try:
                tail = []
                while not conn.queue.empty():
                    tail.append(conn.queue.get_nowait())
                if tail:
                    writer.write(b"".join(tail))
                    await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _writer_loop(self, conn: _Connection, writer) -> None:
        """Drain the queue, joining everything pending into one write.

        The single ``write`` + ``drain`` per wakeup is the coalescing
        burst; ``drain`` blocking on a slow reader is the backpressure
        seam (the bounded queue then stalls the reader task).
        """
        queue = conn.queue
        while True:
            burst = [await queue.get()]
            while not queue.empty():
                burst.append(queue.get_nowait())
            writer.write(b"".join(burst))
            await writer.drain()

    async def _reader_loop(self, conn: _Connection, reader) -> None:
        # Bulk reads through the incremental FrameDecoder: one await
        # per socket buffer, not two per frame — at wire-speed chunk
        # rates the per-frame event-loop round trips dominate the
        # server's transport cost.
        decoder = wire.FrameDecoder(self.max_frame)
        greeted = False
        while True:
            data = await reader.read(_READ_BUF)
            if not data:
                if decoder.pending_bytes:
                    raise wire.ProtocolError("connection closed mid-frame")
                return
            for payload in decoder.feed(data):
                message = wire.decode(payload)
                if not greeted:
                    if not isinstance(message, wire.Hello):
                        await conn.send_burst(
                            [self._frame(
                                wire.encode_error("", "expected HELLO", sync=True)
                            )]
                        )
                        return
                    await conn.send_burst(
                        [self._frame(wire.encode_hello_ok(self.max_frame))]
                    )
                    greeted = True
                    continue
                await self._dispatch(conn, message)

    def _park_connection(self, conn: _Connection) -> None:
        """Capture every session the dead connection owned, for resume.

        Uses the gateway's own migration path
        (:meth:`~repro.serving.gateway.StreamGateway.release_session`),
        so the parked export carries the full node snapshot plus every
        event resolved but not yet delivered; the reliability state
        keeps the delivered-but-unacked tail.
        """
        for session_id in list(conn.owned):
            state = self._sessions.pop(session_id, None)
            self._owners.pop(session_id, None)
            if state is None:
                continue
            try:
                export = self.gateway.release_session(session_id)
            except Exception:
                continue  # closed or evicted under us; nothing to park
            self._parked[session_id] = _Parked(export=export, state=state)
        conn.owned.clear()

    # -- dispatch --------------------------------------------------------

    def _frame(self, payload: bytes) -> bytes:
        return wire.pack_frame(payload, self.max_frame)

    async def _dispatch(self, conn: _Connection, message) -> None:
        sync = not isinstance(message, wire.Ingest)
        session_id = getattr(message, "session_id", "")
        try:
            if isinstance(message, wire.Open):
                await self._on_open(conn, message)
            elif isinstance(message, wire.Ingest):
                await self._on_ingest(conn, message)
            elif isinstance(message, wire.Poll):
                await self._on_poll(conn, message)
            elif isinstance(message, wire.Close):
                await self._on_close(conn, message)
            elif isinstance(message, wire.Resume):
                await self._on_resume(conn, message)
            elif isinstance(message, wire.Migrate):
                await self._on_migrate(conn, message)
            elif isinstance(message, wire.Stats):
                await self._on_stats(conn)
            else:
                raise wire.ProtocolError(
                    f"unexpected {type(message).__name__} frame from client"
                )
        except (KeyError, ValueError, RuntimeError) as exc:
            await conn.send_burst(
                [self._frame(wire.encode_error(session_id, str(exc), sync=sync))]
            )

    def _owned_state(self, conn: _Connection, session_id: str) -> _NetSession:
        if session_id not in conn.owned:
            raise KeyError(f"no open session {session_id!r} on this connection")
        return self._sessions[session_id]

    async def _on_open(self, conn: _Connection, message: wire.Open) -> None:
        if message.session_id in self._parked:
            raise ValueError(
                f"session {message.session_id!r} is parked awaiting RESUME"
            )
        self.gateway.open_session(
            message.session_id,
            max_latency_ticks=message.max_latency_ticks,
            evict_after_ticks=message.evict_after_ticks,
        )
        self._adopt(conn, message.session_id, _NetSession(message.session_id))
        await conn.send_burst([self._frame(wire.encode_open_ok(message.session_id))])

    async def _on_ingest(self, conn: _Connection, message: wire.Ingest) -> None:
        state = self._owned_state(conn, message.session_id)
        state.ack(message.ack_events)
        if message.seq < state.seq:
            return  # duplicate retransmit of an already-processed chunk
        if message.seq > state.seq:
            raise wire.ProtocolError(
                f"ingest gap for {message.session_id!r}: expected seq "
                f"{state.seq}, got {message.seq}"
            )
        flushes_before = getattr(self.gateway, "n_flushes", None)
        events = self.gateway.ingest(message.session_id, message.chunk)
        state.seq += 1
        frames: list[bytes] = []
        if events:
            frames.append(self._events_frame(state, events))
        await conn.send_burst(frames)
        if flushes_before is not None and self.gateway.n_flushes != flushes_before:
            await self._harvest_flush(exclude=message.session_id)
        if self.tick_hook is not None:
            self._ingests_since_tick += 1
            if self._ingests_since_tick >= self.tick_every:
                self._ingests_since_tick = 0
                self.tick_hook()

    async def _harvest_flush(self, exclude: str) -> None:
        """Ship every session's newly resolved events after a flush.

        One coalesced burst per owning connection — the events a single
        batched classifier pass resolved leave the box together instead
        of trickling out on each session's next ingest.
        """
        per_conn: dict[int, tuple[_Connection, list[bytes]]] = {}
        for session_id, state in self._sessions.items():
            if session_id == exclude:
                continue
            events = self.gateway.poll(session_id)
            if not events:
                continue
            owner = self._owners[session_id]
            frames = per_conn.setdefault(id(owner), (owner, []))[1]
            frames.append(self._events_frame(state, events))
        for owner, frames in per_conn.values():
            await owner.send_burst(frames)

    async def _on_poll(self, conn: _Connection, message: wire.Poll) -> None:
        state = self._owned_state(conn, message.session_id)
        state.ack(message.ack_events)
        events = self.gateway.poll(message.session_id)
        await conn.send_burst(
            [self._events_frame(state, events, flags=wire.FLAG_SYNC)]
        )

    async def _on_close(self, conn: _Connection, message: wire.Close) -> None:
        state = self._owned_state(conn, message.session_id)
        state.ack(message.ack_events)
        events = self.gateway.close_session(message.session_id)
        frame = self._events_frame(state, events, flags=wire.FLAG_FINAL)
        conn.owned.discard(message.session_id)
        self._sessions.pop(message.session_id, None)
        self._owners.pop(message.session_id, None)
        await conn.send_burst([frame])

    async def _on_resume(self, conn: _Connection, message: wire.Resume) -> None:
        """Re-attach a parked (or orphaned live) session to this connection.

        The reply burst is ``RESUME_OK`` (carrying ``next_seq``, the
        chunk count already processed — the client retransmits from
        there) followed by a replay ``EVENTS`` frame holding exactly
        the events the client has not acknowledged.
        """
        session_id = message.session_id
        parked = self._parked.pop(session_id, None)
        if parked is not None:
            self.gateway.import_session(parked.export)
            state = parked.state
        elif session_id in self._sessions:
            # The old connection has not been reaped yet (an abrupt
            # disconnect is only detected on its next read) — take the
            # session over; the stale owner loses it.
            state = self._sessions[session_id]
            old = self._owners.get(session_id)
            if old is not None and old is not conn:
                old.owned.discard(session_id)
        else:
            raise KeyError(f"no parked or live session {session_id!r} to resume")
        replay = state.replay_from(message.ack_events)
        state.ack(message.ack_events)
        self._adopt(conn, session_id, state)
        self.n_resumes += 1
        await conn.send_burst(
            [
                self._frame(wire.encode_resume_ok(session_id, state.seq)),
                self._frame(
                    wire.encode_events(
                        session_id, state.seq, message.ack_events, replay
                    )
                ),
            ]
        )

    async def _on_migrate(self, conn: _Connection, message: wire.Migrate) -> None:
        """Ship a session out of — or import one into — this host.

        A ``MIGRATE`` without a blob releases the session via the
        gateway's migration path and returns its capture inside
        ``MIGRATE_OK``; the events the client never acknowledged (its
        ``ack_events`` tells us where its receive count stood when it
        initiated the move) are prepended to the export's pending
        events, so the importing host redelivers them from that exact
        index and the client-side dedupe seam lines up.  A ``MIGRATE``
        carrying a blob unpickles and imports it, adopting the session
        on this connection with the delivery index starting at
        ``ack_events``.
        """
        session_id = message.session_id
        if message.blob is not None:
            if session_id in self._parked or session_id in self._sessions:
                raise ValueError(
                    f"cannot import {session_id!r}: session already exists here"
                )
            export = pickle.loads(message.blob)
            self.gateway.import_session(export)
            state = _NetSession(session_id)
            state.delivered = message.ack_events
            self._adopt(conn, session_id, state)
            self.n_migrations_in += 1
            await conn.send_burst(
                [self._frame(wire.encode_migrate_ok(session_id, state.seq))]
            )
            return
        state = self._owned_state(conn, session_id)
        replay = state.replay_from(message.ack_events)
        export = self.gateway.release_session(session_id)
        if replay:
            export = replace(export, events=list(replay) + list(export.events))
        conn.owned.discard(session_id)
        self._sessions.pop(session_id, None)
        self._owners.pop(session_id, None)
        self.n_migrations_out += 1
        blob = pickle.dumps(export, protocol=pickle.HIGHEST_PROTOCOL)
        await conn.send_burst(
            [self._frame(wire.encode_migrate_ok(session_id, state.seq, blob))]
        )

    async def _on_stats(self, conn: _Connection) -> None:
        """Reply with the gateway's statistics snapshot as ``STATS_OK``.

        Sharded gateways answer their own schema-pinned ``stats()``;
        for a plain :class:`~repro.serving.gateway.StreamGateway` host
        a compatible single-worker rollup is synthesized so federation
        callers read one shape either way.
        """
        stats_fn = getattr(self.gateway, "stats", None)
        if stats_fn is not None:
            stats = stats_fn()
        else:
            g = self.gateway
            rollup_fn = getattr(g, "analytics_rollup", None)
            worker = {
                "n_sessions": g.n_sessions,
                "n_queued": g.n_queued,
                "n_flushes": g.n_flushes,
                "n_classified": g.n_classified,
                "n_evicted": g.n_evicted,
                "analytics": (
                    rollup_fn() if rollup_fn is not None else empty_rollup()
                ),
            }
            stats = dict(worker)
            stats["per_worker"] = [worker]
            stats["workers"] = 1
            stats["migrations"] = 0
            stats["scale_events"] = 0
        await conn.send_burst([self._frame(wire.encode_stats_ok(stats))])

    def _adopt(self, conn: _Connection, session_id: str, state: _NetSession) -> None:
        conn.owned.add(session_id)
        self._sessions[session_id] = state
        self._owners[session_id] = conn

    def _events_frame(self, state: _NetSession, events: list, *, flags: int = 0) -> bytes:
        frame = self._frame(
            wire.encode_events(
                state.session_id, state.seq, state.delivered, events, flags=flags
            )
        )
        state.deliver(events)
        return frame


@dataclass
class ServerHandle:
    """A running background server: address + lifecycle control."""

    host: str
    port: int
    server: GatewayServer
    _loop: asyncio.AbstractEventLoop
    _thread: threading.Thread

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the server and join its event-loop thread."""
        loop = self._loop

        def _shutdown() -> None:
            task = asyncio.ensure_future(self.server.stop())
            task.add_done_callback(lambda _: loop.stop())

        if self._thread.is_alive():
            loop.call_soon_threadsafe(_shutdown)
            self._thread.join(timeout)
        if not loop.is_closed():
            loop.close()


def serve_in_thread(
    gateway,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_frame: int = wire.DEFAULT_MAX_FRAME,
    queue_bursts: int = DEFAULT_QUEUE_BURSTS,
    tick_hook=None,
    tick_every: int = 64,
) -> ServerHandle:
    """Run a :class:`GatewayServer` on a background event-loop thread.

    Returns once the listening socket is bound, with the resolved
    address on the handle.  The gateway is driven exclusively from the
    server thread; call :meth:`ServerHandle.stop` to shut down.
    """
    server = GatewayServer(
        gateway,
        host=host,
        port=port,
        max_frame=max_frame,
        queue_bursts=queue_bursts,
        tick_hook=tick_hook,
        tick_every=tick_every,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        try:
            loop.run_forever()
        finally:
            # Cancel whatever connection tasks are still alive so the
            # loop can close without "task was destroyed" noise.
            for task in asyncio.all_tasks(loop):
                task.cancel()
            try:
                loop.run_until_complete(
                    asyncio.gather(*asyncio.all_tasks(loop), return_exceptions=True)
                )
            except RuntimeError:  # pragma: no cover - loop already closing
                pass

    thread = threading.Thread(target=_run, name="repro-net-server", daemon=True)
    thread.start()
    if not started.wait(10.0):  # pragma: no cover - defensive
        raise RuntimeError("gateway server failed to start within 10 s")
    return ServerHandle(
        host=server.host, port=server.port, server=server, _loop=loop, _thread=thread
    )
