"""Wire protocol of the off-box serving layer: framed binary codec.

The network tier's throughput is decided almost entirely here — by how
cheaply an ingest chunk or an event batch crosses the wire — so the
protocol is designed around zero-copy numpy buffers from the first
byte:

* **Framing**: every message is one *frame* — a 4-byte little-endian
  unsigned length prefix followed by the payload, whose first byte is
  the opcode.  Frames above the negotiated ``max_frame`` are rejected
  (:class:`FrameTooLarge`) before any allocation, so a corrupt or
  hostile length prefix cannot balloon memory.
* **Chunks** (:func:`encode_ingest`): raw ``<f8`` (little-endian
  float64) sample bytes after a 21-byte packed header — no pickle, no
  per-sample Python objects.  ``numpy.frombuffer`` reconstructs the
  array without copying.  Shape is ``(n_samples,)`` or
  ``(n_samples, n_leads)``; dtype and byte order are pinned by the
  protocol, not the host.
* **Event batches** (:func:`encode_events`): structure-of-arrays —
  parallel ``<i8`` peaks, ``<i4`` labels, ``<u1`` flags and ``<i4``
  payload sizes, plus a sparse fiducial block (``<u4`` indices into
  the batch and 9 ``<i8`` fiducials per flagged beat) — so a burst of
  dozens of events is a handful of ``frombuffer`` calls, not dozens
  of pickled objects.

Control-plane frames (the federation tier, PR 8): ``MIGRATE`` /
``MIGRATE_OK`` move one live session between hosts over the wire.  A
``MIGRATE`` without a payload asks the server to *release* the session
(the :class:`~repro.serving.gateway.SessionExport` migration path) and
ship its capture back inside ``MIGRATE_OK``; a ``MIGRATE`` carrying
that capture asks a different server to *import* it.  The capture
travels as an opaque blob — pickled only at the server edge (see
:mod:`repro.serving.net.server`; the serving protocol assumes a
trusted cluster network, exactly like the sharded tier's process
pipes).  ``STATS`` / ``STATS_OK`` fetch the remote gateway's
statistics snapshot (JSON — small, infrequent, schema-pinned) so a
front-door router can roll up fleet-wide load.

Reliability fields: every ``INGEST`` carries a per-session sequence
number and every ``EVENTS`` frame acknowledges the count of chunks the
server has processed (``acked_seq``) and states the index of its first
event in the session's event stream (``base_index``).  Together with
the client's piggybacked ``ack_events`` these bound both replay
buffers and make the reconnect-resume handshake (``RESUME`` /
``RESUME_OK``) bit-exact: the client retransmits exactly the chunks
the server never processed, the server re-sends exactly the events the
client never received.

The opcode map, header layouts and the resume handshake are documented
in the README's wire-protocol spec; this module is the single source
of truth for both sides of the connection.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.dsp.delineation import BeatFiducials
from repro.dsp.streaming import StreamBeatEvent

__all__ = [
    "DEFAULT_MAX_FRAME",
    "FLAG_FINAL",
    "FLAG_SYNC",
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "Close",
    "Error",
    "Events",
    "FrameDecoder",
    "FrameTooLarge",
    "Hello",
    "HelloOk",
    "Ingest",
    "Migrate",
    "MigrateOk",
    "Open",
    "OpenOk",
    "Poll",
    "ProtocolError",
    "Resume",
    "ResumeOk",
    "Stats",
    "StatsOk",
    "decode",
    "encode_close",
    "encode_error",
    "encode_events",
    "encode_hello",
    "encode_hello_ok",
    "encode_ingest",
    "encode_migrate",
    "encode_migrate_ok",
    "encode_open",
    "encode_open_ok",
    "encode_poll",
    "encode_resume",
    "encode_resume_ok",
    "encode_stats",
    "encode_stats_ok",
    "pack_frame",
    "read_frame",
]

#: Protocol magic ("RPN1" — Random-Projection Net v1) and version.
PROTOCOL_MAGIC = 0x52504E31
PROTOCOL_VERSION = 1

#: Default bound on one frame's payload size (4 MiB).  A 250 ms chunk
#: of 3-lead 360 Hz float64 signal is ~2 KiB; this leaves three
#: orders of magnitude of headroom while still rejecting a corrupt
#: length prefix before allocation.
DEFAULT_MAX_FRAME = 4 * 1024 * 1024

_LEN = struct.Struct("<I")

# -- opcodes -----------------------------------------------------------------

OP_HELLO = 0x01
OP_HELLO_OK = 0x02
OP_OPEN = 0x10
OP_OPEN_OK = 0x11
OP_INGEST = 0x12
OP_POLL = 0x13
OP_CLOSE = 0x14
OP_RESUME = 0x15
OP_RESUME_OK = 0x16
OP_MIGRATE = 0x17
OP_MIGRATE_OK = 0x18
OP_STATS = 0x19
OP_STATS_OK = 0x1A
OP_EVENTS = 0x20
OP_ERROR = 0x30

#: ``EVENTS`` frame flags: ``SYNC`` marks the (exactly one) reply to a
#: ``POLL`` — the client's synchronization barrier — and ``FINAL`` the
#: reply to a ``CLOSE``, carrying the tail of the session's stream.
FLAG_SYNC = 0x01
FLAG_FINAL = 0x02

_HELLO = struct.Struct("<IHQ")  # magic, version, max_frame
_QOS = struct.Struct("<II")  # max_latency_ticks, evict_after_ticks (0 = unset)
_INGEST = struct.Struct("<QQIB")  # seq, ack_events, n_samples, n_leads (0 = 1-D)
_U64 = struct.Struct("<Q")
_EVENTS = struct.Struct("<QQBII")  # acked_seq, base_index, flags, n, n_fid
_SID_LEN = struct.Struct("<H")

_N_FIDUCIALS = 9


class ProtocolError(ValueError):
    """A frame or payload that violates the wire protocol."""


class FrameTooLarge(ProtocolError):
    """A frame whose declared length exceeds the negotiated bound."""


# -- message types -----------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    max_frame: int
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class HelloOk:
    max_frame: int
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Open:
    session_id: str
    max_latency_ticks: int | None = None
    evict_after_ticks: int | None = None


@dataclass(frozen=True)
class OpenOk:
    session_id: str


@dataclass(frozen=True)
class Ingest:
    session_id: str
    seq: int
    ack_events: int
    chunk: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class Poll:
    session_id: str
    ack_events: int


@dataclass(frozen=True)
class Close:
    session_id: str
    ack_events: int


@dataclass(frozen=True)
class Resume:
    session_id: str
    ack_events: int


@dataclass(frozen=True)
class ResumeOk:
    session_id: str
    next_seq: int


@dataclass(frozen=True)
class Migrate:
    """Cross-host session migration, both directions.

    ``blob is None`` — *capture* request: release the session and
    return its export inside ``MIGRATE_OK``.  ``ack_events`` is the
    client's event count at request time; events delivered beyond it
    (sent but unacknowledged) are folded back into the export so the
    importing host replays them.

    ``blob`` set — *import* request: adopt the shipped capture;
    ``ack_events`` must be the value the capture was taken at (the
    importing server's delivery index starts there, so the client-side
    dedupe seam lines up across hosts).
    """

    session_id: str
    ack_events: int
    blob: bytes | None = field(repr=False, default=None)


@dataclass(frozen=True)
class MigrateOk:
    """Reply to ``MIGRATE``: the capture (release) or an ack (import).

    ``next_seq`` is the chunk sequence the releasing server had
    processed up to (every pipelined chunk before the ``MIGRATE`` —
    FIFO — so the client's replay buffer is empty by construction);
    ``0`` on an import ack, where the adopted session's chunk
    numbering restarts.
    """

    session_id: str
    next_seq: int
    blob: bytes = field(repr=False, default=b"")


@dataclass(frozen=True)
class Stats:
    """Request the remote gateway's statistics snapshot."""


@dataclass(frozen=True)
class StatsOk:
    """The remote gateway's ``stats()`` dict (JSON on the wire)."""

    stats: dict = field(repr=False, default_factory=dict)


@dataclass(frozen=True)
class Events:
    session_id: str
    acked_seq: int
    base_index: int
    flags: int
    events: list[StreamBeatEvent] = field(repr=False, default_factory=list)

    @property
    def sync(self) -> bool:
        return bool(self.flags & FLAG_SYNC)

    @property
    def final(self) -> bool:
        return bool(self.flags & FLAG_FINAL)


@dataclass(frozen=True)
class Error:
    session_id: str
    sync: bool
    message: str


# -- framing -----------------------------------------------------------------


def pack_frame(payload: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Prefix one payload with its little-endian length."""
    if len(payload) > max_frame:
        raise FrameTooLarge(
            f"frame payload of {len(payload)} bytes exceeds max_frame={max_frame}"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser for a byte stream (the sync client side).

    Feed it whatever the socket produced; it yields complete payloads
    and buffers the remainder.  A declared length above ``max_frame``
    raises :class:`FrameTooLarge` immediately — before the oversized
    body is ever buffered.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME):
        self.max_frame = int(max_frame)
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every now-complete frame payload."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buffer)
            if length > self.max_frame:
                raise FrameTooLarge(
                    f"incoming frame of {length} bytes exceeds "
                    f"max_frame={self.max_frame}"
                )
            if len(self._buffer) < _LEN.size + length:
                return frames
            frames.append(bytes(self._buffer[_LEN.size : _LEN.size + length]))
            del self._buffer[: _LEN.size + length]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)


async def read_frame(reader, max_frame: int = DEFAULT_MAX_FRAME) -> bytes | None:
    """Read one frame payload from an asyncio stream reader.

    Returns ``None`` on a clean EOF at a frame boundary; raises
    :class:`ProtocolError` on a truncated frame (EOF mid-frame) and
    :class:`FrameTooLarge` on an oversized length prefix.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame (truncated header)") from None
    (length,) = _LEN.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(
            f"incoming frame of {length} bytes exceeds max_frame={max_frame}"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame (truncated body)") from None


# -- encoding ----------------------------------------------------------------


def _encode_sid(session_id: str) -> bytes:
    raw = session_id.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError("session id longer than 65535 bytes")
    return _SID_LEN.pack(len(raw)) + raw


def encode_hello(max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    return bytes([OP_HELLO]) + _HELLO.pack(PROTOCOL_MAGIC, PROTOCOL_VERSION, max_frame)


def encode_hello_ok(max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    return bytes([OP_HELLO_OK]) + _HELLO.pack(
        PROTOCOL_MAGIC, PROTOCOL_VERSION, max_frame
    )


def encode_open(
    session_id: str,
    *,
    max_latency_ticks: int | None = None,
    evict_after_ticks: int | None = None,
) -> bytes:
    return (
        bytes([OP_OPEN])
        + _encode_sid(session_id)
        + _QOS.pack(max_latency_ticks or 0, evict_after_ticks or 0)
    )


def encode_open_ok(session_id: str) -> bytes:
    return bytes([OP_OPEN_OK]) + _encode_sid(session_id)


def encode_ingest(session_id: str, seq: int, ack_events: int, chunk) -> bytes:
    """One ingest chunk as raw little-endian float64 sample bytes.

    The dtype and byte order are pinned by the protocol — any input is
    converted to ``<f8`` here (a no-op copy-wise on little-endian
    hosts with float64 input), so both peers agree bit-for-bit on the
    samples regardless of host endianness.
    """
    arr = np.ascontiguousarray(chunk, dtype="<f8")
    if arr.ndim == 1:
        n_leads = 0
    elif arr.ndim == 2:
        n_leads = arr.shape[1]
        if not 1 <= n_leads <= 0xFF:
            raise ProtocolError(f"n_leads must be in [1, 255], got {n_leads}")
    else:
        raise ProtocolError(f"chunk must be 1-D or 2-D, got ndim={arr.ndim}")
    return (
        bytes([OP_INGEST])
        + _encode_sid(session_id)
        + _INGEST.pack(seq, ack_events, arr.shape[0], n_leads)
        + arr.tobytes()
    )


def encode_poll(session_id: str, ack_events: int) -> bytes:
    return bytes([OP_POLL]) + _encode_sid(session_id) + _U64.pack(ack_events)


def encode_close(session_id: str, ack_events: int) -> bytes:
    return bytes([OP_CLOSE]) + _encode_sid(session_id) + _U64.pack(ack_events)


def encode_resume(session_id: str, ack_events: int) -> bytes:
    return bytes([OP_RESUME]) + _encode_sid(session_id) + _U64.pack(ack_events)


def encode_resume_ok(session_id: str, next_seq: int) -> bytes:
    return bytes([OP_RESUME_OK]) + _encode_sid(session_id) + _U64.pack(next_seq)


def encode_migrate(session_id: str, ack_events: int, blob: bytes | None = None) -> bytes:
    """Capture request (``blob=None``) or import request (``blob`` set)."""
    has_blob = blob is not None
    return (
        bytes([OP_MIGRATE])
        + _encode_sid(session_id)
        + _U64.pack(ack_events)
        + bytes([1 if has_blob else 0])
        + (blob if has_blob else b"")
    )


def encode_migrate_ok(session_id: str, next_seq: int, blob: bytes = b"") -> bytes:
    return (
        bytes([OP_MIGRATE_OK]) + _encode_sid(session_id) + _U64.pack(next_seq) + blob
    )


def encode_stats() -> bytes:
    return bytes([OP_STATS])


def encode_stats_ok(stats: dict) -> bytes:
    return bytes([OP_STATS_OK]) + json.dumps(
        stats, separators=(",", ":")
    ).encode("utf-8")


def encode_events(
    session_id: str,
    acked_seq: int,
    base_index: int,
    events,
    *,
    flags: int = 0,
) -> bytes:
    """A batch of resolved beat events as parallel packed arrays."""
    events = list(events)
    n = len(events)
    fid_idx = [i for i, e in enumerate(events) if e.fiducials is not None]
    parts = [
        bytes([OP_EVENTS]),
        _encode_sid(session_id),
        _EVENTS.pack(acked_seq, base_index, flags, n, len(fid_idx)),
        np.fromiter((e.peak for e in events), dtype="<i8", count=n).tobytes(),
        np.fromiter((e.label for e in events), dtype="<i4", count=n).tobytes(),
        np.fromiter((e.flagged for e in events), dtype="<u1", count=n).tobytes(),
        np.fromiter((e.tx_bytes for e in events), dtype="<i4", count=n).tobytes(),
        np.asarray(fid_idx, dtype="<u4").tobytes(),
    ]
    if fid_idx:
        fid = np.stack([events[i].fiducials.as_array() for i in fid_idx])
        parts.append(np.ascontiguousarray(fid, dtype="<i8").tobytes())
    return b"".join(parts)


def encode_error(session_id: str, message: str, *, sync: bool = False) -> bytes:
    return (
        bytes([OP_ERROR])
        + _encode_sid(session_id)
        + bytes([1 if sync else 0])
        + message.encode("utf-8")
    )


# -- decoding ----------------------------------------------------------------


class _Cursor:
    """Bounds-checked reader over one frame payload."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ProtocolError(
                f"truncated payload: wanted {n} bytes at offset {self.pos}, "
                f"frame has {len(self.data)}"
            )
        out = self.data[self.pos : end]
        self.pos = end
        return out

    def unpack(self, fmt: struct.Struct) -> tuple:
        return fmt.unpack(self.take(fmt.size))

    def sid(self) -> str:
        (length,) = self.unpack(_SID_LEN)
        return self.take(length).decode("utf-8")

    def rest(self) -> bytes:
        out = self.data[self.pos :]
        self.pos = len(self.data)
        return out

    def done(self) -> None:
        if self.pos != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.pos} trailing bytes after payload"
            )


def _decode_hello(cursor: _Cursor, ok: bool):
    magic, version, max_frame = cursor.unpack(_HELLO)
    cursor.done()
    if magic != PROTOCOL_MAGIC:
        raise ProtocolError(f"bad protocol magic 0x{magic:08x}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    cls = HelloOk if ok else Hello
    return cls(max_frame=max_frame, version=version)


def _decode_array(cursor: _Cursor, dtype: str, n: int) -> np.ndarray:
    itemsize = np.dtype(dtype).itemsize
    return np.frombuffer(cursor.take(n * itemsize), dtype=dtype)


def _decode_events(cursor: _Cursor) -> Events:
    session_id = cursor.sid()
    acked_seq, base_index, flags, n, n_fid = cursor.unpack(_EVENTS)
    if n_fid > n:
        raise ProtocolError(f"fiducial count {n_fid} exceeds event count {n}")
    peaks = _decode_array(cursor, "<i8", n)
    labels = _decode_array(cursor, "<i4", n)
    flagged = _decode_array(cursor, "<u1", n)
    tx = _decode_array(cursor, "<i4", n)
    fid_idx = _decode_array(cursor, "<u4", n_fid)
    fid = _decode_array(cursor, "<i8", n_fid * _N_FIDUCIALS).reshape(
        n_fid, _N_FIDUCIALS
    )
    cursor.done()
    fiducials: dict[int, BeatFiducials] = {
        int(i): BeatFiducials.from_array(row) for i, row in zip(fid_idx, fid)
    }
    events = [
        StreamBeatEvent(
            peak=int(peaks[i]),
            label=int(labels[i]),
            flagged=bool(flagged[i]),
            tx_bytes=int(tx[i]),
            fiducials=fiducials.get(i),
        )
        for i in range(n)
    ]
    return Events(
        session_id=session_id,
        acked_seq=acked_seq,
        base_index=base_index,
        flags=flags,
        events=events,
    )


def decode(payload: bytes):
    """Decode one frame payload into its message object."""
    if not payload:
        raise ProtocolError("empty frame payload")
    op = payload[0]
    cursor = _Cursor(payload, 1)
    if op == OP_HELLO:
        return _decode_hello(cursor, ok=False)
    if op == OP_HELLO_OK:
        return _decode_hello(cursor, ok=True)
    if op == OP_OPEN:
        session_id = cursor.sid()
        mlt, eat = cursor.unpack(_QOS)
        cursor.done()
        return Open(
            session_id=session_id,
            max_latency_ticks=mlt or None,
            evict_after_ticks=eat or None,
        )
    if op == OP_OPEN_OK:
        session_id = cursor.sid()
        cursor.done()
        return OpenOk(session_id=session_id)
    if op == OP_INGEST:
        session_id = cursor.sid()
        seq, ack_events, n_samples, n_leads = cursor.unpack(_INGEST)
        width = max(1, n_leads)
        chunk = _decode_array(cursor, "<f8", n_samples * width)
        cursor.done()
        if n_leads:
            chunk = chunk.reshape(n_samples, n_leads)
        return Ingest(
            session_id=session_id, seq=seq, ack_events=ack_events, chunk=chunk
        )
    if op == OP_POLL:
        session_id = cursor.sid()
        (ack_events,) = cursor.unpack(_U64)
        cursor.done()
        return Poll(session_id=session_id, ack_events=ack_events)
    if op == OP_CLOSE:
        session_id = cursor.sid()
        (ack_events,) = cursor.unpack(_U64)
        cursor.done()
        return Close(session_id=session_id, ack_events=ack_events)
    if op == OP_RESUME:
        session_id = cursor.sid()
        (ack_events,) = cursor.unpack(_U64)
        cursor.done()
        return Resume(session_id=session_id, ack_events=ack_events)
    if op == OP_RESUME_OK:
        session_id = cursor.sid()
        (next_seq,) = cursor.unpack(_U64)
        cursor.done()
        return ResumeOk(session_id=session_id, next_seq=next_seq)
    if op == OP_MIGRATE:
        session_id = cursor.sid()
        (ack_events,) = cursor.unpack(_U64)
        (has_blob,) = cursor.take(1)
        if has_blob:
            return Migrate(
                session_id=session_id, ack_events=ack_events, blob=cursor.rest()
            )
        cursor.done()
        return Migrate(session_id=session_id, ack_events=ack_events, blob=None)
    if op == OP_MIGRATE_OK:
        session_id = cursor.sid()
        (next_seq,) = cursor.unpack(_U64)
        return MigrateOk(session_id=session_id, next_seq=next_seq, blob=cursor.rest())
    if op == OP_STATS:
        cursor.done()
        return Stats()
    if op == OP_STATS_OK:
        raw = cursor.rest()
        try:
            stats = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed STATS_OK payload: {exc}") from None
        if not isinstance(stats, dict):
            raise ProtocolError("STATS_OK payload is not a JSON object")
        return StatsOk(stats=stats)
    if op == OP_EVENTS:
        return _decode_events(cursor)
    if op == OP_ERROR:
        session_id = cursor.sid()
        (sync,) = cursor.take(1)
        return Error(
            session_id=session_id,
            sync=bool(sync),
            message=cursor.rest().decode("utf-8", errors="replace"),
        )
    raise ProtocolError(f"unknown opcode 0x{op:02x}")
