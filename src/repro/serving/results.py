"""Result containers of the serving layer.

:class:`FleetTrace` aggregates the per-record
:class:`~repro.platform.node_sim.NodeTrace` objects a batch simulation
produces; :class:`StreamResult` is the per-stream outcome of the
batched stream classifiers.  Both are plain picklable dataclasses so
they cross process-pool and gateway boundaries unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.defuzz import is_abnormal
from repro.platform.node_sim import NodeTrace


@dataclass
class FleetTrace:
    """Aggregate outcome of simulating a batch of records.

    Wraps the per-record :class:`~repro.platform.node_sim.NodeTrace`
    objects and exposes the fleet-level numbers a gateway dashboard
    would plot.
    """

    traces: list[NodeTrace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def n_beats(self) -> int:
        """Beats processed across the fleet."""
        return sum(len(t) for t in self.traces)

    @property
    def n_flagged(self) -> int:
        """Beats that activated the delineator, fleet-wide."""
        return sum(t.n_flagged for t in self.traces)

    @property
    def activation_rate(self) -> float:
        """Fraction of beats flagged abnormal across all records."""
        beats = self.n_beats
        return self.n_flagged / beats if beats else 0.0

    @property
    def total_tx_bytes(self) -> int:
        """Radio bytes queued by every node."""
        return sum(t.total_tx_bytes for t in self.traces)

    @property
    def deadline_misses(self) -> int:
        """Beats that exceeded their inter-beat budget, fleet-wide."""
        return sum(t.deadline_misses for t in self.traces)

    @property
    def worst_case_utilization(self) -> float:
        """Worst per-beat load over budget across every node."""
        if not self.traces:
            return 0.0
        return max(t.worst_case_utilization for t in self.traces)

    @property
    def mean_duty_cycle(self) -> float:
        """Average of the per-record duty cycles."""
        if not self.traces:
            return 0.0
        return float(np.mean([t.duty_cycle for t in self.traces]))

    def summary(self) -> str:
        """One-paragraph fleet report."""
        return (
            f"{len(self.traces)} records, {self.n_beats} beats: "
            f"mean duty={self.mean_duty_cycle:.3f}, "
            f"activation={100 * self.activation_rate:.1f}%, "
            f"tx={self.total_tx_bytes} B, worst-case load="
            f"{100 * self.worst_case_utilization:.1f}% of a beat budget, "
            f"{self.deadline_misses} deadline misses"
        )


@dataclass(frozen=True)
class StreamResult:
    """Per-stream outcome of :func:`repro.serving.classify_streams`."""

    peaks: np.ndarray
    labels: np.ndarray

    @property
    def abnormal(self) -> np.ndarray:
        """Boolean mask of beats flagged abnormal."""
        return is_abnormal(self.labels)

    @property
    def n_beats(self) -> int:
        return int(self.labels.size)
