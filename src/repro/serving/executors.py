"""Shard splitting and the pluggable executors behind the serving layer.

Every serving entry point reduces to the same shape of work: split a
batch of independent items into contiguous shards, run one function
per shard somewhere (in-process, a thread pool, or a process pool),
and concatenate the shard outputs in submission order.  This module
owns that machinery so :mod:`repro.serving.engine` and
:mod:`repro.serving.gateway` stay about *what* runs, not *where*.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

#: Executor names the serving layer accepts.
EXECUTORS = ("serial", "threads", "processes")

#: Overflow policies a bounded session inbox accepts
#: (:class:`repro.serving.sharded.SessionInbox`).
INBOX_POLICIES = ("block", "drop")

#: Placement policies :class:`repro.serving.sharded.ShardedGateway`
#: accepts for assigning sessions to workers (``open_session`` /
#: ``import_session`` consult the configured placer).
PLACEMENTS = ("hash", "least-loaded", "round-robin")

#: Worker execution modes :class:`repro.serving.sharded.ShardedGateway`
#: accepts: ``"process"`` runs one worker per OS process (true
#: parallelism); ``"inline"`` runs every worker in the calling process
#: over a shared batch, so one classifier pass per tick covers the
#: whole pool.
WORKER_MODES = ("process", "inline")


def validate_executor(executor: str) -> str:
    """Return ``executor`` or raise a :class:`ValueError` naming the
    allowed values."""
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )
    return executor


def validate_workers(workers: int) -> int:
    """Return ``workers`` or raise a :class:`ValueError` naming the
    allowed values."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def validate_at_least(name: str, value: int, minimum: int = 1) -> int:
    """Return ``value`` or raise a :class:`ValueError` naming the bound.

    The shared lower-bound check every serving knob goes through, so
    ``StreamGateway``, ``ShardedGateway`` and ``ServingEngine`` all
    phrase their errors the same way (``"<name> must be >= <minimum>,
    got <value>"``).
    """
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def validate_inbox_policy(policy: str) -> str:
    """Return ``policy`` or raise a :class:`ValueError` naming the
    allowed values."""
    if policy not in INBOX_POLICIES:
        raise ValueError(
            f"unknown inbox policy {policy!r}; expected one of {INBOX_POLICIES}"
        )
    return policy


def validate_placement(placement: str) -> str:
    """Return ``placement`` or raise a :class:`ValueError` naming the
    allowed values."""
    if placement not in PLACEMENTS:
        raise ValueError(
            f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
        )
    return placement


def validate_worker_mode(worker_mode: str) -> str:
    """Return ``worker_mode`` or raise a :class:`ValueError` naming the
    allowed values."""
    if worker_mode not in WORKER_MODES:
        raise ValueError(
            f"unknown worker mode {worker_mode!r}; expected one of {WORKER_MODES}"
        )
    return worker_mode


def split_shards(items: list, n_shards: int) -> list[list]:
    """Split ``items`` into at most ``n_shards`` contiguous, non-empty
    shards of near-equal size (order preserved)."""
    n_shards = max(1, min(n_shards, len(items)))
    bounds = np.linspace(0, len(items), n_shards + 1).astype(int)
    return [items[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def map_shards(executor: str, workers: int, fn, tasks: list) -> list:
    """Run ``fn`` over ``tasks`` under the named executor.

    Outputs are returned in task order whatever the executor, so shard
    concatenation downstream is deterministic.  Single-task batches and
    single-worker pools short-circuit to the serial path (a pool can
    only add overhead there).
    """
    validate_executor(executor)
    validate_workers(workers)
    if executor == "serial" or workers == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    pool_cls = ThreadPoolExecutor if executor == "threads" else ProcessPoolExecutor
    with pool_cls(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(fn, tasks))
