"""Fleet load generator: paced replay, latency percentiles, ramp search.

The serving tier's scaling claims (batched flushes, sharding,
autoscaling) are only as honest as the numbers behind them.  This
module produces those numbers:

* :func:`synthesize_fleet` — a reproducible synthetic fleet spanning
  the paper's variability axes: per-session beat-class mixes
  (morphology), MIT-BIH-style contamination profiles
  (:mod:`repro.ecg.noise_stress` — clean / ``em`` / ``ma`` / ``bw``)
  and heart-rate skews, so a throughput number reflects mixed traffic
  rather than one friendly waveform.
* :func:`replay_fleet` — replay a fleet through any **ingest
  target** — an in-process gateway
  (:class:`~repro.serving.gateway.StreamGateway`,
  :class:`~repro.serving.sharded.ShardedGateway`) or the TCP
  :class:`~repro.serving.net.client.GatewayClient`, anything exposing
  ``open_session`` / ``ingest`` / ``close_session`` — at a
  **controlled offered rate** in events/sec, wall-clock paced,
  recording per-event latency (chunk ingested -> event returned) and
  whether the target kept up (:attr:`LoadgenReport.sustained`).
* :func:`find_max_sustained` — closed-loop ramp: raise the offered
  rate geometrically until the gateway falls behind; the last
  sustained step is the max-sustained-throughput claim, with its
  p50/p99 latency attached.

Event latency is measured against the ingest wall-time of the chunk
*containing the beat's peak* — the earliest instant the gateway could
have known about the beat — so queueing delay from batching policies
is included, not hidden.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.ecg.noise_stress import NOISE_KINDS, add_noise_at_snr
from repro.ecg.synth import RecordSynthesizer, RhythmConfig, SynthesisConfig

__all__ = [
    "LoadgenReport",
    "find_max_sustained",
    "replay_fleet",
    "synthesize_fleet",
]

#: Per-session beat-class mixes rotated across the fleet (morphology
#: axis): mostly-normal, PVC-heavy and LBBB-heavy traffic.
_CLASS_MIXES = (
    {"N": 0.835, "V": 0.074, "L": 0.091},
    {"N": 0.60, "V": 0.30, "L": 0.10},
    {"N": 0.55, "V": 0.05, "L": 0.40},
)

#: Contamination profiles rotated across the fleet (noise axis).
_NOISE_PROFILES = ("clean",) + NOISE_KINDS

#: Heart-rate skews rotated across the fleet (rate axis): multipliers
#: on the base beat rate, so sessions beat at genuinely different
#: paces and the batch sees ragged arrivals.
_RATE_SKEWS = (1.0, 1.35, 0.75)


def synthesize_fleet(
    n_sessions: int,
    duration_s: float,
    *,
    fs: float = 360.0,
    seed: int = 0,
    base_rr: float = 0.8,
    noise_snr_db: float = 12.0,
) -> tuple[dict[str, np.ndarray], float]:
    """Build a mixed synthetic fleet for the load generator.

    Session ``i`` gets class mix ``i % 3``, noise profile ``i % 4``
    and rate skew ``i % 3`` — every combination appears within 12
    sessions, and the same ``(n_sessions, seed)`` always yields the
    same fleet.

    Parameters
    ----------
    n_sessions:
        Sessions to synthesize (>= 1).
    duration_s:
        Stream length per session in seconds.
    fs:
        Sampling frequency (Hz).
    seed:
        Base RNG seed; session ``i`` derives ``seed + i``.
    base_rr:
        Mean RR interval (s) before the per-session rate skew.
    noise_snr_db:
        SNR of the contaminated sessions' noise profiles.

    Returns
    -------
    (streams, nominal_eps):
        ``streams`` maps session id to a 1-D sample array;
        ``nominal_eps`` is the fleet's aggregate beat rate in
        events/sec when replayed in real time (the reference the
        pacing speed multiplies).
    """
    if n_sessions < 1:
        raise ValueError(f"n_sessions must be >= 1, got {n_sessions}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    streams: dict[str, np.ndarray] = {}
    nominal_eps = 0.0
    for i in range(n_sessions):
        skew = _RATE_SKEWS[i % len(_RATE_SKEWS)]
        mean_rr = base_rr / skew
        config = SynthesisConfig(
            fs=fs, n_leads=1, rhythm=RhythmConfig(mean_rr=mean_rr)
        )
        record = RecordSynthesizer(config, seed=seed + i).synthesize(
            duration_s,
            class_mix=_CLASS_MIXES[i % len(_CLASS_MIXES)],
            name=f"loadgen-{i}",
        )
        signal = np.asarray(record.signal, dtype=float)
        if signal.ndim == 2:
            signal = signal[:, 0]
        profile = _NOISE_PROFILES[i % len(_NOISE_PROFILES)]
        if profile != "clean":
            signal = add_noise_at_snr(
                signal[np.newaxis, :],
                noise_snr_db,
                kind=profile,
                fs=fs,
                rng=seed + i,
            )[0]
        streams[f"loadgen-{i}"] = signal
        nominal_eps += 1.0 / mean_rr
    return streams, nominal_eps


@dataclass(frozen=True)
class LoadgenReport:
    """Outcome of one paced :func:`replay_fleet` run.

    Attributes
    ----------
    target_eps:
        Offered rate the replay was paced to (``None`` = unpaced, as
        fast as the gateway accepts).
    offered_eps:
        Events/sec actually offered (scheduled events over scheduled
        time; equals ``target_eps`` when the pacer kept up).
    achieved_eps:
        Events/sec actually completed (``n_events`` over wall time).
    n_events:
        Total beat events returned across the fleet.
    p50_ms / p99_ms:
        Per-event latency percentiles in milliseconds (chunk ingest
        -> event returned; ``nan`` when no events fired).
    sustained:
        ``True`` when the replay finished within ``1 + tolerance`` of
        its schedule — the gateway kept up with the offered rate.
    wall_s / scheduled_s:
        Actual and scheduled replay duration in seconds.
    events:
        Per-session event lists (complete sequences, bit-exact with a
        standalone node — the replay only changes *when* chunks are
        offered, never their content or order).
    analytics:
        The target's fleet analytics rollup (``stats()["analytics"]``)
        captured after the replay, when requested via
        ``replay_fleet(..., collect_analytics=True)`` and the target
        exposes it; ``None`` otherwise.
    """

    target_eps: float | None
    offered_eps: float
    achieved_eps: float
    n_events: int
    p50_ms: float
    p99_ms: float
    sustained: bool
    wall_s: float
    scheduled_s: float
    events: dict[str, list] = field(repr=False, default_factory=dict)
    analytics: dict | None = None


def replay_fleet(
    target,
    streams,
    *,
    fs: float,
    chunk: int,
    target_eps: float | None = None,
    nominal_eps: float | None = None,
    tolerance: float = 0.1,
    on_round=None,
    collect_analytics: bool = False,
) -> LoadgenReport:
    """Replay a fleet through a live ingest target at a controlled rate.

    Chunks are offered round-robin (the canonical
    :func:`~repro.serving.gateway.serve_round_robin` order, so event
    sequences are bit-exact with it).  With ``target_eps`` set the
    replay is wall-clock paced: after round ``r`` the scheduled time
    is ``(r + 1) * chunk / fs / speed`` where
    ``speed = target_eps / nominal_eps``, and the replayer sleeps when
    ahead.  A target that falls behind simply finishes late — which
    the report flags via :attr:`LoadgenReport.sustained`.

    Parameters
    ----------
    target:
        Pluggable ingest target: any open-session surface
        (``open_session`` / ``ingest`` / ``close_session``) with no
        colliding sessions.  In-process gateways and the TCP
        :class:`~repro.serving.net.client.GatewayClient` both
        qualify, so the same synthesized fleet measures either path.
        Pipelined targets may return a chunk's events from a later
        ``ingest`` call; the latency attribution (by the chunk
        containing each beat's peak) is unaffected.
    streams:
        Mapping of session id to 1-D sample array (see
        :func:`synthesize_fleet`).
    fs:
        Sampling frequency of the streams (Hz).
    chunk:
        Ingest slice length in samples (>= 1).
    target_eps:
        Offered rate in events/sec (``None`` = unpaced).
    nominal_eps:
        The fleet's real-time event rate (from
        :func:`synthesize_fleet`); required when ``target_eps`` is
        set.
    tolerance:
        Relative schedule slack before a run counts as unsustained.
    on_round:
        Optional zero-argument callback fired after each full
        round-robin pass, mirroring
        :func:`~repro.serving.gateway.serve_round_robin`'s hook — the
        seam an across-host
        :class:`~repro.serving.autoscale.AutoBalancer` ticks through
        when the target is a
        :class:`~repro.serving.federation.FederatedGateway`.
    collect_analytics:
        Capture the target's ``stats()["analytics"]`` rollup into
        :attr:`LoadgenReport.analytics` after the replay completes
        (every tier — gateway, sharded, supervised, net client,
        federation — answers the same schema-pinned block).
    """
    streams = {sid: np.asarray(x) for sid, x in streams.items()}
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1 sample, got {chunk}")
    if target_eps is not None:
        if nominal_eps is None or nominal_eps <= 0:
            raise ValueError("paced replay needs the fleet's nominal_eps")
        if target_eps <= 0:
            raise ValueError(f"target_eps must be > 0, got {target_eps}")
    speed = None if target_eps is None else target_eps / nominal_eps

    for session_id in streams:
        target.open_session(session_id)
    events: dict[str, list] = {sid: [] for sid in streams}
    # Wall-clock ingest time of every (session, round) chunk, for the
    # latency attribution of events whose peak falls in that chunk.
    ingest_times: dict[str, list[float]] = {sid: [] for sid in streams}
    latencies: list[float] = []

    def _note(session_id: str, new_events: list, now: float) -> None:
        times = ingest_times[session_id]
        for event in new_events:
            chunk_index = min(int(event.peak) // chunk, len(times) - 1)
            latencies.append(now - times[chunk_index])
        events[session_id].extend(new_events)

    offsets = dict.fromkeys(streams, 0)
    start = time.perf_counter()
    rounds = 0
    live = True
    while live:
        live = False
        for session_id, x in streams.items():
            i = offsets[session_id]
            if i >= len(x):
                continue
            now = time.perf_counter()
            ingest_times[session_id].append(now)
            returned = target.ingest(session_id, x[i : i + chunk])
            _note(session_id, returned, time.perf_counter())
            offsets[session_id] = i + chunk
            live = True
        rounds += 1
        if on_round is not None and live:
            on_round()
        if speed is not None and live:
            ahead = start + rounds * chunk / fs / speed - time.perf_counter()
            if ahead > 0:
                time.sleep(ahead)
    for session_id in streams:
        returned = target.close_session(session_id)
        _note(session_id, returned, time.perf_counter())
    wall_s = time.perf_counter() - start
    analytics = None
    if collect_analytics:
        stats_fn = getattr(target, "stats", None)
        if stats_fn is not None:
            analytics = stats_fn().get("analytics")

    max_rounds = max(
        (len(x) + chunk - 1) // chunk for x in streams.values()
    )
    scheduled_s = (
        wall_s if speed is None else max_rounds * chunk / fs / speed
    )
    n_events = sum(len(seq) for seq in events.values())
    lat_ms = 1e3 * np.asarray(latencies) if latencies else np.asarray([np.nan])
    offered_eps = (
        n_events / scheduled_s if scheduled_s > 0 else float("nan")
    )
    return LoadgenReport(
        target_eps=target_eps,
        offered_eps=float(offered_eps),
        achieved_eps=float(n_events / wall_s) if wall_s > 0 else float("nan"),
        n_events=n_events,
        p50_ms=float(np.percentile(lat_ms, 50)),
        p99_ms=float(np.percentile(lat_ms, 99)),
        sustained=wall_s <= scheduled_s * (1.0 + tolerance),
        wall_s=float(wall_s),
        scheduled_s=float(scheduled_s),
        events=events,
        analytics=analytics,
    )


def find_max_sustained(
    make_target,
    streams,
    *,
    fs: float,
    chunk: int,
    nominal_eps: float,
    start_eps: float | None = None,
    growth: float = 1.4,
    max_steps: int = 6,
    tolerance: float = 0.1,
) -> tuple[LoadgenReport | None, list[LoadgenReport]]:
    """Closed-loop ramp to the ingest target's max sustained throughput.

    Offers the fleet at ``start_eps`` (default: the fleet's real-time
    rate) and multiplies the rate by ``growth`` after every sustained
    step — each step on a **fresh** target from ``make_target()``
    (a gateway constructor, or a factory returning a connected
    :class:`~repro.serving.net.client.GatewayClient`) so steps are
    independent — stopping at the first unsustained step or after
    ``max_steps``.  Targets exposing ``shutdown`` are torn down after
    each step.

    Returns
    -------
    (best, reports):
        ``best`` is the highest-rate sustained report (``None`` when
        even the first step fell behind); ``reports`` is every step in
        ramp order, for the full throughput/latency curve.
    """
    if growth <= 1.0:
        raise ValueError(f"growth must be > 1, got {growth}")
    if max_steps < 1:
        raise ValueError(f"max_steps must be >= 1, got {max_steps}")
    target = nominal_eps if start_eps is None else start_eps
    best: LoadgenReport | None = None
    reports: list[LoadgenReport] = []
    for _ in range(max_steps):
        ingest_target = make_target()
        try:
            report = replay_fleet(
                ingest_target,
                streams,
                fs=fs,
                chunk=chunk,
                target_eps=target,
                nominal_eps=nominal_eps,
                tolerance=tolerance,
            )
        finally:
            shutdown = getattr(ingest_target, "shutdown", None)
            if shutdown is not None:
                shutdown()
        reports.append(report)
        if not report.sustained:
            break
        best = report
        target *= growth
    return best, reports
