"""Streaming analytics over the gateway's beat-event bus.

The serving tiers end in a stream of typed
:class:`~repro.dsp.streaming.StreamBeatEvent` objects — and until this
module, nothing consumed them beyond counting.  Here the event bus
becomes monitoring: a set of composable, O(1)-per-beat streaming
operators that fold over a session's finalized events and maintain the
clinical quantities the paper's node exists to surface —

* :class:`RRStats` — incremental RR-interval time-domain statistics
  (mean RR / mean HR, SDNN, RMSSD, pNN50) over a sliding window of the
  most recent intervals, maintained with running sums (add one, retire
  one — never a window rescan per beat);
* :class:`HRVSpectral` — frequency-domain HRV (VLF/LF/HF band powers,
  LF/HF ratio) from a Welch/Lomb-style periodogram of the uniformly
  resampled RR series, recomputed on an interval-count cadence rather
  than per beat (the vectorized pass amortizes exactly like the
  gateway's batched classifier);
* :class:`RateEpisodes` — tachycardia/bradycardia episode detection
  with onset/offset run-length + hysteresis state machines, emitting
  typed :class:`Episode` records;
* :class:`ArrhythmiaEpisodes` — runs of classifier-flagged beats
  rolled into ``"arrhythmia"`` :class:`Episode` records.

:class:`AnalyticsPipeline` composes operators for one session: the
gateway hands it the session's newly finalized events **once per
batched flush** (not once per event), it converts them to arrays once,
derives the RR series incrementally across calls, and folds each
operator forward.  Every operator is a *deterministic per-beat fold*:
its state after beat ``k`` depends only on beats ``0..k``, never on
how the updates were batched — so analytics inherit the serving
stack's chunk-invariance contract for free.  Pipelines pickle and
deep-copy, ride :class:`~repro.serving.gateway.SessionExport` through
migration/eviction/crash-recovery bit-exactly, and close with a final
:meth:`~AnalyticsPipeline.summary`.

:func:`default_pipeline` builds the standard operator set (the CLI's
``--analytics``); :func:`empty_rollup` / :func:`merge_rollups` define
the schema-pinned ``stats()["analytics"]`` rollup that aggregates
through the sharded, supervised and federated tiers.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.serving.executors import validate_at_least

__all__ = [
    "AnalyticsPipeline",
    "ArrhythmiaEpisodes",
    "Episode",
    "HRVSpectral",
    "RRStats",
    "RateEpisodes",
    "default_pipeline",
    "empty_rollup",
    "merge_rollups",
]

#: Successive-difference threshold of the pNN50 statistic (seconds).
_NN50_S = 0.05

#: HRV band edges in Hz (VLF / LF / HF), the conventional short-term
#: analysis split.
_BANDS = (("vlf", 0.0033, 0.04), ("lf", 0.04, 0.15), ("hf", 0.15, 0.4))


@dataclass(frozen=True)
class Episode:
    """One detected episode: a typed run of beats with its rate summary.

    ``start_peak`` / ``end_peak`` are absolute stream sample indices
    (the same coordinate as
    :attr:`~repro.dsp.streaming.StreamBeatEvent.peak`), so an episode
    localizes in the raw signal.  ``mean_hr_bpm`` is ``None`` when no
    RR interval fell inside the episode (a run at the stream head).
    """

    kind: str
    start_peak: int
    end_peak: int
    n_beats: int
    mean_hr_bpm: float | None = None


class StreamOperator:
    """Base of the composable per-beat operators.

    Subclasses implement :meth:`consume` — one beat forward, appending
    any episodes it *closes* to ``out`` — plus :meth:`finish` (close
    open episodes at stream end) and :meth:`summary`.  The contract
    that makes every downstream guarantee hold: ``consume`` must be a
    deterministic fold over the beat sequence, with no dependence on
    how beats were grouped into update calls.
    """

    #: Key of this operator's block in the pipeline summary.
    name = "operator"

    def consume(self, peak: int, rr: float | None, flagged: bool, out: list) -> None:
        raise NotImplementedError

    def finish(self, out: list) -> None:
        """Close any open episode at end of stream (default: none)."""

    def summary(self) -> dict:
        raise NotImplementedError


class RRStats(StreamOperator):
    """Sliding-window RR-interval time-domain statistics.

    Maintains the last ``window`` RR intervals (and their successive
    differences) with running sums and sums of squares — O(1) per
    beat, O(1) memory in the window size:

    * ``mean_rr_ms`` / ``mean_hr_bpm`` — window mean interval / rate;
    * ``sdnn_ms`` — standard deviation of the windowed intervals;
    * ``rmssd_ms`` — root-mean-square of successive differences;
    * ``pnn50`` — fraction (percent) of successive differences over
      50 ms.
    """

    name = "rr"

    def __init__(self, window: int = 64):
        validate_at_least("window", window, minimum=2)
        self.window = int(window)
        self.n_beats = 0
        self.n_intervals = 0
        self._rr: deque = deque()
        self._sum = 0.0
        self._sumsq = 0.0
        self._prev_rr: float | None = None
        self._diffsq: deque = deque()
        self._diffsq_sum = 0.0
        self._nn50: deque = deque()
        self._nn50_count = 0

    def consume(self, peak: int, rr: float | None, flagged: bool, out: list) -> None:
        self.n_beats += 1
        if rr is None:
            return
        self.n_intervals += 1
        if len(self._rr) == self.window:
            old = self._rr.popleft()
            self._sum -= old
            self._sumsq -= old * old
        self._rr.append(rr)
        self._sum += rr
        self._sumsq += rr * rr
        if self._prev_rr is not None:
            diff = rr - self._prev_rr
            dsq = diff * diff
            if len(self._diffsq) == self.window - 1:
                self._diffsq_sum -= self._diffsq.popleft()
                if self._nn50.popleft():
                    self._nn50_count -= 1
            self._diffsq.append(dsq)
            self._diffsq_sum += dsq
            over = abs(diff) > _NN50_S
            self._nn50.append(over)
            if over:
                self._nn50_count += 1
        self._prev_rr = rr

    def summary(self) -> dict:
        n = len(self._rr)
        result = {
            "n_beats": self.n_beats,
            "n_intervals": self.n_intervals,
            "window": self.window,
            "mean_rr_ms": None,
            "mean_hr_bpm": None,
            "sdnn_ms": None,
            "rmssd_ms": None,
            "pnn50": None,
        }
        if n == 0:
            return result
        mean = self._sum / n
        result["mean_rr_ms"] = mean * 1e3
        result["mean_hr_bpm"] = 60.0 / mean
        variance = max(0.0, self._sumsq / n - mean * mean)
        result["sdnn_ms"] = math.sqrt(variance) * 1e3
        m = len(self._diffsq)
        if m:
            result["rmssd_ms"] = math.sqrt(self._diffsq_sum / m) * 1e3
            result["pnn50"] = 100.0 * self._nn50_count / m
        return result


class HRVSpectral(StreamOperator):
    """Frequency-domain HRV over the uniformly resampled RR series.

    Keeps the last ``window`` (beat-time, RR) samples; every ``every``
    consumed intervals — an *interval-count* cadence, so recomputation
    points are chunk-invariant by construction — resamples the tachogram
    onto a uniform ``resample_hz`` grid (linear interpolation, the
    Lomb-free standard for short-term HRV), removes the mean, and takes
    one vectorized periodogram.  Powers integrate over the conventional
    VLF/LF/HF bands (in s^2; scaled to ms^2 in the summary).

    Needs at least ``min_intervals`` intervals in the window before it
    reports metrics.
    """

    name = "hrv"

    def __init__(
        self,
        *,
        every: int = 32,
        window: int = 128,
        resample_hz: float = 4.0,
        min_intervals: int = 16,
    ):
        validate_at_least("every", every)
        validate_at_least("window", window, minimum=4)
        validate_at_least("min_intervals", min_intervals, minimum=4)
        if resample_hz <= 0:
            raise ValueError(f"resample_hz must be > 0, got {resample_hz}")
        self.every = int(every)
        self.window = int(window)
        self.resample_hz = float(resample_hz)
        self.min_intervals = int(min_intervals)
        self.n_intervals = 0
        self.n_computes = 0
        self._t: deque = deque()
        self._rr: deque = deque()
        self._metrics: dict | None = None
        self._fs: float | None = None

    def consume(self, peak: int, rr: float | None, flagged: bool, out: list) -> None:
        if rr is None:
            return
        self.n_intervals += 1
        if len(self._rr) == self.window:
            self._t.popleft()
            self._rr.popleft()
        # Beat time in seconds from sample index: exact integer / fs.
        self._t.append(peak / self._fs)
        self._rr.append(rr)
        if self.n_intervals % self.every == 0:
            self._compute()

    def _compute(self) -> None:
        if len(self._rr) < self.min_intervals:
            return
        t = np.fromiter(self._t, dtype=np.float64, count=len(self._t))
        rr = np.fromiter(self._rr, dtype=np.float64, count=len(self._rr))
        duration = float(t[-1] - t[0])
        n = int(duration * self.resample_hz) + 1
        if n < 8:
            return
        grid = t[0] + np.arange(n, dtype=np.float64) / self.resample_hz
        series = np.interp(grid, t, rr)
        series = series - series.mean()
        spectrum = np.abs(np.fft.rfft(series)) ** 2 / (n * self.resample_hz)
        freqs = np.fft.rfftfreq(n, d=1.0 / self.resample_hz)
        df = self.resample_hz / n
        powers = {}
        for band, lo, hi in _BANDS:
            mask = (freqs >= lo) & (freqs < hi)
            powers[f"{band}_ms2"] = float(spectrum[mask].sum() * df * 1e6)
        lf, hf = powers["lf_ms2"], powers["hf_ms2"]
        self._metrics = {
            **powers,
            "total_ms2": float(spectrum[1:].sum() * df * 1e6),
            "lf_hf": (lf / hf) if hf > 0.0 else None,
            "n_intervals": len(self._rr),
        }
        self.n_computes += 1

    def summary(self) -> dict:
        return {
            "n_intervals": self.n_intervals,
            "n_computes": self.n_computes,
            "every": self.every,
            "metrics": self._metrics,
        }


class _RateMachine:
    """Run-length + hysteresis state machine for one episode kind.

    Onset: ``on_beats`` consecutive beats past ``on_bpm`` open an
    episode backdated to the run's first beat.  Offset: ``off_beats``
    consecutive beats past the *release* threshold (``on_bpm`` minus —
    or plus, for bradycardia — ``hysteresis_bpm``) close it; beats
    inside the hysteresis band keep it open.  Deterministic per-beat
    fold; no wall-clock anywhere.
    """

    __slots__ = (
        "kind", "on_bpm", "off_bpm", "on_beats", "off_beats", "high",
        "active", "run_start", "run_count", "run_sum",
        "start_peak", "last_peak", "n_beats", "hr_sum", "off_count",
    )

    def __init__(self, kind, on_bpm, off_bpm, on_beats, off_beats, high):
        self.kind = kind
        self.on_bpm = float(on_bpm)
        self.off_bpm = float(off_bpm)
        self.on_beats = int(on_beats)
        self.off_beats = int(off_beats)
        self.high = bool(high)
        self.active = False
        self.run_start = 0
        self.run_count = 0
        self.run_sum = 0.0
        self.start_peak = 0
        self.last_peak = 0
        self.n_beats = 0
        self.hr_sum = 0.0
        self.off_count = 0

    def _triggers(self, hr: float) -> bool:
        return hr >= self.on_bpm if self.high else hr <= self.on_bpm

    def _releases(self, hr: float) -> bool:
        return hr < self.off_bpm if self.high else hr > self.off_bpm

    def push(self, peak: int, hr: float, out: list) -> None:
        if not self.active:
            if self._triggers(hr):
                if self.run_count == 0:
                    self.run_start = peak
                    self.run_sum = 0.0
                self.run_count += 1
                self.run_sum += hr
                if self.run_count >= self.on_beats:
                    self.active = True
                    self.start_peak = self.run_start
                    self.last_peak = peak
                    self.n_beats = self.run_count
                    self.hr_sum = self.run_sum
                    self.off_count = 0
                    self.run_count = 0
                    self.run_sum = 0.0
            else:
                self.run_count = 0
                self.run_sum = 0.0
        else:
            if self._releases(hr):
                self.off_count += 1
                if self.off_count >= self.off_beats:
                    self.close(out)
            else:
                self.off_count = 0
                self.n_beats += 1
                self.hr_sum += hr
                self.last_peak = peak

    def close(self, out: list) -> None:
        """Emit the open episode (if any) and reset to idle."""
        if not self.active:
            return
        out.append(
            Episode(
                kind=self.kind,
                start_peak=self.start_peak,
                end_peak=self.last_peak,
                n_beats=self.n_beats,
                mean_hr_bpm=self.hr_sum / self.n_beats,
            )
        )
        self.active = False
        self.off_count = 0


class RateEpisodes(StreamOperator):
    """Tachycardia / bradycardia episode detection with hysteresis.

    Instantaneous rate is ``60 / RR``; two independent
    :class:`_RateMachine` instances track sustained runs past
    ``tachy_bpm`` (high) and ``brady_bpm`` (low).  ``on_beats`` /
    ``off_beats`` set the run lengths; ``hysteresis_bpm`` widens the
    release threshold so a rate dithering at the boundary cannot
    flap episodes open and closed.
    """

    name = "rate"

    def __init__(
        self,
        *,
        tachy_bpm: float = 100.0,
        brady_bpm: float = 50.0,
        on_beats: int = 3,
        off_beats: int = 3,
        hysteresis_bpm: float = 5.0,
    ):
        validate_at_least("on_beats", on_beats)
        validate_at_least("off_beats", off_beats)
        if hysteresis_bpm < 0:
            raise ValueError(f"hysteresis_bpm must be >= 0, got {hysteresis_bpm}")
        if brady_bpm >= tachy_bpm:
            raise ValueError(
                f"need brady_bpm < tachy_bpm, got {brady_bpm} >= {tachy_bpm}"
            )
        self._machines = (
            _RateMachine(
                "tachy", tachy_bpm, tachy_bpm - hysteresis_bpm,
                on_beats, off_beats, high=True,
            ),
            _RateMachine(
                "brady", brady_bpm, brady_bpm + hysteresis_bpm,
                on_beats, off_beats, high=False,
            ),
        )
        self.n_episodes = {"tachy": 0, "brady": 0}

    def consume(self, peak: int, rr: float | None, flagged: bool, out: list) -> None:
        if rr is None or rr <= 0.0:
            return
        hr = 60.0 / rr
        before = len(out)
        for machine in self._machines:
            machine.push(peak, hr, out)
        for episode in out[before:]:
            self.n_episodes[episode.kind] += 1

    def finish(self, out: list) -> None:
        before = len(out)
        for machine in self._machines:
            machine.close(out)
        for episode in out[before:]:
            self.n_episodes[episode.kind] += 1

    def summary(self) -> dict:
        return {
            "tachy_episodes": self.n_episodes["tachy"],
            "brady_episodes": self.n_episodes["brady"],
            "tachy_active": self._machines[0].active,
            "brady_active": self._machines[1].active,
        }


class ArrhythmiaEpisodes(StreamOperator):
    """Roll runs of classifier-flagged beats into typed episodes.

    A run of at least ``min_beats`` consecutive beats with
    ``event.flagged`` set becomes one ``"arrhythmia"``
    :class:`Episode`; a single clean beat ends the run.  This is the
    event-bus consumer of the paper's whole point — the gated node
    flags abnormal beats so somebody downstream can aggregate them.
    """

    name = "arrhythmia"

    def __init__(self, *, min_beats: int = 2):
        validate_at_least("min_beats", min_beats)
        self.min_beats = int(min_beats)
        self.n_flagged = 0
        self.n_episodes = 0
        self._count = 0
        self._start = 0
        self._last = 0
        self._hr_sum = 0.0
        self._hr_n = 0

    def consume(self, peak: int, rr: float | None, flagged: bool, out: list) -> None:
        if flagged:
            self.n_flagged += 1
            if self._count == 0:
                self._start = peak
                self._hr_sum = 0.0
                self._hr_n = 0
            self._count += 1
            self._last = peak
            if rr is not None and rr > 0.0:
                self._hr_sum += 60.0 / rr
                self._hr_n += 1
        else:
            self._flush_run(out)

    def _flush_run(self, out: list) -> None:
        if self._count >= self.min_beats:
            out.append(
                Episode(
                    kind="arrhythmia",
                    start_peak=self._start,
                    end_peak=self._last,
                    n_beats=self._count,
                    mean_hr_bpm=(
                        self._hr_sum / self._hr_n if self._hr_n else None
                    ),
                )
            )
            self.n_episodes += 1
        self._count = 0

    def finish(self, out: list) -> None:
        self._flush_run(out)

    def summary(self) -> dict:
        return {
            "n_flagged": self.n_flagged,
            "n_episodes": self.n_episodes,
            "min_beats": self.min_beats,
        }


class AnalyticsPipeline:
    """Composable operator pipeline for one session's event stream.

    The gateway calls :meth:`update` with the session's newly finalized
    events **once per batched flush**: the events are converted to
    arrays once, the RR series is derived incrementally across calls
    (``rr[i] = (peak[i] - peak[i-1]) / fs``, ``None`` for the stream's
    first beat), and each operator folds forward beat by beat.  Because
    every operator is a deterministic per-beat fold, the pipeline state
    after ``k`` beats is identical for *any* partition of those beats
    into update calls — the chunk-invariance the chaos suites pin.

    :meth:`update` returns the episodes closed by the call (the
    gateway's alert surface); :meth:`finalize` closes open episodes at
    end of stream; :meth:`summary` is the JSON-able rollup of every
    operator.  Pipelines pickle and deep-copy, so they ride
    :class:`~repro.serving.gateway.SessionExport` through migration
    and crash recovery with bit-exact state.
    """

    def __init__(self, operators, fs: float):
        self.fs = float(fs)
        self.operators = list(operators)
        names = [op.name for op in self.operators]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate operator names: {names}")
        for op in self.operators:
            if isinstance(op, HRVSpectral):
                op._fs = self.fs
        self.n_beats = 0
        self.n_updates = 0
        self.n_episodes = 0
        self.episodes_by_kind: dict[str, int] = {}
        self._last_peak: int | None = None
        self._finalized = False

    def update(self, events) -> list[Episode]:
        """Fold one batch of finalized events; return closed episodes."""
        if not events:
            return []
        self.n_updates += 1
        peaks = [event.peak for event in events]
        flagged = [event.flagged for event in events]
        # One vectorized RR pass per update: exact integer differences
        # divided by fs, identical per beat for every batching.
        arr = np.asarray(peaks, dtype=np.int64)
        prev = np.empty_like(arr)
        prev[1:] = arr[:-1]
        prev[0] = self._last_peak if self._last_peak is not None else arr[0]
        rr = ((arr - prev) / self.fs).tolist()
        if self._last_peak is None:
            rr[0] = None
        self._last_peak = peaks[-1]
        self.n_beats += len(peaks)
        closed: list[Episode] = []
        rows = list(zip(peaks, rr, flagged))
        for op in self.operators:
            consume = op.consume
            for peak, interval, flag in rows:
                consume(peak, interval, flag, closed)
        return self._count(closed)

    def finalize(self) -> list[Episode]:
        """Close open episodes at end of stream (idempotent)."""
        if self._finalized:
            return []
        self._finalized = True
        closed: list[Episode] = []
        for op in self.operators:
            op.finish(closed)
        return self._count(closed)

    def _count(self, closed: list[Episode]) -> list[Episode]:
        for episode in closed:
            self.n_episodes += 1
            self.episodes_by_kind[episode.kind] = (
                self.episodes_by_kind.get(episode.kind, 0) + 1
            )
        return closed

    def summary(self) -> dict:
        """JSON-able final rollup: pipeline counters + per-operator blocks.

        Deliberately excludes ``n_updates`` (a batching diagnostic that
        varies with flush cadence): the summary is the bit-exact
        artifact the chunk-invariance and migration chaos suites
        compare.
        """
        return {
            "n_beats": self.n_beats,
            "n_episodes": self.n_episodes,
            "by_kind": dict(self.episodes_by_kind),
            "operators": {op.name: op.summary() for op in self.operators},
        }


def default_pipeline() -> list[StreamOperator]:
    """The standard operator set (the CLI's ``--analytics`` pipeline)."""
    return [RRStats(), HRVSpectral(), RateEpisodes(), ArrhythmiaEpisodes()]


def empty_rollup() -> dict:
    """Zero value of the ``stats()["analytics"]`` rollup schema."""
    return {"sessions": 0, "beats": 0, "episodes": 0, "alerts": 0, "by_kind": {}}


def merge_rollups(rollups) -> dict:
    """Sum analytics rollups across workers / hosts (schema-preserving).

    Missing entries (``None`` — e.g. a host predating the analytics
    schema) merge as zero, so mixed fleets still roll up.
    """
    total = empty_rollup()
    for rollup in rollups:
        if not rollup:
            continue
        for key in ("sessions", "beats", "episodes", "alerts"):
            total[key] += int(rollup.get(key, 0))
        for kind, count in (rollup.get("by_kind") or {}).items():
            total["by_kind"][kind] = total["by_kind"].get(kind, 0) + int(count)
    return total
