"""Crash durability: write-ahead session journal + worker supervisor.

A ``kill -9`` on a :class:`~repro.serving.sharded.ShardedGateway`
worker loses every session it owns — the one failure mode the scaling
tiers (placement, QoS, backpressure, federation) do not cover.  This
module closes it with the classic write-ahead discipline, leaning on
the serving stack's oldest invariant:

    **chunk-invariance is the recovery contract.**  A session's event
    sequence is bit-exact with a standalone inline-mode
    :class:`~repro.dsp.streaming.StreamingNode` regardless of chunk
    sizes, interleavings and flush boundaries — so *snapshot + replay*
    reconstructs a lost session exactly, not approximately.

Three layers:

* :class:`JournalStore` — the pluggable persistence interface (the
  point of the design: swap the medium, keep the semantics).  Three
  backends ship: :class:`MemoryJournalStore` (tests, ephemeral),
  :class:`FileJournalStore` (file-per-session snapshot + framed
  append-only log), :class:`SqliteJournalStore` (one database file,
  transactional).
* :class:`SessionJournal` — the write-ahead policy over a store: an
  ``open`` record per session, a pickled
  :class:`~repro.serving.gateway.SessionExport` snapshot refreshed
  every ``snapshot_every`` accepted chunks, an append-only log of the
  chunks accepted since that snapshot, and a ``delivered`` counter of
  the events already returned to the caller since that snapshot (so
  recovery never re-delivers).  :meth:`SessionJournal.recover` hands
  back everything needed to rebuild one session.
* :class:`SupervisedGateway` — a :class:`ShardedGateway` wrapper that
  journals every accepted chunk *before* it is shipped, detects worker
  death (``Process.is_alive()`` / broken pipe, surfaced as
  :class:`~repro.serving.sharded.WorkerCrashError`), respawns the dead
  worker in place and rebuilds every lost session from its snapshot +
  logged chunks — callers never see the crash, only a slightly slower
  call.  The acknowledged prefix rule makes this exact: a chunk is
  durable the moment ``ingest`` returns, so recovered event sequences
  are bit-exact with a standalone node over exactly the acknowledged
  chunks (``tests/serving/test_durability_chaos.py`` pins it under
  seeded ``kill -9``).

Recovery never writes to the journal (replay uses the raw worker
protocol underneath the journal hooks), so a second crash mid-recovery
just starts recovery over from the same durable state — the whole path
is idempotent.  :func:`recover_sessions` applies the same replay to a
fresh gateway after a *full-process* restart.
"""

from __future__ import annotations

import base64
import os
import pickle
import sqlite3
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.serving.executors import validate_at_least
from repro.serving.gateway import SessionExport
from repro.serving.sharded import ShardedGateway, WorkerCrashError, _InlineWorker

__all__ = [
    "FileJournalStore",
    "JournalStore",
    "MemoryJournalStore",
    "RecoveredSession",
    "SessionJournal",
    "SqliteJournalStore",
    "SupervisedGateway",
    "open_journal",
    "recover_sessions",
]

#: Journal backends :func:`open_journal` (and ``repro serve --journal``)
#: can construct by name.
JOURNAL_BACKENDS = ("file", "sqlite", "memory")

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


@dataclass
class StoredSession:
    """Raw (still-pickled) journal state of one session, as loaded."""

    open_blob: bytes | None = None
    snapshot: bytes | None = None
    chunks: list[bytes] = field(default_factory=list)
    delivered: int = 0


class JournalStore:
    """Persistence interface of the write-ahead session journal.

    One implementation = one durability medium.  All methods are keyed
    by session id; blobs are opaque bytes (the
    :class:`SessionJournal` layer owns pickling).  Contract:

    * :meth:`begin` registers a session, clearing any previous state
      under the same id (a reopened id starts a fresh history);
    * :meth:`put_snapshot` replaces the snapshot, **truncates the
      chunk log** and zeroes the delivered counter — the snapshot
      subsumes everything before it;
    * :meth:`append_chunk` / :meth:`add_delivered` append to the
      post-snapshot state; both must be lenient about an unknown id
      (auto-register) so hooks never race registration;
    * :meth:`load` returns the full :class:`StoredSession` (or
      ``None`` for an unknown id); :meth:`chunk_count` is the cheap
      cadence probe; :meth:`session_ids` lists every journaled id —
      including ones persisted by an earlier process (file/sqlite);
    * :meth:`forget` removes a session entirely (closed, evicted or
      released sessions need no recovery).
    """

    def begin(self, session_id: str, open_blob: bytes) -> None:
        raise NotImplementedError

    def put_snapshot(self, session_id: str, blob: bytes) -> None:
        raise NotImplementedError

    def append_chunk(self, session_id: str, blob: bytes) -> None:
        raise NotImplementedError

    def add_delivered(self, session_id: str, n: int) -> None:
        raise NotImplementedError

    def load(self, session_id: str) -> StoredSession | None:
        raise NotImplementedError

    def chunk_count(self, session_id: str) -> int:
        raise NotImplementedError

    def forget(self, session_id: str) -> None:
        raise NotImplementedError

    def session_ids(self) -> list[str]:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (file handles, database connections)."""


class MemoryJournalStore(JournalStore):
    """In-process store: survives worker crashes (the journal lives in
    the parent), not parent restarts.  The reference semantics the
    durable backends must match, and the zero-IO baseline."""

    def __init__(self) -> None:
        self._sessions: dict[str, StoredSession] = {}

    def _entry(self, session_id: str) -> StoredSession:
        entry = self._sessions.get(session_id)
        if entry is None:
            entry = self._sessions[session_id] = StoredSession()
        return entry

    def begin(self, session_id: str, open_blob: bytes) -> None:
        self._sessions[session_id] = StoredSession(open_blob=open_blob)

    def put_snapshot(self, session_id: str, blob: bytes) -> None:
        entry = self._entry(session_id)
        entry.snapshot = blob
        entry.chunks = []
        entry.delivered = 0

    def append_chunk(self, session_id: str, blob: bytes) -> None:
        self._entry(session_id).chunks.append(blob)

    def add_delivered(self, session_id: str, n: int) -> None:
        self._entry(session_id).delivered += int(n)

    def load(self, session_id: str) -> StoredSession | None:
        entry = self._sessions.get(session_id)
        if entry is None:
            return None
        return StoredSession(
            open_blob=entry.open_blob,
            snapshot=entry.snapshot,
            chunks=list(entry.chunks),
            delivered=entry.delivered,
        )

    def chunk_count(self, session_id: str) -> int:
        entry = self._sessions.get(session_id)
        return 0 if entry is None else len(entry.chunks)

    def forget(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    def session_ids(self) -> list[str]:
        return list(self._sessions)


# File-store log framing: 1 record-type byte + u32 LE payload length.
_LOG_HEADER = struct.Struct("<cI")
_REC_CHUNK = b"C"
_REC_DELIVERED = b"D"
_DELIVERED_PAYLOAD = struct.Struct("<q")


def _encode_token(session_id: str) -> str:
    """Filename-safe reversible encoding of a session id."""
    raw = base64.urlsafe_b64encode(session_id.encode("utf-8"))
    return raw.decode("ascii").rstrip("=")


def _decode_token(token: str) -> str:
    padded = token + "=" * (-len(token) % 4)
    return base64.urlsafe_b64decode(padded.encode("ascii")).decode("utf-8")


class FileJournalStore(JournalStore):
    """File-per-session store under one directory.

    Layout (``<token>`` is the url-safe base64 of the session id):

    * ``<token>.meta`` — the ``begin`` blob (open kwargs);
    * ``<token>.snapshot`` — the latest snapshot blob, replaced
      atomically (write-to-temp + :func:`os.replace`);
    * ``<token>.log`` — framed append-only records since the snapshot:
      ``C`` (a chunk blob) and ``D`` (a delivered-count delta).  The
      log is truncated by :meth:`put_snapshot`, which also resets the
      delivered count — both live in the log, so one truncate keeps
      them consistent.

    A half-written trailing record (the parent died mid-append) is
    dropped at :meth:`load`; everything before it recovers.  With
    ``sync=True`` every append is fsynced (worker crashes — the threat
    model here — do not need it: the journal lives in the parent).
    """

    def __init__(self, root: str, *, sync: bool = False):
        self.root = str(root)
        self.sync = bool(sync)
        os.makedirs(self.root, exist_ok=True)
        self._logs: dict[str, object] = {}  # open append handles
        self._counts: dict[str, int] = {}

    def _path(self, session_id: str, suffix: str) -> str:
        return os.path.join(self.root, _encode_token(session_id) + suffix)

    def _log_handle(self, session_id: str):
        handle = self._logs.get(session_id)
        if handle is None or handle.closed:
            handle = open(self._path(session_id, ".log"), "ab")
            self._logs[session_id] = handle
        return handle

    def _append(self, session_id: str, rec_type: bytes, payload: bytes) -> None:
        handle = self._log_handle(session_id)
        handle.write(_LOG_HEADER.pack(rec_type, len(payload)))
        handle.write(payload)
        handle.flush()
        if self.sync:
            os.fsync(handle.fileno())

    def _close_log(self, session_id: str) -> None:
        handle = self._logs.pop(session_id, None)
        if handle is not None and not handle.closed:
            handle.close()

    def _write_atomic(self, path: str, blob: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)

    def begin(self, session_id: str, open_blob: bytes) -> None:
        self._write_atomic(self._path(session_id, ".meta"), open_blob)
        self._remove(self._path(session_id, ".snapshot"))
        self._close_log(session_id)
        open(self._path(session_id, ".log"), "wb").close()  # fresh history
        self._counts[session_id] = 0

    def put_snapshot(self, session_id: str, blob: bytes) -> None:
        # Snapshot first, then truncate: if the process dies between
        # the two, recovery replays pre-snapshot chunks onto the new
        # snapshot — a superset replay the next snapshot corrects.
        # (The threat model is worker death; the parent owns this
        # store, so the window is theoretical.)
        self._write_atomic(self._path(session_id, ".snapshot"), blob)
        self._close_log(session_id)
        open(self._path(session_id, ".log"), "wb").close()
        self._counts[session_id] = 0

    def append_chunk(self, session_id: str, blob: bytes) -> None:
        self._append(session_id, _REC_CHUNK, blob)
        if session_id in self._counts:
            self._counts[session_id] += 1
        else:
            self.chunk_count(session_id)  # lazy scan includes this append

    def add_delivered(self, session_id: str, n: int) -> None:
        self._append(session_id, _REC_DELIVERED, _DELIVERED_PAYLOAD.pack(int(n)))

    def _read_log(self, session_id: str) -> tuple[list[bytes], int]:
        path = self._path(session_id, ".log")
        chunks: list[bytes] = []
        delivered = 0
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return chunks, delivered
        offset, size = 0, len(data)
        while offset + _LOG_HEADER.size <= size:
            rec_type, length = _LOG_HEADER.unpack_from(data, offset)
            offset += _LOG_HEADER.size
            if offset + length > size:
                break  # half-written trailing record: drop it
            payload = data[offset : offset + length]
            offset += length
            if rec_type == _REC_CHUNK:
                chunks.append(payload)
            elif rec_type == _REC_DELIVERED:
                delivered += _DELIVERED_PAYLOAD.unpack(payload)[0]
        return chunks, delivered

    def _read_blob(self, path: str) -> bytes | None:
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def load(self, session_id: str) -> StoredSession | None:
        meta = self._read_blob(self._path(session_id, ".meta"))
        snapshot = self._read_blob(self._path(session_id, ".snapshot"))
        chunks, delivered = self._read_log(session_id)
        if meta is None and snapshot is None and not chunks:
            return None
        return StoredSession(
            open_blob=meta, snapshot=snapshot, chunks=chunks, delivered=delivered
        )

    def chunk_count(self, session_id: str) -> int:
        count = self._counts.get(session_id)
        if count is None:
            count = len(self._read_log(session_id)[0])
            self._counts[session_id] = count
        return count

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def forget(self, session_id: str) -> None:
        self._close_log(session_id)
        for suffix in (".meta", ".snapshot", ".log"):
            self._remove(self._path(session_id, suffix))
        self._counts.pop(session_id, None)

    def session_ids(self) -> list[str]:
        tokens: dict[str, None] = {}  # ordered de-dup across suffixes
        for name in sorted(os.listdir(self.root)):
            for suffix in (".meta", ".snapshot", ".log"):
                if name.endswith(suffix):
                    tokens.setdefault(name[: -len(suffix)], None)
                    break
        ids = []
        for token in tokens:
            try:
                ids.append(_decode_token(token))
            except (ValueError, UnicodeDecodeError):  # pragma: no cover
                continue  # not one of ours
        return ids

    def close(self) -> None:
        for session_id in list(self._logs):
            self._close_log(session_id)


class SqliteJournalStore(JournalStore):
    """Single-file sqlite store: one ``sessions`` row per session plus
    an append-only ``chunks`` table, everything transactional.

    Default pragmas favor the actual threat model (worker death, not
    host death): the journal lives in the parent process, so
    ``synchronous=OFF`` skips the per-append fsync.  ``sync=True``
    turns full fsync durability back on for host-crash tolerance.
    """

    def __init__(self, path: str, *, sync: bool = False):
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._db = sqlite3.connect(self.path)
        self._db.execute(
            "PRAGMA synchronous = " + ("FULL" if sync else "OFF")
        )
        self._db.execute("PRAGMA journal_mode = " + ("DELETE" if sync else "MEMORY"))
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS sessions ("
            " session_id TEXT PRIMARY KEY,"
            " open_blob BLOB,"
            " snapshot BLOB,"
            " delivered INTEGER NOT NULL DEFAULT 0)"
        )
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS chunks ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " session_id TEXT NOT NULL,"
            " blob BLOB NOT NULL)"
        )
        self._db.execute(
            "CREATE INDEX IF NOT EXISTS chunks_by_session"
            " ON chunks (session_id, seq)"
        )
        self._db.commit()

    def begin(self, session_id: str, open_blob: bytes) -> None:
        with self._db:
            self._db.execute(
                "INSERT OR REPLACE INTO sessions"
                " (session_id, open_blob, snapshot, delivered)"
                " VALUES (?, ?, NULL, 0)",
                (session_id, open_blob),
            )
            self._db.execute(
                "DELETE FROM chunks WHERE session_id = ?", (session_id,)
            )

    def put_snapshot(self, session_id: str, blob: bytes) -> None:
        with self._db:
            updated = self._db.execute(
                "UPDATE sessions SET snapshot = ?, delivered = 0"
                " WHERE session_id = ?",
                (blob, session_id),
            ).rowcount
            if not updated:
                self._db.execute(
                    "INSERT INTO sessions"
                    " (session_id, open_blob, snapshot, delivered)"
                    " VALUES (?, NULL, ?, 0)",
                    (session_id, blob),
                )
            self._db.execute(
                "DELETE FROM chunks WHERE session_id = ?", (session_id,)
            )

    def _ensure_row(self, session_id: str) -> None:
        self._db.execute(
            "INSERT OR IGNORE INTO sessions (session_id) VALUES (?)",
            (session_id,),
        )

    def append_chunk(self, session_id: str, blob: bytes) -> None:
        with self._db:
            self._ensure_row(session_id)
            self._db.execute(
                "INSERT INTO chunks (session_id, blob) VALUES (?, ?)",
                (session_id, blob),
            )

    def add_delivered(self, session_id: str, n: int) -> None:
        with self._db:
            self._ensure_row(session_id)
            self._db.execute(
                "UPDATE sessions SET delivered = delivered + ?"
                " WHERE session_id = ?",
                (int(n), session_id),
            )

    def load(self, session_id: str) -> StoredSession | None:
        row = self._db.execute(
            "SELECT open_blob, snapshot, delivered FROM sessions"
            " WHERE session_id = ?",
            (session_id,),
        ).fetchone()
        if row is None:
            return None
        chunks = [
            blob
            for (blob,) in self._db.execute(
                "SELECT blob FROM chunks WHERE session_id = ? ORDER BY seq",
                (session_id,),
            )
        ]
        return StoredSession(
            open_blob=row[0], snapshot=row[1], chunks=chunks, delivered=row[2]
        )

    def chunk_count(self, session_id: str) -> int:
        (count,) = self._db.execute(
            "SELECT COUNT(*) FROM chunks WHERE session_id = ?", (session_id,)
        ).fetchone()
        return count

    def forget(self, session_id: str) -> None:
        with self._db:
            self._db.execute(
                "DELETE FROM sessions WHERE session_id = ?", (session_id,)
            )
            self._db.execute(
                "DELETE FROM chunks WHERE session_id = ?", (session_id,)
            )

    def session_ids(self) -> list[str]:
        return [
            session_id
            for (session_id,) in self._db.execute(
                "SELECT session_id FROM sessions ORDER BY rowid"
            )
        ]

    def close(self) -> None:
        self._db.close()


@dataclass(frozen=True)
class RecoveredSession:
    """Everything :meth:`SessionJournal.recover` knows about a session:
    how it was opened, its last snapshot (if any), the chunks accepted
    since, and how many post-snapshot events the caller already holds
    (replay must skip exactly that prefix)."""

    session_id: str
    open_kwargs: dict | None
    export: SessionExport | None
    chunks: list[np.ndarray]
    delivered: int


class SessionJournal:
    """The write-ahead policy over a :class:`JournalStore`.

    Owns the pickling and the snapshot cadence; the gateways call the
    hooks (:meth:`open` / :meth:`log_chunk` / :meth:`delivered` /
    :meth:`snapshot` / :meth:`forget`) and the supervisor calls
    :meth:`recover`.  ``snapshot_every`` bounds replay length: once a
    session's post-snapshot chunk log reaches it,
    :meth:`wants_snapshot` asks the owning gateway for a fresh
    :class:`~repro.serving.gateway.SessionExport`, which truncates the
    log — recovery cost stays O(``snapshot_every``) chunks per session
    no matter how long it lives.
    """

    def __init__(self, store: JournalStore, *, snapshot_every: int = 64):
        validate_at_least("snapshot_every", snapshot_every)
        self.store = store
        self.snapshot_every = int(snapshot_every)

    # -- write-ahead hooks (called by the gateways) ----------------------

    def open(self, session_id: str, open_kwargs: dict | None) -> None:
        """Record a fresh session and how to reopen it."""
        self.store.begin(
            session_id, pickle.dumps(open_kwargs or {}, _PICKLE_PROTOCOL)
        )

    def log_chunk(self, session_id: str, chunk) -> None:
        """Append one accepted chunk (write-ahead: call before the
        chunk is applied / shipped)."""
        arr = np.asarray(chunk, dtype=float)
        self.store.append_chunk(
            session_id, pickle.dumps(arr, _PICKLE_PROTOCOL)
        )

    def delivered(self, session_id: str, n: int) -> None:
        """Count events returned to the caller since the last snapshot
        (recovery re-delivers everything *after* this prefix)."""
        if n:
            self.store.add_delivered(session_id, n)

    def snapshot(self, session_id: str, export: SessionExport) -> None:
        """Replace the snapshot; the chunk log and delivered counter
        restart empty (the export subsumes them)."""
        self.store.put_snapshot(
            session_id, pickle.dumps(export, _PICKLE_PROTOCOL)
        )

    def wants_snapshot(self, session_id: str) -> bool:
        """Has the post-snapshot chunk log reached the cadence bound?"""
        return self.store.chunk_count(session_id) >= self.snapshot_every

    def forget(self, session_id: str) -> None:
        """Drop a session that no longer needs recovery (closed,
        evicted, or released to another gateway)."""
        self.store.forget(session_id)

    # -- recovery --------------------------------------------------------

    def recover(self, session_id: str) -> RecoveredSession | None:
        """Load one session's recovery state (``None`` if unknown)."""
        stored = self.store.load(session_id)
        if stored is None:
            return None
        return RecoveredSession(
            session_id=session_id,
            open_kwargs=(
                pickle.loads(stored.open_blob)
                if stored.open_blob is not None
                else None
            ),
            export=(
                pickle.loads(stored.snapshot)
                if stored.snapshot is not None
                else None
            ),
            chunks=[pickle.loads(blob) for blob in stored.chunks],
            delivered=int(stored.delivered),
        )

    def session_ids(self) -> list[str]:
        """Every journaled session id (survivors of a restart included)."""
        return self.store.session_ids()

    def close(self) -> None:
        self.store.close()


def open_journal(
    path: str,
    backend: str = "file",
    *,
    snapshot_every: int = 64,
    sync: bool = False,
) -> SessionJournal:
    """Build a :class:`SessionJournal` over a named backend.

    ``"file"`` journals into the directory ``path``; ``"sqlite"`` into
    ``<path>/journal.sqlite3`` (or ``path`` itself when it names a
    file); ``"memory"`` ignores ``path``.  The ``repro serve
    --journal DIR --journal-backend B --snapshot-every N`` flags map
    straight onto this.
    """
    if backend == "file":
        store: JournalStore = FileJournalStore(path, sync=sync)
    elif backend == "sqlite":
        db_path = path
        if not os.path.splitext(path)[1]:
            db_path = os.path.join(path, "journal.sqlite3")
        store = SqliteJournalStore(db_path, sync=sync)
    elif backend == "memory":
        store = MemoryJournalStore()
    else:
        raise ValueError(
            f"journal backend must be one of {JOURNAL_BACKENDS}, got {backend!r}"
        )
    return SessionJournal(store, snapshot_every=snapshot_every)


class SupervisedGateway:
    """Crash-durable front over a :class:`ShardedGateway` worker pool.

    Construction wires a :class:`SessionJournal` into a new
    :class:`ShardedGateway` (all ``**gateway_kwargs`` pass through:
    ``workers``, ``placement``, QoS, backpressure, ...), then guards
    the whole session surface: any call that hits a dead worker
    (:class:`~repro.serving.sharded.WorkerCrashError` — ``kill -9``,
    OOM, a broken pipe) triggers recovery and is retried transparently.

    Recovery, per crash:

    1. every worker whose process is no longer alive (plus the one the
       failing call touched) is respawned **in place** — same index,
       fresh empty process — via
       :meth:`ShardedGateway.respawn_worker`;
    2. every session the dead workers owned (plus any journaled
       session no worker owns — a move interrupted mid-import) is
       rebuilt: import its last snapshot (or re-open), replay the
       logged chunks, force a flush, and keep every replayed event
       past the journal's ``delivered`` count as the session's owed
       backlog.  Chunk-invariance makes the rebuilt stream bit-exact;
    3. the retried call completes against the healed pool.  A chunk
       whose journal entry landed before the crash is *not* re-sent
       (the replay already applied it — re-ingesting would
       double-apply); the retry drains events instead.

    Recovery reads the journal but never writes it, so a second crash
    mid-recovery restarts it from the same durable state.

    ``check_workers()`` runs the same sweep proactively (a supervisor
    loop's heartbeat); on a journal directory that survived a full
    process restart it also rebuilds every journaled session from disk.

    Parameters
    ----------
    journal:
        A :class:`SessionJournal`, a bare :class:`JournalStore`, or a
        path (journaled via :func:`open_journal`'s ``"file"`` backend).
    snapshot_every:
        Snapshot cadence override (chunks between snapshots).
    max_recover_attempts:
        Crash-recovery rounds one call may consume before the
        :class:`~repro.serving.sharded.WorkerCrashError` propagates
        (workers dying faster than they can be respawned).
    on_recover:
        Optional ``hook(dead_workers, recovered_session_ids)`` called
        after each recovery round.
    """

    def __init__(
        self,
        classifier,
        fs: float,
        *,
        journal,
        snapshot_every: int | None = None,
        max_recover_attempts: int = 8,
        on_recover=None,
        **gateway_kwargs,
    ):
        validate_at_least("max_recover_attempts", max_recover_attempts)
        self._owns_journal = False
        if isinstance(journal, SessionJournal):
            self.journal = journal
        elif isinstance(journal, JournalStore):
            self.journal = SessionJournal(journal)
        else:
            self.journal = open_journal(os.fspath(journal))
            self._owns_journal = True
        if snapshot_every is not None:
            validate_at_least("snapshot_every", snapshot_every)
            self.journal.snapshot_every = int(snapshot_every)
        self.max_recover_attempts = int(max_recover_attempts)
        self.on_recover = on_recover
        self.n_recoveries = 0
        self.n_sessions_recovered = 0
        self.n_evictions_salvaged = 0
        self._gateway = ShardedGateway(
            classifier, fs, journal=self.journal, **gateway_kwargs
        )

    @property
    def gateway(self) -> ShardedGateway:
        """The supervised pool (escape hatch for tests/introspection)."""
        return self._gateway

    def __getattr__(self, name: str):
        # Read-only surface (workers, placement, session_ids, ...)
        # delegates; the crash-guarded methods are defined explicitly.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._gateway, name)

    # -- the crash guard -------------------------------------------------

    def _call(self, fn, *args, **kwargs):
        attempts = 0
        while True:
            try:
                return fn(*args, **kwargs)
            except WorkerCrashError as crash:
                attempts += 1
                if attempts > self.max_recover_attempts:
                    raise
                if crash.chunk_journaled and crash.session_id is not None:
                    # The chunk is durable and recovery replays it —
                    # re-sending would double-apply.  The retry only
                    # drains the session's events.
                    fn, args, kwargs = (
                        self._drain_session, (crash.session_id,), {},
                    )
                try:
                    self._recover_from(crash)
                except WorkerCrashError:
                    # Another worker died mid-recovery.  The journal is
                    # untouched; the retried call crashes again and
                    # re-enters recovery with a fresh liveness scan.
                    pass

    def _drain_session(self, session_id: str) -> list:
        gw = self._gateway
        if session_id not in gw._owner:
            self._recover_from(None)  # finish an interrupted recovery
        return gw.poll(session_id)

    def _recover_from(self, crash: WorkerCrashError | None) -> int:
        """One recovery round: respawn every dead worker, rebuild every
        lost session.  Returns the number of sessions recovered."""
        gw = self._gateway
        dead = set()
        if crash is not None:
            dead.add(crash.worker)
        for index, proc in enumerate(gw._procs):
            if getattr(proc, "pid", None) is not None and not proc.is_alive():
                dead.add(index)
        if dead and isinstance(gw._conns[sorted(dead)[0]], _InlineWorker):
            raise RuntimeError("cannot recover inline workers")
        lost: list[tuple[str, object]] = []
        for index in sorted(dead):
            # Salvage first: a killed worker's already-written responses
            # stay readable until its pipe drains.  Eviction notices in
            # there carry final event sequences the worker-side gateway
            # has already drained — without this pass they die with the
            # connection (respawn_worker closes it unread) and the
            # journal would resurrect the evicted session as live.
            self.n_evictions_salvaged += self._salvage_responses(index)
            for session_id in gw.sessions_on(index):
                # Parent-side state of the dead worker's sessions is
                # stale: undelivered buffered events regenerate on
                # replay, the inbox restarts empty (its audit carries).
                lost.append((session_id, gw._inboxes.get(session_id)))
                gw._owner.pop(session_id, None)
                gw._events.pop(session_id, None)
                gw._errors.pop(session_id, None)
                inbox = gw._inboxes.pop(session_id, None)
                if inbox is not None:
                    inbox.close()
            gw.respawn_worker(index)
        known = {session_id for session_id, _ in lost}
        for session_id in self.journal.session_ids():
            if session_id not in gw._owner and session_id not in known:
                # Journaled but owned by nobody: a migration the crash
                # interrupted between release and import, or a session
                # persisted by a previous process (full restart).
                lost.append((session_id, None))
        recovered = []
        for session_id, old_inbox in lost:
            if self._recover_session(session_id, old_inbox):
                recovered.append(session_id)
        if dead or recovered:
            self.n_recoveries += 1
            self.n_sessions_recovered += len(recovered)
            if self.on_recover is not None:
                self.on_recover(sorted(dead), recovered)
        return len(recovered)

    def _salvage_responses(self, index: int) -> int:
        """Drain whatever a dead worker managed to write before dying.

        Eviction notices are delivered for real (``take_evicted()`` /
        ``on_evict``, journal entry dropped so recovery does not
        resurrect a session the worker already closed) and analytics
        alerts / final summaries are folded in.  Pipelined ingest
        payloads route into the normal parent buffers: a session this
        same salvage batch *evicts* needs them merged ahead of the
        eviction notice's tail, while a session that gets *recovered*
        has its copy scrubbed below and regenerated by replay (the
        journal's delivered counter only covers events the caller
        actually took).  Returns the number of evicted sessions whose
        final sequences were saved.  Tolerant of a pipe that breaks
        mid-read (the crash can truncate anything).
        """
        gw = self._gateway
        conn = gw._conns[index]
        salvaged = 0
        while True:
            try:
                if not conn.poll():
                    break
                response = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                break
            try:
                op, session_id, (status, value), evictions, aux = response
            except (TypeError, ValueError, IndexError):
                continue  # pragma: no cover - truncated frame
            salvaged += sum(1 for sid, _ in evictions if sid in gw._owner)
            gw._note_evictions(evictions)
            gw._note_aux(aux)
            if op == "ingest" and status == "ok":
                if session_id in gw._owner:
                    gw._events.setdefault(session_id, []).extend(value)
                elif session_id in gw._evicted:
                    gw._evicted[session_id].extend(value)
        return salvaged

    def _recover_session(self, session_id: str, old_inbox=None) -> bool:
        """Rebuild one session from its journal: snapshot import (or
        re-open), chunk replay, forced flush.  Replayed events past the
        journal's delivered count become the session's owed backlog.
        Never writes the journal — idempotent under repeated crashes."""
        gw, journal = self._gateway, self.journal
        rec = journal.recover(session_id)
        if rec is None:
            return False
        # Scrub any stale half-recovered copy a previously interrupted
        # recovery left behind (placement may pick a different target
        # this round).
        for index in range(gw.workers):
            try:
                gw._request(index, ("release", session_id))
            except KeyError:
                pass
        target = gw._place(session_id)
        if rec.export is not None:
            gw._request(target, ("import", session_id, rec.export))
        else:
            gw._request(target, ("open", session_id, rec.open_kwargs or {}))
        replayed: list = []
        for chunk in rec.chunks:
            replayed.extend(gw._request(target, ("ingest", session_id, chunk)))
        # The original flushes rode other sessions' shared-clock ticks;
        # a solo replay must force the tail out (flush boundaries never
        # change event content — the pinned invariance).
        gw._request(target, ("flush", None))
        replayed.extend(gw._request(target, ("poll", session_id)))
        if len(replayed) < rec.delivered:  # pragma: no cover - guard
            raise RuntimeError(
                f"journal replay of session {session_id!r} produced "
                f"{len(replayed)} events, fewer than the {rec.delivered} "
                "already delivered — journal accounting is broken"
            )
        gw._register(session_id, target)
        if old_inbox is not None and session_id in gw._inboxes:
            gw._inboxes[session_id].carry_audit(old_inbox)
        residue = replayed[rec.delivered :]
        if residue:
            gw._events[session_id] = residue
        return True

    def check_workers(self) -> int:
        """Proactive sweep: respawn dead workers, rebuild their (and
        any orphaned journaled) sessions.  Returns sessions recovered.
        Call it from a supervisor loop / after a full restart."""
        attempts = 0
        while True:
            try:
                return self._recover_from(None)
            except WorkerCrashError:
                attempts += 1
                if attempts > self.max_recover_attempts:
                    raise

    # -- the guarded session surface -------------------------------------

    def open_session(self, session_id: str, **kwargs) -> None:
        """Open a session (crash-guarded); see
        :meth:`ShardedGateway.open_session`."""
        return self._call(self._gateway.open_session, session_id, **kwargs)

    def ingest(self, session_id: str, chunk) -> list:
        """Journal one chunk, ship it, return resolved events.

        The chunk is durable when this returns — a worker crash at any
        point afterwards recovers it by replay.  This is the
        acknowledged-prefix contract the chaos suite pins."""
        return self._call(self._gateway.ingest, session_id, chunk)

    def poll(self, session_id: str) -> list:
        """Drain a session's events (crash-guarded)."""
        return self._call(self._gateway.poll, session_id)

    def close_session(self, session_id: str) -> list:
        """End a session; its journal entry is dropped with it."""
        return self._call(self._gateway.close_session, session_id)

    def export_session(self, session_id: str) -> SessionExport:
        """Capture a session (also refreshes its journal snapshot)."""
        return self._call(self._gateway.export_session, session_id)

    def release_session(self, session_id: str) -> SessionExport:
        """Capture and remove a session (journal entry dropped)."""
        return self._call(self._gateway.release_session, session_id)

    def import_session(self, export: SessionExport, session_id=None) -> str:
        """Resume an exported session (journaled as a fresh snapshot)."""
        return self._call(self._gateway.import_session, export, session_id)

    def migrate_session(self, session_id: str, worker: int) -> None:
        """Move a session between workers; the move carries the journal
        (its capture doubles as a snapshot)."""
        return self._call(self._gateway.migrate_session, session_id, worker)

    def flush(self) -> int:
        """Force a batched classifier pass on every worker."""
        return self._call(self._gateway.flush)

    def take_evicted(self) -> dict[str, list]:
        """Evicted sessions' final event sequences (crash-guarded)."""
        return self._call(self._gateway.take_evicted)

    def take_alerts(self) -> list:
        """Fleet-wide analytics alerts (crash-guarded)."""
        return self._call(self._gateway.take_alerts)

    def take_summaries(self) -> dict[str, dict]:
        """Final analytics summaries (crash-guarded)."""
        return self._call(self._gateway.take_summaries)

    def add_worker(self) -> int:
        """Grow the supervised pool by one worker."""
        return self._call(self._gateway.add_worker)

    def retire_worker(self, worker: int) -> int:
        """Drain and reap one worker (crash-guarded)."""
        return self._call(self._gateway.retire_worker, worker)

    def stats(self) -> dict:
        """Pool statistics plus the supervisor's recovery counters
        (``recoveries``, ``sessions_recovered``, ``respawns``,
        ``evictions_salvaged``)."""
        totals = self._call(self._gateway.stats)
        totals["recoveries"] = self.n_recoveries
        totals["sessions_recovered"] = self.n_sessions_recovered
        totals["respawns"] = self._gateway.n_respawns
        totals["evictions_salvaged"] = self.n_evictions_salvaged
        return totals

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        """Reap the pool.  The journal persists (that is the point) —
        sessions still open recover via :meth:`check_workers` on a new
        instance over the same store; the store is closed only if this
        wrapper created it from a path."""
        self._gateway.shutdown()
        if self._owns_journal:
            self.journal.close()

    def __enter__(self) -> "SupervisedGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def recover_sessions(journal: SessionJournal, gateway) -> dict[str, list]:
    """Rebuild every journaled session on a fresh gateway (the
    full-process-restart path, for any gateway tier).

    For each journaled session: import its snapshot (or re-open it),
    replay the logged chunks through the gateway's public surface,
    force a flush, and collect the replayed events.  Returns the
    per-session events *beyond* the journal's delivered count — the
    backlog the previous process accepted but never handed out; events
    before it were already delivered and are skipped (never
    re-delivered).

    If ``gateway`` journals into the same journal, the rebuilt
    sessions are re-journaled consistently as a side effect (import
    snapshots, replayed chunk log, delivered counts) — the normal way
    to keep durability across restarts.
    """
    backlog: dict[str, list] = {}
    for session_id in journal.session_ids():
        rec = journal.recover(session_id)
        if rec is None:  # pragma: no cover - concurrent forget
            continue
        if rec.export is not None:
            gateway.import_session(rec.export, session_id)
        else:
            gateway.open_session(session_id, **(rec.open_kwargs or {}))
        events: list = []
        for chunk in rec.chunks:
            events.extend(gateway.ingest(session_id, chunk))
        flush = getattr(gateway, "flush_batch", None)
        if flush is None:
            flush = getattr(gateway, "flush", None)
        if flush is not None:
            flush()
        events.extend(gateway.poll(session_id))
        if len(events) < rec.delivered:  # pragma: no cover - guard
            raise RuntimeError(
                f"journal replay of session {session_id!r} produced "
                f"{len(events)} events, fewer than the {rec.delivered} "
                "already delivered — journal accounting is broken"
            )
        backlog[session_id] = events[rec.delivered :]
    return backlog
