"""Sharded batch execution: :class:`ServingEngine` and its entry points.

The per-record APIs (:meth:`repro.platform.node_sim.NodeSimulator.process_record`,
the :mod:`repro.dsp.streaming` classes) model one WBSN node; the
engine serves *many* nodes at once.  It shards a batch of
records/streams across workers behind a pluggable executor
(:data:`~repro.serving.executors.EXECUTORS`), runs the per-stream
front ends inside each shard, and makes **one batched classifier pass
per shard** — one projection and one fuzzification pass per shard
instead of one per stream, which is where the vectorized classifier
earns its keep under load.  Because every record/stream is processed
independently and shard outputs are concatenated in submission order,
results are byte-identical regardless of executor choice, worker count
or shard count.  (With the integer
:class:`~repro.fixedpoint.convert.EmbeddedClassifier` this is exact by
construction; a float classifier's matmul is row-wise independent too,
but bitwise invariance to the *batch size* a shard hands it is a BLAS
implementation property, not an IEEE guarantee — pin the shard count
when bit-replaying float results.)

For *live* sessions feeding data in chunks, see
:class:`repro.serving.gateway.StreamGateway`, which multiplexes many
open :class:`~repro.dsp.streaming.StreamingNode` sessions into the
same kind of batched classifier pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.streaming import BlockFilter, StreamingPeakDetector
from repro.ecg.resample import decimate_beats
from repro.ecg.segmentation import BeatWindow, segment_beats
from repro.platform.node_sim import NodeSimulator, NodeTrace
from repro.serving.executors import (
    EXECUTORS,
    map_shards,
    split_shards,
    validate_executor,
    validate_workers,
)
from repro.serving.results import FleetTrace, StreamResult

__all__ = [
    "EXECUTORS",
    "ServingEngine",
    "classify_streams",
    "simulate_records",
]


def _classify_stream_shard(
    classifier,
    streams: list[np.ndarray],
    fs: float,
    block: int,
    window: BeatWindow,
    decimation: int,
    config,
) -> list[StreamResult]:
    """Front ends for one shard of streams + one batched classifier pass."""
    per_stream_peaks: list[np.ndarray] = []
    per_stream_beats: list[np.ndarray] = []
    for x in streams:
        block_filter = BlockFilter(fs)
        detector = StreamingPeakDetector(fs, config=config)
        filtered_parts: list[np.ndarray] = []
        for i in range(0, x.size, block):
            out = block_filter.push(x[i : i + block])
            if out.size:
                filtered_parts.append(out)
                detector.push(out)
        tail = block_filter.flush()
        if tail.size:
            filtered_parts.append(tail)
            detector.push(tail)
        detector.flush()
        filtered = (
            np.concatenate(filtered_parts) if filtered_parts else np.empty(0)
        )
        beats, kept = segment_beats(filtered, detector.peaks, window)
        per_stream_peaks.append(detector.peaks[kept])
        per_stream_beats.append(beats)

    # One classification pass for the whole shard.
    counts = [b.shape[0] for b in per_stream_beats]
    total = sum(counts)
    if total:
        stacked = np.vstack([b for b in per_stream_beats if b.shape[0]])
        stacked_ds, _ = decimate_beats(stacked, window, decimation)
        labels = np.asarray(classifier.predict(stacked_ds))
    else:
        labels = np.empty(0, dtype=np.int64)

    results: list[StreamResult] = []
    start = 0
    for peaks, count in zip(per_stream_peaks, counts):
        results.append(StreamResult(peaks=peaks, labels=labels[start : start + count]))
        start += count
    return results


def _simulate_shard_task(task) -> list[NodeTrace]:
    """Process-pool entry point: replay one shard of records."""
    simulator, records, lead = task
    return [simulator.process_record(record, lead=lead) for record in records]


def _classify_shard_task(task) -> list[StreamResult]:
    """Process-pool entry point: classify one shard of streams."""
    classifier, streams, fs, block, window, decimation, config = task
    return _classify_stream_shard(classifier, streams, fs, block, window, decimation, config)


@dataclass(frozen=True)
class ServingEngine:
    """Sharded fleet execution with a pluggable executor.

    Parameters
    ----------
    executor:
        ``"serial"`` runs shards in-process (no pool); ``"threads"``
        uses a thread pool (cheap to spin up, best when numpy releases
        the GIL); ``"processes"`` uses a process pool (true
        parallelism for the Python-level per-stream front ends — the
        classifier, records and traces are all plain picklable
        dataclasses).
    workers:
        Pool size for the parallel executors (>= 1).
    shards:
        Number of contiguous shards the batch is split into (default:
        ``workers``).  Shard boundaries never change results — every
        record/stream is independent and shard outputs concatenate in
        submission order — only load balance.  (Exact for the integer
        classifier; see the module docs for the float caveat.)
    """

    executor: str = "serial"
    workers: int = 1
    shards: int | None = None

    def __post_init__(self) -> None:
        validate_executor(self.executor)
        validate_workers(self.workers)
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    def _split(self, items: list) -> list[list]:
        return split_shards(items, self.shards or self.workers)

    def _map(self, fn, tasks: list) -> list:
        return map_shards(self.executor, self.workers, fn, tasks)

    def simulate_records(self, simulator: NodeSimulator, records, lead: int = 0) -> FleetTrace:
        """Replay a batch of records; return the aggregate fleet trace.

        Parameters
        ----------
        simulator:
            The node model every record is replayed through.
        records:
            Iterable of :class:`repro.ecg.database.Record`.
        lead:
            Classification lead index (same for every record).
        """
        records = list(records)
        shards = self._split(records)
        parts = self._map(_simulate_shard_task, [(simulator, shard, lead) for shard in shards])
        return FleetTrace([trace for part in parts for trace in part])

    def classify_streams(
        self,
        classifier,
        streams,
        fs: float,
        block_s: float = 0.5,
        decimation: int = 4,
        window: BeatWindow | None = None,
        config=None,
    ) -> list[StreamResult]:
        """Run the streaming front end over many streams, classify per shard.

        Each stream goes through its own :class:`BlockFilter` and
        :class:`StreamingPeakDetector` (both incremental, both carrying
        state across blocks), beats are segmented per stream, and the
        classifier sees one concatenated beat matrix per shard.

        Parameters
        ----------
        classifier:
            Anything with ``predict(beats)`` — the float
            :class:`~repro.core.pipeline.RPClassifierPipeline` or the
            integer :class:`~repro.fixedpoint.convert.EmbeddedClassifier`.
        streams:
            Iterable of 1-D sample arrays, all at ``fs``.
        fs:
            Sampling frequency in Hz.
        block_s:
            ADC block size in seconds fed to the front end (> 0).
        decimation:
            Beat decimation factor before classification (paper: 4).
        window:
            Segmentation window (paper default 100 + 100).
        config:
            Optional :class:`~repro.dsp.peak_detection.PeakDetectorConfig`.

        Returns
        -------
        list[StreamResult]
            One entry per input stream, in order.
        """
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if block_s <= 0:
            raise ValueError("block_s must be positive")
        if decimation < 1:
            raise ValueError("decimation must be >= 1")
        block = max(1, int(round(block_s * fs)))
        window = window or BeatWindow(100, 100)
        arrays = []
        for stream in streams:
            x = np.asarray(stream, dtype=float)
            if x.ndim != 1:
                raise ValueError("streams must be 1-D sample arrays")
            arrays.append(x)
        shards = self._split(arrays)
        parts = self._map(
            _classify_shard_task,
            [(classifier, shard, fs, block, window, decimation, config) for shard in shards],
        )
        return [result for part in parts for result in part]


def simulate_records(
    simulator: NodeSimulator, records, lead: int = 0, engine: ServingEngine | None = None
) -> FleetTrace:
    """Replay a batch of records (see :meth:`ServingEngine.simulate_records`).

    ``engine`` selects sharding/executor; the default runs serially,
    unsharded, and returns byte-identical results to any other engine.
    """
    return (engine or ServingEngine()).simulate_records(simulator, records, lead=lead)


def classify_streams(
    classifier,
    streams,
    fs: float,
    block_s: float = 0.5,
    decimation: int = 4,
    window: BeatWindow | None = None,
    config=None,
    engine: ServingEngine | None = None,
) -> list[StreamResult]:
    """Classify many streams (see :meth:`ServingEngine.classify_streams`).

    ``engine`` selects sharding/executor; the default runs serially
    with one fleet-wide classifier pass, and returns byte-identical
    results to any other engine.
    """
    return (engine or ServingEngine()).classify_streams(
        classifier, streams, fs, block_s=block_s, decimation=decimation,
        window=window, config=config,
    )
