"""Multi-worker session gateway: live sessions sharded across processes.

:class:`~repro.serving.gateway.StreamGateway` multiplexes live sessions
into batched classifier passes inside one process;
:class:`ShardedGateway` scales that across a pool of worker processes,
the way :class:`~repro.serving.engine.ServingEngine` shards *complete*
streams:

* every worker process runs its own ``StreamGateway`` (one batched
  classifier flush per worker per tick, same size/latency policy);
* sessions are assigned to workers at ``open_session`` by a pluggable
  placement policy (:data:`~repro.serving.executors.PLACEMENTS`):
  ``"hash"`` (stable CRC-32 of the session id, so an id always lands
  on the same worker for a given pool size), ``"least-loaded"`` (the
  worker with the fewest open sessions) or ``"round-robin"`` (cyclic).
  Any session can be moved live with
  :meth:`ShardedGateway.migrate_session`, built on the existing
  :class:`~repro.serving.gateway.SessionExport` migration;
* the pool is **elastic**: :meth:`ShardedGateway.add_worker` spawns a
  new worker process mid-flight and :meth:`ShardedGateway.retire_worker`
  drains one — live-migrating every session it owns onto the remaining
  workers (losslessly, including sessions with backlogged inboxes) —
  before reaping it.  :mod:`repro.serving.autoscale` builds the
  load-aware policies (``AutoBalancer`` / ``Autoscaler``) that drive
  these primitives automatically;
* ``ingest`` is **pipelined**: the chunk is shipped to the owning
  worker and the call returns the session's already-resolved events
  without waiting for the worker to process it.  Each worker's command
  pipe is FIFO, so per-session ordering — and therefore the
  per-session bit-exactness guarantee of the single-process gateway —
  is preserved for every worker count, interleaving and chunking.
  ``close_session`` / ``export_session`` synchronize, so a session's
  event sequence is always complete when it ends or migrates.

Backpressure: with ``inbox_capacity`` set, each session has a bounded
inbox (:class:`SessionInbox`) of accepted-but-unprocessed chunks.  When
it is full the documented overflow policy applies (the
:data:`~repro.serving.executors.INBOX_POLICIES`):

* ``"block"`` — ``ingest`` waits for the owning worker to catch up
  before accepting the chunk.  No data is ever lost; the producer is
  slowed to the worker's pace.  Progress is guaranteed because the
  worker always consumes its pipe (the wait actively drains worker
  responses, so it cannot deadlock).
* ``"drop"`` — the chunk is rejected *and counted*
  (:meth:`ShardedGateway.dropped_chunks`,
  :attr:`SessionInbox.n_dropped`); ``ingest`` still returns the
  session's resolved events.  Load shedding is explicit and audited —
  never a silent loss — but the session's event stream then reflects
  the thinned signal (bit-exactness holds for the samples actually
  accepted).

QoS settings (per-session latency budgets, idle eviction) are forwarded
to the worker gateways; evicted sessions' final event sequences travel
back with the next response from that worker and reach the parent's
``on_evict`` hook / :meth:`ShardedGateway.take_evicted`.

Durability: with a ``journal``
(:class:`repro.serving.durability.SessionJournal`) attached, every
accepted chunk is journaled *before* it is shipped, snapshots refresh
on the journal's cadence, and ownership moves carry the journal.  A
dead worker (``kill -9``, broken pipe) surfaces as
:class:`WorkerCrashError`;
:class:`~repro.serving.durability.SupervisedGateway` catches it,
respawns the worker in place (:meth:`ShardedGateway.respawn_worker`)
and replays snapshot+log to recover its sessions bit-exactly.
"""

from __future__ import annotations

import multiprocessing
import threading
import zlib
from collections import deque

import numpy as np

from repro.serving.executors import (
    INBOX_POLICIES,
    PLACEMENTS,
    validate_at_least,
    validate_inbox_policy,
    validate_placement,
    validate_worker_mode,
    validate_workers,
)
from repro.serving.analytics import merge_rollups
from repro.serving.gateway import GatewayGroup, SessionExport, StreamGateway

__all__ = ["SessionInbox", "ShardedGateway", "WorkerCrashError"]


class WorkerCrashError(RuntimeError):
    """A worker process died under a call (``kill -9``, OOM, broken
    pipe).

    Raised by the parent when the command pipe breaks or hits EOF.
    ``worker`` is the pool index of the dead worker.  ``session_id`` /
    ``chunk_journaled`` are set by ``ingest`` when the crash happened
    *after* the chunk was journaled: the chunk is durable and recovery
    will replay it, so the supervisor must **not** re-send it (that
    would double-apply) — it retries as a drain instead.  Sessions the
    dead worker owned are lost unless a journal +
    :class:`~repro.serving.durability.SupervisedGateway` recovers them.
    """

    def __init__(
        self,
        worker: int,
        cause: BaseException | None = None,
        *,
        session_id: str | None = None,
        chunk_journaled: bool = False,
    ):
        detail = f": {cause!r}" if cause is not None else ""
        super().__init__(f"worker {worker} crashed{detail}")
        self.worker = worker
        self.cause = cause
        self.session_id = session_id
        self.chunk_journaled = chunk_journaled


class SessionInbox:
    """Bounded inbox of accepted-but-unprocessed chunks for one session.

    A thread-safe bounded queue with the serving layer's two documented
    overflow policies (:data:`~repro.serving.executors.INBOX_POLICIES`):

    * ``"block"``: :meth:`put` waits until the consumer has taken an
      item.  Nothing is ever lost; the producer runs at the consumer's
      pace.  The caller may supply a ``wait`` hook that *drives* the
      consumer (how :class:`ShardedGateway` drains worker responses
      while waiting), which guarantees progress without a second
      thread.
    * ``"drop"``: :meth:`put` rejects the item when full, returns
      ``False`` and increments :attr:`n_dropped` — shedding is
      explicit and counted, never silent.

    ``high_water`` records the maximum occupancy ever reached, so tests
    and monitoring can verify the bound actually held.
    """

    def __init__(self, capacity: int, policy: str = "block"):
        validate_at_least("inbox_capacity", capacity)
        validate_inbox_policy(policy)
        self.capacity = int(capacity)
        self.policy = policy
        self.n_dropped = 0
        self.n_accepted = 0
        self.high_water = 0
        self._items: deque = deque()
        self._closed = False
        self._cond = threading.Condition(threading.RLock())

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item, wait=None) -> bool:
        """Offer one item; apply the overflow policy when full.

        Returns ``True`` when the item was accepted.  In ``"drop"``
        mode a full inbox returns ``False`` (and counts the drop); in
        ``"block"`` mode the call waits for space — via ``wait()`` if
        given (called repeatedly until space frees up; it may consume
        from this inbox or :meth:`close` it), else on the internal
        condition until another thread calls :meth:`take`.  Offering
        to a closed inbox (its session ended, e.g. evicted) returns
        ``False`` without counting a drop: the caller must re-check
        the session, not retry.
        """
        with self._cond:
            while not self._closed and len(self._items) >= self.capacity:
                if self.policy == "drop":
                    self.n_dropped += 1
                    return False
                if wait is None:
                    self._cond.wait()
                else:
                    wait()
            if self._closed:
                return False
            self._items.append(item)
            self.n_accepted += 1
            self.high_water = max(self.high_water, len(self._items))
            return True

    def take(self):
        """Consume the oldest item (FIFO); unblocks a waiting producer."""
        with self._cond:
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def close(self) -> None:
        """End the inbox's session: unblock any waiting producer.

        A blocked :meth:`put` returns ``False`` instead of waiting for
        space that will never free up (the guard against a producer
        deadlocking on a session evicted under it).
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def carry_audit(self, previous: "SessionInbox") -> None:
        """Inherit a predecessor inbox's full audit (migration /
        recovery): shed count, accept count, and high-water mark — the
        counters are per *session*, not per placement."""
        with self._cond:
            self.n_dropped = previous.n_dropped
            self.n_accepted = previous.n_accepted
            self.high_water = max(self.high_water, previous.high_water)


class _WorkerState:
    """One worker's gateway + the shared request dispatch.

    The same state machine backs both execution modes: the worker
    *process* loop (:func:`_worker_main`) drives it over a pipe, and
    the *inline* mode (:class:`_InlineWorker`) drives it directly in
    the parent process.  Requests map to gateway calls; the response
    is ``(op, session_id, payload, evictions, aux)`` where ``payload``
    is ``("ok", value)`` or ``("err", exception)``.  Evictions that
    fired while handling a request (the gateway's idle clock advances
    on its own ingest ticks) ride along on the response, each as a
    complete ``(session_id, events)`` final sequence; ``aux`` is the
    analytics side-channel ``(alerts, summaries)`` drained from the
    worker gateway the same way.
    """

    def __init__(self, classifier, fs: float, gateway_kwargs: dict, group=None):
        self._evictions: list[tuple[str, list]] = []
        self.gateway = StreamGateway(
            classifier,
            fs,
            on_evict=lambda sid, events: self._evictions.append((sid, events)),
            group=group,
            **gateway_kwargs,
        )
        self._evicted_ids: set[str] = set()

    def handle(self, request: tuple) -> tuple:
        """Serve one request; return its wire response (never raises)."""
        gateway = self.gateway
        op, session_id = request[0], request[1]
        try:
            if op == "ingest":
                if session_id in self._evicted_ids:
                    value = []  # chunk was in flight when the session was evicted
                else:
                    value = gateway.ingest(session_id, request[2])
            elif op == "open":
                value = gateway.open_session(session_id, **request[2])
                self._evicted_ids.discard(session_id)  # the id is live again
            elif op == "poll":
                value = gateway.poll(session_id)
            elif op == "close":
                if session_id in self._evicted_ids:
                    value = []
                else:
                    value = gateway.close_session(session_id)
            elif op == "export":
                value = gateway.export_session(session_id)
            elif op == "release":
                value = gateway.release_session(session_id)
            elif op == "import":
                value = gateway.import_session(request[2], session_id)
                self._evicted_ids.discard(session_id)  # the id is live again
            elif op == "flush":
                value = gateway.flush_batch()
            elif op == "stats":
                value = {
                    "n_sessions": gateway.n_sessions,
                    "n_queued": gateway.n_queued,
                    "n_flushes": gateway.n_flushes,
                    "n_classified": gateway.n_classified,
                    "n_evicted": gateway.n_evicted,
                    "analytics": gateway.analytics_rollup(),
                }
            else:
                raise ValueError(f"unknown worker op {op!r}")
            payload = ("ok", value)
        except Exception as exc:  # travels back to the caller
            payload = ("err", exc)
        new_evictions, self._evictions = self._evictions, []
        self._evicted_ids.update(sid for sid, _ in new_evictions)
        gateway.take_evicted()  # delivered via the response instead
        aux = (gateway.take_alerts(), gateway.take_summaries())
        return (op, session_id, payload, new_evictions, aux)


def _worker_main(conn, classifier, fs: float, gateway_kwargs: dict) -> None:
    """Worker-process loop: one :class:`_WorkerState`, commands over a
    pipe, responses in request order (the FIFO the parent relies on)."""
    state = _WorkerState(classifier, fs, gateway_kwargs)
    while True:
        try:
            request = conn.recv()
        except EOFError:  # parent died; nothing left to serve
            break
        if request[0] == "stop":
            conn.send(("stop", None, ("ok", None), [], ([], {})))
            break
        conn.send(state.handle(request))
    conn.close()


class _InlineWorker:
    """Duck-typed pipe end that serves requests in the calling process.

    ``send`` handles the request synchronously against the worker's
    :class:`_WorkerState` and queues the response; ``recv``/``poll``
    read the queue — so the parent's pipelined FIFO protocol works
    unchanged, with zero processes and zero serialization.  Workers
    constructed over one shared
    :class:`~repro.serving.gateway.GatewayGroup` queue their beats
    into a single cross-worker batch, so one flush classifies the
    whole pool's pending beats in one ``predict`` call.
    """

    def __init__(self, state: _WorkerState):
        self._state = state
        self._responses: deque = deque()

    def send(self, request: tuple) -> None:
        if request[0] == "stop":
            self._responses.append(("stop", None, ("ok", None), [], ([], {})))
            return
        self._responses.append(self._state.handle(request))

    def recv(self) -> tuple:
        if not self._responses:
            raise EOFError("no pending inline response")
        return self._responses.popleft()

    def poll(self, timeout=None) -> bool:
        return bool(self._responses)

    def close(self) -> None:
        pass


class _InlineProcess:
    """Process-interface stub for inline workers (nothing to reap)."""

    def start(self) -> None:
        pass

    def join(self, timeout=None) -> None:
        pass

    def is_alive(self) -> bool:
        return False

    def terminate(self) -> None:
        pass


class ShardedGateway:
    """A pool of worker processes, each running a :class:`StreamGateway`.

    Drop-in for the single-process gateway's session surface
    (``open_session`` / ``ingest`` / ``poll`` / ``close_session`` /
    ``export_session`` / ``import_session``, so
    :func:`~repro.serving.gateway.serve_round_robin` drives it
    unchanged), with sessions sharded across ``workers`` processes.
    Per-session event sequences stay bit-exact with a standalone
    :class:`~repro.dsp.streaming.StreamingNode` for every worker
    count — see the module docs for how pipelining preserves ordering.

    Parameters
    ----------
    classifier / fs / max_batch / max_latency_ticks /
    evict_after_ticks / on_evict / analytics / on_alert /
    node configuration:
        As for :class:`~repro.serving.gateway.StreamGateway`; applied
        per worker (each worker's gateway batches and flushes its own
        sessions — one batched classifier pass per worker per tick;
        analytics fold worker-side in one batched pass per flush, and
        alerts / final summaries travel back on the response
        side-channel to :meth:`take_alerts` / :meth:`take_summaries`
        and the parent ``on_alert`` hook).
    workers:
        Initial worker process count (>= 1).  The pool is elastic:
        :meth:`add_worker` / :meth:`retire_worker` grow and shrink it
        live (typically driven by a
        :class:`repro.serving.autoscale.Autoscaler`).
    placement:
        Session-to-worker assignment policy consulted by
        :meth:`open_session` and :meth:`import_session` — one of
        :data:`~repro.serving.executors.PLACEMENTS` (``"hash"``,
        ``"least-loaded"``, ``"round-robin"``).  An explicit
        ``worker=`` argument always wins.
    inbox_capacity:
        Bound on each session's accepted-but-unprocessed chunks
        (>= 1, or ``None`` = unbounded).  See the module docs for the
        backpressure contract.
    inbox_policy:
        Overflow policy when a session's inbox is full — one of
        :data:`~repro.serving.executors.INBOX_POLICIES`.
    worker_mode:
        One of :data:`~repro.serving.executors.WORKER_MODES`.
        ``"process"`` (default) spawns one OS process per worker —
        true parallelism, per-worker classifier flushes.  ``"inline"``
        runs every worker in the calling process over one shared
        :class:`~repro.serving.gateway.GatewayGroup`: same session
        surface, same placement/migration/QoS semantics and the same
        per-session bit-exactness, but a flush triggered anywhere
        classifies **all** workers' pending beats in a single
        ``predict`` call (the tick clock is fleet-wide, exactly like
        one big ``StreamGateway``).  Best single-core throughput; no
        processes to reap.
    mp_context:
        Optional :mod:`multiprocessing` start method (e.g. ``"fork"``,
        ``"spawn"``); default is the platform's.
    journal:
        Optional :class:`repro.serving.durability.SessionJournal`.
        When set, accepted chunks are write-ahead journaled, snapshots
        refresh on the journal's cadence, migrations carry the
        journal, and closed/evicted/released sessions drop their
        entries — everything
        :class:`~repro.serving.durability.SupervisedGateway` needs to
        recover a crashed worker's sessions bit-exactly.

    Use as a context manager (or call :meth:`shutdown`) so the worker
    processes are reaped.
    """

    def __init__(
        self,
        classifier,
        fs: float,
        *,
        workers: int = 2,
        placement: str = "hash",
        max_batch: int = 64,
        max_latency_ticks: int = 8,
        evict_after_ticks: int | None = None,
        on_evict=None,
        analytics=None,
        on_alert=None,
        inbox_capacity: int | None = None,
        inbox_policy: str = "block",
        worker_mode: str = "process",
        mp_context: str | None = None,
        journal=None,
        n_leads: int = 1,
        lead: int = 0,
        decimation: int = 4,
        window=None,
        detector_config=None,
        delineation_config=None,
        overhead_bytes: int = 2,
    ):
        validate_workers(workers)
        validate_placement(placement)
        validate_at_least("max_batch", max_batch)
        validate_at_least("max_latency_ticks", max_latency_ticks)
        if evict_after_ticks is not None:
            validate_at_least("evict_after_ticks", evict_after_ticks)
        if inbox_capacity is not None:
            validate_at_least("inbox_capacity", inbox_capacity)
        validate_inbox_policy(inbox_policy)
        validate_worker_mode(worker_mode)
        self.fs = fs
        self.workers = int(workers)
        self.placement = placement
        self.inbox_capacity = inbox_capacity
        self.inbox_policy = inbox_policy
        self.worker_mode = worker_mode
        self.on_evict = on_evict
        self.on_alert = on_alert
        self.journal = journal
        gateway_kwargs = dict(
            max_batch=max_batch,
            max_latency_ticks=max_latency_ticks,
            evict_after_ticks=evict_after_ticks,
            # The gateway-wide analytics default ships to every worker
            # at spawn (operator prototypes / factory must pickle);
            # alerts and summaries travel back on the aux side-channel.
            analytics=analytics,
            n_leads=n_leads,
            lead=lead,
            decimation=decimation,
            window=window,
            detector_config=detector_config,
            delineation_config=delineation_config,
            overhead_bytes=overhead_bytes,
        )
        self._ctx = multiprocessing.get_context(mp_context)
        self._classifier = classifier
        self._gateway_kwargs = gateway_kwargs
        self._group = GatewayGroup() if worker_mode == "inline" else None
        self._conns = []
        self._procs = []
        for _ in range(self.workers):
            self._spawn_worker()
        self._owner: dict[str, int] = {}
        self._events: dict[str, list] = {}
        self._inboxes: dict[str, SessionInbox] = {}
        self._evicted: dict[str, list] = {}
        self._errors: dict[str, Exception] = {}
        self._alerts: list[tuple[str, object]] = []
        self._summaries: dict[str, dict] = {}
        self._rr_next = 0
        self.n_migrations = 0
        self.n_scale_events = 0
        self.n_respawns = 0
        self.n_alerts = 0
        self._closed = False

    def _make_worker(self) -> tuple:
        """Build one worker's (connection, process) pair."""
        if self._group is not None:
            state = _WorkerState(
                self._classifier, self.fs, self._gateway_kwargs, group=self._group
            )
            return _InlineWorker(state), _InlineProcess()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._classifier, self.fs, self._gateway_kwargs),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return parent_conn, proc

    def _spawn_worker(self) -> None:
        conn, proc = self._make_worker()
        self._conns.append(conn)
        self._procs.append(proc)

    def respawn_worker(self, worker: int) -> int:
        """Replace a dead worker in place: same index, fresh process.

        The crashed worker's sessions are *not* restored here — the
        new process starts empty; session recovery (snapshot + replay)
        is :class:`~repro.serving.durability.SupervisedGateway`'s job.
        The caller must already have dropped the parent-side state of
        the sessions the dead worker owned.
        """
        if self._closed:
            raise RuntimeError("gateway is shut down")
        index = self._validate_worker(worker)
        conn, proc = self._conns[index], self._procs[index]
        if isinstance(conn, _InlineWorker):
            raise RuntimeError(
                "inline workers run in the calling process and cannot "
                "crash independently; respawn_worker requires "
                "worker_mode='process'"
            )
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        self._conns[index], self._procs[index] = self._make_worker()
        self.n_respawns += 1
        return index

    # -- session surface -------------------------------------------------

    @property
    def n_sessions(self) -> int:
        """Currently open sessions, fleet-wide."""
        return len(self._owner)

    def session_ids(self) -> list[str]:
        """Open session ids, in opening order."""
        return list(self._owner)

    def worker_of(self, session_id: str) -> int:
        """Index of the worker currently running ``session_id``."""
        return self._owner_or_raise(session_id)

    def sessions_on(self, worker: int) -> list[str]:
        """Ids of the sessions currently placed on one worker (opening
        order) — the candidate set a rebalancer migrates from."""
        index = self._validate_worker(worker)
        return [sid for sid, owner in self._owner.items() if owner == index]

    def session_counts(self) -> list[int]:
        """Open sessions per worker, from the parent's placement map
        (no worker round-trip; :meth:`stats` is the synchronized view)."""
        counts = [0] * self.workers
        for owner in self._owner.values():
            counts[owner] += 1
        return counts

    @staticmethod
    def _hash(session_id: str) -> int:
        """Stable session hash (CRC-32, not the salted ``hash``)."""
        return zlib.crc32(session_id.encode())

    def _place(self, session_id: str, exclude: int | None = None) -> int:
        """Pick a worker for a session under the configured placement
        policy, optionally excluding one index (a draining worker)."""
        candidates = [i for i in range(self.workers) if i != exclude]
        if self.placement == "hash":
            return candidates[self._hash(session_id) % len(candidates)]
        if self.placement == "round-robin":
            index = candidates[self._rr_next % len(candidates)]
            self._rr_next += 1
            return index
        counts = self.session_counts()  # least-loaded, ties -> lowest index
        return min(candidates, key=lambda i: (counts[i], i))

    def open_session(
        self,
        session_id: str,
        *,
        max_latency_ticks: int | None = None,
        evict_after_ticks: int | None = None,
        analytics=None,
        worker: int | None = None,
    ) -> None:
        """Open a session on its policy-placed (or explicit) worker.

        The QoS and ``analytics`` keywords are forwarded to the worker
        gateway's
        :meth:`~repro.serving.gateway.StreamGateway.open_session`
        (per-session analytics specs ride the command pipe, so the
        operator prototypes must pickle).
        """
        if session_id in self._owner:
            raise ValueError(f"session {session_id!r} is already open")
        index = self._place(session_id) if worker is None else self._validate_worker(worker)
        qos = {
            "max_latency_ticks": max_latency_ticks,
            "evict_after_ticks": evict_after_ticks,
            "analytics": analytics,
        }
        self._request(index, ("open", session_id, qos))
        self._register(session_id, index)
        if self.journal is not None:
            self.journal.open(session_id, qos)

    def ingest(self, session_id: str, chunk: np.ndarray) -> list:
        """Ship one chunk to the owning worker; return resolved events.

        Pipelined: the call does not wait for the worker to process
        the chunk — it returns the session's events that have already
        come back.  With a bounded inbox the overflow policy applies
        first (see the module docs); a dropped chunk is counted in
        :meth:`dropped_chunks` and never reaches the worker.
        """
        index = self._owner_or_raise(session_id)
        self._drain(block=False)
        self._raise_parked(session_id)  # e.g. this session's previous chunk
        if session_id not in self._owner:  # evicted by a just-drained notice
            raise KeyError(f"no open session {session_id!r}")
        inbox = self._inboxes.get(session_id)
        if inbox is not None:
            accepted = inbox.put(
                len(chunk), wait=lambda: self._drain_one(index, block=True)
            )
            if session_id not in self._owner:  # evicted while blocked
                raise KeyError(f"no open session {session_id!r}")
            if not accepted:
                return self._take_events(session_id)
        arr = np.asarray(chunk, dtype=float)
        if self.journal is None:
            self._send(index, ("ingest", session_id, arr))
        else:
            # Write-ahead: the chunk is durable before it is shipped,
            # so the caller's acknowledged prefix survives any crash
            # from here on.  A crash past this point is therefore
            # marked chunk_journaled — the supervisor must not re-send
            # the chunk (recovery replays it; re-sending would
            # double-apply), it retries the call as a drain.
            self.journal.log_chunk(session_id, arr)
            try:
                self._send(index, ("ingest", session_id, arr))
                if self.journal.wants_snapshot(session_id):
                    self._journal_snapshot(session_id)
            except WorkerCrashError as crash:
                crash.session_id = session_id
                crash.chunk_journaled = True
                raise
        return self._take_events(session_id)

    def poll(self, session_id: str) -> list:
        """Drain the session's queued events without ingesting samples.

        Synchronizes with the owning worker, so events resolved by a
        flush another session triggered are fetched too (the parent
        otherwise only sees a session's events on its own responses).
        """
        index = self._owner_or_raise(session_id)
        value = self._request(index, ("poll", session_id))
        return self._take_events(session_id, value)

    def close_session(self, session_id: str) -> list:
        """End a session; wait for and return the rest of its events."""
        index = self._owner_or_raise(session_id)
        value = self._request(index, ("close", session_id))
        events = self._events.pop(session_id, []) + value
        # The close may have crossed an in-flight eviction notice for
        # this very session; its final events are the authoritative tail.
        events += self._evicted.pop(session_id, [])
        self._unregister(session_id)
        if self.journal is not None:  # an ended session needs no recovery
            self.journal.forget(session_id)
        return events

    def export_session(self, session_id: str) -> SessionExport:
        """Capture a live session for migration; it stays open here.

        Synchronizes with the owning worker first (every accepted
        chunk is processed before the snapshot), then merges the
        parent-buffered events into the export so nothing is left
        behind.
        """
        index = self._owner_or_raise(session_id)
        export = self._request(index, ("export", session_id))
        export = self._merge_buffer(session_id, export)
        if self.journal is not None:
            # The capture doubles as a snapshot; its drained events go
            # to the caller, so they count as delivered against it.
            self.journal.snapshot(session_id, export)
            self.journal.delivered(session_id, len(export.events))
        return export

    def release_session(self, session_id: str) -> SessionExport:
        """Capture a live session for migration and remove it here."""
        index = self._owner_or_raise(session_id)
        export = self._request(index, ("release", session_id))
        export = self._merge_buffer(session_id, export)
        self._unregister(session_id)
        if self.journal is not None:  # the session now lives elsewhere
            self.journal.forget(session_id)
        return export

    def import_session(self, export: SessionExport, session_id: str | None = None) -> str:
        """Resume an exported session on its policy-placed worker."""
        session_id = export.session_id if session_id is None else session_id
        if session_id in self._owner:
            raise ValueError(f"session {session_id!r} is already open")
        index = self._place(session_id)
        self._request(index, ("import", session_id, export))
        self._register(session_id, index)
        if self.journal is not None:
            self.journal.snapshot(session_id, export)
        return session_id

    def migrate_session(self, session_id: str, worker: int) -> None:
        """Move a live session to another worker, mid-stream.

        ``release`` on the current owner + ``import`` on the target:
        the session's event sequence is unaffected (the chaos suite
        pins this), only its placement changes.
        :class:`repro.serving.autoscale.AutoBalancer` is this call
        driven by the load statistics.
        """
        index = self._owner_or_raise(session_id)
        target = self._validate_worker(worker)
        if target == index:
            return
        self._move(session_id, index, target)

    def _move(self, session_id: str, index: int, target: int) -> None:
        """Live-migrate one session between two workers (release +
        import), preserving buffered events and the shedding audit.
        Every move — explicit, rebalance, or retirement drain — counts
        in :attr:`n_migrations` / ``stats()['migrations']``."""
        export = self._request(index, ("release", session_id))
        export = self._merge_buffer(session_id, export)
        old_inbox = self._inboxes.get(session_id)
        self._unregister(session_id)
        self._request(target, ("import", session_id, export))
        self._register(session_id, target)
        if self.journal is not None:
            # The ownership move carries the journal: the capture is
            # the new snapshot, so recovery replays onto the new owner.
            self.journal.snapshot(session_id, export)
        if old_inbox is not None and session_id in self._inboxes:
            # The full backpressure audit survives rebalancing.
            self._inboxes[session_id].carry_audit(old_inbox)
        self.n_migrations += 1

    # -- elastic pool ----------------------------------------------------

    def add_worker(self) -> int:
        """Grow the pool by one worker process; return its index.

        The new worker starts empty — existing sessions stay where
        they are (a rebalancer migrates load onto it; ``least-loaded``
        placement favors it for new sessions immediately).
        """
        if self._closed:
            raise RuntimeError("gateway is shut down")
        self._spawn_worker()
        self.workers += 1
        self.n_scale_events += 1
        return self.workers - 1

    def retire_worker(self, worker: int) -> int:
        """Shrink the pool: drain one worker's sessions and reap it.

        Every session the worker owns is live-migrated onto the
        remaining workers via the configured placement policy — the
        same lossless ``release`` + ``import`` path as
        :meth:`migrate_session`, so per-session event sequences are
        unaffected and backlogged (even blocked-inbox) sessions drain
        completely before the process exits.  Returns the number of
        sessions migrated.  Worker indices above the retired one shift
        down by one.
        """
        if self._closed:
            raise RuntimeError("gateway is shut down")
        index = self._validate_worker(worker)
        if self.workers == 1:
            raise ValueError("cannot retire the last worker")
        moved = 0
        for session_id in self.sessions_on(index):
            # An eviction notice handled mid-drain may close a session
            # under us; re-check ownership before each move.
            if self._owner.get(session_id) != index:
                continue
            try:
                self._move(session_id, index, self._place(session_id, exclude=index))
            except KeyError:
                if session_id in self._owner:
                    raise
                continue  # evicted between the check and the release
            moved += 1
        self._stop_worker(index)
        del self._conns[index], self._procs[index]
        self.workers -= 1
        self._owner = {
            sid: owner - 1 if owner > index else owner
            for sid, owner in self._owner.items()
        }
        self.n_scale_events += 1
        return moved

    def _stop_worker(self, index: int) -> None:
        """Synchronously stop one worker process and close its pipe."""
        conn, proc = self._conns[index], self._procs[index]
        try:
            conn.send(("stop", None))
            while True:
                response = conn.recv()
                if response[0] == "stop":
                    break
                self._handle(response)
        except (BrokenPipeError, EOFError, OSError):
            pass
        if isinstance(conn, _InlineWorker):
            # Drop the retired gateway from the shared group so flush
            # routing only scans live members.
            self._group._unregister(conn._state.gateway)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - defensive reap
            proc.terminate()
            proc.join(timeout=1.0)

    def flush(self) -> int:
        """Force one batched classifier pass on every worker."""
        return sum(self._request(i, ("flush", None)) for i in range(self.workers))

    def dropped_chunks(self, session_id: str | None = None) -> int:
        """Chunks rejected by the ``"drop"`` overflow policy (audited
        loss — see the module docs), for one session or fleet-wide."""
        if session_id is not None:
            inbox = self._inboxes.get(session_id)
            return 0 if inbox is None else inbox.n_dropped
        return sum(inbox.n_dropped for inbox in self._inboxes.values())

    def take_evicted(self) -> dict[str, list]:
        """Final event sequences of evicted sessions; clears the store."""
        self._drain(block=False)
        evicted = self._evicted
        self._evicted = {}
        return evicted

    def take_alerts(self) -> list:
        """Closed ``(session_id, Episode)`` analytics alerts, fleet-wide;
        clears the queue."""
        self._drain(block=False)
        alerts = self._alerts
        self._alerts = []
        return alerts

    def take_summaries(self) -> dict[str, dict]:
        """Final analytics summaries of closed/evicted sessions,
        fleet-wide; clears the store."""
        self._drain(block=False)
        summaries = self._summaries
        self._summaries = {}
        return summaries

    def stats(self) -> dict:
        """Aggregate + per-worker gateway statistics (synchronizes).

        The per-worker entries (``n_sessions`` open sessions,
        ``n_queued`` beats pending in the worker's cross-session batch
        — its queue depth — plus flush/classification/eviction
        counters) are the inputs the autoscaling policies read; the
        top level adds their sums, the current ``workers`` count and
        the parent-side ``migrations`` / ``scale_events`` counters.
        The schema is pinned by a regression test so policy inputs
        cannot silently drift.

        Semantics are *current pool*: a retired worker's flush /
        classification counters leave with it (its sessions — and
        their events — migrate to the survivors, but work it already
        did is not re-attributed).  The totals are therefore always
        exactly the sum over the live ``per_worker`` entries.
        """
        per_worker = [self._request(i, ("stats", None)) for i in range(self.workers)]
        totals = {
            key: sum(stats[key] for stats in per_worker)
            for key in ("n_sessions", "n_queued", "n_flushes", "n_classified", "n_evicted")
        }
        totals["analytics"] = merge_rollups(
            stats.get("analytics") for stats in per_worker
        )
        totals["per_worker"] = per_worker
        totals["workers"] = self.workers
        totals["migrations"] = self.n_migrations
        totals["scale_events"] = self.n_scale_events
        return totals

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        """Stop and reap the worker pool (open sessions are discarded).

        Idempotent and safe on a half-torn-down instance: a pipe that
        is already closed (or breaks mid-handshake) is skipped, so the
        best-effort ``__del__`` reap cannot raise during interpreter
        shutdown.
        """
        if getattr(self, "_closed", True):
            # Also covers an instance whose __init__ raised before any
            # worker was spawned (the attribute is set last).
            return
        self._closed = True
        for index in range(len(self._conns)):
            self._stop_worker(index)

    def __enter__(self) -> "ShardedGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - best-effort reap
        try:
            self.shutdown()
        except BaseException:
            # Interpreter shutdown may have closed pipes or torn down
            # modules under us; a destructor must never propagate.
            pass

    # -- plumbing --------------------------------------------------------

    def _validate_worker(self, worker: int) -> int:
        if not 0 <= worker < self.workers:
            raise ValueError(
                f"worker must be in [0, {self.workers}), got {worker}"
            )
        return worker

    def _raise_parked(self, session_id: str) -> None:
        error = self._errors.pop(session_id, None)
        if error is not None:
            raise error  # parked by _handle from a pipelined response

    def _owner_or_raise(self, session_id: str) -> int:
        self._raise_parked(session_id)
        try:
            return self._owner[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    def _merge_buffer(self, session_id: str, export: SessionExport) -> SessionExport:
        """Fold parent-buffered events into an export (they precede the
        worker-side undrained events in per-session order)."""
        buffered = self._events.pop(session_id, [])
        if not buffered:
            return export
        return SessionExport(
            session_id=export.session_id,
            snapshot=export.snapshot,
            events=buffered + list(export.events),
            max_latency_ticks=export.max_latency_ticks,
            evict_after_ticks=export.evict_after_ticks,
            analytics=export.analytics,
        )

    def _register(self, session_id: str, index: int) -> None:
        self._owner[session_id] = index
        if self.inbox_capacity is not None:
            self._inboxes[session_id] = SessionInbox(
                self.inbox_capacity, self.inbox_policy
            )

    def _unregister(self, session_id: str) -> None:
        self._owner.pop(session_id, None)
        self._events.pop(session_id, None)
        self._errors.pop(session_id, None)  # must not leak to a reused id
        inbox = self._inboxes.pop(session_id, None)
        if inbox is not None:
            inbox.close()  # a producer blocked on it must not wait forever

    def _send(self, index: int, request: tuple) -> None:
        """Ship one command; a broken pipe means the worker died."""
        try:
            self._conns[index].send(request)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerCrashError(index, exc) from exc

    def _recv(self, index: int) -> tuple:
        """Read one response; EOF / a broken pipe means the worker died.

        A killed worker's already-sent responses stay readable until
        the pipe drains, so events it resolved before dying are still
        delivered — the crash surfaces only once the buffer is empty.
        """
        try:
            return self._conns[index].recv()
        except (EOFError, OSError) as exc:
            raise WorkerCrashError(index, exc) from exc

    def _poll_conn(self, index: int) -> bool:
        try:
            return self._conns[index].poll()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise WorkerCrashError(index, exc) from exc

    def _take_events(self, session_id: str, extra: list | None = None) -> list:
        """Pop a session's parent-buffered events (plus ``extra``) for
        the caller, counting them as delivered in the journal — crash
        recovery must re-deliver everything *except* this prefix."""
        events = self._events.pop(session_id, [])
        if extra:
            events = events + list(extra)
        if events and self.journal is not None and session_id in self._owner:
            self.journal.delivered(session_id, len(events))
        return events

    def _journal_snapshot(self, session_id: str) -> None:
        """Refresh one session's journal snapshot, truncating its chunk
        log (the cadence bound on replay length).  The synchronized
        export drains pending events; they return to the parent buffer
        — still owed to the caller, and covered by the fresh snapshot
        (whose delivered count restarts at zero with them undelivered).
        """
        index = self._owner.get(session_id)
        if index is None:  # pragma: no cover - evicted under the cadence
            return
        try:
            export = self._request(index, ("export", session_id))
        except KeyError:
            if session_id in self._owner:
                raise
            return  # evicted by an interleaved response mid-snapshot
        export = self._merge_buffer(session_id, export)
        self.journal.snapshot(session_id, export)
        if export.events:
            self._events[session_id] = list(export.events)

    def _request(self, index: int, request: tuple):
        """Send one synchronous command; handle interleaved pipelined
        responses until this command's (FIFO-ordered) answer arrives."""
        op = request[0]
        self._send(index, request)
        while True:
            response = self._recv(index)
            if response[0] == op:
                self._note_evictions(response[3])
                self._note_aux(response[4])
                status, value = response[2]
                if status == "err":
                    raise value
                return value
            self._handle(response)

    def _drain(self, block: bool) -> None:
        for index in range(self.workers):
            self._drain_one(index, block=block)

    def _drain_one(self, index: int, block: bool) -> bool:
        """Process pending responses from one worker.

        Non-blocking: handle everything already in the pipe.  Blocking:
        wait for (at least) one response — the backpressure wait hook,
        guaranteed to make progress because the worker consumes its
        command queue in order.
        """
        handled = False
        if block and not self._poll_conn(index):
            self._handle(self._recv(index))
            handled = True
        while self._poll_conn(index):
            self._handle(self._recv(index))
            handled = True
        return handled

    def _handle(self, response: tuple) -> None:
        """Route one pipelined (ingest) response into the buffers.

        A worker-side ingest error (e.g. a malformed chunk) arrives
        here asynchronously, possibly while a synchronous request for
        another session is waiting — raising now would both blame the
        wrong call and desynchronize the pipe's request/response
        pairing.  It is parked instead and raised by the erroring
        session's next call (:meth:`_owner_or_raise`).
        """
        op, session_id, (status, value), evictions, aux = response
        self._note_evictions(evictions)
        self._note_aux(aux)
        if op != "ingest":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected unsolicited {op!r} response")
        inbox = self._inboxes.get(session_id)
        if inbox is not None and len(inbox):
            inbox.take()  # the worker consumed the chunk either way
        if status == "err":
            self._errors[session_id] = value
            return
        if session_id in self._owner:
            self._events.setdefault(session_id, []).extend(value)
        elif session_id in self._evicted:
            self._evicted[session_id].extend(value)

    def _note_aux(self, aux: tuple) -> None:
        """Fold one response's analytics side-channel into the parent
        buffers: alerts queue for :meth:`take_alerts` (and fire the
        parent ``on_alert`` hook), summaries merge for
        :meth:`take_summaries`."""
        alerts, summaries = aux
        if alerts:
            self._alerts.extend(alerts)
            self.n_alerts += len(alerts)
            if self.on_alert is not None:
                for session_id, episode in alerts:
                    self.on_alert(session_id, episode)
        if summaries:
            self._summaries.update(summaries)

    def _note_evictions(self, evictions: list) -> None:
        for session_id, events in evictions:
            if session_id not in self._owner:
                continue
            final = self._events.pop(session_id, []) + list(events)
            self._unregister(session_id)
            if self.journal is not None:  # an evicted session is final
                self.journal.forget(session_id)
            self._evicted[session_id] = final
            if self.on_evict is not None:
                self.on_evict(session_id, final)
