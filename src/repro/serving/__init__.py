"""Serving layer: sharded batch execution + live session gateway.

The per-record APIs (:meth:`repro.platform.node_sim.NodeSimulator.process_record`,
the :mod:`repro.dsp.streaming` classes) model one WBSN node.  A back
end — the roadmap's heavy-traffic scenario — serves *many* nodes at
once; this package is that workload's engine, in two shapes:

* **Batch** (:mod:`repro.serving.engine`): :class:`ServingEngine`
  shards complete records/streams across pluggable executors
  (:mod:`repro.serving.executors`) with one batched classifier pass
  per shard; :func:`simulate_records` / :func:`classify_streams` are
  its entry points, :class:`FleetTrace` / :class:`StreamResult`
  (:mod:`repro.serving.results`) its outputs.
* **Live** (:mod:`repro.serving.gateway`): :class:`StreamGateway`
  multiplexes many concurrently open streaming sessions —
  ``open_session`` / ``ingest`` / ``close_session`` — into
  size- and latency-bounded cross-session classifier batches, with
  per-session results bit-exact with a standalone
  :class:`~repro.dsp.streaming.StreamingNode`, per-session QoS
  (latency budgets, idle eviction) and session migration.
* **Sharded live** (:mod:`repro.serving.sharded`):
  :class:`ShardedGateway` runs one ``StreamGateway`` per worker
  process, places sessions across the pool by a pluggable policy
  (:data:`PLACEMENTS`), migrates them live, grows/shrinks the pool
  elastically (``add_worker`` / ``retire_worker``), and applies
  bounded-inbox backpressure (:class:`SessionInbox`) — same session
  surface, same per-session bit-exactness, for every worker count.
* **Autoscaling** (:mod:`repro.serving.autoscale`):
  :class:`AutoBalancer` evens per-worker load by live migration under
  a hysteresis band; :class:`Autoscaler` sizes the pool toward a
  target load per worker between ``min_workers`` and ``max_workers``.
  Both read the load from :meth:`ShardedGateway.stats` and never
  perturb per-session event sequences.
* **Off-box** (:mod:`repro.serving.net`): a zero-copy length-prefixed
  wire protocol, an asyncio :class:`GatewayServer` fronting any of the
  gateways above, and a pipelined :class:`GatewayClient` with
  retry/backoff and bit-exact reconnect-resume — the same session
  surface over TCP, so fleet drivers run unmodified off-host.
* **Durability** (:mod:`repro.serving.durability`): a write-ahead
  :class:`SessionJournal` (periodic ``SessionExport`` snapshots + an
  append-only chunk log per session, over pluggable
  :class:`JournalStore` backends — memory, file-per-session, sqlite)
  and a :class:`SupervisedGateway` that detects worker death, respawns
  the worker and replays snapshot+log to recover every lost session
  bit-exactly — chunk-invariance as the recovery contract.
* **Analytics** (:mod:`repro.serving.analytics`): composable O(1)
  per-beat streaming operators over the gateway's beat-event bus —
  incremental RR statistics (:class:`RRStats`), frequency-domain HRV
  on a cadence (:class:`HRVSpectral`), tachy/brady episode detection
  with onset/offset hysteresis (:class:`RateEpisodes`) and flagged-run
  aggregation (:class:`ArrhythmiaEpisodes`) — folded once per gateway
  flush into per-session :class:`AnalyticsPipeline` state that rides
  :class:`SessionExport` bit-exactly and rolls up through every tier's
  ``stats()`` (:func:`merge_rollups`).
* **Federation** (:mod:`repro.serving.federation`):
  :class:`FederatedGateway` routes sessions across N gateway hosts —
  cross-host placement (:data:`PLACEMENTS`), wire-level live migration
  (``MIGRATE``), lossless ``retire_host`` drains, fleet-wide
  ``stats()`` rollup, and the across-host level of the two-tier
  :class:`AutoBalancer` hierarchy; :func:`spawn_host` launches local
  backend hosts as separate processes for true multi-core scale-out.

Both in-process shapes accept plain lists/arrays, so callers can queue
above them without this package taking a position on the transport;
the :mod:`~repro.serving.net` subpackage is that transport when the
producer is on another host.
"""

from repro.serving.analytics import (
    AnalyticsPipeline,
    ArrhythmiaEpisodes,
    Episode,
    HRVSpectral,
    RateEpisodes,
    RRStats,
    default_pipeline,
    empty_rollup,
    merge_rollups,
)
from repro.serving.autoscale import (
    AutoBalancer,
    Autoscaler,
    serve_autoscaled,
    worker_loads,
)
from repro.serving.engine import (
    EXECUTORS,
    ServingEngine,
    classify_streams,
    simulate_records,
)
from repro.serving.durability import (
    FileJournalStore,
    JournalStore,
    MemoryJournalStore,
    SessionJournal,
    SqliteJournalStore,
    SupervisedGateway,
    open_journal,
    recover_sessions,
)
from repro.serving.executors import INBOX_POLICIES, PLACEMENTS
from repro.serving.federation import FederatedGateway, HostProcess, spawn_host
from repro.serving.gateway import (
    BeatBatch,
    GatewayGroup,
    SessionExport,
    StreamGateway,
    serve_round_robin,
)
from repro.serving.loadgen import (
    LoadgenReport,
    find_max_sustained,
    replay_fleet,
    synthesize_fleet,
)
from repro.serving.net import GatewayClient, GatewayServer, serve_in_thread
from repro.serving.results import FleetTrace, StreamResult
from repro.serving.sharded import SessionInbox, ShardedGateway, WorkerCrashError

__all__ = [
    "EXECUTORS",
    "INBOX_POLICIES",
    "PLACEMENTS",
    "AnalyticsPipeline",
    "ArrhythmiaEpisodes",
    "AutoBalancer",
    "Autoscaler",
    "BeatBatch",
    "Episode",
    "FederatedGateway",
    "FileJournalStore",
    "FleetTrace",
    "GatewayClient",
    "HostProcess",
    "GatewayGroup",
    "GatewayServer",
    "HRVSpectral",
    "JournalStore",
    "LoadgenReport",
    "MemoryJournalStore",
    "RRStats",
    "RateEpisodes",
    "ServingEngine",
    "SessionExport",
    "SessionInbox",
    "SessionJournal",
    "ShardedGateway",
    "SqliteJournalStore",
    "StreamGateway",
    "StreamResult",
    "SupervisedGateway",
    "WorkerCrashError",
    "classify_streams",
    "default_pipeline",
    "empty_rollup",
    "find_max_sustained",
    "merge_rollups",
    "open_journal",
    "recover_sessions",
    "replay_fleet",
    "serve_autoscaled",
    "serve_in_thread",
    "serve_round_robin",
    "simulate_records",
    "spawn_host",
    "synthesize_fleet",
    "worker_loads",
]
