"""Serving layer: sharded batch execution + live session gateway.

The per-record APIs (:meth:`repro.platform.node_sim.NodeSimulator.process_record`,
the :mod:`repro.dsp.streaming` classes) model one WBSN node.  A back
end — the roadmap's heavy-traffic scenario — serves *many* nodes at
once; this package is that workload's engine, in two shapes:

* **Batch** (:mod:`repro.serving.engine`): :class:`ServingEngine`
  shards complete records/streams across pluggable executors
  (:mod:`repro.serving.executors`) with one batched classifier pass
  per shard; :func:`simulate_records` / :func:`classify_streams` are
  its entry points, :class:`FleetTrace` / :class:`StreamResult`
  (:mod:`repro.serving.results`) its outputs.
* **Live** (:mod:`repro.serving.gateway`): :class:`StreamGateway`
  multiplexes many concurrently open streaming sessions —
  ``open_session`` / ``ingest`` / ``close_session`` — into
  size- and latency-bounded cross-session classifier batches, with
  per-session results bit-exact with a standalone
  :class:`~repro.dsp.streaming.StreamingNode`, per-session QoS
  (latency budgets, idle eviction) and session migration.
* **Sharded live** (:mod:`repro.serving.sharded`):
  :class:`ShardedGateway` runs one ``StreamGateway`` per worker
  process, hash-assigns sessions across the pool, migrates them live,
  and applies bounded-inbox backpressure (:class:`SessionInbox`) —
  same session surface, same per-session bit-exactness, for every
  worker count.

Both shapes accept plain lists/arrays, so callers can queue above them
without this package taking a position on the transport.
"""

from repro.serving.engine import (
    EXECUTORS,
    ServingEngine,
    classify_streams,
    simulate_records,
)
from repro.serving.executors import INBOX_POLICIES
from repro.serving.gateway import (
    BeatBatch,
    SessionExport,
    StreamGateway,
    serve_round_robin,
)
from repro.serving.results import FleetTrace, StreamResult
from repro.serving.sharded import SessionInbox, ShardedGateway

__all__ = [
    "EXECUTORS",
    "INBOX_POLICIES",
    "BeatBatch",
    "FleetTrace",
    "ServingEngine",
    "SessionExport",
    "SessionInbox",
    "ShardedGateway",
    "StreamGateway",
    "StreamResult",
    "classify_streams",
    "serve_round_robin",
    "simulate_records",
]
