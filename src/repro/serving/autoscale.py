"""Load-aware autoscaling for the sharded gateway: rebalance + elastic pool.

:class:`~repro.serving.sharded.ShardedGateway` provides the
*primitives* — placement policies at ``open_session``
(:data:`~repro.serving.executors.PLACEMENTS`), live
``migrate_session``, and an elastic pool (``add_worker`` /
``retire_worker``).  This module provides the *policies* that drive
them from the load statistics ``stats()`` already exposes:

* :class:`AutoBalancer` — evens out per-worker load (open sessions +
  queued beats) by migrating sessions from the busiest worker to the
  idlest one.  It acts under a **hysteresis band** so it never
  thrashes: migrations fire only when the busiest-minus-idlest load
  spread exceeds ``imbalance_threshold`` (moving one session changes
  the spread by two, so any threshold >= 1 makes the band absorbing —
  once inside, no migration can leave it, which is why the fixed point
  is ping-pong-free), at most ``max_migrations_per_tick`` per tick,
  with ``cooldown_ticks`` quiet ticks after any migrating tick.
  Under a static load the balancer therefore *converges*: total
  migrations are bounded by the initial imbalance, and once balanced
  it goes permanently quiet (the property suite pins this).
* :class:`Autoscaler` — sizes the pool itself.  It targets
  ``target_depth`` load per worker: when the fleet-wide load implies
  more workers than the pool has (and ``max_workers`` allows), it
  calls ``add_worker``; when the load implies fewer (respecting
  ``min_workers``), it retires the idlest worker — whose sessions
  drain losslessly onto the survivors.  Scale events also respect a
  ``cooldown_ticks`` hysteresis, and scale one worker per tick, so a
  transient spike cannot slosh the pool.

Both policies are *pull*-driven: call :meth:`~AutoBalancer.tick`
periodically (e.g. once per ingest round, or from a timer).  Every
tick synchronizes with the workers through ``stats()``; nothing runs
in the background, so per-session event sequences stay **bit-exact
with a standalone** :class:`~repro.dsp.streaming.StreamingNode`
through any sequence of scale and rebalance events — migrations and
drains ride the same ``SessionExport`` path the chaos suite pins.

:func:`serve_autoscaled` is the canonical driver: the round-robin
replay of :func:`~repro.serving.gateway.serve_round_robin` with the
policies ticked between rounds (the CLI's ``repro serve --autoscale``,
the fleet example and the skewed-load benchmark all use it).
"""

from __future__ import annotations

import math

from repro.serving.executors import validate_at_least
from repro.serving.gateway import serve_round_robin

__all__ = ["AutoBalancer", "Autoscaler", "serve_autoscaled", "worker_loads"]


def worker_loads(stats: dict) -> list[int]:
    """Per-member load from a gateway ``stats()`` snapshot.

    Load is **open sessions + queued beats** (queue depth): sessions
    measure steady-state work (every open session's front end runs on
    its worker), queued beats measure the classification backlog a
    slow worker is accumulating right now.

    Reads ``per_host`` when present (a
    :class:`~repro.serving.federation.FederatedGateway` fleet rollup —
    each entry is itself a host's ``stats()`` with the summed
    counters), else ``per_worker`` (one ``ShardedGateway``) — the same
    formula at both levels of the two-tier balancing hierarchy.
    """
    members = stats["per_host"] if "per_host" in stats else stats["per_worker"]
    return [m["n_sessions"] + m["n_queued"] for m in members]


class AutoBalancer:
    """Migrate sessions off hot workers under a hysteresis band.

    Parameters
    ----------
    gateway:
        The :class:`~repro.serving.sharded.ShardedGateway` to balance —
        or any gateway exposing the same surface (``workers``,
        ``stats()``, ``sessions_on``, ``migrate_session``):
        a :class:`~repro.serving.federation.FederatedGateway` plugs in
        unchanged, making this the **across-host** level of the
        two-tier hierarchy (each host's server ticks its own
        within-host balancer via the ``tick_hook`` seam).
    imbalance_threshold:
        The hysteresis band (>= 1): no migration fires while
        ``max(load) - min(load) <= imbalance_threshold``.  One
        migration moves the spread by two, so the band is absorbing
        and the balancer cannot ping-pong a session between workers.
    cooldown_ticks:
        Quiet ticks after a tick that migrated (>= 0); a second layer
        of hysteresis so bursts of rebalancing are spaced out.
    max_migrations_per_tick:
        Bound on migrations per tick (>= 1) — rebalancing is spread
        over ticks instead of stalling one tick on a mass migration.

    Attributes
    ----------
    n_ticks / n_migrations:
        Lifetime counters (`n_migrations` counts this balancer's own
        moves; the gateway's ``stats()['migrations']`` counts all).
    """

    def __init__(
        self,
        gateway,
        *,
        imbalance_threshold: int = 2,
        cooldown_ticks: int = 1,
        max_migrations_per_tick: int = 4,
    ):
        validate_at_least("imbalance_threshold", imbalance_threshold)
        validate_at_least("cooldown_ticks", cooldown_ticks, minimum=0)
        validate_at_least("max_migrations_per_tick", max_migrations_per_tick)
        self.gateway = gateway
        self.imbalance_threshold = int(imbalance_threshold)
        self.cooldown_ticks = int(cooldown_ticks)
        self.max_migrations_per_tick = int(max_migrations_per_tick)
        self.n_ticks = 0
        self.n_migrations = 0
        self._cooldown = 0

    @property
    def cooling(self) -> bool:
        """Whether the next :meth:`tick` will be a cooldown no-op."""
        return self._cooldown > 0

    def tick(self, stats: dict | None = None) -> list[tuple[str, int, int]]:
        """Run one balancing pass; return the migrations performed.

        Each entry is ``(session_id, source_worker, target_worker)``.
        Returns ``[]`` when cooling down, when the pool has one worker,
        or when the load spread is inside the hysteresis band.  Pass a
        just-fetched ``gateway.stats()`` snapshot to reuse one
        synchronization across policies (how :func:`serve_autoscaled`
        avoids a second per-worker round-trip per round); with ``None``
        the tick fetches its own.
        """
        self.n_ticks += 1
        if self._cooldown > 0:
            self._cooldown -= 1
            return []
        if self.gateway.workers < 2:
            return []
        loads = worker_loads(self.gateway.stats() if stats is None else stats)
        moved: list[tuple[str, int, int]] = []
        while len(moved) < self.max_migrations_per_tick:
            busiest = max(range(len(loads)), key=lambda i: (loads[i], -i))
            idlest = min(range(len(loads)), key=lambda i: (loads[i], i))
            if loads[busiest] - loads[idlest] <= self.imbalance_threshold:
                break
            candidates = self.gateway.sessions_on(busiest)
            if not candidates:
                break  # the backlog is queued beats, not movable sessions
            session_id = candidates[-1]  # most recently placed leaves first
            try:
                self.gateway.migrate_session(session_id, idlest)
            except KeyError:
                # Evicted under us: an undrained eviction notice was
                # processed between the load snapshot and the move
                # (same race retire_worker guards).  The session is
                # gone from the busy worker either way.
                loads[busiest] -= 1
                continue
            # Estimate between stats() syncs: the session counts as one
            # unit of load (its queued beats flush on release anyway).
            loads[busiest] -= 1
            loads[idlest] += 1
            moved.append((session_id, busiest, idlest))
        if moved:
            self.n_migrations += len(moved)
            self._cooldown = self.cooldown_ticks
        return moved


class Autoscaler:
    """Grow/shrink a sharded pool toward a target load per worker.

    Parameters
    ----------
    gateway:
        The :class:`~repro.serving.sharded.ShardedGateway` to size.
    target_depth:
        Desired load (sessions + queued beats, see
        :func:`worker_loads`) per worker (>= 1).  The desired pool
        size is ``ceil(total_load / target_depth)``, clamped to
        ``[min_workers, max_workers]``.
    min_workers / max_workers:
        Pool size bounds (1 <= min <= max).
    cooldown_ticks:
        Quiet ticks after any scale event (>= 0) — the hysteresis that
        keeps a load level near a sizing boundary from flapping the
        pool.

    Attributes
    ----------
    n_ticks / n_scale_ups / n_scale_downs:
        Lifetime counters.
    """

    def __init__(
        self,
        gateway,
        *,
        target_depth: int = 4,
        min_workers: int = 1,
        max_workers: int = 4,
        cooldown_ticks: int = 2,
    ):
        validate_at_least("target_depth", target_depth)
        validate_at_least("min_workers", min_workers)
        validate_at_least("max_workers", max_workers, minimum=min_workers)
        validate_at_least("cooldown_ticks", cooldown_ticks, minimum=0)
        self.gateway = gateway
        self.target_depth = int(target_depth)
        self.min_workers = int(min_workers)
        self.max_workers = int(max_workers)
        self.cooldown_ticks = int(cooldown_ticks)
        self.n_ticks = 0
        self.n_scale_ups = 0
        self.n_scale_downs = 0
        self._cooldown = 0

    def desired_workers(self, total_load: int) -> int:
        """Pool size the policy wants for a fleet-wide load."""
        wanted = math.ceil(total_load / self.target_depth) if total_load else 0
        return max(self.min_workers, min(self.max_workers, wanted))

    @property
    def cooling(self) -> bool:
        """Whether the next :meth:`tick` will be a cooldown no-op."""
        return self._cooldown > 0

    def tick(self, stats: dict | None = None) -> list[tuple[str, int]]:
        """Run one sizing pass; return the scale events performed.

        Each entry is ``("add", new_worker_index)`` or
        ``("retire", retired_worker_index)``.  At most one worker is
        added or retired per tick (gradual scaling), followed by
        ``cooldown_ticks`` quiet ticks.  ``stats`` as in
        :meth:`AutoBalancer.tick`.
        """
        self.n_ticks += 1
        if self._cooldown > 0:
            self._cooldown -= 1
            return []
        if stats is None:
            stats = self.gateway.stats()
        loads = worker_loads(stats)
        desired = self.desired_workers(sum(loads))
        if desired > self.gateway.workers:
            index = self.gateway.add_worker()
            self.n_scale_ups += 1
            self._cooldown = self.cooldown_ticks
            return [("add", index)]
        if desired < self.gateway.workers:
            # Retire the idlest worker: fewest sessions to drain.
            index = min(
                range(len(loads)),
                key=lambda i: (stats["per_worker"][i]["n_sessions"], loads[i], i),
            )
            self.gateway.retire_worker(index)
            self.n_scale_downs += 1
            self._cooldown = self.cooldown_ticks
            return [("retire", index)]
        return []


def serve_autoscaled(
    gateway,
    streams,
    chunk: int,
    *,
    autoscaler: Autoscaler | None = None,
    balancer: AutoBalancer | None = None,
) -> dict:
    """Round-robin replay with the autoscaling policies in the loop.

    The elastic counterpart of
    :func:`~repro.serving.gateway.serve_round_robin` (and a thin
    wrapper over it): same open / round-robin ingest / close schedule,
    with the :class:`Autoscaler` and :class:`AutoBalancer` (either may
    be ``None``) ticked after every full round, so the pool resizes
    and rebalances while the fleet is live.  Returns each session's
    complete event sequence — bit-exact with a standalone
    :class:`~repro.dsp.streaming.StreamingNode` per stream, whatever
    the policies did.
    """

    def tick_policies():
        # One stats synchronization serves both policies; a scale
        # event invalidates the snapshot (worker indices shift), so
        # the balancer refetches only in that case.
        need_stats = (autoscaler is not None and not autoscaler.cooling) or (
            balancer is not None and not balancer.cooling
        )
        stats = gateway.stats() if need_stats else None
        if autoscaler is not None and autoscaler.tick(stats):
            stats = None
        if balancer is not None:
            balancer.tick(stats)

    return serve_round_robin(gateway, streams, chunk, on_round=tick_policies)
