"""Session gateway: many live streaming sessions, one batched classifier.

:class:`~repro.serving.engine.ServingEngine` serves *complete*
records/streams; a real fleet is a set of concurrently **live**
sessions, each feeding small chunks at its own pace.  This module is
that ingestion layer:

* :class:`StreamGateway` — ``open_session(id)`` / ``ingest(id, chunk)``
  / ``close_session(id)``.  Each session is a
  :class:`~repro.dsp.streaming.StreamingNode` in deferred-classify
  mode: its per-sample front end (filtering, wavelet peak detection,
  beat windowing) runs inline during ``ingest``, but instead of one
  ``predict`` call per beat the pending beats of *all* sessions queue
  in a cross-session :class:`BeatBatch`.  The gateway flushes the
  batch through **one** classifier pass per tick — when it reaches
  ``max_batch`` beats or the oldest pending beat has waited
  ``max_latency_ticks`` ingest calls — then routes the labeled
  :class:`~repro.dsp.streaming.StreamBeatEvent` objects back to their
  sessions.  That amortization (one projection + fuzzification pass
  for dozens of beats instead of one per beat) is where the batched
  classifier earns its keep under live load, exactly as it does for
  the shard-batched engine.
* :class:`BeatBatch` — the cross-session accumulator, exposed for
  callers that want to drive their own flush policy.

Every session's event sequence is **bit-exact** with running its
chunks through a standalone inline-mode ``StreamingNode`` — invariant
to chunk sizes, session interleaving order and batch-flush boundaries
(exact by construction for the integer classifier, whose rows are
independent; the float caveat of :mod:`repro.serving.engine` applies).

Sessions migrate: :meth:`StreamGateway.export_session` captures a live
session as a picklable :class:`SessionExport`
(:class:`~repro.dsp.streaming.NodeSnapshot` + undrained events) and
:meth:`StreamGateway.import_session` resumes it on another gateway —
another shard, another host — mid-stream, bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dsp.streaming import NodeSnapshot, StreamBeatEvent, StreamingNode

__all__ = ["BeatBatch", "SessionExport", "StreamGateway", "serve_round_robin"]


class BeatBatch:
    """Cross-session accumulator of beats awaiting classification.

    Entries preserve global insertion order (and therefore per-session
    extraction order, which :meth:`StreamingNode.deliver` requires).
    """

    def __init__(self) -> None:
        self._entries: list[tuple[str, object, np.ndarray]] = []
        self._oldest_tick: int | None = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def oldest_tick(self) -> int | None:
        """Tick stamp of the longest-waiting beat (``None`` when empty)."""
        return self._oldest_tick

    def add(self, session_id: str, handle: object, row: np.ndarray, tick: int) -> None:
        """Queue one beat of ``session_id`` for the next flush."""
        if self._oldest_tick is None:
            self._oldest_tick = tick
        self._entries.append((session_id, handle, row))

    def drain(self) -> list[tuple[str, object, np.ndarray]]:
        """Take every queued entry; the batch is empty afterwards."""
        entries = self._entries
        self._entries = []
        self._oldest_tick = None
        return entries


@dataclass(frozen=True)
class SessionExport:
    """Picklable capture of one live gateway session (for migration)."""

    session_id: str
    snapshot: NodeSnapshot
    events: list[StreamBeatEvent] = field(default_factory=list)


class _Session:
    """Gateway-side bookkeeping for one open session."""

    __slots__ = ("node", "events")

    def __init__(self, node: StreamingNode, events: list[StreamBeatEvent] | None = None):
        self.node = node
        self.events: list[StreamBeatEvent] = list(events or [])

    def drain(self) -> list[StreamBeatEvent]:
        events = self.events
        self.events = []
        return events


class StreamGateway:
    """Multiplex live streaming sessions into batched classifier passes.

    Parameters
    ----------
    classifier:
        Anything with ``predict(beats)``; shared by every session.
        Use the integer
        :class:`~repro.fixedpoint.convert.EmbeddedClassifier` for
        bit-exactness guarantees independent of batch boundaries.
    fs:
        Sampling frequency of every session (Hz).
    max_batch:
        Flush the cross-session batch as soon as it holds this many
        beats (>= 1).  Larger batches amortize the classifier better;
        smaller ones bound per-beat latency tighter.
    max_latency_ticks:
        Flush whenever the oldest pending beat has waited this many
        ticks (one tick = one ``ingest`` call, any session; >= 1), so
        a beat's verdict never stalls behind a quiet fleet.
    n_leads / lead / decimation / window / detector_config /
    delineation_config / overhead_bytes:
        Per-session :class:`~repro.dsp.streaming.StreamingNode`
        configuration, identical for every session.

    Notes
    -----
    ``ingest`` returns the newly finalized events *of that session*
    (a flush triggered by one session may resolve beats of others —
    those are queued and returned by their own next ``ingest`` /
    ``poll``).  ``close_session`` force-flushes so its return value
    completes the session's event sequence.
    """

    def __init__(
        self,
        classifier,
        fs: float,
        *,
        max_batch: int = 64,
        max_latency_ticks: int = 8,
        n_leads: int = 1,
        lead: int = 0,
        decimation: int = 4,
        window=None,
        detector_config=None,
        delineation_config=None,
        overhead_bytes: int = 2,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_latency_ticks < 1:
            raise ValueError(f"max_latency_ticks must be >= 1, got {max_latency_ticks}")
        self.classifier = classifier
        self.fs = fs
        self.max_batch = int(max_batch)
        self.max_latency_ticks = int(max_latency_ticks)
        self._node_kwargs = dict(
            n_leads=n_leads,
            lead=lead,
            decimation=decimation,
            window=window,
            detector_config=detector_config,
            delineation_config=delineation_config,
            overhead_bytes=overhead_bytes,
        )
        self._sessions: dict[str, _Session] = {}
        self._batch = BeatBatch()
        self._tick = 0
        self.n_flushes = 0
        self.n_classified = 0

    @property
    def n_sessions(self) -> int:
        """Currently open sessions."""
        return len(self._sessions)

    @property
    def n_queued(self) -> int:
        """Beats waiting in the cross-session batch."""
        return len(self._batch)

    def session_ids(self) -> list[str]:
        """Open session ids, in opening order."""
        return list(self._sessions)

    def open_session(self, session_id: str) -> None:
        """Start a new live session."""
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        node = StreamingNode(
            self.classifier, self.fs, defer_classification=True, **self._node_kwargs
        )
        self._sessions[session_id] = _Session(node)

    def ingest(self, session_id: str, chunk: np.ndarray) -> list[StreamBeatEvent]:
        """Feed one chunk of raw samples; return the session's new events.

        Advances the gateway clock by one tick and flushes the
        cross-session batch if it is full or its oldest beat has hit
        the latency bound.  The returned events are exactly the ones a
        standalone ``StreamingNode`` would have emitted by this point
        (possibly later in stream time, never different in content or
        order).
        """
        session = self._get(session_id)
        session.events.extend(session.node.push(chunk))
        self._collect(session_id, session.node)
        self._tick += 1
        oldest = self._batch.oldest_tick
        if len(self._batch) >= self.max_batch or (
            oldest is not None and self._tick - oldest >= self.max_latency_ticks
        ):
            self.flush_batch()
        return session.drain()

    def poll(self, session_id: str) -> list[StreamBeatEvent]:
        """Drain the session's queued events without ingesting samples."""
        return self._get(session_id).drain()

    def close_session(self, session_id: str) -> list[StreamBeatEvent]:
        """End a session; return the remainder of its event sequence.

        Flushes the session's front end, force-classifies everything
        pending fleet-wide (one last batched pass), finalizes the
        session's delineator with the stream-end clamping of the batch
        path, and removes the session.
        """
        session = self._get(session_id)
        session.events.extend(session.node.finish_input())
        self._collect(session_id, session.node)
        self.flush_batch()
        session.events.extend(session.node.finalize())
        del self._sessions[session_id]
        return session.drain()

    def flush_batch(self) -> int:
        """Classify every queued beat now (one batched pass); return
        how many beats were resolved.

        Called automatically by the size/latency policy; call directly
        to bound latency externally (e.g. from a timer) or before a
        quiet period.
        """
        entries = self._batch.drain()
        if not entries:
            return 0
        rows = np.vstack([row for _, _, row in entries])
        labels = np.asarray(self.classifier.predict(rows))
        # Group per session, preserving extraction order within each.
        per_session: dict[str, list[tuple[object, int]]] = {}
        for (session_id, handle, _), label in zip(entries, labels):
            per_session.setdefault(session_id, []).append((handle, label))
        for session_id, resolved in per_session.items():
            session = self._sessions.get(session_id)
            if session is None:  # closed mid-flight; nothing to route to
                continue
            session.events.extend(session.node.deliver(resolved))
        self.n_flushes += 1
        self.n_classified += len(entries)
        return len(entries)

    def export_session(self, session_id: str) -> SessionExport:
        """Capture a live session for migration; the session stays open.

        Pending classifications are flushed first so no in-flight
        handles cross the boundary; the export then carries the node
        snapshot plus the session's undrained events, which *move*
        into the export (a later ``poll`` here returns nothing — the
        migrated gateway delivers them).  Feed it to
        :meth:`import_session` on another gateway (same ``fs`` and
        session configuration) and continue ``ingest``-ing there —
        the combined event sequence is bit-exact with never migrating.
        """
        session = self._get(session_id)
        self.flush_batch()
        return SessionExport(
            session_id=session_id,
            snapshot=session.node.snapshot(),
            events=session.drain(),
        )

    def import_session(self, export: SessionExport, session_id: str | None = None) -> str:
        """Resume an exported session on this gateway; return its id."""
        session_id = export.session_id if session_id is None else session_id
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        node = StreamingNode.restore(self.classifier, export.snapshot)
        self._sessions[session_id] = _Session(node, events=export.events)
        return session_id

    def _get(self, session_id: str) -> _Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    def _collect(self, session_id: str, node: StreamingNode) -> None:
        for handle, row in node.take_pending():
            self._batch.add(session_id, handle, row, self._tick)


def serve_round_robin(
    gateway: StreamGateway, streams, chunk: int
) -> dict[str, list[StreamBeatEvent]]:
    """Replay complete streams through a gateway as interleaved live sessions.

    The canonical gateway driver (the ``repro serve`` CLI, the fleet
    example and the throughput benchmark all use it): opens one
    session per stream, ingests ``chunk``-sample slices round-robin
    until every stream is exhausted, closes the sessions, and returns
    each session's complete event sequence.

    Parameters
    ----------
    gateway:
        The gateway to serve through (its sessions must not collide
        with the given ids).
    streams:
        Mapping of session id to sample array (``(n,)`` or
        ``(n, n_leads)``), or an iterable of such pairs.
    chunk:
        Ingest slice length in samples (>= 1).

    Returns
    -------
    dict[str, list[StreamBeatEvent]]
        Per-session events, in stream order — bit-exact with replaying
        each stream through its own standalone
        :class:`~repro.dsp.streaming.StreamingNode`.
    """
    streams = dict(streams)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1 sample, got {chunk}")
    for session_id in streams:
        gateway.open_session(session_id)
    events: dict[str, list[StreamBeatEvent]] = {s: [] for s in streams}
    offsets = dict.fromkeys(streams, 0)
    live = True
    while live:
        live = False
        for session_id, x in streams.items():
            i = offsets[session_id]
            if i >= len(x):
                continue
            events[session_id].extend(gateway.ingest(session_id, x[i : i + chunk]))
            offsets[session_id] = i + chunk
            live = True
    for session_id in streams:
        events[session_id].extend(gateway.close_session(session_id))
    return events
