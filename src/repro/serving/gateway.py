"""Session gateway: many live streaming sessions, one batched classifier.

:class:`~repro.serving.engine.ServingEngine` serves *complete*
records/streams; a real fleet is a set of concurrently **live**
sessions, each feeding small chunks at its own pace.  This module is
that ingestion layer:

* :class:`StreamGateway` — ``open_session(id)`` / ``ingest(id, chunk)``
  / ``close_session(id)``.  Each session is a
  :class:`~repro.dsp.streaming.StreamingNode` in deferred-classify
  mode: its per-sample front end (filtering, wavelet peak detection,
  beat windowing) runs inline during ``ingest``, but instead of one
  ``predict`` call per beat the pending beats of *all* sessions queue
  in a cross-session :class:`BeatBatch`.  The gateway flushes the
  batch through **one** classifier pass per tick — when it reaches
  ``max_batch`` beats or the oldest pending beat has waited
  ``max_latency_ticks`` ingest calls — then routes the labeled
  :class:`~repro.dsp.streaming.StreamBeatEvent` objects back to their
  sessions.  That amortization (one projection + fuzzification pass
  for dozens of beats instead of one per beat) is where the batched
  classifier earns its keep under live load, exactly as it does for
  the shard-batched engine.
* :class:`BeatBatch` — the cross-session accumulator, exposed for
  callers that want to drive their own flush policy.

Every session's event sequence is **bit-exact** with running its
chunks through a standalone inline-mode ``StreamingNode`` — invariant
to chunk sizes, session interleaving order and batch-flush boundaries
(exact by construction for the integer classifier, whose rows are
independent; the float caveat of :mod:`repro.serving.engine` applies).

Sessions migrate: :meth:`StreamGateway.export_session` captures a live
session as a picklable :class:`SessionExport`
(:class:`~repro.dsp.streaming.NodeSnapshot` + undrained events + QoS
settings) and :meth:`StreamGateway.import_session` resumes it on
another gateway — another shard, another host — mid-stream,
bit-exactly (:meth:`StreamGateway.release_session` is the same capture
but also removes the session, for a clean hand-off).

Per-session QoS overrides the global flush policy:

* ``open_session(..., max_latency_ticks=n)`` gives one session a
  *tighter* latency budget — the cross-session batch is flushed as
  soon as any session's oldest pending beat exceeds its own budget,
  so a latency-critical session never waits for the fleet-wide bound.
* ``open_session(..., evict_after_ticks=n)`` (or the gateway-wide
  default) evicts a session that has not ingested for ``n`` gateway
  ticks: its stream is closed exactly like :meth:`close_session`
  (front-end flush, final batched classification, delineator
  finalization) and the complete remaining event sequence goes to the
  ``on_evict`` hook and :meth:`take_evicted` — well-formed, never
  silently dropped.

Sessions can attach a :mod:`repro.serving.analytics` pipeline
(``open_session(..., analytics=[...])``, or the gateway-wide
``analytics=`` default): finalized events additionally fold through
the session's streaming operators in **one batched update pass per
gateway flush**, closed episodes surface through ``on_alert`` /
:meth:`StreamGateway.take_alerts`, closed/evicted sessions leave a
final summary in :meth:`StreamGateway.take_summaries`, and pipeline
state rides :class:`SessionExport` so analytics migrate bit-exactly
mid-episode.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.dsp.streaming import NodeSnapshot, StreamBeatEvent, StreamingNode
from repro.serving.analytics import AnalyticsPipeline, empty_rollup
from repro.serving.executors import validate_at_least

__all__ = [
    "BeatBatch",
    "GatewayGroup",
    "SessionExport",
    "StreamGateway",
    "serve_round_robin",
]

#: Initial row capacity of a :class:`BeatBatch` buffer.
_BATCH_INITIAL_CAPACITY = 64


class BeatBatch:
    """Cross-session accumulator of beats awaiting classification.

    Structure-of-arrays layout: beat rows land in one preallocated
    ``(capacity, d)`` matrix (doubled when full, never per-beat), with
    parallel object arrays for the session ids and delivery handles.
    :meth:`drain` hands the row block straight to ``predict`` — no
    per-flush ``vstack``, no per-beat tuple allocation.

    Entries preserve global insertion order (and therefore per-session
    extraction order, which :meth:`StreamingNode.deliver` requires).

    The latency bookkeeping the gateway polls on **every** ingest is
    maintained incrementally on :meth:`add`/:meth:`drain`:
    ``oldest_tick``, ``session_oldest`` and ``min_deadline`` are all
    O(1) reads — there is no O(batch) or O(sessions) rescan anywhere
    on the hot path.
    """

    def __init__(self) -> None:
        self._rows: np.ndarray | None = None
        self._session_ids = np.empty(_BATCH_INITIAL_CAPACITY, dtype=object)
        self._handles = np.empty(_BATCH_INITIAL_CAPACITY, dtype=object)
        self._count = 0
        self._oldest_tick: int | None = None
        self._session_oldest: dict[str, int] = {}
        self._min_deadline: int | None = None

    def __len__(self) -> int:
        return self._count

    @property
    def oldest_tick(self) -> int | None:
        """Tick stamp of the longest-waiting beat (``None`` when empty)."""
        return self._oldest_tick

    @property
    def session_oldest(self) -> dict[str, int]:
        """Tick stamp of each session's longest-waiting beat."""
        return self._session_oldest

    @property
    def min_deadline(self) -> int | None:
        """Earliest flush deadline over queued sessions (``None`` when
        empty).  ``add`` folds each session's budget in on its *first*
        queued beat, so the gateway's per-ingest latency check is one
        integer compare instead of a walk over ``session_oldest``."""
        return self._min_deadline

    def _grow(self, d: int) -> None:
        if self._rows is None:
            capacity = max(_BATCH_INITIAL_CAPACITY, self._session_ids.shape[0])
            self._rows = np.empty((capacity, d), dtype=np.float64)
        if self._count == self._rows.shape[0]:
            capacity = 2 * self._rows.shape[0]
            rows = np.empty((capacity, self._rows.shape[1]), dtype=self._rows.dtype)
            rows[: self._count] = self._rows
            self._rows = rows
            for name in ("_session_ids", "_handles"):
                old = getattr(self, name)
                grown = np.empty(capacity, dtype=object)
                grown[: self._count] = old
                setattr(self, name, grown)

    def add(
        self,
        session_id: str,
        handle: object,
        row: np.ndarray,
        tick: int,
        budget: int | None = None,
    ) -> None:
        """Queue one beat of ``session_id`` for the next flush.

        ``budget`` is the session's effective latency budget in ticks;
        when given, the first queued beat of the session arms a flush
        deadline at ``tick + budget`` (see :attr:`min_deadline`).
        """
        row = np.asarray(row, dtype=np.float64)
        if self._rows is None or self._count == self._rows.shape[0]:
            self._grow(row.shape[-1])
        self._rows[self._count] = row
        self._session_ids[self._count] = session_id
        self._handles[self._count] = handle
        self._count += 1
        if self._oldest_tick is None:
            self._oldest_tick = tick
        if session_id not in self._session_oldest:
            self._session_oldest[session_id] = tick
            if budget is not None:
                deadline = tick + budget
                if self._min_deadline is None or deadline < self._min_deadline:
                    self._min_deadline = deadline

    def drain(self) -> tuple[list[str], list[object], np.ndarray | None]:
        """Take everything queued as ``(session_ids, handles, rows)``.

        ``rows`` is a zero-copy ``(n, d)`` view into the reused buffer
        — valid until the next :meth:`add` — or ``None`` when the
        batch is empty.  The batch is empty afterwards.
        """
        n = self._count
        if n == 0:
            return [], [], None
        session_ids = self._session_ids[:n].tolist()
        handles = self._handles[:n].tolist()
        rows = self._rows[:n]
        self._count = 0
        self._oldest_tick = None
        self._session_oldest = {}
        self._min_deadline = None
        return session_ids, handles, rows


@dataclass(frozen=True)
class SessionExport:
    """Picklable capture of one live gateway session (for migration).

    Carries the session's QoS settings too, so a migrated session keeps
    its latency budget and eviction threshold on the receiving gateway —
    and its live :class:`~repro.serving.analytics.AnalyticsPipeline`
    (``analytics``), so streaming operators resume mid-episode with
    bit-exact state.
    """

    session_id: str
    snapshot: NodeSnapshot
    events: list[StreamBeatEvent] = field(default_factory=list)
    max_latency_ticks: int | None = None
    evict_after_ticks: int | None = None
    analytics: AnalyticsPipeline | None = None


class _Session:
    """Gateway-side bookkeeping for one open session."""

    __slots__ = (
        "node", "events", "latency_budget", "evict_after", "last_active",
        "analytics", "analytics_pending",
    )

    def __init__(
        self,
        node: StreamingNode,
        events: list[StreamBeatEvent] | None = None,
        latency_budget: int | None = None,
        evict_after: int | None = None,
        last_active: int = 0,
        analytics: AnalyticsPipeline | None = None,
    ):
        self.node = node
        self.events: list[StreamBeatEvent] = list(events or [])
        self.latency_budget = latency_budget
        self.evict_after = evict_after
        self.last_active = last_active
        self.analytics = analytics
        # Finalized events the pipeline has not folded yet; drained in
        # one batched update pass per gateway flush.
        self.analytics_pending: list[StreamBeatEvent] = []

    def drain(self) -> list[StreamBeatEvent]:
        events = self.events
        self.events = []
        return events


class _Clock:
    """Shared monotonic tick counter (one ``ingest`` anywhere = one tick)."""

    __slots__ = ("tick",)

    def __init__(self) -> None:
        self.tick = 0


class GatewayGroup:
    """Shared batch + clock for a set of co-located gateways.

    Gateways constructed with ``group=`` queue their pending beats
    into **one** cross-gateway :class:`BeatBatch` on **one** shared
    tick clock, so a flush triggered by any member classifies every
    member's beats in a single ``predict`` call — the in-process
    analogue of the sharded tier's per-worker batches, collapsed.
    Labeled beats are routed back to whichever member owns the
    session; flush/classified counters accrue on the member that
    triggered the flush.

    The flush policy stays each member's own (``max_batch`` /
    latency budgets), evaluated against the shared batch — semantics
    identical to running every session on one big gateway.
    """

    def __init__(self) -> None:
        self.batch = BeatBatch()
        self.clock = _Clock()
        self.gateways: list["StreamGateway"] = []

    def _register(self, gateway: "StreamGateway") -> None:
        self.gateways.append(gateway)

    def _unregister(self, gateway: "StreamGateway") -> None:
        if gateway in self.gateways:
            self.gateways.remove(gateway)

    def find_session(self, session_id: str):
        """The owning member's session record, or ``None``."""
        for gateway in self.gateways:
            session = gateway._sessions.get(session_id)
            if session is not None:
                return session
        return None

    def flush(self) -> int:
        """Flush the shared batch through one member (one ``predict``)."""
        if not self.gateways:
            return 0
        return self.gateways[0].flush_batch()


class StreamGateway:
    """Multiplex live streaming sessions into batched classifier passes.

    Parameters
    ----------
    classifier:
        Anything with ``predict(beats)``; shared by every session.
        Use the integer
        :class:`~repro.fixedpoint.convert.EmbeddedClassifier` for
        bit-exactness guarantees independent of batch boundaries.
    fs:
        Sampling frequency of every session (Hz).
    max_batch:
        Flush the cross-session batch as soon as it holds this many
        beats (>= 1).  Larger batches amortize the classifier better;
        smaller ones bound per-beat latency tighter.
    max_latency_ticks:
        Flush whenever the oldest pending beat has waited this many
        ticks (one tick = one ``ingest`` call, any session; >= 1), so
        a beat's verdict never stalls behind a quiet fleet.  A session
        opened with its own (tighter) budget flushes by that budget
        instead.
    evict_after_ticks:
        Default idle-eviction threshold for every session (>= 1, or
        ``None`` = never evict): a session that has not ingested for
        this many gateway ticks is closed on its behalf and its final
        event sequence routed to ``on_evict`` / :meth:`take_evicted`.
        Per-session values passed to :meth:`open_session` override it.
    on_evict:
        Optional ``hook(session_id, events)`` called when a session is
        evicted, with its complete remaining event sequence (identical
        to what :meth:`close_session` would have returned).  A raising
        hook never loses events or aborts the eviction scan: the
        events are stored for :meth:`take_evicted` first, every stale
        session is still evicted, and the first hook error re-raises
        after the scan completes.
    analytics:
        Default analytics for every session: a list of
        :mod:`repro.serving.analytics` operator prototypes (deep-copied
        per session) or a zero-argument factory returning one (e.g.
        :func:`repro.serving.analytics.default_pipeline`).  ``None``
        (default) attaches nothing; per-session ``analytics=`` passed
        to :meth:`open_session` overrides it (``[]`` opts a session
        out).
    on_alert:
        Optional ``hook(session_id, episode)`` called for every
        :class:`~repro.serving.analytics.Episode` an analytics
        pipeline closes (also queued for :meth:`take_alerts`).
    n_leads / lead / decimation / window / detector_config /
    delineation_config / overhead_bytes / coalesce:
        Per-session :class:`~repro.dsp.streaming.StreamingNode`
        configuration, identical for every session (``coalesce``
        amortizes the front-end kernels when producers stream tiny
        per-frame chunks; the event sequences are unchanged).
    group:
        Optional :class:`GatewayGroup`.  Member gateways share one
        cross-gateway batch and tick clock, so one flush classifies
        every member's pending beats in a single ``predict`` call.
    journal:
        Optional :class:`repro.serving.durability.SessionJournal`.
        When set, every ingested chunk is write-ahead journaled, the
        journal snapshot refreshes on its cadence (a synchronized
        :class:`SessionExport` capture), delivered events are counted
        against it, and closed/evicted/released sessions drop their
        entries — so :func:`repro.serving.durability.recover_sessions`
        can rebuild every open session bit-exactly after a crash.

    Notes
    -----
    ``ingest`` returns the newly finalized events *of that session*
    (a flush triggered by one session may resolve beats of others —
    those are queued and returned by their own next ``ingest`` /
    ``poll``).  ``close_session`` force-flushes so its return value
    completes the session's event sequence.
    """

    def __init__(
        self,
        classifier,
        fs: float,
        *,
        max_batch: int = 64,
        max_latency_ticks: int = 8,
        evict_after_ticks: int | None = None,
        on_evict=None,
        analytics=None,
        on_alert=None,
        n_leads: int = 1,
        lead: int = 0,
        decimation: int = 4,
        window=None,
        detector_config=None,
        delineation_config=None,
        overhead_bytes: int = 2,
        coalesce: int = 1,
        group: GatewayGroup | None = None,
        journal=None,
    ):
        validate_at_least("max_batch", max_batch)
        validate_at_least("max_latency_ticks", max_latency_ticks)
        if evict_after_ticks is not None:
            validate_at_least("evict_after_ticks", evict_after_ticks)
        self.classifier = classifier
        self.fs = fs
        self.max_batch = int(max_batch)
        self.max_latency_ticks = int(max_latency_ticks)
        self.evict_after_ticks = evict_after_ticks
        self.on_evict = on_evict
        self.analytics = analytics
        self.on_alert = on_alert
        self.journal = journal
        self._node_kwargs = dict(
            n_leads=n_leads,
            lead=lead,
            decimation=decimation,
            window=window,
            detector_config=detector_config,
            delineation_config=delineation_config,
            overhead_bytes=overhead_bytes,
            coalesce=coalesce,
        )
        self._sessions: dict[str, _Session] = {}
        # Sessions with an eviction threshold, so the per-ingest idle
        # scan touches only them (zero cost for a fleet without QoS).
        self._evictable: dict[str, _Session] = {}
        self.group = group
        if group is not None:
            self._batch = group.batch
            self._clock = group.clock
            group._register(self)
        else:
            self._batch = BeatBatch()
            self._clock = _Clock()
        self._evicted: dict[str, list[StreamBeatEvent]] = {}
        # Sessions whose analytics pipeline has unfolded events; drained
        # in one batched pass per flush (see _drain_analytics).
        self._analytics_dirty: dict[str, _Session] = {}
        self._alerts: list[tuple[str, object]] = []
        self._summaries: dict[str, dict] = {}
        # Rollup accumulator for closed/evicted analytics sessions
        # (live sessions are summed on demand in analytics_rollup).
        self._an_closed = empty_rollup()
        self.n_flushes = 0
        self.n_classified = 0
        self.n_evicted = 0
        self.n_alerts = 0

    @property
    def n_sessions(self) -> int:
        """Currently open sessions."""
        return len(self._sessions)

    @property
    def n_queued(self) -> int:
        """Beats waiting in the cross-session batch."""
        return len(self._batch)

    def session_ids(self) -> list[str]:
        """Open session ids, in opening order."""
        return list(self._sessions)

    def open_session(
        self,
        session_id: str,
        *,
        max_latency_ticks: int | None = None,
        evict_after_ticks: int | None = None,
        analytics=None,
    ) -> None:
        """Start a new live session, optionally with its own QoS.

        Parameters
        ----------
        max_latency_ticks:
            Per-session latency budget (>= 1).  The batch is flushed
            as soon as this session's oldest pending beat has waited
            ``min(budget, gateway.max_latency_ticks)`` ticks — a
            latency-critical session flushes earlier than the global
            policy, without tightening anyone else's bound.
        evict_after_ticks:
            Per-session idle-eviction threshold (>= 1); overrides the
            gateway-wide ``evict_after_ticks`` default.
        analytics:
            Per-session analytics: a list of operator prototypes
            (deep-copied, so the caller's instances stay pristine) or
            a zero-argument factory.  ``None`` inherits the
            gateway-wide default; ``[]`` opts this session out.
        """
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        if max_latency_ticks is not None:
            validate_at_least("max_latency_ticks", max_latency_ticks)
        if evict_after_ticks is not None:
            validate_at_least("evict_after_ticks", evict_after_ticks)
        node = StreamingNode(
            self.classifier, self.fs, defer_classification=True, **self._node_kwargs
        )
        self._add_session(
            session_id,
            _Session(
                node,
                latency_budget=max_latency_ticks,
                evict_after=(
                    evict_after_ticks if evict_after_ticks is not None
                    else self.evict_after_ticks
                ),
                last_active=self._clock.tick,
                analytics=self._build_pipeline(analytics),
            ),
        )
        if self.journal is not None:
            self.journal.open(
                session_id,
                {
                    "max_latency_ticks": max_latency_ticks,
                    "evict_after_ticks": evict_after_ticks,
                    "analytics": analytics,
                },
            )

    def _build_pipeline(self, spec) -> AnalyticsPipeline | None:
        """Resolve an ``analytics=`` spec into a fresh per-session
        pipeline (``None`` = inherit the gateway default, ``[]`` =
        none, factory = call it, list = deep-copy the prototypes)."""
        if spec is None:
            spec = self.analytics
        if spec is None:
            return None
        if callable(spec):
            spec = spec()
        operators = copy.deepcopy(list(spec))
        if not operators:
            return None
        return AnalyticsPipeline(operators, self.fs)

    def ingest(self, session_id: str, chunk: np.ndarray) -> list[StreamBeatEvent]:
        """Feed one chunk of raw samples; return the session's new events.

        Advances the gateway clock by one tick, flushes the
        cross-session batch if it is full or any session's oldest beat
        has hit its latency budget, and evicts sessions idle past
        their threshold.  The returned events are exactly the ones a
        standalone ``StreamingNode`` would have emitted by this point
        (possibly later in stream time, never different in content or
        order).
        """
        session = self._get(session_id)
        if self.journal is not None:
            # Write-ahead: the chunk is durable before it is applied,
            # so the acknowledged prefix survives a process crash.
            self.journal.log_chunk(session_id, chunk)
        self._feed(session_id, session, session.node.push(chunk))
        self._collect(session_id, session)
        clock = self._clock
        clock.tick += 1
        session.last_active = clock.tick
        if len(self._batch) >= self.max_batch or self._latency_budget_hit():
            self.flush_batch()
        self._evict_idle()
        if self.journal is not None and self.journal.wants_snapshot(session_id):
            self._journal_snapshot(session_id)
        return self._deliver(session_id, session.drain())

    def _latency_budget_hit(self) -> bool:
        """Has any session's oldest pending beat outlived its budget?

        O(1): every queued session armed its effective deadline (the
        tighter of the global ``max_latency_ticks`` and its own budget)
        when its first beat entered the batch, and the batch keeps the
        minimum incrementally — this is one integer compare per ingest
        regardless of fleet size or batch depth.  Budgets cannot change
        for queued beats (close/evict/export/import all flush first),
        so the armed deadlines never go stale.
        """
        deadline = self._batch.min_deadline
        return deadline is not None and self._clock.tick >= deadline

    def _evict_idle(self) -> None:
        """Evict every session idle past its threshold (slow-session QoS).

        Eviction is a forced :meth:`close_session` on the gateway's
        initiative: the final event sequence is complete and
        well-formed, handed to ``on_evict`` and kept for
        :meth:`take_evicted` — never silently dropped.
        """
        if not self._evictable:
            return
        tick = self._clock.tick
        stale = [
            session_id
            for session_id, session in self._evictable.items()
            if tick - session.last_active >= session.evict_after
        ]
        # Exception-safe delivery: events land in the take_evicted()
        # store *before* the user hook runs, every stale session is
        # evicted even if a hook raises, and the first hook error
        # re-raises only after the scan completes — a crashing hook
        # can never lose a final event sequence or starve a peer
        # session's eviction.
        hook_error: Exception | None = None
        for session_id in stale:
            events = self.close_session(session_id)
            self._evicted[session_id] = events
            self.n_evicted += 1
            if self.on_evict is not None:
                try:
                    self.on_evict(session_id, events)
                except Exception as exc:
                    if hook_error is None:
                        hook_error = exc
        if hook_error is not None:
            raise hook_error

    def take_evicted(self) -> dict[str, list[StreamBeatEvent]]:
        """Final event sequences of evicted sessions; clears the store."""
        evicted = self._evicted
        self._evicted = {}
        return evicted

    def poll(self, session_id: str) -> list[StreamBeatEvent]:
        """Drain the session's queued events without ingesting samples."""
        return self._deliver(session_id, self._get(session_id).drain())

    def close_session(self, session_id: str) -> list[StreamBeatEvent]:
        """End a session; return the remainder of its event sequence.

        Flushes the session's front end, force-classifies everything
        pending fleet-wide (one last batched pass), finalizes the
        session's delineator with the stream-end clamping of the batch
        path, and removes the session.
        """
        session = self._get(session_id)
        self._feed(session_id, session, session.node.finish_input())
        self._collect(session_id, session)
        self.flush_batch()
        self._feed(session_id, session, session.node.finalize())
        if session.analytics is not None:
            self._finalize_analytics(session_id, session)
        self._remove_session(session_id)
        if self.journal is not None:  # an ended session needs no recovery
            self.journal.forget(session_id)
        return session.drain()

    def flush_batch(self) -> int:
        """Classify every queued beat now (one batched pass); return
        how many beats were resolved.

        Called automatically by the size/latency policy; call directly
        to bound latency externally (e.g. from a timer) or before a
        quiet period.
        """
        session_ids, handles, rows = self._batch.drain()
        if rows is None:
            self._drain_analytics()
            return 0
        labels = np.asarray(self.classifier.predict(rows))
        # Group per session, preserving extraction order within each.
        per_session: dict[str, list[tuple[object, int]]] = {}
        for session_id, handle, label in zip(session_ids, handles, labels):
            per_session.setdefault(session_id, []).append((handle, label))
        for session_id, resolved in per_session.items():
            owner, session = self._find_owner(session_id)
            if session is None:  # closed mid-flight; nothing to route to
                continue
            owner._feed(session_id, session, session.node.deliver(resolved))
        self.n_flushes += 1
        self.n_classified += len(handles)
        self._drain_analytics()
        return len(handles)

    def _find_session(self, session_id: str) -> _Session | None:
        """Resolve a flushed session id — ours, or a group peer's."""
        return self._find_owner(session_id)[1]

    def _find_owner(self, session_id: str):
        """Resolve a flushed session id to ``(owner_gateway, session)``
        — ours, or a group peer's (``(None, None)`` when closed)."""
        session = self._sessions.get(session_id)
        if session is not None:
            return self, session
        if self.group is not None:
            for gateway in self.group.gateways:
                session = gateway._sessions.get(session_id)
                if session is not None:
                    return gateway, session
        return None, None

    def _feed(self, session_id: str, session: _Session, events: list) -> None:
        """Append newly finalized events to the session, queueing them
        for its analytics pipeline (folded at the next batched drain,
        not per event)."""
        if not events:
            return
        session.events.extend(events)
        if session.analytics is not None:
            session.analytics_pending.extend(events)
            self._analytics_dirty[session_id] = session

    def _drain_analytics(self) -> None:
        """Fold every dirty session's pending events through its
        pipeline — **one batched update pass per gateway flush**, the
        analytics analogue of the batched classifier (group mode
        drains every member, mirroring the shared-batch flush)."""
        gateways = self.group.gateways if self.group is not None else (self,)
        for gateway in gateways:
            if not gateway._analytics_dirty:
                continue
            dirty = gateway._analytics_dirty
            gateway._analytics_dirty = {}
            for session_id, session in dirty.items():
                pending = session.analytics_pending
                session.analytics_pending = []
                closed = session.analytics.update(pending)
                if closed:
                    gateway._alert(session_id, closed)

    def _alert(self, session_id: str, episodes: list) -> None:
        """Queue closed episodes for :meth:`take_alerts` and fire the
        ``on_alert`` hook."""
        for episode in episodes:
            self._alerts.append((session_id, episode))
        self.n_alerts += len(episodes)
        if self.on_alert is not None:
            for episode in episodes:
                self.on_alert(session_id, episode)

    def _finalize_analytics(self, session_id: str, session: _Session) -> None:
        """Close a session's pipeline at end of stream: fold any
        remainder, close open episodes, record the final summary and
        fold the session into the closed-rollup accumulator."""
        pipeline = session.analytics
        pending = session.analytics_pending
        session.analytics_pending = []
        self._analytics_dirty.pop(session_id, None)
        closed = pipeline.update(pending)
        closed += pipeline.finalize()
        if closed:
            self._alert(session_id, closed)
        self._summaries[session_id] = pipeline.summary()
        rollup = self._an_closed
        rollup["sessions"] += 1
        rollup["beats"] += pipeline.n_beats
        rollup["episodes"] += pipeline.n_episodes
        for kind, count in pipeline.episodes_by_kind.items():
            rollup["by_kind"][kind] = rollup["by_kind"].get(kind, 0) + count

    def take_alerts(self) -> list:
        """Closed ``(session_id, Episode)`` alerts since the last take;
        clears the queue (the pull-based twin of ``on_alert``)."""
        alerts = self._alerts
        self._alerts = []
        return alerts

    def take_summaries(self) -> dict[str, dict]:
        """Final analytics summaries of sessions closed or evicted
        since the last take; clears the store."""
        summaries = self._summaries
        self._summaries = {}
        return summaries

    def analytics_rollup(self) -> dict:
        """JSON-able fleet-rollup block of ``stats()["analytics"]``:
        closed-session accumulator plus the live pipelines' folded
        state (sessions / beats / episodes / alerts / by_kind)."""
        closed = self._an_closed
        total = {
            "sessions": closed["sessions"],
            "beats": closed["beats"],
            "episodes": closed["episodes"],
            "alerts": self.n_alerts,
            "by_kind": dict(closed["by_kind"]),
        }
        for session in self._sessions.values():
            pipeline = session.analytics
            if pipeline is None:
                continue
            total["sessions"] += 1
            total["beats"] += pipeline.n_beats
            total["episodes"] += pipeline.n_episodes
            for kind, count in pipeline.episodes_by_kind.items():
                total["by_kind"][kind] = total["by_kind"].get(kind, 0) + count
        return total

    def stats(self) -> dict:
        """Schema-pinned stats dict, shaped like the sharded tier's
        (``workers == 1``) so every serving surface — the net server's
        STATS frame, the federation rollup, ``worker_loads`` — reads
        any gateway the same way."""
        worker = {
            "n_sessions": self.n_sessions,
            "n_queued": self.n_queued,
            "n_flushes": self.n_flushes,
            "n_classified": self.n_classified,
            "n_evicted": self.n_evicted,
            "analytics": self.analytics_rollup(),
        }
        return {
            **worker,
            "per_worker": [worker],
            "workers": 1,
            "migrations": 0,
            "scale_events": 0,
        }

    def export_session(self, session_id: str) -> SessionExport:
        """Capture a live session for migration; the session stays open.

        Pending classifications are flushed first so no in-flight
        handles cross the boundary; the export then carries the node
        snapshot plus the session's undrained events, which *move*
        into the export (a later ``poll`` here returns nothing — the
        migrated gateway delivers them).  Feed it to
        :meth:`import_session` on another gateway (same ``fs`` and
        session configuration) and continue ``ingest``-ing there —
        the combined event sequence is bit-exact with never migrating.
        """
        session = self._get(session_id)
        self.flush_batch()
        # flush_batch drained this session's analytics, so the deep-
        # copied pipeline is consistent with every event appended so
        # far — the importing gateway resumes the fold mid-episode.
        export = SessionExport(
            session_id=session_id,
            snapshot=session.node.snapshot(),
            events=session.drain(),
            max_latency_ticks=session.latency_budget,
            evict_after_ticks=session.evict_after,
            analytics=copy.deepcopy(session.analytics),
        )
        if self.journal is not None:
            # The capture doubles as a snapshot; its drained events go
            # to the caller, so they count as delivered against it.
            self.journal.snapshot(session_id, export)
            self.journal.delivered(session_id, len(export.events))
        return export

    def release_session(self, session_id: str) -> SessionExport:
        """Capture a live session for migration and remove it here.

        :meth:`export_session` plus the hand-off: the session is gone
        from this gateway afterwards (without the stream-end
        finalization of :meth:`close_session` — it continues on the
        gateway that imports the export).
        """
        export = self.export_session(session_id)
        self._remove_session(session_id)
        if self.journal is not None:  # the session now lives elsewhere
            self.journal.forget(session_id)
        return export

    def import_session(self, export: SessionExport, session_id: str | None = None) -> str:
        """Resume an exported session on this gateway; return its id.

        The export's QoS settings (latency budget, eviction threshold)
        travel with the session; its idle clock restarts at this
        gateway's current tick.
        """
        session_id = export.session_id if session_id is None else session_id
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        node = StreamingNode.restore(self.classifier, export.snapshot)
        # Deep-copy so importing the same export twice (or keeping it
        # around) never aliases live pipeline state; the export's
        # events were already folded by the exporter, so they are NOT
        # re-fed here.
        self._add_session(
            session_id,
            _Session(
                node,
                events=export.events,
                latency_budget=export.max_latency_ticks,
                evict_after=export.evict_after_ticks,
                last_active=self._clock.tick,
                analytics=copy.deepcopy(export.analytics),
            ),
        )
        if self.journal is not None:
            self.journal.snapshot(session_id, export)
        return session_id

    def _deliver(self, session_id: str, events: list) -> list:
        """Hand drained events to the caller, counting them in the
        journal — crash recovery re-delivers everything *except* this
        prefix."""
        if events and self.journal is not None and session_id in self._sessions:
            self.journal.delivered(session_id, len(events))
        return events

    def _journal_snapshot(self, session_id: str) -> None:
        """Refresh one session's journal snapshot, truncating its chunk
        log (the cadence bound on replay length).  Pending
        classifications flush first so no in-flight handles cross the
        capture; the session's undrained events stay queued here *and*
        inside the snapshot — consistent, because the fresh snapshot's
        delivered count restarts at zero with them still undelivered.
        """
        session = self._sessions.get(session_id)
        if session is None:  # pragma: no cover - evicted under the cadence
            return
        self.flush_batch()
        self.journal.snapshot(
            session_id,
            SessionExport(
                session_id=session_id,
                snapshot=session.node.snapshot(),
                events=list(session.events),
                max_latency_ticks=session.latency_budget,
                evict_after_ticks=session.evict_after,
                analytics=session.analytics,
            ),
        )

    def _add_session(self, session_id: str, session: _Session) -> None:
        self._sessions[session_id] = session
        if session.evict_after is not None:
            self._evictable[session_id] = session

    def _remove_session(self, session_id: str) -> None:
        self._sessions.pop(session_id)
        self._evictable.pop(session_id, None)
        self._analytics_dirty.pop(session_id, None)

    def _get(self, session_id: str) -> _Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    def _collect(self, session_id: str, session: _Session) -> None:
        pending = session.node.take_pending()
        if not pending:
            return
        budget = self.max_latency_ticks
        if session.latency_budget is not None:
            budget = min(budget, session.latency_budget)
        tick = self._clock.tick
        batch = self._batch
        for handle, row in pending:
            batch.add(session_id, handle, row, tick, budget)


def serve_round_robin(
    gateway: StreamGateway, streams, chunk: int, *, on_round=None
) -> dict[str, list[StreamBeatEvent]]:
    """Replay complete streams through a gateway as interleaved live sessions.

    The canonical gateway driver (the ``repro serve`` CLI, the fleet
    example and the throughput benchmark all use it): opens one
    session per stream, ingests ``chunk``-sample slices round-robin
    until every stream is exhausted, closes the sessions, and returns
    each session's complete event sequence.

    Parameters
    ----------
    gateway:
        The gateway to serve through (its sessions must not collide
        with the given ids).
    streams:
        Mapping of session id to sample array (``(n,)`` or
        ``(n, n_leads)``), or an iterable of such pairs.
    chunk:
        Ingest slice length in samples (>= 1).
    on_round:
        Optional zero-argument hook called after every full
        round-robin pass — the seam where
        :func:`~repro.serving.autoscale.serve_autoscaled` ticks its
        scaling policies.

    Returns
    -------
    dict[str, list[StreamBeatEvent]]
        Per-session events, in stream order — bit-exact with replaying
        each stream through its own standalone
        :class:`~repro.dsp.streaming.StreamingNode`.
    """
    streams = dict(streams)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1 sample, got {chunk}")
    for session_id in streams:
        gateway.open_session(session_id)
    events: dict[str, list[StreamBeatEvent]] = {s: [] for s in streams}
    offsets = dict.fromkeys(streams, 0)
    live = True
    while live:
        live = False
        for session_id, x in streams.items():
            i = offsets[session_id]
            if i >= len(x):
                continue
            events[session_id].extend(gateway.ingest(session_id, x[i : i + chunk]))
            offsets[session_id] = i + chunk
            live = True
        if on_round is not None:
            on_round()
    for session_id in streams:
        events[session_id].extend(gateway.close_session(session_id))
    return events
