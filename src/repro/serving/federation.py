"""Multi-host federation: a gateway-of-gateways front door.

:class:`FederatedGateway` is the horizontal-scale tier above
:mod:`repro.serving.net`: it places live sessions across N backend
**hosts** — each a :class:`~repro.serving.net.server.GatewayServer`
fronting a gateway tier of its own — and mirrors the gateway session
surface (``open_session`` / ``ingest`` / ``poll`` / ``close_session``),
so every fleet driver (:func:`~repro.serving.gateway.serve_round_robin`,
:func:`~repro.serving.loadgen.replay_fleet`, the benchmarks) scales out
unchanged.

Throughput comes from keeping **every host's client pipeline full**:
each host is reached through its own pipelined
:class:`~repro.serving.net.client.GatewayClient` connection, so a
round-robin ingest pass fans chunks out across hosts back to back —
each chunk rides its host's in-flight window without waiting on any
other host's round trip (no cross-host head-of-line blocking), and
events drain opportunistically once per call on whichever connection
they arrive.  Aggregate events/sec then scales with hosts until the
producer core saturates — ``benchmarks/test_federation_throughput.py``
pins >= 1.5x for 2 hosts vs 1 on the 2-core CI job.

The placement / rebalancing / drain story mirrors the sharded tier one
level up:

* **placement** — sessions land on hosts under the same policies
  (:data:`~repro.serving.executors.PLACEMENTS`): ``"hash"``,
  ``"least-loaded"`` (by open sessions), ``"round-robin"``;
* **cross-host migration** — :meth:`FederatedGateway.migrate_session`
  moves a live session between hosts over the wire: a ``MIGRATE``
  frame captures it off the source host (the server pickles its
  ``SessionExport``, prepending the events the client never
  acknowledged) and a second ``MIGRATE`` imports it on the target,
  restarting the delivery index at the capture point so the
  client-side dedupe keeps the event sequence exact;
* **two-level balancing** — :class:`~repro.serving.autoscale.AutoBalancer`
  plugs in unchanged as the **across-host** level (this class exposes
  the same ``workers`` / ``stats()`` / ``sessions_on`` /
  ``migrate_session`` surface, with hosts as the members), while each
  host can tick its own within-host balancer through the server's
  ``tick_hook`` seam — hysteresis at both levels, so neither tier
  ping-pongs sessions;
* **rolling restarts** — :meth:`FederatedGateway.retire_host` drains a
  host losslessly (live-migrating every session it owns onto the
  survivors via the configured placement) exactly like
  ``retire_worker``, and :meth:`FederatedGateway.add_host` attaches a
  fresh host mid-flight;
* **fleet stats** — :meth:`FederatedGateway.stats` rolls every host's
  schema-pinned ``stats()`` into one snapshot (summed counters +
  ``per_host``), the input the across-host policies read.

Per-session **bit-exactness** extends across the fleet: whatever hosts
served whatever prefixes of a session — through placement, cross-host
migration, host retirement and reconnect-resume — its event sequence
is identical to a standalone :class:`~repro.dsp.streaming.StreamingNode`
(``tests/serving/test_federation_chaos.py`` pins it under seeded
interleavings).

:func:`spawn_host` launches a backend host as a separate OS process
(its own event loop, its own gateway, its own core) and reports the
bound address back — the harness ``repro federate`` and the federation
benchmark build their local fleets on.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import zlib
from dataclasses import dataclass

from repro.serving.analytics import merge_rollups
from repro.serving.autoscale import AutoBalancer
from repro.serving.executors import validate_placement
from repro.serving.gateway import StreamGateway
from repro.serving.net.client import GatewayClient, RemoteError
from repro.serving.net.server import GatewayServer
from repro.serving.sharded import ShardedGateway

__all__ = ["FederatedGateway", "HostProcess", "spawn_host"]


def _endpoint(spec) -> tuple[str, int]:
    """Normalize one host endpoint: ``"host:port"`` or ``(host, port)``.

    Bracketed IPv6 literals (``"[::1]:9000"``) parse to the bare
    address (``"::1"``) — the form the socket layer connects to.
    """
    if isinstance(spec, str):
        host, _, port = spec.rpartition(":")
        if host.startswith("[") and host.endswith("]"):
            host = host[1:-1]
        if not host or not port.isdigit():
            raise ValueError(f"endpoint must be 'host:port', got {spec!r}")
        return host, int(port)
    host, port = spec
    return str(host), int(port)


class FederatedGateway:
    """Route live sessions across a fleet of gateway hosts.

    Parameters
    ----------
    endpoints:
        The backend host addresses — ``"host:port"`` strings or
        ``(host, port)`` pairs, one per
        :class:`~repro.serving.net.server.GatewayServer`.  A client
        connection is established to each immediately.
    placement:
        Cross-host placement policy for new sessions, one of
        :data:`~repro.serving.executors.PLACEMENTS` (default
        ``"least-loaded"`` — joins land on the emptiest host, which
        favors a freshly attached one).  An explicit ``host=`` at
        :meth:`open_session` always wins.
    window / send_buffer / timeout / retry_budget:
        Forwarded to every per-host
        :class:`~repro.serving.net.client.GatewayClient` (pipelining
        depth, write coalescing, sync-wait bound, total-retry budget).
    client_kwargs:
        Extra keyword arguments for the per-host clients (injectable
        clocks, ``max_retries``, ...).
    """

    def __init__(
        self,
        endpoints,
        *,
        placement: str = "least-loaded",
        window: int = 8,
        send_buffer: int = 0,
        timeout: float = 30.0,
        retry_budget: float | None = None,
        client_kwargs: dict | None = None,
    ):
        validate_placement(placement)
        self.placement = placement
        self._client_kwargs = dict(
            window=window,
            send_buffer=send_buffer,
            timeout=timeout,
            retry_budget=retry_budget,
        )
        self._client_kwargs.update(client_kwargs or {})
        self._clients: list[GatewayClient] = []
        self._owner: dict[str, int] = {}
        #: Events surfaced while a session was mid-migration (the
        #: source host's final deliveries) — returned ahead of the
        #: session's next ingest/poll/close result so the caller's
        #: event sequence stays gapless.
        self._residue: dict[str, list] = {}
        self._rr_next = 0
        self._closed = False
        self.n_migrations = 0
        self.n_scale_events = 0
        endpoints = list(endpoints)
        if not endpoints:
            raise ValueError("federation needs at least one host endpoint")
        for spec in endpoints:
            self.add_host(spec, _initial=True)

    # -- fleet introspection ---------------------------------------------

    @property
    def hosts(self) -> int:
        """Number of attached hosts."""
        return len(self._clients)

    @property
    def workers(self) -> int:
        """Alias of :attr:`hosts` — the member count the across-host
        :class:`~repro.serving.autoscale.AutoBalancer` reads."""
        return len(self._clients)

    @property
    def endpoints(self) -> list[tuple[str, int]]:
        """The attached hosts' addresses, in index order."""
        return [(c.host, c.port) for c in self._clients]

    @property
    def n_sessions(self) -> int:
        """Sessions currently open through this front door."""
        return len(self._owner)

    def session_ids(self) -> list[str]:
        """Open session ids, in opening order."""
        return list(self._owner)

    def host_of(self, session_id: str) -> int:
        """Index of the host currently serving ``session_id``."""
        return self._owner_or_raise(session_id)

    #: Alias so host-level drivers written against the sharded surface
    #: (``worker_of``) read placement the same way.
    worker_of = host_of

    def sessions_on(self, host: int) -> list[str]:
        """Ids of the sessions currently placed on one host (opening
        order) — the candidate set the across-host balancer moves."""
        index = self._validate_host(host)
        return [sid for sid, owner in self._owner.items() if owner == index]

    def session_counts(self) -> list[int]:
        """Open sessions per host, from the router's placement map."""
        counts = [0] * self.hosts
        for owner in self._owner.values():
            counts[owner] += 1
        return counts

    # -- placement -------------------------------------------------------

    @staticmethod
    def _hash(session_id: str) -> int:
        """Stable session hash (CRC-32, not the salted ``hash``)."""
        return zlib.crc32(session_id.encode())

    def _place(self, session_id: str, exclude: int | None = None) -> int:
        """Pick a host for a session under the configured placement
        policy, optionally excluding one index (a draining host)."""
        candidates = [i for i in range(self.hosts) if i != exclude]
        if self.placement == "hash":
            return candidates[self._hash(session_id) % len(candidates)]
        if self.placement == "round-robin":
            index = candidates[self._rr_next % len(candidates)]
            self._rr_next += 1
            return index
        counts = self.session_counts()  # least-loaded, ties -> lowest index
        return min(candidates, key=lambda i: (counts[i], i))

    def _validate_host(self, host: int) -> int:
        index = int(host)
        if not 0 <= index < self.hosts:
            raise ValueError(
                f"host index {host} out of range for {self.hosts} hosts"
            )
        return index

    def _owner_or_raise(self, session_id: str) -> int:
        try:
            return self._owner[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("gateway is shut down")

    def _take_residue(self, session_id: str) -> list:
        events = self._residue.pop(session_id, None)
        return events if events is not None else []

    # -- session surface -------------------------------------------------

    def open_session(
        self,
        session_id: str,
        *,
        max_latency_ticks: int | None = None,
        evict_after_ticks: int | None = None,
        host: int | None = None,
    ) -> None:
        """Open a session on its policy-placed (or explicit) host."""
        self._check_open()
        if session_id in self._owner:
            raise ValueError(f"session {session_id!r} is already open")
        index = self._place(session_id) if host is None else self._validate_host(host)
        self._clients[index].open_session(
            session_id,
            max_latency_ticks=max_latency_ticks,
            evict_after_ticks=evict_after_ticks,
        )
        self._owner[session_id] = index

    def ingest(self, session_id: str, chunk) -> list:
        """Route one chunk to the session's host; return resolved events.

        Pipelined end to end: the chunk enters the owning host's
        in-flight window and the call returns immediately with
        whatever events that host's connection has already delivered
        (plus any migration residue) — a round-robin pass therefore
        keeps every host's pipeline full concurrently.
        """
        index = self._owner_or_raise(session_id)
        returned = self._clients[index].ingest(session_id, chunk)
        if session_id in self._residue:
            return self._take_residue(session_id) + returned
        return returned

    def poll(self, session_id: str) -> list:
        """Synchronize with the session's host; return its events."""
        index = self._owner_or_raise(session_id)
        returned = self._clients[index].poll(session_id)
        if session_id in self._residue:
            return self._take_residue(session_id) + returned
        return returned

    def close_session(self, session_id: str) -> list:
        """End a session; return the remainder of its event sequence."""
        index = self._owner_or_raise(session_id)
        returned = self._clients[index].close_session(session_id)
        del self._owner[session_id]
        return self._take_residue(session_id) + returned

    # -- cross-host migration + elasticity -------------------------------

    def migrate_session(self, session_id: str, host: int) -> None:
        """Move a live session to another host, mid-stream.

        Wire-level ``MIGRATE`` capture on the current owner + import on
        the target: the session's event sequence is unaffected (events
        the source host delivered during the move are buffered as
        residue and surface on the session's next call), only its
        placement changes.  The across-host
        :class:`~repro.serving.autoscale.AutoBalancer` is this call
        driven by the fleet load statistics.
        """
        self._check_open()
        index = self._owner_or_raise(session_id)
        target = self._validate_host(host)
        if target == index:
            return
        self._move(session_id, index, target)

    def _move(self, session_id: str, index: int, target: int) -> None:
        migrated = self._clients[index].migrate_out(session_id)
        if migrated.events:
            self._residue.setdefault(session_id, []).extend(migrated.events)
        self._clients[target].migrate_in(migrated)
        self._owner[session_id] = target
        self.n_migrations += 1

    def add_host(self, endpoint, *, _initial: bool = False) -> int:
        """Attach (and connect to) one more backend host; return its
        index.  The new host starts empty — the across-host balancer
        migrates load onto it, and ``least-loaded`` placement favors
        it for new sessions immediately."""
        self._check_open()
        host, port = _endpoint(endpoint)
        client = GatewayClient(host, port, **self._client_kwargs)
        client.connect()
        self._clients.append(client)
        if not _initial:
            self.n_scale_events += 1
        return self.hosts - 1

    def retire_host(self, host: int) -> int:
        """Detach one host after draining it losslessly.

        Every session the host serves is live-migrated onto the
        remaining hosts via the configured placement policy — the same
        wire-level capture/import path as :meth:`migrate_session`, so
        per-session event sequences are unaffected.  Returns the
        number of sessions migrated.  Host indices above the retired
        one shift down by one.  The rolling-restart primitive: drain,
        restart the box, :meth:`add_host` it back.
        """
        self._check_open()
        index = self._validate_host(host)
        if self.hosts == 1:
            raise ValueError("cannot retire the last host")
        moved = 0
        for session_id in self.sessions_on(index):
            if self._owner.get(session_id) != index:
                continue  # closed under us mid-drain
            try:
                self._move(session_id, index, self._place(session_id, exclude=index))
            except (KeyError, RemoteError) as exc:
                # Evicted/closed server-side between the sessions_on
                # snapshot and the wire capture — the same race
                # ShardedGateway.retire_worker guards.  Skip the
                # session and keep draining; anything else is a real
                # failure and aborts the drain.
                if isinstance(exc, RemoteError) and "no open session" not in str(exc):
                    raise
                self._clients[index].discard_session(session_id)
                self._owner.pop(session_id, None)
                self._residue.pop(session_id, None)
                continue
            moved += 1
        client = self._clients.pop(index)
        client.close()
        self._owner = {
            sid: owner - 1 if owner > index else owner
            for sid, owner in self._owner.items()
        }
        self.n_scale_events += 1
        return moved

    # -- fleet statistics ------------------------------------------------

    def stats(self) -> dict:
        """Fleet-wide statistics rollup (synchronizes every host).

        Each host answers its own schema-pinned ``stats()`` over the
        wire (``STATS``/``STATS_OK``); the rollup sums the five load
        counters across hosts and keeps the per-host snapshots under
        ``per_host`` — the exact shape
        :func:`~repro.serving.autoscale.worker_loads` reads for the
        across-host balancing level.  ``migrations`` / ``scale_events``
        count this router's own cross-host moves and host
        attach/retire events (each host's rollup keeps its own
        within-host counters).  The schema is pinned by a regression
        test so fleet policy inputs cannot silently drift.  After
        :meth:`shutdown` this raises a clean ``RuntimeError`` instead
        of failing on a dead client connection.
        """
        self._check_open()
        per_host = [client.stats() for client in self._clients]
        totals = {
            key: sum(stats[key] for stats in per_host)
            for key in (
                "n_sessions", "n_queued", "n_flushes", "n_classified", "n_evicted"
            )
        }
        totals["analytics"] = merge_rollups(
            stats.get("analytics") for stats in per_host
        )
        totals["per_host"] = per_host
        totals["hosts"] = self.hosts
        totals["migrations"] = self.n_migrations
        totals["scale_events"] = self.n_scale_events
        return totals

    # -- lifecycle -------------------------------------------------------

    def shutdown(self) -> None:
        """Drop every host connection (idempotent).

        Sessions still open are parked on their hosts via the servers'
        disconnect path — a later front door (or client) can resume
        them; call :meth:`close_session` first for clean ends."""
        if self._closed:
            return
        self._closed = True
        for client in self._clients:
            client.close()
        # The routing maps go with the connections: n_sessions must
        # read 0 on a shut-down front door, not a stale census.
        self._owner.clear()
        self._residue.clear()

    def __enter__(self) -> "FederatedGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# -- local host processes -------------------------------------------------


@dataclass
class HostProcess:
    """A backend gateway host running as a separate OS process."""

    host: str
    port: int
    process: multiprocessing.Process

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate the host process and reap it."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)


def _host_main(
    conn,
    classifier,
    fs,
    workers,
    worker_mode,
    balance_every,
    gateway_kwargs,
    server_kwargs,
    host,
    port,
) -> None:
    """Child-process entry: build the gateway tier, serve forever.

    Reports the bound ``(host, port)`` back through ``conn`` once the
    listening socket is up.  With ``workers > 1`` the host fronts a
    :class:`~repro.serving.sharded.ShardedGateway` and — when
    ``balance_every`` is set — ticks a **within-host**
    :class:`~repro.serving.autoscale.AutoBalancer` through the
    server's ``tick_hook`` seam (the event-loop thread owns the
    gateway, so the hook is the only safe place to migrate).
    """
    gateway_kwargs = dict(gateway_kwargs or {})
    server_kwargs = dict(server_kwargs or {})
    if workers > 1:
        gateway = ShardedGateway(
            classifier, fs, workers=workers, worker_mode=worker_mode,
            **gateway_kwargs,
        )
    else:
        gateway = StreamGateway(classifier, fs, **gateway_kwargs)
    tick_hook = None
    if balance_every and workers > 1:
        balancer = AutoBalancer(gateway)
        tick_hook = balancer.tick
        server_kwargs.setdefault("tick_every", int(balance_every))
    server = GatewayServer(
        gateway, host=host, port=port, tick_hook=tick_hook, **server_kwargs
    )

    async def _run() -> None:
        address = await server.start()
        conn.send(address)
        conn.close()
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except (KeyboardInterrupt, asyncio.CancelledError):  # pragma: no cover
        pass
    finally:
        shutdown = getattr(gateway, "shutdown", None)
        if shutdown is not None:
            shutdown()


def spawn_host(
    classifier,
    fs: float,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    worker_mode: str = "inline",
    balance_every: int | None = None,
    gateway_kwargs: dict | None = None,
    server_kwargs: dict | None = None,
    mp_context: str | None = None,
    start_timeout: float = 60.0,
) -> HostProcess:
    """Launch one backend gateway host in its own OS process.

    The child builds a :class:`~repro.serving.gateway.StreamGateway`
    (``workers == 1``) or :class:`~repro.serving.sharded.ShardedGateway`
    (``workers > 1``, with ``worker_mode`` / optional within-host
    balancing every ``balance_every`` ingests), serves it through a
    :class:`~repro.serving.net.server.GatewayServer`, and reports the
    bound address back — available as :attr:`HostProcess.address` when
    this returns.  ``gateway_kwargs`` / ``server_kwargs`` pass through
    to the respective constructors (e.g. ``coalesce`` for
    single-worker hosts fed tiny wire chunks).

    Separate processes are the point: each host owns a core, so a
    :class:`FederatedGateway` over N local hosts measures genuine
    horizontal scale-out (the federation benchmark's 1-vs-2-host
    ratio), and ``repro federate`` demos the fleet on one box.
    """
    ctx = multiprocessing.get_context(mp_context)
    parent, child = ctx.Pipe()
    # Process-mode workers are grandchildren — a daemonic host could
    # not spawn them, so only single-process hosts run daemonic.
    daemon = not (workers > 1 and worker_mode == "process")
    process = ctx.Process(
        target=_host_main,
        args=(
            child, classifier, fs, int(workers), worker_mode,
            balance_every, gateway_kwargs, server_kwargs, host, port,
        ),
        name="repro-fed-host",
        daemon=daemon,
    )
    process.start()
    child.close()
    if not parent.poll(start_timeout):
        process.terminate()
        process.join(5.0)
        raise RuntimeError(
            f"federation host failed to start within {start_timeout:.0f} s"
        )
    bound_host, bound_port = parent.recv()
    parent.close()
    return HostProcess(host=bound_host, port=bound_port, process=process)
