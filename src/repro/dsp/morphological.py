"""Morphological operators and the filtering stages built from them.

The embedded filtering chain of Rincon et al. — reused by the paper as
the front end of sub-system (1) — relies on grayscale morphology with
flat (all-zero) structuring elements, because erosions and dilations
need only comparisons, no multiplications, and therefore run cheaply on
a WBSN microcontroller.

Baseline-wander removal follows the classic opening–closing scheme: an
opening with a structuring element longer than the QRS removes the
peaks, a subsequent closing with a longer element removes the valleys;
the result tracks the baseline drift, which is then subtracted from the
signal.  Noise suppression averages an opening and a closing with a
short element, smoothing measurement noise while preserving wave edges.

Every operator takes an optional ``counter`` (any object with an
``add(op, n)`` method) and records the comparison/addition counts a
straightforward embedded implementation would execute.  Counts assume
the naive sliding-window implementation (window length *m* costs *m - 1*
comparisons per output sample), matching the reference C code's
behaviour rather than an asymptotically optimal deque algorithm.
"""

from __future__ import annotations

import numpy as np

from numpy.lib.stride_tricks import sliding_window_view


def _count(counter, op: str, n: int) -> None:
    """Record ``n`` operations of kind ``op`` if a counter is attached."""
    if counter is not None and n > 0:
        counter.add(op, n)


def _check_structuring_element(length: int) -> None:
    if length < 1:
        raise ValueError("structuring element length must be >= 1")


def _pad_edges(x: np.ndarray, length: int) -> np.ndarray:
    """Edge-replicate padding so outputs keep the input length."""
    left = length // 2
    right = length - 1 - left
    return np.pad(x, (left, right), mode="edge")


def erosion(x: np.ndarray, length: int, counter=None) -> np.ndarray:
    """Grayscale erosion with a flat structuring element.

    Parameters
    ----------
    x:
        1-D signal.
    length:
        Structuring-element length in samples.
    counter:
        Optional op-counter.

    Returns
    -------
    np.ndarray
        Sliding minimum of ``x`` over windows of ``length`` samples,
        same length as ``x`` (edge-replicated at the borders).
    """
    _check_structuring_element(length)
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("morphological operators expect 1-D signals")
    _count(counter, "cmp", x.size * (length - 1))
    _count(counter, "load", x.size * length)
    _count(counter, "store", x.size)
    if length == 1:
        return x.copy()
    padded = _pad_edges(x, length)
    return sliding_window_view(padded, length).min(axis=1)


def dilation(x: np.ndarray, length: int, counter=None) -> np.ndarray:
    """Grayscale dilation (sliding maximum) with a flat element."""
    _check_structuring_element(length)
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("morphological operators expect 1-D signals")
    _count(counter, "cmp", x.size * (length - 1))
    _count(counter, "load", x.size * length)
    _count(counter, "store", x.size)
    if length == 1:
        return x.copy()
    padded = _pad_edges(x, length)
    return sliding_window_view(padded, length).max(axis=1)


def opening(x: np.ndarray, length: int, counter=None) -> np.ndarray:
    """Morphological opening: erosion followed by dilation."""
    return dilation(erosion(x, length, counter), length, counter)


def closing(x: np.ndarray, length: int, counter=None) -> np.ndarray:
    """Morphological closing: dilation followed by erosion."""
    return erosion(dilation(x, length, counter), length, counter)


def estimate_baseline(
    x: np.ndarray,
    fs: float,
    qrs_window: float = 0.2,
    wave_window: float = 0.3,
    counter=None,
) -> np.ndarray:
    """Estimate baseline wander by an opening–closing cascade.

    Parameters
    ----------
    x:
        1-D ECG lead.
    fs:
        Sampling frequency in Hz.
    qrs_window:
        Opening element duration (seconds); must exceed the QRS width so
        the opening removes QRS peaks.
    wave_window:
        Closing element duration (seconds); must exceed the T-wave width
        so the closing removes the remaining wave lobes.
    """
    if fs <= 0:
        raise ValueError("sampling frequency must be positive")
    opening_length = max(3, int(round(qrs_window * fs)) | 1)
    closing_length = max(3, int(round(wave_window * fs)) | 1)
    return closing(opening(x, opening_length, counter), closing_length, counter)


def remove_baseline(
    x: np.ndarray,
    fs: float,
    qrs_window: float = 0.2,
    wave_window: float = 0.3,
    counter=None,
) -> np.ndarray:
    """Remove baseline wander: ``x - estimate_baseline(x)``."""
    baseline = estimate_baseline(x, fs, qrs_window, wave_window, counter)
    _count(counter, "sub", np.asarray(x).size)
    return np.asarray(x) - baseline


def suppress_noise(x: np.ndarray, fs: float, window: float = 0.014, counter=None) -> np.ndarray:
    """Suppress wideband noise by averaging an opening and a closing.

    A short structuring element (default 14 ms, ~5 samples at 360 Hz)
    smooths noise spikes while preserving the sharp QRS edges better
    than a linear low-pass of the same support.
    """
    if fs <= 0:
        raise ValueError("sampling frequency must be positive")
    length = max(3, int(round(window * fs)) | 1)
    x = np.asarray(x)
    smoothed = opening(x, length, counter) + closing(x, length, counter)
    _count(counter, "add", x.size)
    _count(counter, "shift", x.size)  # divide-by-two as a right shift
    return smoothed / 2.0


def filter_lead(x: np.ndarray, fs: float, counter=None) -> np.ndarray:
    """Full single-lead filtering stage: baseline removal + denoising.

    This is the "Filtering" block of Figure 6, applied once per lead.
    """
    return suppress_noise(remove_baseline(x, fs, counter=counter), fs, counter=counter)
