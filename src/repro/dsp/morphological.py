"""Morphological operators and the filtering stages built from them.

The embedded filtering chain of Rincon et al. — reused by the paper as
the front end of sub-system (1) — relies on grayscale morphology with
flat (all-zero) structuring elements, because erosions and dilations
need only comparisons, no multiplications, and therefore run cheaply on
a WBSN microcontroller.

Baseline-wander removal follows the classic opening–closing scheme: an
opening with a structuring element longer than the QRS removes the
peaks, a subsequent closing with a longer element removes the valleys;
the result tracks the baseline drift, which is then subtracted from the
signal.  Noise suppression averages an opening and a closing with a
short element, smoothing measurement noise while preserving wave edges.

Every operator takes an optional ``counter`` (any object with an
``add(op, n)`` method) and records the comparison/addition counts a
straightforward embedded implementation would execute.  Counts assume
the naive sliding-window implementation (window length *m* costs *m - 1*
comparisons per output sample), matching the reference C code's
behaviour rather than an asymptotically optimal algorithm.

The Python implementation itself, however, is *not* naive: erosion and
dilation run the van Herk–Gil-Werman kernel from
:mod:`repro.dsp.kernels` (three vectorized passes, independent of the
structuring-element length), which is bit-exact with the sliding
window — min/max involve no rounding — while being O(n) instead of
O(n·m).  The op counters deliberately keep reporting the naive counts:
they model the reference C firmware's work, not this implementation's.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.kernels import sliding_extremum


def _count(counter, op: str, n: int) -> None:
    """Record ``n`` operations of kind ``op`` if a counter is attached."""
    if counter is not None and n > 0:
        counter.add(op, n)


def _check_structuring_element(length: int) -> None:
    if length < 1:
        raise ValueError("structuring element length must be >= 1")


def charge_extremum_ops(counter, n: int, length: int) -> None:
    """Charge the naive sliding-window cost of one erosion/dilation.

    The single point of truth for the reference C firmware's per-call
    counts (``length - 1`` comparisons per output sample, see module
    docs): used by :func:`erosion`/:func:`dilation` themselves and by
    the batched/streaming delineation paths, which charge the same
    per-beat work analytically instead of re-running the operators.
    """
    _count(counter, "cmp", n * (length - 1))
    _count(counter, "load", n * length)
    _count(counter, "store", n)


def structuring_element_length(window_s: float, fs: float) -> int:
    """Structuring-element length (samples) for a window in seconds.

    Rounded to the nearest odd length and floored at 3 samples — the
    single point of truth shared by the batch filtering stages, the
    streaming :class:`repro.dsp.streaming.BlockFilter` (whose
    bit-exactness with the batch path depends on using identical
    lengths) and the context/latency accounting.
    """
    if fs <= 0:
        raise ValueError("sampling frequency must be positive")
    return max(3, int(round(window_s * fs)) | 1)


def _pad_edges(x: np.ndarray, length: int) -> np.ndarray:
    """Edge-replicate padding so outputs keep the input length."""
    left = length // 2
    padded = np.empty(x.size + length - 1, dtype=x.dtype)
    padded[:left] = x[0]
    padded[left : left + x.size] = x
    padded[left + x.size :] = x[-1]
    return padded


def erosion(x: np.ndarray, length: int, counter=None) -> np.ndarray:
    """Grayscale erosion with a flat structuring element.

    Parameters
    ----------
    x:
        1-D signal.
    length:
        Structuring-element length in samples.
    counter:
        Optional op-counter.

    Returns
    -------
    np.ndarray
        Sliding minimum of ``x`` over windows of ``length`` samples,
        same length as ``x`` (edge-replicated at the borders).
    """
    _check_structuring_element(length)
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("morphological operators expect 1-D signals")
    charge_extremum_ops(counter, x.size, length)
    if length == 1:
        return x.copy()
    return sliding_extremum(_pad_edges(x, length), length, maximum=False)


def dilation(x: np.ndarray, length: int, counter=None) -> np.ndarray:
    """Grayscale dilation (sliding maximum) with a flat element."""
    _check_structuring_element(length)
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("morphological operators expect 1-D signals")
    charge_extremum_ops(counter, x.size, length)
    if length == 1:
        return x.copy()
    return sliding_extremum(_pad_edges(x, length), length, maximum=True)


def opening(x: np.ndarray, length: int, counter=None) -> np.ndarray:
    """Morphological opening: erosion followed by dilation."""
    return dilation(erosion(x, length, counter), length, counter)


def closing(x: np.ndarray, length: int, counter=None) -> np.ndarray:
    """Morphological closing: dilation followed by erosion."""
    return erosion(dilation(x, length, counter), length, counter)


def estimate_baseline(
    x: np.ndarray,
    fs: float,
    qrs_window: float = 0.2,
    wave_window: float = 0.3,
    counter=None,
) -> np.ndarray:
    """Estimate baseline wander by an opening–closing cascade.

    Parameters
    ----------
    x:
        1-D ECG lead.
    fs:
        Sampling frequency in Hz.
    qrs_window:
        Opening element duration (seconds); must exceed the QRS width so
        the opening removes QRS peaks.
    wave_window:
        Closing element duration (seconds); must exceed the T-wave width
        so the closing removes the remaining wave lobes.
    """
    opening_length = structuring_element_length(qrs_window, fs)
    closing_length = structuring_element_length(wave_window, fs)
    return closing(opening(x, opening_length, counter), closing_length, counter)


def remove_baseline(
    x: np.ndarray,
    fs: float,
    qrs_window: float = 0.2,
    wave_window: float = 0.3,
    counter=None,
) -> np.ndarray:
    """Remove baseline wander: ``x - estimate_baseline(x)``."""
    baseline = estimate_baseline(x, fs, qrs_window, wave_window, counter)
    _count(counter, "sub", np.asarray(x).size)
    return np.asarray(x) - baseline


def suppress_noise(x: np.ndarray, fs: float, window: float = 0.014, counter=None) -> np.ndarray:
    """Suppress wideband noise by averaging an opening and a closing.

    A short structuring element (default 14 ms, ~5 samples at 360 Hz)
    smooths noise spikes while preserving the sharp QRS edges better
    than a linear low-pass of the same support.
    """
    length = structuring_element_length(window, fs)
    x = np.asarray(x)
    smoothed = opening(x, length, counter) + closing(x, length, counter)
    _count(counter, "add", x.size)
    _count(counter, "shift", x.size)  # divide-by-two as a right shift
    return smoothed / 2.0


def filter_lead(x: np.ndarray, fs: float, counter=None) -> np.ndarray:
    """Full single-lead filtering stage: baseline removal + denoising.

    This is the "Filtering" block of Figure 6, applied once per lead.
    """
    return suppress_noise(remove_baseline(x, fs, counter=counter), fs, counter=counter)
