"""O(n) sliding-extremum kernels (batch and streaming forms).

The morphological operators in :mod:`repro.dsp.morphological` are
sliding minima/maxima over flat structuring elements of m = 5..109
samples.  A naive implementation performs ``m - 1`` comparisons per
output sample; the van Herk–Gil-Werman (vHGW) algorithm needs only
three, *independent of m*:

1. partition the input into chunks of ``m`` samples;
2. compute running extrema forward within each chunk (*head*) and
   backward within each chunk (*tail*);
3. every window of ``m`` consecutive samples spans at most two chunks,
   so its extremum is ``op(tail[i], head[i + m - 1])``.

:func:`sliding_extremum` is the batch form: three vectorized passes
over the data, used by :func:`repro.dsp.morphological.erosion` and
:func:`~repro.dsp.morphological.dilation`.

:class:`StreamingExtremum` is the incremental form of the same
recurrence (equivalently: the two-stack sliding-window queue).  It
carries the forward running extremum of the current partial chunk and
the backward extremum array of the previous chunk across ``push``
calls, so each sample is touched a constant number of times no matter
how the stream is blocked — amortized O(1) per sample even for
one-sample pushes.  Edge handling replicates the batch operators'
edge-replicated centered window: the first sample is virtually
replicated ``length // 2`` times before the stream and ``flush``
replicates the last sample, which makes a cascade of streaming stages
*bit-exact* with the batch cascade from the very first output sample.

Neither form is what the op counters model: the counters keep charging
the naive ``m - 1`` comparisons per sample of the reference embedded C
implementation (see :mod:`repro.dsp.morphological`).
"""

from __future__ import annotations

import numpy as np


def sliding_extremum(values: np.ndarray, length: int, maximum: bool = False) -> np.ndarray:
    """Extremum of every window of ``length`` consecutive samples.

    Parameters
    ----------
    values:
        1-D array (already padded by the caller if edge handling is
        desired).
    length:
        Window length ``m >= 1``; ``values`` must hold at least one
        full window.
    maximum:
        ``False`` for sliding minimum, ``True`` for sliding maximum.

    Returns
    -------
    np.ndarray
        ``values.size - length + 1`` outputs;
        ``out[i] == op(values[i : i + length])``.
    """
    values = np.asarray(values)
    m = int(length)
    if m < 1:
        raise ValueError("window length must be >= 1")
    n = values.size
    if n < m:
        raise ValueError("need at least one full window of samples")
    if m == 1:
        return values.copy()
    op = np.maximum if maximum else np.minimum
    n_out = n - m + 1
    if m <= 16:
        # Short windows: m - 1 fused elementwise passes beat the
        # chunked recurrence's bookkeeping.
        out = values[:n_out].copy()
        for k in range(1, m):
            op(out, values[k : k + n_out], out=out)
        return out
    n_chunks = -(-n // m)
    # Filling the last partial chunk with copies of the final sample
    # keeps the suffix extrema exact without dtype-breaking sentinels.
    fill = n_chunks * m - n
    ext = np.concatenate([values, np.broadcast_to(values[-1], (fill,))]) if fill else values
    chunks = ext.reshape(n_chunks, m)
    head = op.accumulate(chunks, axis=1).reshape(-1)
    tail = op.accumulate(chunks[:, ::-1], axis=1)[:, ::-1].reshape(-1)
    return op(tail[:n_out], head[m - 1 : m - 1 + n_out])


class StreamingExtremum:
    """Incremental sliding min/max over a centered, edge-padded window.

    Reproduces ``erosion``/``dilation`` (window ``length``, centered
    with ``left = length // 2`` and edge replication) sample for
    sample: output ``i`` equals the batch operator's output ``i`` and
    is emitted as soon as input sample ``i + right`` has been pushed
    (``right = length - 1 - left``).

    ``push`` accepts arbitrary block sizes (including single samples)
    and returns the outputs that became computable; ``flush`` emits
    the last ``right`` outputs by replicating the final sample, exactly
    like the batch operator's trailing edge padding.  After ``flush``
    the stage is finished; create a new instance for a new stream.
    """

    def __init__(self, length: int, maximum: bool = False):
        m = int(length)
        if m < 1:
            raise ValueError("window length must be >= 1")
        self.length = m
        self.left = m // 2
        self.right = m - 1 - self.left
        self._op = np.maximum if maximum else np.minimum
        self._started = False
        self._last: float | None = None
        if m <= 16:
            # Short windows: carry the last m - 1 samples and apply the
            # fused shifted-slice kernel per push (m - 1 vectorized
            # comparisons per sample — a constant, like the batch fast
            # path in sliding_extremum).
            self._carry = np.empty(0)
        else:
            # vHGW / two-stack state over chunks of size m - 1: the raw
            # samples and forward running extremum of the current
            # partial chunk, and the backward extremum array of the
            # previous chunk (3 comparisons per sample, any m).
            self._chunk = np.empty(m - 1)
            self._pos = 0
            self._run: float | None = None
            self._suffix: np.ndarray | None = None

    def push(self, block: np.ndarray) -> np.ndarray:
        """Consume a block; return the newly computable outputs."""
        block = np.asarray(block, dtype=float)
        if block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        if block.size == 0:
            return np.empty(0)
        if self.length == 1:
            return block.copy()
        if not self._started:
            self._started = True
            if self.left:
                # Virtual left edge padding: fewer than a full window,
                # so this can never emit.
                self._consume(np.full(self.left, block[0]))
        self._last = block[-1]
        return self._consume(block)

    def flush(self) -> np.ndarray:
        """Emit the final outputs (trailing edge replication)."""
        if self.length == 1 or not self._started or self.right == 0:
            return np.empty(0)
        return self._consume(np.full(self.right, self._last))

    def _consume(self, data: np.ndarray) -> np.ndarray:
        """Feed samples through the chunked recurrence; emit outputs.

        A window of ``m`` samples ending at chunk position ``i`` is the
        union of the previous chunk's suffix from ``i`` and the current
        chunk's prefix through ``i`` (chunks have ``m - 1`` samples),
        so each consumed sample costs one accumulate step plus one
        combine, and each completed chunk one vectorized backward pass.
        """
        s = self.length - 1
        if self.length <= 16:
            ext = np.concatenate([self._carry, data]) if self._carry.size else data
            self._carry = ext[max(0, ext.size - s) :]
            n_out = ext.size - s
            if n_out <= 0:
                return np.empty(0)
            out = ext[:n_out].copy()
            for k in range(1, self.length):
                self._op(out, ext[k : k + n_out], out=out)
            return out
        out: list[np.ndarray] = []
        i = 0
        n = data.size
        while i < n:
            take = min(s - self._pos, n - i)
            seg = data[i : i + take]
            self._chunk[self._pos : self._pos + take] = seg
            acc = self._op.accumulate(seg)
            if self._run is not None:
                acc = self._op(acc, self._run)
            if self._suffix is not None:
                out.append(self._op(self._suffix[self._pos : self._pos + take], acc))
            self._run = acc[-1]
            self._pos += take
            i += take
            if self._pos == s:
                self._suffix = self._op.accumulate(self._chunk[::-1])[::-1].copy()
                self._pos = 0
                self._run = None
        if not out:
            return np.empty(0)
        return out[0] if len(out) == 1 else np.concatenate(out)
