"""Single-, multi-lead and batched delineation of P / QRS / T fiducials.

This is the "detailed analysis" of Figure 6: for every heartbeat it
produces the nine fiducial points the paper transmits for abnormal
beats — onset, peak and end of the P wave, the QRS complex and the
T wave.  Wave boundaries are located as extrema of the multi-scale
morphological derivative (:mod:`repro.dsp.mmd`) inside physiological
search windows around the R peak; wave peaks are amplitude extrema in
the same windows.

The multi-lead variant executes the delineation "over the combination
of the three filtered leads": each lead is delineated independently and
the per-fiducial median across leads is reported, which rejects
lead-local noise without inter-lead arithmetic.

Three execution forms share one fiducial-location core
(:func:`_locate_fiducials`), so they are bit-exact with each other:

* :func:`delineate_beat` / :func:`delineate_multilead` — the reference
  per-beat path, mirroring the embedded firmware's beat buffer;
* :func:`delineate_beats` — the batched path: each MMD scale is
  computed once per lead over the union of the beats' segments (merged
  into runs) instead of three :func:`~repro.dsp.mmd.mmd_transform`
  calls per beat per lead, with the segment-edge samples recomputed
  per beat so every value matches the per-beat path exactly;
* :class:`StreamingDelineator` — the bounded-memory form: a sliding
  buffer of filtered samples trimmed to the P/T search span, so the
  gated detailed-analysis stage no longer needs whole-record context.

Op counters always report the *per-beat* work of the reference
embedded implementation (the same counts :func:`delineate_multilead`
records), regardless of which execution form produced the values —
exactly like the O(n) morphology kernels keep reporting the naive
sliding-window counts.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

import numpy as np

from repro.dsp.mmd import charge_mmd_ops, mmd_transform

#: Names of the nine fiducial points, in temporal order.
FIDUCIAL_NAMES = (
    "p_onset",
    "p_peak",
    "p_end",
    "qrs_onset",
    "r_peak",
    "qrs_end",
    "t_onset",
    "t_peak",
    "t_end",
)

#: One-sided margin (seconds) the beat segment extends past the search
#: windows, matching the embedded beat buffer.
SEGMENT_MARGIN_S = 0.05


@dataclass(frozen=True)
class DelineationConfig:
    """Search windows (seconds, relative to the R peak) and MMD scales."""

    p_search: tuple[float, float] = (-0.30, -0.08)
    qrs_onset_search: tuple[float, float] = (-0.14, -0.008)
    qrs_end_search: tuple[float, float] = (0.008, 0.16)
    t_search: tuple[float, float] = (0.14, 0.42)
    qrs_scale_s: float = 0.017
    p_scale_s: float = 0.028
    t_scale_s: float = 0.039

    def segment_offsets(self, fs: float) -> tuple[int, int]:
        """Segment bounds relative to the peak: ``[peak + lo, peak + hi)``.

        ``lo`` is negative; the segment covers every search window plus
        :data:`SEGMENT_MARGIN_S` on each side.
        """
        lo = int(round((self.p_search[0] - SEGMENT_MARGIN_S) * fs))
        hi = int(round((self.t_search[1] + SEGMENT_MARGIN_S) * fs)) + 1
        return lo, hi

    def mmd_scales(self, fs: float) -> tuple[int, int, int]:
        """QRS / P / T structuring-element half-widths in samples."""
        return (
            max(2, int(round(self.qrs_scale_s * fs))),
            max(2, int(round(self.p_scale_s * fs))),
            max(2, int(round(self.t_scale_s * fs))),
        )


@dataclass(frozen=True)
class BeatFiducials:
    """Fiducial sample indices of one beat (record coordinates).

    A fiducial can be ``-1`` when the corresponding wave was not found
    in its search window (e.g. the absent P wave of a PVC).
    """

    p_onset: int
    p_peak: int
    p_end: int
    qrs_onset: int
    r_peak: int
    qrs_end: int
    t_onset: int
    t_peak: int
    t_end: int

    def as_array(self) -> np.ndarray:
        """All nine indices as an ``int64`` array in temporal order."""
        return np.array([getattr(self, name) for name in FIDUCIAL_NAMES], dtype=np.int64)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "BeatFiducials":
        """Inverse of :meth:`as_array`."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (len(FIDUCIAL_NAMES),):
            raise ValueError(f"expected {len(FIDUCIAL_NAMES)} fiducials")
        return cls(**{name: int(v) for name, v in zip(FIDUCIAL_NAMES, values)})

    @property
    def n_found(self) -> int:
        """Number of fiducials actually located (not ``-1``)."""
        return int(np.sum(self.as_array() >= 0))


def _window_indices(
    peak: int, search: tuple[float, float], fs: float, n: int
) -> tuple[int, int]:
    lo = max(0, peak + int(round(search[0] * fs)))
    hi = min(n, peak + int(round(search[1] * fs)) + 1)
    return lo, hi


def _find_wave(
    x: np.ndarray, lo: int, hi: int, reference: float, min_relative: float
) -> int:
    """Peak of the wave in ``[lo, hi)``, or ``-1`` if no wave is present.

    A wave exists when the largest detrended deflection exceeds
    ``min_relative`` of the R amplitude *and* peaks in the window
    interior: baseline steps put their largest detrended residual at a
    window edge, true waves peak inside.  The presence test and the
    peak location share one detrend pass.
    """
    if hi <= lo + 3:
        return -1
    segment = _detrend(x[lo:hi])
    deflection = np.abs(segment)
    peak = int(np.argmax(deflection))
    if deflection[peak] < min_relative * reference:
        return -1
    margin = max(1, segment.size // 10)
    if not margin <= peak < segment.size - margin:
        return -1
    return lo + peak


def _boundary_before(mmd: np.ndarray, lo: int, anchor: int) -> int:
    """Onset: the MMD maximum in ``[lo, anchor)`` (concave corner)."""
    if anchor <= lo:
        return -1
    return lo + int(np.argmax(mmd[lo:anchor]))


def _boundary_after(mmd: np.ndarray, anchor: int, hi: int) -> int:
    """End: the MMD maximum in ``(anchor, hi]``."""
    if hi <= anchor + 1:
        return -1
    return anchor + 1 + int(np.argmax(mmd[anchor + 1 : hi]))


def _detrend(segment: np.ndarray) -> np.ndarray:
    """Remove the line through the window's endpoint means.

    Morphological baseline filtering leaves piecewise-flat residuals
    (plateaus and ramps); detrending removes them so that only actual
    *bumps* — waves — survive the presence test.
    """
    if segment.size < 4:
        return segment - segment.mean()
    edge = max(2, segment.size // 10)
    start = float(segment[:edge].mean())
    stop = float(segment[-edge:].mean())
    trend = np.linspace(start, stop, segment.size)
    return segment - trend


#: Minimum gap (seconds) between the previous R peak and the start of
#: this beat's P search window: skips the previous beat's T wave.
PREVIOUS_BEAT_GUARD_S = 0.36


def _segment_bounds(peak: int, fs: float, config: DelineationConfig, n: int) -> tuple[int, int]:
    """Clamped record coordinates of the beat's analysis segment."""
    off_lo, off_hi = config.segment_offsets(fs)
    return max(0, peak + off_lo), min(n, peak + off_hi)


def _locate_fiducials(
    segment: np.ndarray,
    mmd_qrs: np.ndarray,
    mmd_p: np.ndarray,
    mmd_t: np.ndarray,
    local_peak: int,
    seg_lo: int,
    peak: int,
    fs: float,
    config: DelineationConfig,
    previous_peak: int | None,
    r_amplitude: float | None = None,
) -> BeatFiducials:
    """Locate the nine fiducials of one lead given the segment MMDs.

    This is the single fiducial-location core shared by the per-beat,
    batched and streaming paths; ``segment`` must equal the record
    slice ``x[seg_lo:seg_hi]``, the MMD arrays must match
    :func:`~repro.dsp.mmd.mmd_transform` of that segment exactly, and
    ``r_amplitude``, when precomputed (the batched path medians all
    segments of a lead in one pass), must equal the per-segment value
    below.
    """
    _, p_scale, t_scale = config.mmd_scales(fs)

    if r_amplitude is None:
        r_amplitude = float(abs(segment[local_peak] - np.median(segment)))

    qo_lo, qo_hi = _window_indices(local_peak, config.qrs_onset_search, fs, segment.size)
    qe_lo, qe_hi = _window_indices(local_peak, config.qrs_end_search, fs, segment.size)
    qrs_onset = _boundary_before(mmd_qrs, qo_lo, qo_hi)
    qrs_end = _boundary_after(mmd_qrs, qe_lo, qe_hi)

    p_lo, p_hi = _window_indices(local_peak, config.p_search, fs, segment.size)
    if previous_peak is not None:
        guard = int(previous_peak) + int(round(PREVIOUS_BEAT_GUARD_S * fs)) - seg_lo
        p_lo = max(p_lo, guard)
    p_peak = _find_wave(segment, p_lo, p_hi, r_amplitude, min_relative=0.08)
    if p_peak >= 0:
        p_onset = _boundary_before(mmd_p, max(0, p_lo - p_scale), p_peak)
        p_end = _boundary_after(mmd_p, p_peak, min(segment.size, p_hi + p_scale))
    else:
        p_onset = p_end = -1

    t_lo, t_hi = _window_indices(local_peak, config.t_search, fs, segment.size)
    t_peak = _find_wave(segment, t_lo, t_hi, r_amplitude, min_relative=0.05)
    if t_peak >= 0:
        t_onset = _boundary_before(mmd_t, max(0, t_lo - t_scale), t_peak)
        t_end = _boundary_after(mmd_t, t_peak, min(segment.size, t_hi + t_scale))
    else:
        t_onset = t_end = -1

    def to_record(idx: int) -> int:
        return idx + seg_lo if idx >= 0 else -1

    return BeatFiducials(
        p_onset=to_record(p_onset),
        p_peak=to_record(p_peak),
        p_end=to_record(p_end),
        qrs_onset=to_record(qrs_onset),
        r_peak=peak,
        qrs_end=to_record(qrs_end),
        t_onset=to_record(t_onset),
        t_peak=to_record(t_peak),
        t_end=to_record(t_end),
    )


def _combine_leads(per_lead: np.ndarray) -> np.ndarray:
    """Per-fiducial median across leads; ``-1`` unless a majority found it."""
    combined = np.empty(per_lead.shape[1], dtype=np.int64)
    for j in range(per_lead.shape[1]):
        found = per_lead[:, j][per_lead[:, j] >= 0]
        if found.size * 2 > per_lead.shape[0]:
            combined[j] = int(np.median(found))
        else:
            combined[j] = -1
    return combined


def delineate_beat(
    x: np.ndarray,
    peak: int,
    fs: float,
    config: DelineationConfig | None = None,
    counter=None,
    previous_peak: int | None = None,
) -> BeatFiducials:
    """Delineate one beat on one lead.

    Parameters
    ----------
    x:
        Filtered lead (full record coordinates).
    peak:
        R-peak sample index.
    fs:
        Sampling frequency in Hz.
    config:
        Search windows and scales.
    counter:
        Optional op-counter (the MMD work dominates and is recorded by
        the morphological primitives; window scans add comparisons).
    previous_peak:
        R peak of the preceding beat, when known.  The P search is then
        gated to start after the previous beat's T wave, which prevents
        a premature beat (short coupling interval) from mistaking its
        predecessor's T wave for a P wave.

    Returns
    -------
    BeatFiducials
        Nine fiducial indices; ``-1`` marks waves not found.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("delineate_beat expects a single lead")
    config = config or DelineationConfig()
    n = x.size
    peak = int(peak)
    if not 0 <= peak < n:
        raise ValueError("peak index outside the record")

    # Work on a local segment covering all search windows to bound the
    # per-beat cost (the embedded code does the same with a beat buffer).
    seg_lo, seg_hi = _segment_bounds(peak, fs, config, n)
    segment = x[seg_lo:seg_hi]

    qrs_scale, p_scale, t_scale = config.mmd_scales(fs)
    mmd_qrs = mmd_transform(segment, qrs_scale, counter)
    mmd_p = mmd_transform(segment, p_scale, counter)
    mmd_t = mmd_transform(segment, t_scale, counter)
    if counter is not None:
        counter.add("cmp", 4 * segment.size)

    return _locate_fiducials(
        segment, mmd_qrs, mmd_p, mmd_t, peak - seg_lo, seg_lo, peak, fs, config, previous_peak
    )


def delineate_multilead(
    leads: np.ndarray,
    peak: int,
    fs: float,
    config: DelineationConfig | None = None,
    counter=None,
    previous_peak: int | None = None,
) -> BeatFiducials:
    """Three-lead delineation: per-lead delineation + per-fiducial median.

    Parameters
    ----------
    leads:
        ``(n_samples, n_leads)`` filtered signal.
    peak:
        R-peak sample index.
    fs, config, counter:
        As in :func:`delineate_beat`.

    Returns
    -------
    BeatFiducials
        Median fiducials across leads; a fiducial is ``-1`` only when a
        majority of leads failed to locate it.
    """
    leads = np.asarray(leads, dtype=float)
    if leads.ndim != 2:
        raise ValueError("delineate_multilead expects (n_samples, n_leads)")
    per_lead = np.stack(
        [
            delineate_beat(
                leads[:, lead], peak, fs, config, counter, previous_peak
            ).as_array()
            for lead in range(leads.shape[1])
        ],
        axis=0,
    )
    if counter is not None:
        counter.add("cmp", per_lead.size * 2)
    return BeatFiducials.from_array(_combine_leads(per_lead))


# ----------------------------------------------------------------------
# Batched delineation
# ----------------------------------------------------------------------


def _charge_beat_ops(counter, segment_size: int, scales: tuple[int, ...], n_leads: int) -> None:
    """Charge the per-beat op counts of the reference per-beat path.

    The counters model the embedded firmware's beat-buffer work — the
    exact counts :func:`delineate_multilead` records — not the batched
    implementation's.  Per lead: the three MMD transforms (via the
    count-only :func:`~repro.dsp.mmd.charge_mmd_ops` mirror) and the
    window-scan comparisons; plus the lead-combination comparisons.
    """
    if counter is None:
        return
    n = int(segment_size)
    for _ in range(n_leads):
        for scale in scales:
            charge_mmd_ops(counter, n, scale)
    counter.add("cmp", n_leads * 4 * n)
    counter.add("cmp", n_leads * len(FIDUCIAL_NAMES) * 2)


def _merge_segments(bounds: list[tuple[int, int]]) -> tuple[list[tuple[int, int]], list[int]]:
    """Merge overlapping segments into runs; map each segment to its run."""
    order = sorted(range(len(bounds)), key=lambda i: bounds[i][0])
    runs: list[list[int]] = []
    run_of = [0] * len(bounds)
    for idx in order:
        lo, hi = bounds[idx]
        if runs and lo <= runs[-1][1]:
            runs[-1][1] = max(runs[-1][1], hi)
        else:
            runs.append([lo, hi])
        run_of[idx] = len(runs) - 1
    return [(lo, hi) for lo, hi in runs], run_of


def _segment_mmd(
    x: np.ndarray,
    lo: int,
    hi: int,
    scale: int,
    run_mmd: np.ndarray,
    run_lo: int,
) -> np.ndarray:
    """Segment-local MMD from a run-level MMD array, bit-exact.

    Away from the segment edges every MMD window lies inside the
    segment, so the run-level values are identical; within ``scale``
    samples of an edge the per-beat path sees the segment's own edge
    replication, which collapses to prefix/suffix extrema of the
    segment — recomputed here in O(scale).
    """
    L = hi - lo
    seg = x[lo:hi]
    if L <= 2 * scale:
        # Degenerate (boundary-clamped) segment: edges overlap.
        return mmd_transform(seg, scale)
    out = np.empty(L)
    out[scale : L - scale] = run_mmd[lo - run_lo + scale : lo - run_lo + L - scale]
    # Left edge: the padded window [i - scale, i + scale] degenerates
    # to seg[0 : i + scale + 1] under edge replication.
    pre = seg[: 2 * scale]
    pre_max = np.maximum.accumulate(pre)
    pre_min = np.minimum.accumulate(pre)
    left = np.arange(scale)
    out[:scale] = pre_max[left + scale] + pre_min[left + scale] - 2.0 * seg[:scale]
    # Right edge: the window degenerates to seg[i - scale :].
    suf = seg[L - 2 * scale :]
    suf_max = np.maximum.accumulate(suf[::-1])[::-1]
    suf_min = np.minimum.accumulate(suf[::-1])[::-1]
    out[L - scale :] = suf_max[:scale] + suf_min[:scale] - 2.0 * seg[L - scale :]
    return out


def _detrend_batch(block: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_detrend` of windows sharing one geometry.

    All rows have the same width, so the edge size — and therefore the
    endpoint means and the trend line — vectorize across beats with
    the exact arithmetic of the scalar path (`np.linspace` applies the
    same ``arange * step + start`` formula to array endpoints).
    """
    w = block.shape[1]
    if w < 4:
        return block - block.mean(axis=1, keepdims=True)
    edge = max(2, w // 10)
    start = block[:, :edge].mean(axis=1)
    stop = block[:, -edge:].mean(axis=1)
    trend = np.linspace(start, stop, w, axis=1)
    return block - trend


def _wave_scan_batch(
    segments: np.ndarray,
    lo: np.ndarray,
    hi: int,
    reference: np.ndarray,
    min_relative: float,
) -> np.ndarray:
    """Vectorized :func:`_find_wave` over beats with per-beat window starts.

    The window end is uniform (it depends only on the shared segment
    geometry) but the start varies — the P search is gated by each
    beat's previous peak.  Detrending is window-size dependent, so
    beats are grouped by start and each group scanned in one pass;
    ungated records collapse to a single group.
    """
    k = segments.shape[0]
    out = np.full(k, -1, dtype=np.int64)
    for start in np.unique(lo):
        if hi <= start + 3:
            continue
        rows = np.flatnonzero(lo == start)
        w = int(hi - start)
        deflection = np.abs(_detrend_batch(segments[rows, start:hi]))
        peak = np.argmax(deflection, axis=1)
        value = deflection[np.arange(rows.size), peak]
        margin = max(1, w // 10)
        found = (
            ~(value < min_relative * reference[rows])
            & (peak >= margin)
            & (peak < w - margin)
        )
        out[rows[found]] = start + peak[found]
    return out


def _masked_argmax(rows: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Per-row ``lo[i] + argmax(rows[i, lo[i]:hi[i]])``; ``-1`` where empty.

    Masking out-of-window columns to ``-inf`` preserves the first-max
    tie-breaking of the sliced scalar argmax, so the result is
    bit-identical to :func:`_boundary_before` / :func:`_boundary_after`
    window by window.
    """
    lo, hi = np.broadcast_to(lo, rows.shape[:1]), np.broadcast_to(hi, rows.shape[:1])
    cols = np.arange(rows.shape[1])
    mask = (cols >= lo[:, None]) & (cols < hi[:, None])
    idx = np.argmax(np.where(mask, rows, -np.inf), axis=1)
    return np.where(hi > lo, idx, -1)


def _segment_mmd_batch(segments: np.ndarray, gathered: np.ndarray, scale: int) -> np.ndarray:
    """Edge fixups of :func:`_segment_mmd`, across all beats at once.

    ``gathered`` holds the run-level MMD values gathered at each
    beat's segment positions — correct everywhere except the first and
    last ``scale`` samples, where the per-beat path sees the segment's
    own edge replication.  Those collapse to prefix/suffix extrema of
    the segment, computed here with row-wise accumulates (comparisons
    and the same ``max + min - 2x`` arithmetic: bit-exact).
    """
    L = segments.shape[1]
    out = gathered
    pre = segments[:, : 2 * scale]
    pre_max = np.maximum.accumulate(pre, axis=1)
    pre_min = np.minimum.accumulate(pre, axis=1)
    out[:, :scale] = (
        pre_max[:, scale : 2 * scale]
        + pre_min[:, scale : 2 * scale]
        - 2.0 * segments[:, :scale]
    )
    suf = segments[:, L - 2 * scale :]
    suf_max = np.maximum.accumulate(suf[:, ::-1], axis=1)[:, ::-1]
    suf_min = np.minimum.accumulate(suf[:, ::-1], axis=1)[:, ::-1]
    out[:, L - scale :] = (
        suf_max[:, :scale] + suf_min[:, :scale] - 2.0 * segments[:, L - scale :]
    )
    return out


def _locate_fiducials_batch(
    segments: np.ndarray,
    mmd_qrs: np.ndarray,
    mmd_p: np.ndarray,
    mmd_t: np.ndarray,
    local_peak: int,
    seg_lo: np.ndarray,
    peaks: np.ndarray,
    fs: float,
    config: DelineationConfig,
    previous: np.ndarray,
    r_amps: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`_locate_fiducials` over one segment geometry.

    Every input row is a record-interior beat, so all nine search
    windows share their offsets relative to ``local_peak``; only the P
    search start (gated by ``previous``, ``-1`` = ungated) and the
    wave-dependent boundary anchors vary per beat.  Window scans
    become row-wise argmaxes (masked where the window varies) and the
    presence tests one detrend pass per window group — bit-exact with
    the scalar core, beat for beat.

    Returns the ``(k, 9)`` fiducials in record coordinates.
    """
    k, L = segments.shape
    _, p_scale, t_scale = config.mmd_scales(fs)

    qo_lo, qo_hi = _window_indices(local_peak, config.qrs_onset_search, fs, L)
    qe_lo, qe_hi = _window_indices(local_peak, config.qrs_end_search, fs, L)
    if qo_hi > qo_lo:
        qrs_onset = qo_lo + np.argmax(mmd_qrs[:, qo_lo:qo_hi], axis=1)
    else:
        qrs_onset = np.full(k, -1, dtype=np.int64)
    if qe_hi > qe_lo + 1:
        qrs_end = qe_lo + 1 + np.argmax(mmd_qrs[:, qe_lo + 1 : qe_hi], axis=1)
    else:
        qrs_end = np.full(k, -1, dtype=np.int64)

    p_lo, p_hi = _window_indices(local_peak, config.p_search, fs, L)
    guard = previous + int(round(PREVIOUS_BEAT_GUARD_S * fs)) - seg_lo
    p_lo_b = np.where(previous >= 0, np.maximum(p_lo, guard), p_lo).astype(np.int64)
    p_peak = _wave_scan_batch(segments, p_lo_b, p_hi, r_amps, min_relative=0.08)
    p_onset = np.full(k, -1, dtype=np.int64)
    p_end = np.full(k, -1, dtype=np.int64)
    rows = np.flatnonzero(p_peak >= 0)
    if rows.size:
        p_onset[rows] = _masked_argmax(
            mmd_p[rows], np.maximum(0, p_lo_b[rows] - p_scale), p_peak[rows]
        )
        p_end[rows] = _masked_argmax(
            mmd_p[rows], p_peak[rows] + 1, np.full(rows.size, min(L, p_hi + p_scale))
        )

    t_lo, t_hi = _window_indices(local_peak, config.t_search, fs, L)
    t_peak = _wave_scan_batch(
        segments, np.full(k, t_lo, dtype=np.int64), t_hi, r_amps, min_relative=0.05
    )
    t_onset = np.full(k, -1, dtype=np.int64)
    t_end = np.full(k, -1, dtype=np.int64)
    rows = np.flatnonzero(t_peak >= 0)
    if rows.size:
        t_onset[rows] = _masked_argmax(
            mmd_t[rows], np.full(rows.size, max(0, t_lo - t_scale)), t_peak[rows]
        )
        t_end[rows] = _masked_argmax(
            mmd_t[rows], t_peak[rows] + 1, np.full(rows.size, min(L, t_hi + t_scale))
        )

    local = np.stack(
        [p_onset, p_peak, p_end, qrs_onset, np.full(k, local_peak), qrs_end,
         t_onset, t_peak, t_end],
        axis=1,
    )
    out = np.where(local >= 0, local + seg_lo[:, None], -1)
    out[:, FIDUCIAL_NAMES.index("r_peak")] = peaks
    return out.astype(np.int64)


def _combine_leads_batch(per_lead: np.ndarray) -> np.ndarray:
    """:func:`_combine_leads` across all beats: ``(k, n_leads, 9) -> (k, 9)``."""
    import warnings

    n_leads = per_lead.shape[1]
    if n_leads == 1:
        # One lead: the median of a found value is itself and the
        # majority test is just "found" — absent fiducials are already
        # -1, so the lead's row passes through unchanged.
        return per_lead[:, 0].astype(np.int64, copy=True)
    found = per_lead >= 0
    counts = found.sum(axis=1)
    with warnings.catch_warnings():
        # All-NaN slices (no lead found the fiducial) are overridden
        # with -1 by the majority test below.
        warnings.simplefilter("ignore", RuntimeWarning)
        medians = np.nanmedian(np.where(found, per_lead.astype(float), np.nan), axis=1)
    return np.where(counts * 2 > n_leads, medians, -1.0).astype(np.int64)


def delineate_beats(
    leads: np.ndarray,
    peaks: np.ndarray,
    fs: float,
    config: DelineationConfig | None = None,
    counters=None,
    previous_peaks=None,
) -> list[BeatFiducials]:
    """Batched multi-lead delineation of many beats in one pass.

    Equivalent to calling :func:`delineate_multilead` once per peak —
    bit-exact in both the returned fiducials and the recorded op
    counts — but each MMD scale is computed once per lead over the
    union of the beats' segments (overlapping segments merged into
    runs) instead of once per beat per lead.  Only the ``O(scale)``
    segment-edge samples, where the per-beat path sees its own edge
    replication, are recomputed per beat.

    Parameters
    ----------
    leads:
        ``(n_samples, n_leads)`` filtered signal.
    peaks:
        R-peak sample indices of the beats to delineate (any order).
    fs:
        Sampling frequency in Hz.
    config:
        Search windows and scales.
    counters:
        Optional sequence of per-beat op-counters, aligned with
        ``peaks`` (entries may be ``None``).  Each receives the exact
        counts the per-beat path would record for that beat.
    previous_peaks:
        Optional sequence aligned with ``peaks``: the R peak preceding
        each beat (``None`` or negative when unknown), gating the P
        search as in :func:`delineate_beat`.

    Returns
    -------
    list[BeatFiducials]
        One entry per peak, in input order.
    """
    leads = np.asarray(leads, dtype=float)
    if leads.ndim != 2:
        raise ValueError("delineate_beats expects (n_samples, n_leads)")
    n, n_leads = leads.shape
    peaks = np.asarray(peaks, dtype=np.int64)
    if peaks.ndim != 1:
        raise ValueError("peaks must be a 1-D index array")
    if peaks.size and not ((peaks >= 0) & (peaks < n)).all():
        raise ValueError("peak index outside the record")
    if counters is not None and len(counters) != peaks.size:
        raise ValueError("need one counter per peak")
    if previous_peaks is not None and len(previous_peaks) != peaks.size:
        raise ValueError("need one previous peak per peak")
    if not peaks.size:
        return []
    config = config or DelineationConfig()
    scales = config.mmd_scales(fs)

    bounds = [_segment_bounds(int(p), fs, config, n) for p in peaks]
    runs, run_of = _merge_segments(bounds)
    # Record-interior beats share one segment geometry (length L, peak
    # at -off_lo), so segments, R amplitudes, MMD edge fixups and
    # every window scan vectorize across beats; boundary-clamped beats
    # fall back to the scalar per-beat core.
    off_lo, off_hi = config.segment_offsets(fs)
    L = off_hi - off_lo
    unclamped = (peaks + off_lo >= 0) & (peaks + off_hi <= n)
    if L <= 2 * max(scales):
        unclamped = np.zeros(peaks.size, dtype=bool)  # degenerate geometry
    batch_idx = np.flatnonzero(unclamped)
    scalar_idx = np.flatnonzero(~unclamped)
    gather = peaks[unclamped, np.newaxis] + np.arange(off_lo, off_hi)[np.newaxis, :]

    previous: list[int | None] = []
    for b in range(peaks.size):
        prev = previous_peaks[b] if previous_peaks is not None else None
        previous.append(None if prev is None or int(prev) < 0 else int(prev))
    previous_arr = np.asarray(
        [-1 if previous[b] is None else previous[b] for b in batch_idx], dtype=np.int64
    )

    per_lead = np.empty((peaks.size, n_leads, len(FIDUCIAL_NAMES)), dtype=np.int64)
    for lead in range(n_leads):
        x = leads[:, lead]
        run_mmds: list[list[np.ndarray]] = []
        for run_lo, run_hi in runs:
            chunk = x[run_lo:run_hi]
            run_mmds.append([mmd_transform(chunk, scale) for scale in scales])
        if batch_idx.size:
            segments = x[gather]
            r_amps = np.abs(segments[:, -off_lo] - np.median(segments, axis=1))
            # Scatter the run-level MMDs onto the record timeline once,
            # so each beat's interior values become one row gather.
            full = np.empty(n)
            mmds = []
            for s, scale in enumerate(scales):
                for (run_lo, run_hi), values in zip(runs, run_mmds):
                    full[run_lo:run_hi] = values[s]
                mmds.append(_segment_mmd_batch(segments, full[gather], scale))
            per_lead[batch_idx, lead] = _locate_fiducials_batch(
                segments,
                *mmds,
                -off_lo,
                peaks[batch_idx] + off_lo,
                peaks[batch_idx],
                fs,
                config,
                previous_arr,
                r_amps,
            )
        for b in scalar_idx:
            lo, hi = bounds[b]
            run_lo = runs[run_of[b]][0]
            mmds = [
                _segment_mmd(x, lo, hi, scale, run_mmds[run_of[b]][s], run_lo)
                for s, scale in enumerate(scales)
            ]
            per_lead[b, lead] = _locate_fiducials(
                x[lo:hi],
                *mmds,
                int(peaks[b]) - lo,
                lo,
                int(peaks[b]),
                fs,
                config,
                previous[b],
            ).as_array()

    combined = _combine_leads_batch(per_lead)
    results = []
    for b in range(peaks.size):
        if counters is not None:
            _charge_beat_ops(counters[b], bounds[b][1] - bounds[b][0], scales, n_leads)
        results.append(BeatFiducials.from_array(combined[b]))
    return results


# ----------------------------------------------------------------------
# Streaming delineation
# ----------------------------------------------------------------------


def _delineate_segment_multilead(
    segment: np.ndarray,
    seg_lo: int,
    peak: int,
    fs: float,
    config: DelineationConfig,
    previous_peak: int | None,
    counter=None,
) -> BeatFiducials:
    """Multi-lead delineation of a pre-extracted ``(len, n_leads)`` segment.

    ``segment`` must equal the record slice the per-beat path would
    take (:func:`_segment_bounds`), which makes the result bit-exact
    with :func:`delineate_multilead` on the whole record.
    """
    scales = config.mmd_scales(fs)
    per_lead = np.empty((segment.shape[1], len(FIDUCIAL_NAMES)), dtype=np.int64)
    for lead in range(segment.shape[1]):
        seg = np.ascontiguousarray(segment[:, lead])
        mmds = [mmd_transform(seg, scale) for scale in scales]
        per_lead[lead] = _locate_fiducials(
            seg, *mmds, peak - seg_lo, seg_lo, peak, fs, config, previous_peak
        ).as_array()
    _charge_beat_ops(counter, segment.shape[0], scales, segment.shape[1])
    return BeatFiducials.from_array(_combine_leads(per_lead))


class StreamingDelineator:
    """Bounded-memory multi-lead delineation of a filtered stream.

    The batch delineators need whole-record context; a WBSN node's
    gated "detailed analysis" stage cannot afford that.  This class
    keeps a sliding buffer of filtered samples trimmed to the P/T
    search span (plus a caller-chosen ``lookback``), delineates each
    scheduled beat as soon as its right context has arrived, and is
    bit-exact with :func:`delineate_multilead` on the completed record.

    Parameters
    ----------
    fs:
        Sampling frequency in Hz.
    config:
        Search windows and scales.
    lookback_s:
        Extra history (seconds) retained behind the live edge so beats
        can be scheduled late — e.g. a peak detector that confirms
        peaks one analysis window after they occur.  Memory stays
        bounded by ``lookback + segment span + largest push block``,
        independent of stream length.

    Notes
    -----
    ``push`` feeds filtered samples of all leads; ``add_beat``
    schedules a beat (any time while its left context is still
    buffered); both return the ``(peak, BeatFiducials)`` pairs that
    became final.  ``flush`` finalizes pending beats with the
    stream-end clamping the batch path applies at the record edge and
    prepares the instance for a fresh stream on the same timeline.
    """

    def __init__(
        self,
        fs: float,
        config: DelineationConfig | None = None,
        lookback_s: float = 0.0,
    ):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if lookback_s < 0:
            raise ValueError("lookback must be non-negative")
        self.fs = fs
        self.config = config or DelineationConfig()
        off_lo, off_hi = self.config.segment_offsets(fs)
        self._left = -off_lo  # samples of left context a segment needs
        self._right = off_hi  # samples past the peak that finalize it
        self._lookback = int(round(lookback_s * fs))
        self._buffer: np.ndarray | None = None  # (rows, n_leads)
        self._origin = 0  # absolute index where the current stream began
        self._start = 0  # absolute index of buffer[0]
        self._end = 0  # absolute samples consumed
        self._pending: list[tuple[int, int | None, object]] = []
        self._hold: int | None = None

    @property
    def n_samples(self) -> int:
        """Absolute samples consumed so far."""
        return self._end

    @property
    def buffered_samples(self) -> int:
        """Current buffer occupancy (bounded, see class docs)."""
        return 0 if self._buffer is None else self._buffer.shape[0]

    def push(self, block: np.ndarray) -> list[tuple[int, BeatFiducials]]:
        """Feed filtered samples; return beats that became final."""
        block = np.asarray(block, dtype=float)
        if block.ndim == 1:
            block = block[:, np.newaxis]
        if block.ndim != 2:
            raise ValueError("blocks must be (n,) or (n, n_leads)")
        if self._buffer is None:
            self._buffer = np.empty((0, block.shape[1]))
        if block.shape[1] != self._buffer.shape[1]:
            raise ValueError("lead count changed mid-stream")
        if block.shape[0]:
            self._buffer = np.concatenate([self._buffer, block], axis=0)
            self._end += block.shape[0]
        out = self._finalize(final=False)
        self._trim()
        return out

    def add_beat(
        self, peak: int, previous_peak: int | None = None, counter=None
    ) -> list[tuple[int, BeatFiducials]]:
        """Schedule a beat for delineation; return beats that became final.

        ``peak`` must already have been pushed and its left context
        must still be buffered (raise the ``lookback`` otherwise).
        ``counter`` receives the beat's op counts at finalization.
        """
        peak = int(peak)
        if not self._origin <= peak < self._end:
            raise ValueError("peak index outside the current stream")
        if self._seg_lo(peak) < self._start:
            raise ValueError(
                "left context of this beat was already discarded; "
                "construct the delineator with a larger lookback_s"
            )
        insort(self._pending, (peak, previous_peak, counter), key=lambda item: item[0])
        out = self._finalize(final=False)
        self._trim()
        return out

    def add_beats(self, beats) -> list[tuple[int, BeatFiducials]]:
        """Schedule several beats at once; return beats that became final.

        ``beats`` is an iterable of ``(peak, previous_peak)`` or
        ``(peak, previous_peak, counter)`` items.  Equivalent to
        calling :meth:`add_beat` once per item — same validation, same
        results, same charged op counts — but beats finalized together
        are delineated in one vectorized pass (one MMD transform per
        merged segment run per lead instead of one per beat), which is
        what makes a batched gateway flush cheap when it schedules many
        flagged beats in one delivery.
        """
        items: list[tuple[int, int | None, object]] = []
        for item in beats:
            peak = int(item[0])
            previous_peak = item[1]
            counter = item[2] if len(item) > 2 else None
            if not self._origin <= peak < self._end:
                raise ValueError("peak index outside the current stream")
            if self._seg_lo(peak) < self._start:
                raise ValueError(
                    "left context of this beat was already discarded; "
                    "construct the delineator with a larger lookback_s"
                )
            items.append((peak, previous_peak, counter))
        for entry in items:
            insort(self._pending, entry, key=lambda item: item[0])
        out = self._finalize(final=False)
        self._trim()
        return out

    def hold(self, peak: int | None) -> None:
        """Retain the left context of ``peak`` until further notice.

        A caller that *may* schedule a beat later — e.g. a gateway
        session whose classifier verdict is still in flight — marks the
        earliest such peak here; the buffer is then never trimmed past
        that beat's segment start, whatever the configured lookback.
        ``hold(None)`` releases the floor.  Beats scheduled later via
        :meth:`add_beat` must have peaks at or after the held one.
        """
        self._hold = None if peak is None else int(peak)

    def flush(self) -> list[tuple[int, BeatFiducials]]:
        """Finalize pending beats at the stream end; reset for a new stream.

        The absolute sample origin is preserved: later pushes continue
        the same timeline, like the streaming peak detector.
        """
        out = self._finalize(final=True)
        self._buffer = None if self._buffer is None else self._buffer[:0]
        self._origin = self._start = self._end
        self._hold = None
        return out

    def _seg_lo(self, peak: int) -> int:
        """Segment start: the left search span, clamped at the stream
        origin exactly like the batch path clamps at the record start."""
        return max(self._origin, peak - self._left)

    def _finalize(self, final: bool) -> list[tuple[int, BeatFiducials]]:
        ready: list[tuple[int, int | None, object]] = []
        remaining: list[tuple[int, int | None, object]] = []
        for item in self._pending:
            if not final and item[0] + self._right > self._end:
                remaining.append(item)
            else:
                ready.append(item)
        self._pending = remaining
        if not ready:
            return []
        # Stream-interior beats share one segment geometry
        # (``_left + _right`` samples, peak at ``_left``), so — exactly
        # like the record-interior fast path of ``delineate_beats`` —
        # they vectorize; origin- or end-clamped beats take the scalar
        # per-segment core.
        seg_len = self._left + self._right
        scales = self.config.mmd_scales(self.fs)
        results: list[BeatFiducials | None] = [None] * len(ready)
        if seg_len > 2 * max(scales):
            batch_rows = [
                idx
                for idx, (peak, _, _) in enumerate(ready)
                if peak - self._left >= self._origin and peak + self._right <= self._end
            ]
            if len(batch_rows) > 1:
                fiducials = self._delineate_batch(
                    [ready[idx] for idx in batch_rows], seg_len, scales
                )
                for idx, fid in zip(batch_rows, fiducials):
                    results[idx] = fid
        for idx, (peak, previous_peak, counter) in enumerate(ready):
            if results[idx] is not None:
                continue
            seg_lo = self._seg_lo(peak)
            seg_hi = min(self._end, peak + self._right)
            segment = self._buffer[seg_lo - self._start : seg_hi - self._start]
            results[idx] = _delineate_segment_multilead(
                segment, seg_lo, peak, self.fs, self.config, previous_peak, counter
            )
        return [(item[0], results[idx]) for idx, item in enumerate(ready)]

    def _delineate_batch(
        self,
        items: list[tuple[int, int | None, object]],
        seg_len: int,
        scales: tuple[int, ...],
    ) -> list[BeatFiducials]:
        """Vectorized finalization of stream-interior beats.

        Mirrors the interior fast path of :func:`delineate_beats` on
        the sliding buffer: one MMD transform per merged segment run
        per lead, per-beat edge fixups, then the batched fiducial
        search — bit-exact with the scalar per-segment core, beat for
        beat, in both fiducials and charged op counts.
        """
        peaks = np.asarray([item[0] for item in items], dtype=np.int64)
        previous = np.asarray(
            [
                -1 if prev is None or int(prev) < 0 else int(prev)
                for _, prev, _ in items
            ],
            dtype=np.int64,
        )
        seg_lo = peaks - self._left  # absolute; interior => >= _start
        lo = seg_lo - self._start  # buffer coordinates
        gather = lo[:, np.newaxis] + np.arange(seg_len)[np.newaxis, :]
        runs, _ = _merge_segments([(int(i), int(i) + seg_len) for i in lo])
        n_leads = self._buffer.shape[1]
        full = np.empty(self._buffer.shape[0])
        per_lead = np.empty((peaks.size, n_leads, len(FIDUCIAL_NAMES)), dtype=np.int64)
        for lead in range(n_leads):
            x = np.ascontiguousarray(self._buffer[:, lead])
            segments = x[gather]
            r_amps = np.abs(segments[:, self._left] - np.median(segments, axis=1))
            mmds = []
            for scale in scales:
                for run_lo, run_hi in runs:
                    full[run_lo:run_hi] = mmd_transform(x[run_lo:run_hi], scale)
                mmds.append(_segment_mmd_batch(segments, full[gather], scale))
            per_lead[:, lead] = _locate_fiducials_batch(
                segments,
                *mmds,
                self._left,
                seg_lo,
                peaks,
                self.fs,
                self.config,
                previous,
                r_amps,
            )
        combined = _combine_leads_batch(per_lead)
        for _, _, counter in items:
            _charge_beat_ops(counter, seg_len, scales, n_leads)
        return [BeatFiducials.from_array(row) for row in combined]

    def _trim(self) -> None:
        if self._buffer is None:
            return
        keep_from = self._end - (self._lookback + self._left + 1)
        if self._pending:
            keep_from = min(keep_from, self._seg_lo(self._pending[0][0]))
        if self._hold is not None:
            keep_from = min(keep_from, self._seg_lo(self._hold))
        keep_from = max(self._start, keep_from)
        if keep_from > self._start:
            self._buffer = self._buffer[keep_from - self._start :]
            self._start = keep_from
