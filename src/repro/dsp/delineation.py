"""Single- and multi-lead delineation of P / QRS / T fiducial points.

This is the "detailed analysis" of Figure 6: for every heartbeat it
produces the nine fiducial points the paper transmits for abnormal
beats — onset, peak and end of the P wave, the QRS complex and the
T wave.  Wave boundaries are located as extrema of the multi-scale
morphological derivative (:mod:`repro.dsp.mmd`) inside physiological
search windows around the R peak; wave peaks are amplitude extrema in
the same windows.

The multi-lead variant executes the delineation "over the combination
of the three filtered leads": each lead is delineated independently and
the per-fiducial median across leads is reported, which rejects
lead-local noise without inter-lead arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.mmd import mmd_transform

#: Names of the nine fiducial points, in temporal order.
FIDUCIAL_NAMES = (
    "p_onset",
    "p_peak",
    "p_end",
    "qrs_onset",
    "r_peak",
    "qrs_end",
    "t_onset",
    "t_peak",
    "t_end",
)


@dataclass(frozen=True)
class DelineationConfig:
    """Search windows (seconds, relative to the R peak) and MMD scales."""

    p_search: tuple[float, float] = (-0.30, -0.08)
    qrs_onset_search: tuple[float, float] = (-0.14, -0.008)
    qrs_end_search: tuple[float, float] = (0.008, 0.16)
    t_search: tuple[float, float] = (0.14, 0.42)
    qrs_scale_s: float = 0.017
    p_scale_s: float = 0.028
    t_scale_s: float = 0.039


@dataclass(frozen=True)
class BeatFiducials:
    """Fiducial sample indices of one beat (record coordinates).

    A fiducial can be ``-1`` when the corresponding wave was not found
    in its search window (e.g. the absent P wave of a PVC).
    """

    p_onset: int
    p_peak: int
    p_end: int
    qrs_onset: int
    r_peak: int
    qrs_end: int
    t_onset: int
    t_peak: int
    t_end: int

    def as_array(self) -> np.ndarray:
        """All nine indices as an ``int64`` array in temporal order."""
        return np.array([getattr(self, name) for name in FIDUCIAL_NAMES], dtype=np.int64)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "BeatFiducials":
        """Inverse of :meth:`as_array`."""
        values = np.asarray(values, dtype=np.int64)
        if values.shape != (len(FIDUCIAL_NAMES),):
            raise ValueError(f"expected {len(FIDUCIAL_NAMES)} fiducials")
        return cls(**{name: int(v) for name, v in zip(FIDUCIAL_NAMES, values)})

    @property
    def n_found(self) -> int:
        """Number of fiducials actually located (not ``-1``)."""
        return int(np.sum(self.as_array() >= 0))


def _window_indices(
    peak: int, search: tuple[float, float], fs: float, n: int
) -> tuple[int, int]:
    lo = max(0, peak + int(round(search[0] * fs)))
    hi = min(n, peak + int(round(search[1] * fs)) + 1)
    return lo, hi


def _wave_peak(x: np.ndarray, lo: int, hi: int) -> int:
    """Sample of the largest detrended deflection in ``[lo, hi)``."""
    if hi <= lo:
        return -1
    return lo + int(np.argmax(np.abs(_detrend(x[lo:hi]))))


def _boundary_before(mmd: np.ndarray, lo: int, anchor: int) -> int:
    """Onset: the MMD maximum in ``[lo, anchor)`` (concave corner)."""
    if anchor <= lo:
        return -1
    return lo + int(np.argmax(mmd[lo:anchor]))


def _boundary_after(mmd: np.ndarray, anchor: int, hi: int) -> int:
    """End: the MMD maximum in ``(anchor, hi]``."""
    if hi <= anchor + 1:
        return -1
    return anchor + 1 + int(np.argmax(mmd[anchor + 1 : hi]))


def _detrend(segment: np.ndarray) -> np.ndarray:
    """Remove the line through the window's endpoint means.

    Morphological baseline filtering leaves piecewise-flat residuals
    (plateaus and ramps); detrending removes them so that only actual
    *bumps* — waves — survive the presence test.
    """
    if segment.size < 4:
        return segment - segment.mean()
    edge = max(2, segment.size // 10)
    start = float(segment[:edge].mean())
    stop = float(segment[-edge:].mean())
    trend = np.linspace(start, stop, segment.size)
    return segment - trend


def _wave_present(x: np.ndarray, lo: int, hi: int, reference: float, min_relative: float) -> bool:
    """Detect whether a wave with enough amplitude exists in the window.

    Requires a detrended deflection above ``min_relative`` of the R
    amplitude *and* an interior extremum: baseline steps put their
    largest detrended residual at a window edge, true waves peak inside.
    """
    if hi <= lo + 3:
        return False
    segment = _detrend(x[lo:hi])
    deflection = np.abs(segment)
    peak = int(np.argmax(deflection))
    if deflection[peak] < min_relative * reference:
        return False
    margin = max(1, segment.size // 10)
    return margin <= peak < segment.size - margin


#: Minimum gap (seconds) between the previous R peak and the start of
#: this beat's P search window: skips the previous beat's T wave.
PREVIOUS_BEAT_GUARD_S = 0.36


def delineate_beat(
    x: np.ndarray,
    peak: int,
    fs: float,
    config: DelineationConfig | None = None,
    counter=None,
    previous_peak: int | None = None,
) -> BeatFiducials:
    """Delineate one beat on one lead.

    Parameters
    ----------
    x:
        Filtered lead (full record coordinates).
    peak:
        R-peak sample index.
    fs:
        Sampling frequency in Hz.
    config:
        Search windows and scales.
    counter:
        Optional op-counter (the MMD work dominates and is recorded by
        the morphological primitives; window scans add comparisons).
    previous_peak:
        R peak of the preceding beat, when known.  The P search is then
        gated to start after the previous beat's T wave, which prevents
        a premature beat (short coupling interval) from mistaking its
        predecessor's T wave for a P wave.

    Returns
    -------
    BeatFiducials
        Nine fiducial indices; ``-1`` marks waves not found.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("delineate_beat expects a single lead")
    config = config or DelineationConfig()
    n = x.size
    peak = int(peak)
    if not 0 <= peak < n:
        raise ValueError("peak index outside the record")

    # Work on a local segment covering all search windows to bound the
    # per-beat cost (the embedded code does the same with a beat buffer).
    seg_lo = max(0, peak + int(round((config.p_search[0] - 0.05) * fs)))
    seg_hi = min(n, peak + int(round((config.t_search[1] + 0.05) * fs)) + 1)
    segment = x[seg_lo:seg_hi]
    local_peak = peak - seg_lo

    qrs_scale = max(2, int(round(config.qrs_scale_s * fs)))
    p_scale = max(2, int(round(config.p_scale_s * fs)))
    t_scale = max(2, int(round(config.t_scale_s * fs)))
    mmd_qrs = mmd_transform(segment, qrs_scale, counter)
    mmd_p = mmd_transform(segment, p_scale, counter)
    mmd_t = mmd_transform(segment, t_scale, counter)
    if counter is not None:
        counter.add("cmp", 4 * segment.size)

    r_amplitude = float(abs(segment[local_peak] - np.median(segment)))

    qo_lo, qo_hi = _window_indices(local_peak, config.qrs_onset_search, fs, segment.size)
    qe_lo, qe_hi = _window_indices(local_peak, config.qrs_end_search, fs, segment.size)
    qrs_onset = _boundary_before(mmd_qrs, qo_lo, qo_hi)
    qrs_end = _boundary_after(mmd_qrs, qe_lo, qe_hi)

    p_lo, p_hi = _window_indices(local_peak, config.p_search, fs, segment.size)
    if previous_peak is not None:
        guard = int(previous_peak) + int(round(PREVIOUS_BEAT_GUARD_S * fs)) - seg_lo
        p_lo = max(p_lo, guard)
    if p_hi > p_lo and _wave_present(segment, p_lo, p_hi, r_amplitude, min_relative=0.08):
        p_peak = _wave_peak(segment, p_lo, p_hi)
        p_onset = _boundary_before(mmd_p, max(0, p_lo - p_scale), p_peak)
        p_end = _boundary_after(mmd_p, p_peak, min(segment.size, p_hi + p_scale))
    else:
        p_peak = p_onset = p_end = -1

    t_lo, t_hi = _window_indices(local_peak, config.t_search, fs, segment.size)
    if _wave_present(segment, t_lo, t_hi, r_amplitude, min_relative=0.05):
        t_peak = _wave_peak(segment, t_lo, t_hi)
        t_onset = _boundary_before(mmd_t, max(0, t_lo - t_scale), t_peak)
        t_end = _boundary_after(mmd_t, t_peak, min(segment.size, t_hi + t_scale))
    else:
        t_peak = t_onset = t_end = -1

    def to_record(idx: int) -> int:
        return idx + seg_lo if idx >= 0 else -1

    return BeatFiducials(
        p_onset=to_record(p_onset),
        p_peak=to_record(p_peak),
        p_end=to_record(p_end),
        qrs_onset=to_record(qrs_onset),
        r_peak=peak,
        qrs_end=to_record(qrs_end),
        t_onset=to_record(t_onset),
        t_peak=to_record(t_peak),
        t_end=to_record(t_end),
    )


def delineate_multilead(
    leads: np.ndarray,
    peak: int,
    fs: float,
    config: DelineationConfig | None = None,
    counter=None,
    previous_peak: int | None = None,
) -> BeatFiducials:
    """Three-lead delineation: per-lead delineation + per-fiducial median.

    Parameters
    ----------
    leads:
        ``(n_samples, n_leads)`` filtered signal.
    peak:
        R-peak sample index.
    fs, config, counter:
        As in :func:`delineate_beat`.

    Returns
    -------
    BeatFiducials
        Median fiducials across leads; a fiducial is ``-1`` only when a
        majority of leads failed to locate it.
    """
    leads = np.asarray(leads, dtype=float)
    if leads.ndim != 2:
        raise ValueError("delineate_multilead expects (n_samples, n_leads)")
    per_lead = np.stack(
        [
            delineate_beat(
                leads[:, lead], peak, fs, config, counter, previous_peak
            ).as_array()
            for lead in range(leads.shape[1])
        ],
        axis=0,
    )
    combined = np.empty(per_lead.shape[1], dtype=np.int64)
    for j in range(per_lead.shape[1]):
        found = per_lead[:, j][per_lead[:, j] >= 0]
        if found.size * 2 > per_lead.shape[0]:
            combined[j] = int(np.median(found))
        else:
            combined[j] = -1
    if counter is not None:
        counter.add("cmp", per_lead.size * 2)
    return BeatFiducials.from_array(combined)
