"""Embedded ECG signal-processing chain.

This subpackage reimplements the state-of-the-art embedded algorithms
the paper takes from Rincon et al. (IEEE TITB 2011) and uses around the
RP classifier:

* :mod:`repro.dsp.morphological` — erosion/dilation/opening/closing with
  flat structuring elements, baseline-wander removal and noise
  suppression built from them;
* :mod:`repro.dsp.wavelet` — à-trous dyadic wavelet transform (quadratic
  spline filters), four scales;
* :mod:`repro.dsp.peak_detection` — R-peak detector locating the
  zero-crossing between maximum–minimum modulus pairs across scales;
* :mod:`repro.dsp.mmd` — multi-scale morphological derivative operator;
* :mod:`repro.dsp.delineation` — single- and multi-lead delineation of
  P / QRS / T onsets, peaks and ends (the "detailed analysis" stage the
  classifier gates).

All stages optionally record their arithmetic work into an op-counter
(any object exposing ``add(op_name, count)``), which is how the
platform model measures duty cycles without running on real silicon.
"""

from repro.dsp.kernels import StreamingExtremum, sliding_extremum
from repro.dsp.morphological import (
    closing,
    dilation,
    erosion,
    filter_lead,
    opening,
    remove_baseline,
    structuring_element_length,
    suppress_noise,
)
from repro.dsp.peak_detection import (
    PeakDetectorConfig,
    detect_peaks,
    detect_peaks_from_wavelet,
)
from repro.dsp.wavelet import StreamingWavelet, dyadic_wavelet
from repro.dsp.delineation import (
    BeatFiducials,
    DelineationConfig,
    StreamingDelineator,
    delineate_beat,
    delineate_beats,
    delineate_multilead,
)
from repro.dsp.delineation_eval import evaluate_delineation
from repro.dsp.mmd import mmd_multiscale, mmd_transform
from repro.dsp.streaming import (
    BlockFilter,
    StreamBeatEvent,
    StreamingNode,
    StreamingPeakDetector,
)

__all__ = [
    "erosion",
    "dilation",
    "opening",
    "closing",
    "filter_lead",
    "remove_baseline",
    "suppress_noise",
    "structuring_element_length",
    "sliding_extremum",
    "StreamingExtremum",
    "dyadic_wavelet",
    "StreamingWavelet",
    "detect_peaks",
    "detect_peaks_from_wavelet",
    "PeakDetectorConfig",
    "mmd_transform",
    "mmd_multiscale",
    "BeatFiducials",
    "DelineationConfig",
    "delineate_beat",
    "delineate_beats",
    "delineate_multilead",
    "StreamingDelineator",
    "evaluate_delineation",
    "BlockFilter",
    "StreamingPeakDetector",
    "StreamingNode",
    "StreamBeatEvent",
]
