"""À-trous dyadic wavelet transform with quadratic-spline filters.

The peak detector of Rincon et al. (itself derived from the classic
Mallat / Martinez delineator) decomposes the ECG into four dyadic
scales with the quadratic-spline wavelet, whose digital filters are

* low-pass  ``h = (1/8) [1, 3, 3, 1]``
* high-pass ``g = 2 [1, -1]``

The transform is undecimated ("algorithme à trous"): at scale *j* the
filters are upsampled by inserting ``2^(j-1) - 1`` zeros between taps.
With this wavelet, each scale of the transform is proportional to a
smoothed derivative of the input, so QRS complexes appear as
maximum–minimum pairs whose zero crossing marks the R peak.

Each scale's group delay is compensated so that the zero crossing of a
symmetric peak is aligned with the peak sample itself, which keeps the
detector phase-accurate across scales.
"""

from __future__ import annotations

import numpy as np

#: Quadratic-spline analysis filters.
LOWPASS = np.array([1.0, 3.0, 3.0, 1.0]) / 8.0
HIGHPASS = np.array([2.0, -2.0])


def _upsample(filter_taps: np.ndarray, factor: int) -> np.ndarray:
    """Insert ``factor - 1`` zeros between filter taps (à trous)."""
    if factor == 1:
        return filter_taps
    upsampled = np.zeros((filter_taps.size - 1) * factor + 1)
    upsampled[::factor] = filter_taps
    return upsampled


def _filter_same(x: np.ndarray, taps: np.ndarray, counter=None) -> np.ndarray:
    """Convolve and trim to the input length (delay kept, trimmed later)."""
    if counter is not None:
        nonzero = int(np.count_nonzero(taps))
        # A WBSN implementation skips the inserted zeros, and the
        # quadratic-spline taps are power-of-two multiples, so each tap
        # costs one shift-accumulate.
        counter.add("mul", x.size * nonzero)
        counter.add("add", x.size * (nonzero - 1))
        counter.add("load", x.size * nonzero)
        counter.add("store", x.size)
    return np.convolve(x, taps, mode="full")[: x.size]


def scale_delay(scale: int) -> int:
    """Group delay (samples) of the cascade producing wavelet scale ``scale``.

    With the quadratic-spline pair the delay of scale *j* (1-based) is
    ``2^(j-1) + 2^(j-1) - 1 + sum of lowpass delays``; expanding the
    cascade gives the familiar values 1, 3, 7, 15 for scales 1-4 (up to
    the half-sample intrinsic offset of the odd-length equivalent
    filter, absorbed into the integer compensation used here).
    """
    if scale < 1:
        raise ValueError("scale index must be >= 1")
    return (1 << scale) - 1


def dyadic_wavelet(
    x: np.ndarray, n_scales: int = 4, counter=None, compensate_delay: bool = True
) -> np.ndarray:
    """Compute the à-trous dyadic wavelet transform.

    Parameters
    ----------
    x:
        1-D input signal.
    n_scales:
        Number of dyadic scales (the detector uses 4).
    counter:
        Optional op-counter recording the embedded filtering work.
    compensate_delay:
        Shift each scale left by its group delay so wavelet features
        align with the input samples (detectors rely on this).

    Returns
    -------
    np.ndarray
        Array of shape ``(n_scales, len(x))``; row ``j-1`` holds
        :math:`W_{2^j} x`.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("dyadic_wavelet expects a 1-D signal")
    if n_scales < 1:
        raise ValueError("n_scales must be >= 1")
    scales = np.empty((n_scales, x.size))
    approximation = x
    for j in range(1, n_scales + 1):
        factor = 1 << (j - 1)
        g = _upsample(HIGHPASS, factor)
        h = _upsample(LOWPASS, factor)
        detail = _filter_same(approximation, g, counter)
        if compensate_delay:
            delay = scale_delay(j)
            detail = np.concatenate([detail[delay:], np.repeat(detail[-1], delay)])
        scales[j - 1] = detail
        approximation = _filter_same(approximation, h, counter)
    return scales


class _StreamingFIR:
    """Causal FIR filter with carried state (exact blockwise convolve).

    Feeding a stream through ``push`` block by block reproduces
    ``np.convolve(whole_stream, taps, mode="full")[:n]`` bit for bit.
    The history holds the last ``len(taps) - 1`` *real* samples (never
    zero padding), so every emitted output is produced by a dot product
    over exactly the same operands — and, crucially for pairwise
    summation, the same operand count — as the batch convolution.
    """

    def __init__(self, taps: np.ndarray):
        self.taps = np.asarray(taps, dtype=float)
        self._hist = np.empty(0)

    def push(self, block: np.ndarray) -> np.ndarray:
        if block.size == 0:
            return np.empty(0)
        combined = np.concatenate([self._hist, block]) if self._hist.size else block
        if combined.size < self.taps.size:
            # np.convolve swaps its arguments when the signal is the
            # shorter one, which reverses the summation order of the
            # boundary dot products.  Right-padding with zeros keeps
            # the batch argument order without touching the emitted
            # outputs (they only depend on samples before the padding).
            ext = np.concatenate([combined, np.zeros(self.taps.size - combined.size)])
        else:
            ext = combined
        out = np.convolve(ext, self.taps, mode="full")
        emitted = out[self._hist.size : self._hist.size + block.size]
        keep = min(combined.size, self.taps.size - 1)
        self._hist = combined[combined.size - keep :]
        return emitted


class StreamingWavelet:
    """Stateful à-trous transform emitting delay-compensated columns.

    The batch :func:`dyadic_wavelet` recomputes every filter over the
    whole record; this class carries the FIR state of all ``2 *
    n_scales`` filters across ``push`` calls so each input sample is
    filtered exactly once, no matter how the stream is blocked.

    ``push(block)`` returns an ``(n_scales, k)`` array of the aligned
    coefficient columns that became complete across *all* scales (the
    deepest scale's group delay, ``2**n_scales - 1`` samples, bounds
    the lag); ``flush()`` emits the remaining columns using the same
    trailing replication the batch transform applies.  Concatenating
    all outputs is **bit-exact** with ``dyadic_wavelet(whole_stream)``
    — the tests assert equality for arbitrary block partitions.
    """

    def __init__(self, n_scales: int = 4):
        if n_scales < 1:
            raise ValueError("n_scales must be >= 1")
        self.n_scales = n_scales
        self._highpass = []
        self._lowpass = []
        for j in range(1, n_scales + 1):
            factor = 1 << (j - 1)
            self._highpass.append(_StreamingFIR(_upsample(HIGHPASS, factor)))
            self._lowpass.append(_StreamingFIR(_upsample(LOWPASS, factor)))
        self._delays = [scale_delay(j) for j in range(1, n_scales + 1)]
        # Per-scale uncompensated detail samples not yet emitted as
        # aligned columns; _base[j] is the absolute index of the first
        # buffered detail sample.
        self._details = [np.empty(0) for _ in range(n_scales)]
        self._base = [0] * n_scales
        self._consumed = 0
        self._emitted = 0

    def push(self, block: np.ndarray) -> np.ndarray:
        """Filter a block; return newly completed aligned columns."""
        approximation = np.asarray(block, dtype=float)
        if approximation.ndim != 1:
            raise ValueError("blocks must be 1-D")
        if approximation.size == 0:
            return np.empty((self.n_scales, 0))
        self._consumed += approximation.size
        for j in range(self.n_scales):
            detail = self._highpass[j].push(approximation)
            self._details[j] = np.concatenate([self._details[j], detail])
            approximation = self._lowpass[j].push(approximation)
        # Aligned column i of scale j is detail_j[i + delay_j]; the
        # deepest scale limits how far all rows are complete.
        ready = self._consumed - self._delays[-1]
        return self._emit(max(0, ready - self._emitted), final=False)

    def flush(self) -> np.ndarray:
        """Emit the trailing columns (batch-style end replication)."""
        out = self._emit(self._consumed - self._emitted, final=True)
        self.reset()
        return out

    def reset(self) -> None:
        """Forget all filter state (ready for a fresh stream)."""
        self.__init__(self.n_scales)

    def _emit(self, k: int, final: bool) -> np.ndarray:
        if k <= 0:
            return np.empty((self.n_scales, 0))
        columns = np.empty((self.n_scales, k))
        start = self._emitted
        for j in range(self.n_scales):
            delay = self._delays[j]
            buffered = self._details[j]
            lo = start + delay - self._base[j]
            row = buffered[lo : lo + k]
            if row.size < k:
                # Past the stream end: replicate the last detail value,
                # exactly like the batch delay compensation.
                row = np.concatenate([row, np.full(k - row.size, buffered[-1])])
            columns[j] = row
            if not final:
                # Keep what later columns (or flush) still need.
                keep = start + k + delay - self._base[j]
                keep = min(keep, buffered.size - 1)  # retain the last value
                if keep > 0:
                    self._details[j] = buffered[keep:]
                    self._base[j] += keep
        self._emitted += k
        return columns
