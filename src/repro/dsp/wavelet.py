"""À-trous dyadic wavelet transform with quadratic-spline filters.

The peak detector of Rincon et al. (itself derived from the classic
Mallat / Martinez delineator) decomposes the ECG into four dyadic
scales with the quadratic-spline wavelet, whose digital filters are

* low-pass  ``h = (1/8) [1, 3, 3, 1]``
* high-pass ``g = 2 [1, -1]``

The transform is undecimated ("algorithme à trous"): at scale *j* the
filters are upsampled by inserting ``2^(j-1) - 1`` zeros between taps.
With this wavelet, each scale of the transform is proportional to a
smoothed derivative of the input, so QRS complexes appear as
maximum–minimum pairs whose zero crossing marks the R peak.

Each scale's group delay is compensated so that the zero crossing of a
symmetric peak is aligned with the peak sample itself, which keeps the
detector phase-accurate across scales.
"""

from __future__ import annotations

import numpy as np

#: Quadratic-spline analysis filters.
LOWPASS = np.array([1.0, 3.0, 3.0, 1.0]) / 8.0
HIGHPASS = np.array([2.0, -2.0])


def _upsample(filter_taps: np.ndarray, factor: int) -> np.ndarray:
    """Insert ``factor - 1`` zeros between filter taps (à trous)."""
    if factor == 1:
        return filter_taps
    upsampled = np.zeros((filter_taps.size - 1) * factor + 1)
    upsampled[::factor] = filter_taps
    return upsampled


def _filter_same(x: np.ndarray, taps: np.ndarray, counter=None) -> np.ndarray:
    """Convolve and trim to the input length (delay kept, trimmed later)."""
    if counter is not None:
        nonzero = int(np.count_nonzero(taps))
        # A WBSN implementation skips the inserted zeros, and the
        # quadratic-spline taps are power-of-two multiples, so each tap
        # costs one shift-accumulate.
        counter.add("mul", x.size * nonzero)
        counter.add("add", x.size * (nonzero - 1))
        counter.add("load", x.size * nonzero)
        counter.add("store", x.size)
    return np.convolve(x, taps, mode="full")[: x.size]


def scale_delay(scale: int) -> int:
    """Group delay (samples) of the cascade producing wavelet scale ``scale``.

    With the quadratic-spline pair the delay of scale *j* (1-based) is
    ``2^(j-1) + 2^(j-1) - 1 + sum of lowpass delays``; expanding the
    cascade gives the familiar values 1, 3, 7, 15 for scales 1-4 (up to
    the half-sample intrinsic offset of the odd-length equivalent
    filter, absorbed into the integer compensation used here).
    """
    if scale < 1:
        raise ValueError("scale index must be >= 1")
    return (1 << scale) - 1


def dyadic_wavelet(
    x: np.ndarray, n_scales: int = 4, counter=None, compensate_delay: bool = True
) -> np.ndarray:
    """Compute the à-trous dyadic wavelet transform.

    Parameters
    ----------
    x:
        1-D input signal.
    n_scales:
        Number of dyadic scales (the detector uses 4).
    counter:
        Optional op-counter recording the embedded filtering work.
    compensate_delay:
        Shift each scale left by its group delay so wavelet features
        align with the input samples (detectors rely on this).

    Returns
    -------
    np.ndarray
        Array of shape ``(n_scales, len(x))``; row ``j-1`` holds
        :math:`W_{2^j} x`.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("dyadic_wavelet expects a 1-D signal")
    if n_scales < 1:
        raise ValueError("n_scales must be >= 1")
    scales = np.empty((n_scales, x.size))
    approximation = x
    for j in range(1, n_scales + 1):
        factor = 1 << (j - 1)
        g = _upsample(HIGHPASS, factor)
        h = _upsample(LOWPASS, factor)
        detail = _filter_same(approximation, g, counter)
        if compensate_delay:
            delay = scale_delay(j)
            detail = np.concatenate([detail[delay:], np.repeat(detail[-1], delay)])
        scales[j - 1] = detail
        approximation = _filter_same(approximation, h, counter)
    return scales
