"""Wavelet-based R-peak detection.

Implements the detector the paper adopts from Rincon et al. (IEEE TITB
2011): the input lead is decomposed into four dyadic scales with the
quadratic-spline wavelet; QRS complexes produce pairs of opposite-sign
modulus maxima that persist across scales, and the R peak is "the
zero-crossing point on the first scale in-between couples of
maximum–minimum points across scales".

The implementation proceeds per analysis block:

1. compute :math:`W_{2^1}..W_{2^4}` (see :mod:`repro.dsp.wavelet`);
2. derive per-scale thresholds from the RMS of each scale;
3. locate modulus maxima above threshold on scale :math:`2^2` and keep
   those corroborated by a same-sign maximum nearby on scales
   :math:`2^1` and :math:`2^3` (the "across scales" requirement);
4. pair each positive maximum with the closest subsequent negative
   maximum within the maximum QRS slope separation;
5. report the zero crossing of scale :math:`2^1` between the pair;
6. enforce a physiological refractory period, and run a search-back
   with halved thresholds whenever the running RR estimate suggests a
   missed beat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.wavelet import dyadic_wavelet


@dataclass(frozen=True)
class PeakDetectorConfig:
    """Tunables of the wavelet peak detector.

    Attributes
    ----------
    threshold_factor:
        Per-scale threshold as a multiple of the scale RMS.
    max_pair_separation:
        Maximum time (seconds) between the positive and negative
        modulus maxima of one QRS.
    refractory:
        Minimum time (seconds) between two detected peaks.
    searchback_factor:
        A search-back with halved thresholds runs when the gap since
        the last peak exceeds ``searchback_factor`` times the running
        median RR.
    corroboration_window:
        Window (seconds) within which a same-sign maximum must exist on
        the neighbouring scales.
    """

    threshold_factor: float = 2.2
    max_pair_separation: float = 0.12
    refractory: float = 0.25
    searchback_factor: float = 1.6
    corroboration_window: float = 0.06


def _modulus_maxima(w: np.ndarray, threshold: float) -> np.ndarray:
    """Indices of local extrema of ``w`` with ``|w|`` above threshold."""
    magnitude = np.abs(w)
    above = magnitude >= threshold
    interior = np.zeros_like(above)
    interior[1:-1] = (
        above[1:-1]
        & (magnitude[1:-1] >= magnitude[:-2])
        & (magnitude[1:-1] >= magnitude[2:])
    )
    return np.flatnonzero(interior)


def _zero_crossing(w: np.ndarray, start: int, stop: int) -> int | None:
    """Sample of the sign change of ``w`` in ``[start, stop]``.

    Returns the index of the sample nearest to the interpolated
    crossing, or ``None`` when no sign change exists in the interval.
    """
    if stop <= start:
        return None
    segment = w[start : stop + 1]
    signs = np.sign(segment)
    changes = np.flatnonzero(signs[:-1] * signs[1:] < 0)
    if changes.size == 0:
        zero = np.flatnonzero(signs == 0)
        if zero.size:
            return start + int(zero[0])
        return None
    i = int(changes[0])
    left, right = segment[i], segment[i + 1]
    frac = abs(left) / (abs(left) + abs(right))
    return start + i + int(round(frac))


def detect_peaks(
    x: np.ndarray,
    fs: float,
    config: PeakDetectorConfig | None = None,
    counter=None,
) -> np.ndarray:
    """Detect R peaks on a filtered single lead.

    Parameters
    ----------
    x:
        Filtered lead (baseline removed).
    fs:
        Sampling frequency in Hz.
    config:
        Detector tunables.
    counter:
        Optional op-counter; wavelet filtering plus the per-sample
        threshold comparisons are recorded.

    Returns
    -------
    np.ndarray
        Strictly increasing R-peak sample indices (``int64``).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError("detect_peaks expects a single lead")
    if fs <= 0:
        raise ValueError("sampling frequency must be positive")
    config = config or PeakDetectorConfig()

    w = dyadic_wavelet(x, n_scales=4, counter=counter)
    if counter is not None:
        # Modulus-maxima scan: one abs + two comparisons per sample on
        # the detection scale, plus the threshold comparison.
        counter.add("abs", x.size)
        counter.add("cmp", 3 * x.size)

    rms = np.sqrt(np.mean(np.square(w), axis=1))
    thresholds = config.threshold_factor * rms
    return detect_peaks_from_wavelet(w, thresholds, fs, config)


def detect_peaks_from_wavelet(
    w: np.ndarray,
    thresholds: np.ndarray,
    fs: float,
    config: PeakDetectorConfig | None = None,
) -> np.ndarray:
    """Detection logic over precomputed aligned wavelet coefficients.

    The back half of :func:`detect_peaks`, split out so callers that
    already hold the transform — notably the incremental
    :class:`repro.dsp.streaming.StreamingPeakDetector`, which carries
    wavelet filter state across blocks — can run pairing, refractory
    enforcement and search-back without recomputing any filtering.

    Parameters
    ----------
    w:
        ``(n_scales >= 3, n)`` delay-compensated coefficients
        (:func:`repro.dsp.wavelet.dyadic_wavelet` layout).
    thresholds:
        Per-scale detection thresholds (already scaled by the
        configured threshold factor).
    fs:
        Sampling frequency in Hz.
    config:
        Detector tunables.

    Returns
    -------
    np.ndarray
        Strictly increasing R-peak sample indices (``int64``),
        relative to the start of ``w``.
    """
    config = config or PeakDetectorConfig()
    pairs = _find_pairs(w, thresholds, fs, config)
    peaks = _pairs_to_peaks(w[0], pairs)
    peaks = _enforce_refractory(peaks, w, fs, config)
    peaks = _searchback(peaks, w, thresholds, fs, config)
    peaks = _enforce_refractory(peaks, w, fs, config)
    return np.asarray(sorted(set(int(p) for p in peaks)), dtype=np.int64)


def _find_pairs(
    w: np.ndarray,
    thresholds: np.ndarray,
    fs: float,
    config: PeakDetectorConfig,
    relax: float = 1.0,
) -> list[tuple[int, int]]:
    """Opposite-sign modulus-maxima pairs corroborated across scales."""
    detection_scale = 1  # W_{2^2}
    maxima = _modulus_maxima(w[detection_scale], thresholds[detection_scale] * relax)
    if maxima.size == 0:
        return []
    corro = int(round(config.corroboration_window * fs))
    corroborated = [
        m
        for m in maxima
        if _has_neighbour(w[0], m, corro, np.sign(w[detection_scale][m]), thresholds[0] * relax)
        and _has_neighbour(w[2], m, corro, np.sign(w[detection_scale][m]), thresholds[2] * relax)
    ]
    max_sep = int(round(config.max_pair_separation * fs))
    pairs: list[tuple[int, int]] = []
    used = -1
    values = w[detection_scale]
    for i, m in enumerate(corroborated):
        if m <= used or values[m] <= 0:
            continue
        for n in corroborated[i + 1 :]:
            if n - m > max_sep:
                break
            if values[n] < 0:
                pairs.append((int(m), int(n)))
                used = n
                break
    return pairs


def _has_neighbour(
    w_scale: np.ndarray, position: int, window: int, sign: float, threshold: float
) -> bool:
    """True when a same-sign suprathreshold extremum exists nearby."""
    lo = max(0, position - window)
    hi = min(w_scale.size, position + window + 1)
    segment = w_scale[lo:hi]
    if sign >= 0:
        return bool(np.any(segment >= threshold))
    return bool(np.any(segment <= -threshold))


def _pairs_to_peaks(w1: np.ndarray, pairs: list[tuple[int, int]]) -> list[int]:
    """Zero crossing of scale 1 inside each max–min pair."""
    peaks = []
    for start, stop in pairs:
        crossing = _zero_crossing(w1, start, stop)
        if crossing is not None:
            peaks.append(crossing)
    return peaks


def _enforce_refractory(
    peaks: list[int], w: np.ndarray, fs: float, config: PeakDetectorConfig
) -> list[int]:
    """Drop peaks closer than the refractory period (keep the stronger)."""
    if not peaks:
        return []
    refractory = int(round(config.refractory * fs))
    strength = np.abs(w[1])
    kept: list[int] = []
    for peak in sorted(peaks):
        if kept and peak - kept[-1] < refractory:
            if strength[peak] > strength[kept[-1]]:
                kept[-1] = peak
        else:
            kept.append(peak)
    return kept


def _searchback(
    peaks: list[int],
    w: np.ndarray,
    thresholds: np.ndarray,
    fs: float,
    config: PeakDetectorConfig,
) -> list[int]:
    """Re-scan long RR gaps with halved thresholds."""
    if len(peaks) < 3:
        return peaks
    peaks = sorted(peaks)
    rr = np.diff(peaks)
    median_rr = float(np.median(rr))
    if median_rr <= 0:
        return peaks
    out = list(peaks)
    for left, right in zip(peaks[:-1], peaks[1:]):
        if right - left <= config.searchback_factor * median_rr:
            continue
        lo = left + int(round(config.refractory * fs))
        hi = right - int(round(config.refractory * fs))
        if hi <= lo:
            continue
        segment = w[:, lo:hi]
        pairs = _find_pairs(segment, thresholds, fs, config, relax=0.5)
        for start, stop in pairs:
            crossing = _zero_crossing(segment[0], start, stop)
            if crossing is not None:
                out.append(lo + crossing)
    return sorted(set(out))
