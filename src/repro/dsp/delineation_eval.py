"""Delineation accuracy evaluation against ground-truth fiducials.

The delineation literature (and the Rincon et al. paper this
repository's delineator follows) reports per-fiducial mean error and
standard deviation in milliseconds, plus a sensitivity figure (how
often a wave that exists is found).  Synthetic records carry exact
ground truth (:func:`repro.ecg.synth.true_fiducials`), so the same
statistics can be produced here — both as a regression guard on the
delineator and as the accuracy context for the paper's Section IV-E
scenario (the fiducials being transmitted are only useful if they are
accurate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.delineation import FIDUCIAL_NAMES, delineate_multilead
from repro.ecg.database import Record


@dataclass(frozen=True)
class FiducialErrorStats:
    """Error statistics for one fiducial point.

    Attributes
    ----------
    mean_ms, std_ms:
        Signed error mean and standard deviation (detected - truth).
    mad_ms:
        Median absolute error.
    sensitivity:
        Fraction of beats where the wave exists in the truth and the
        delineator reported it.
    n:
        Number of matched (truth, detection) pairs.
    """

    mean_ms: float
    std_ms: float
    mad_ms: float
    sensitivity: float
    n: int


def evaluate_delineation(
    record: Record,
    filtered: np.ndarray,
    max_beats: int | None = None,
) -> dict[str, FiducialErrorStats]:
    """Delineate every annotated beat and score against ground truth.

    Parameters
    ----------
    record:
        Synthetic record carrying ``fiducials`` ground truth.
    filtered:
        ``(n_samples, n_leads)`` filtered signal to delineate.
    max_beats:
        Optional cap on the number of beats evaluated.

    Returns
    -------
    dict
        Per-fiducial :class:`FiducialErrorStats`, keyed by
        :data:`FIDUCIAL_NAMES`.
    """
    if record.annotation is None or record.fiducials is None:
        raise ValueError("record must carry annotations and ground-truth fiducials")
    filtered = np.asarray(filtered, dtype=float)
    if filtered.ndim != 2:
        raise ValueError("filtered must be (n_samples, n_leads)")

    samples = record.annotation.samples
    n_beats = samples.size if max_beats is None else min(max_beats, samples.size)
    errors: dict[str, list[float]] = {name: [] for name in FIDUCIAL_NAMES}
    exists: dict[str, int] = {name: 0 for name in FIDUCIAL_NAMES}
    found: dict[str, int] = {name: 0 for name in FIDUCIAL_NAMES}

    ms_per_sample = 1000.0 / record.fs
    for i in range(n_beats):
        previous = int(samples[i - 1]) if i > 0 else None
        detected = delineate_multilead(
            filtered, int(samples[i]), record.fs, previous_peak=previous
        ).as_array()
        truth = record.fiducials[i]
        for j, name in enumerate(FIDUCIAL_NAMES):
            if truth[j] < 0:
                continue
            exists[name] += 1
            if detected[j] < 0:
                continue
            found[name] += 1
            errors[name].append((detected[j] - truth[j]) * ms_per_sample)

    stats: dict[str, FiducialErrorStats] = {}
    for name in FIDUCIAL_NAMES:
        err = np.asarray(errors[name])
        stats[name] = FiducialErrorStats(
            mean_ms=float(err.mean()) if err.size else float("nan"),
            std_ms=float(err.std()) if err.size else float("nan"),
            mad_ms=float(np.median(np.abs(err))) if err.size else float("nan"),
            sensitivity=found[name] / exists[name] if exists[name] else float("nan"),
            n=int(err.size),
        )
    return stats


def format_delineation_report(stats: dict[str, FiducialErrorStats]) -> str:
    """Render the per-fiducial statistics as fixed-width text."""
    lines = [
        f"{'fiducial':<10}{'mean ms':>9}{'std ms':>8}{'|med| ms':>9}{'sens %':>8}{'n':>6}"
    ]
    for name, s in stats.items():
        lines.append(
            f"{name:<10}{s.mean_ms:>9.1f}{s.std_ms:>8.1f}{s.mad_ms:>9.1f}"
            f"{100 * s.sensitivity:>8.1f}{s.n:>6}"
        )
    return "\n".join(lines)
