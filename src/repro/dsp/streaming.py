"""Streaming (block-wise) processing — truly incremental, front to back.

The batch functions in :mod:`repro.dsp.morphological` and
:mod:`repro.dsp.peak_detection` consume whole records; a WBSN consumes
an ADC stream and must process it in small blocks with bounded memory.
This module provides that engine:

* :class:`BlockFilter` — a cascade of :class:`~repro.dsp.kernels.StreamingExtremum`
  stages (erosion/dilation for baseline removal, opening/closing for
  denoising) plus a delay line for the baseline subtraction.  Every
  stage carries its sliding-extremum running state across ``push``
  calls, so each sample is touched a constant number of times no
  matter the block size — amortized O(block) work per push, instead of
  re-filtering a ``context + block`` buffer with the batch kernels on
  every call.  The cascade seeds each stage with its first input
  (matching the batch operators' left edge replication) and ``flush``
  replicates each stage's last input (matching the right edge), which
  makes the streamed output **bit-exact** with
  ``filter_lead(whole_record)`` from the very first sample.
* :class:`StreamingPeakDetector` — wavelet peak detection over the
  filtered stream.  A :class:`~repro.dsp.wavelet.StreamingWavelet`
  carries the FIR state of all eight à-trous filters (each sample is
  filtered once; the per-window transform recomputation of the old
  scheduler is gone) and per-scale running energy sums carry the
  detection thresholds across windows.  Only the cheap pairing /
  refractory / search-back logic runs per analysis window, on the
  buffered coefficients.

* :class:`StreamingNode` — the whole gated node of Figure 6 as one
  incremental engine: per-lead :class:`BlockFilter` front ends, the
  :class:`StreamingPeakDetector`, per-beat classification, and the
  gated :class:`~repro.dsp.delineation.StreamingDelineator` for beats
  flagged abnormal.  It emits one :class:`StreamBeatEvent` per beat
  (label, fiducials, tx payload) incrementally, in beat order, and is
  bit-exact with the batch pipeline over the completed record.  Two
  serving hooks separate concerns further: a *deferred-classify* mode
  splits the per-sample front end from classification (pending beats
  go to an outbox via :meth:`StreamingNode.take_pending`, labels come
  back via :meth:`StreamingNode.deliver` — how
  :class:`repro.serving.gateway.StreamGateway` multiplexes many live
  sessions into one batched classifier pass), and
  :meth:`StreamingNode.snapshot` / :meth:`StreamingNode.restore`
  capture the full session state (filters, wavelet, thresholds,
  delineator buffers, pending beats) as a picklable
  :class:`NodeSnapshot` so live sessions can migrate between shards.

The filter/detector classes record no op counts: the counters model
the embedded firmware's *batch-equivalent* arithmetic, which is
unchanged (see :mod:`repro.dsp.morphological`).
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.dsp.delineation import (
    BeatFiducials,
    DelineationConfig,
    StreamingDelineator,
)
from repro.dsp.kernels import StreamingExtremum
from repro.dsp.morphological import structuring_element_length
from repro.dsp.peak_detection import PeakDetectorConfig, detect_peaks_from_wavelet
from repro.dsp.wavelet import StreamingWavelet

#: Window durations (seconds) of the filter_lead chain, shared with
#: :mod:`repro.dsp.morphological`'s defaults.
OPENING_WINDOW_S = 0.2
CLOSING_WINDOW_S = 0.3
DENOISE_WINDOW_S = 0.014


def filter_context_samples(fs: float) -> int:
    """One-sided context (= exact latency) of the filtering chain.

    The baseline-removal opening/closing use structuring elements of
    0.2 s and 0.3 s; a cascade of erosion+dilation with element length
    ``m`` looks ``m - 1`` samples in each direction, so two cascaded
    stages need the sum of their supports, and the denoising stage
    adds its short element.  Equals
    :attr:`BlockFilter.delay_samples`: output ``i`` is final once
    input ``i + context`` has arrived.
    """
    opening = structuring_element_length(OPENING_WINDOW_S, fs)
    closing = structuring_element_length(CLOSING_WINDOW_S, fs)
    denoise = structuring_element_length(DENOISE_WINDOW_S, fs)
    return (opening - 1) + (closing - 1) + (denoise - 1)


class BlockFilter:
    """Incremental morphological filtering, bit-exact with the batch path.

    Parameters
    ----------
    fs:
        Sampling frequency in Hz.

    Notes
    -----
    ``push(block)`` returns the filtered samples that became *final*
    with this block (their two-sided context is complete); ``flush()``
    returns the tail, computed with the same edge replication the batch
    path applies at the record end, and resets the filter for a fresh
    stream.  Concatenating every return value reproduces
    ``filter_lead(whole_record)`` exactly — including the first
    ``context`` samples, because each streaming stage seeds itself with
    its first input value, which is precisely the batch operators'
    left edge padding.

    Unlike the original scheduler, which re-ran the batch kernels over
    a ``context + block`` buffer on every call (O((context + block)·m)
    work per push), each stage here advances its own running state:
    the amortized work per push is O(block), independent of both the
    structuring-element lengths and the retained context.
    """

    def __init__(self, fs: float):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        self.fs = fs
        self.context = filter_context_samples(fs)
        self._opening_length = structuring_element_length(OPENING_WINDOW_S, fs)
        self._closing_length = structuring_element_length(CLOSING_WINDOW_S, fs)
        self._denoise_length = structuring_element_length(DENOISE_WINDOW_S, fs)
        self._reset_stages()

    def _reset_stages(self) -> None:
        m1, m2, m3 = self._opening_length, self._closing_length, self._denoise_length
        # remove_baseline: closing(opening(x, m1), m2), then x - baseline.
        self._baseline = [
            StreamingExtremum(m1, maximum=False),
            StreamingExtremum(m1, maximum=True),
            StreamingExtremum(m2, maximum=True),
            StreamingExtremum(m2, maximum=False),
        ]
        # suppress_noise: (opening(y, m3) + closing(y, m3)) / 2.
        self._open = [
            StreamingExtremum(m3, maximum=False),
            StreamingExtremum(m3, maximum=True),
        ]
        self._close = [
            StreamingExtremum(m3, maximum=True),
            StreamingExtremum(m3, maximum=False),
        ]
        self._raw = np.empty(0)  # delay line for the baseline subtraction

    @property
    def delay_samples(self) -> int:
        """Exact output latency: output ``i`` is emitted once input
        ``i + delay_samples`` has been pushed (each stage of the
        cascade withholds its one-sided lookahead)."""
        stages = self._baseline + self._open
        return sum(stage.right for stage in stages)

    @staticmethod
    def _through(stages: list[StreamingExtremum], block: np.ndarray) -> np.ndarray:
        for stage in stages:
            block = stage.push(block)
        return block

    def push(self, block: np.ndarray) -> np.ndarray:
        """Feed a block; return newly finalized filtered samples."""
        block = np.asarray(block, dtype=float)
        if block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        self._raw = np.concatenate([self._raw, block])
        baseline = self._through(self._baseline, block)
        return self._denoise(self._debase(baseline))

    def flush(self) -> np.ndarray:
        """Finalize the tail (edge-replicated, like the batch path).

        Resets the filter afterwards: a subsequent ``push`` starts a
        fresh stream.
        """
        baseline = self._flush_cascade(self._baseline)
        debased = self._debase(baseline)
        opened = np.concatenate(
            [self._through(self._open, debased), self._flush_cascade(self._open)]
        )
        closed = np.concatenate(
            [self._through(self._close, debased), self._flush_cascade(self._close)]
        )
        out = (opened + closed) / 2.0
        self._reset_stages()
        return out

    @staticmethod
    def _flush_cascade(stages: list[StreamingExtremum]) -> np.ndarray:
        """Flush a stage cascade in order, forwarding tails downstream."""
        out = np.empty(0)
        for i, stage in enumerate(stages):
            out = np.concatenate([stage.push(out), stage.flush()])
        return out

    def _debase(self, baseline: np.ndarray) -> np.ndarray:
        """Pair finalized baseline samples with the delayed raw signal."""
        if baseline.size == 0:
            return baseline
        debased = self._raw[: baseline.size] - baseline
        self._raw = self._raw[baseline.size :]
        return debased

    def _denoise(self, debased: np.ndarray) -> np.ndarray:
        opened = self._through(self._open, debased)
        closed = self._through(self._close, debased)
        return (opened + closed) / 2.0


class StreamingPeakDetector:
    """Incremental wavelet peak detection over the filtered stream.

    Parameters
    ----------
    fs:
        Sampling frequency.
    window_s:
        Analysis window length in seconds (detections are confirmed
        per window, matching how the embedded code schedules the
        pairing logic).
    overlap_s:
        Overlap between consecutive windows; must exceed one beat so no
        peak can fall entirely inside a window seam.
    config:
        Detector tunables.
    threshold_time_constant_s:
        Time constant of the exponentially decayed energy estimate the
        detection thresholds derive from.  The default (3 s, a few
        beats) recovers from large amplitude steps within a window or
        two, preserving the adaptivity the per-window RMS thresholds
        had on non-stationary streams.

    Notes
    -----
    The original scheduler re-ran the whole batch detector — including
    the four-scale à-trous transform — over every 10 s analysis
    window.  This detector is stateful end to end: the
    :class:`~repro.dsp.wavelet.StreamingWavelet` filters each sample
    exactly once (bit-exact with the batch transform), exponentially
    decayed per-scale energy sums carry the detection thresholds
    across windows, and only the pairing / refractory / search-back
    logic runs per window, on the buffered coefficient columns.

    ``flush`` analyzes the remaining tail and *resets the stream
    state*: the absolute sample origin of a subsequent ``push`` is
    preserved, so peak indices keep referring to the same global
    timeline (the original implementation left the origin stale).
    """

    def __init__(
        self,
        fs: float,
        window_s: float = 10.0,
        overlap_s: float = 1.5,
        config: PeakDetectorConfig | None = None,
        threshold_time_constant_s: float = 3.0,
    ):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if overlap_s <= 0 or window_s <= 2 * overlap_s:
            raise ValueError("need window_s > 2 * overlap_s > 0")
        if threshold_time_constant_s <= 0:
            raise ValueError("threshold time constant must be positive")
        self.fs = fs
        self.window = int(round(window_s * fs))
        self.overlap = int(round(overlap_s * fs))
        self.config = config or PeakDetectorConfig()
        self._wavelet = StreamingWavelet(n_scales=4)
        self._coeffs = np.empty((4, 0))
        self._offset = 0  # absolute index of coeffs[:, 0]
        self._consumed = 0  # absolute samples pushed so far
        # Exponentially decayed per-scale energy: keeps the adaptivity
        # the old per-window RMS thresholds had, without recomputing
        # any RMS over the buffer.
        self._decay = float(np.exp(-1.0 / (threshold_time_constant_s * fs)))
        self._sumsq = np.zeros(4)
        self._count = 0.0
        self._energy_pos = 0  # absolute index energy is folded through
        self._peaks: list[int] = []

    def _thresholds(self) -> np.ndarray:
        """Running per-scale thresholds from the carried energy sums."""
        if self._count <= 0.0:
            return np.zeros(4)
        return self.config.threshold_factor * np.sqrt(self._sumsq / self._count)

    def _append(self, columns: np.ndarray) -> None:
        if columns.shape[1]:
            self._coeffs = np.concatenate([self._coeffs, columns], axis=1)

    def _fold_energy(self, through: int) -> None:
        """Fold buffered coefficient energy into the decayed sums.

        ``through`` is an absolute sample index; energy is folded
        strictly causally (never past the window being analyzed) and
        at window-consumption points only, so detections are invariant
        to how the caller chunks the stream.
        """
        k = through - self._energy_pos
        if k <= 0:
            return
        columns = self._coeffs[:, self._energy_pos - self._offset : through - self._offset]
        weights = self._decay ** np.arange(k - 1, -1, -1)
        decayed = self._decay**k
        self._sumsq = self._sumsq * decayed + np.square(columns) @ weights
        self._count = self._count * decayed + float(weights.sum())
        self._energy_pos = through

    def push(self, filtered_block: np.ndarray) -> list[int]:
        """Feed filtered samples; return newly confirmed peak indices."""
        filtered_block = np.asarray(filtered_block, dtype=float)
        if filtered_block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        self._consumed += filtered_block.size
        self._append(self._wavelet.push(filtered_block))
        new_peaks: list[int] = []
        while self._coeffs.shape[1] >= self.window:
            segment = self._coeffs[:, : self.window]
            self._fold_energy(self._offset + self.window)
            detected = (
                detect_peaks_from_wavelet(segment, self._thresholds(), self.fs, self.config)
                + self._offset
            )
            # Peaks inside the trailing overlap are re-examined by the
            # next window (they may lack right context here).
            confirm_before = self._offset + self.window - self.overlap
            for peak in detected:
                if peak < confirm_before:
                    new_peaks.append(int(peak))
            advance = self.window - self.overlap
            self._coeffs = self._coeffs[:, advance:]
            self._offset += advance
        return self._merge(new_peaks)

    def flush(self) -> list[int]:
        """Analyze the remaining tail and return its confirmed peaks.

        Afterwards the detector is ready for more ``push`` calls: the
        wavelet state restarts (the stream was cut), but the absolute
        origin advances past all consumed samples so later peak indices
        stay on the global timeline, and confirmed peaks plus running
        thresholds are retained.
        """
        self._append(self._wavelet.flush())
        out: list[int] = []
        if self._coeffs.shape[1] >= int(0.5 * self.fs):
            self._fold_energy(self._offset + self._coeffs.shape[1])
            detected = (
                detect_peaks_from_wavelet(
                    self._coeffs, self._thresholds(), self.fs, self.config
                )
                + self._offset
            )
            out = self._merge(int(p) for p in detected)
        self._coeffs = np.empty((4, 0))
        self._offset = self._consumed
        self._energy_pos = self._consumed
        return out

    def _merge(self, candidates) -> list[int]:
        """Deduplicate against already-confirmed peaks (refractory)."""
        refractory = int(round(self.config.refractory * self.fs))
        accepted: list[int] = []
        for peak in sorted(candidates):
            last = self._peaks[-1] if self._peaks else None
            if last is not None and peak - last < refractory:
                continue
            self._peaks.append(peak)
            accepted.append(peak)
        return accepted

    @property
    def peaks(self) -> np.ndarray:
        """All confirmed peaks so far (absolute sample indices)."""
        return np.asarray(self._peaks, dtype=np.int64)


@dataclass(frozen=True)
class StreamBeatEvent:
    """One beat, fully processed by the gated node.

    ``fiducials`` is populated only for beats the classifier flagged
    abnormal (the gated detailed analysis); ``tx_bytes`` is the radio
    payload the node queues for this beat — full-fiducial for flagged
    beats, peak-only otherwise.
    """

    peak: int
    label: int
    flagged: bool
    tx_bytes: int
    fiducials: BeatFiducials | None = None


class _PendingBeat:
    """Mutable per-beat state while a beat moves through the node.

    ``extracted`` marks beats whose decimated window has been handed
    out for deferred classification (it doubles as the classification
    handle the gateway passes back to :meth:`StreamingNode.deliver`);
    ``row`` holds that window until the label arrives, so a snapshot
    taken with labels in flight can re-issue it — the segment buffer
    may have trimmed past the beat by then.
    """

    __slots__ = ("peak", "label", "flagged", "classified", "dropped", "extracted", "row")

    def __init__(self, peak: int):
        self.peak = peak
        self.label = 0
        self.flagged = False
        self.classified = False
        self.dropped = False
        self.extracted = False
        self.row = None

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


@dataclass(frozen=True)
class NodeSnapshot:
    """Full, picklable state of a :class:`StreamingNode` session.

    Captures everything the node carries between pushes — filter
    cascades, wavelet FIR state, running detection thresholds,
    delineator buffers, the pending-beat queue and any beats awaiting
    deferred classification — but *not* the classifier, which belongs
    to the shard a session runs on.  Produced by
    :meth:`StreamingNode.snapshot`, consumed by
    :meth:`StreamingNode.restore`; serialize with :mod:`pickle` to
    migrate a live session between shards or hosts.
    """

    state: dict = field(repr=False)


class StreamingNode:
    """The whole gated node of Figure 6 as one incremental engine.

    Wires the per-lead :class:`BlockFilter` front ends, the
    :class:`StreamingPeakDetector`, per-beat classification and the
    gated :class:`~repro.dsp.delineation.StreamingDelineator` into a
    single push/flush interface that emits one
    :class:`StreamBeatEvent` per beat, in beat order, as soon as each
    beat's context is complete — with memory bounded by the detector's
    analysis window plus the delineation search span, independent of
    stream length.

    Over a completed stream the events are bit-exact with running the
    same stages at record scale: peaks match the streaming front end
    (:class:`BlockFilter` + :class:`StreamingPeakDetector`, the pair
    ``repro.serving.classify_streams`` runs) kept by segmentation,
    labels match one batched ``classifier.predict`` over the
    segmented, decimated beats, and fiducials of flagged beats match
    :func:`~repro.dsp.delineation.delineate_multilead` on the filtered
    leads with the previous kept peak as guard — the same gated
    schedule :class:`~repro.platform.node_sim.NodeSimulator` replays.
    Events are also invariant to how the stream is chunked.

    Parameters
    ----------
    classifier:
        Anything with ``predict(beats)`` — the float pipeline or the
        integer :class:`~repro.fixedpoint.convert.EmbeddedClassifier`.
    fs:
        Sampling frequency in Hz.
    n_leads:
        Leads per pushed block; all are filtered continuously and feed
        the gated delineation.
    lead:
        Lead driving detection and classification.
    decimation:
        Beat decimation factor before classification (paper: 4).
    window:
        Segmentation window (paper default 100 + 100).
    detector_config / delineation_config:
        Stage tunables.
    overhead_bytes:
        Link-layer overhead added to each queued payload.
    defer_classification:
        ``False`` (default): each beat is classified inline with a
        per-beat ``predict`` call as soon as its window is complete.
        ``True``: the node separates the per-sample front end from
        classification — ``push`` *extracts* pending beats (decimated
        windows) into an outbox instead of classifying them, a caller
        (typically :class:`repro.serving.gateway.StreamGateway`, which
        multiplexes the outboxes of many live sessions into one
        batched classifier pass) collects them via
        :meth:`take_pending` and later returns the labels through
        :meth:`deliver`.  Event content and order are identical in
        both modes; only the ``predict`` batching differs (exact for
        the integer classifier).
    coalesce:
        Input-coalescing threshold in samples (default 1 = process
        every push immediately).  With ``coalesce > 1``, pushes
        smaller than the threshold are stashed and the front end runs
        once the stash reaches it — amortizing the per-call kernel
        overhead when callers stream tiny (per-ADC-block or per-frame)
        chunks.  The streaming stages are partition-invariant, so the
        event sequence is bit-identical to uncoalesced pushes; only
        *when* events are returned shifts (by at most ``coalesce``
        samples, and never past :meth:`flush`).
    """

    def __init__(
        self,
        classifier,
        fs: float,
        n_leads: int = 1,
        lead: int = 0,
        decimation: int = 4,
        window=None,
        detector_config: PeakDetectorConfig | None = None,
        delineation_config: DelineationConfig | None = None,
        overhead_bytes: int = 2,
        defer_classification: bool = False,
        coalesce: int = 1,
    ):
        from repro.ecg.segmentation import BeatWindow
        from repro.platform.radio import FULL_FIDUCIAL_PAYLOAD, PEAK_ONLY_PAYLOAD

        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if n_leads < 1:
            raise ValueError("need at least one lead")
        if not 0 <= lead < n_leads:
            raise ValueError("classification lead outside the pushed leads")
        if decimation < 1:
            raise ValueError("decimation must be >= 1")
        if overhead_bytes < 0:
            raise ValueError("overhead must be non-negative")
        if coalesce < 1:
            raise ValueError("coalesce must be >= 1 sample")
        self.classifier = classifier
        self.fs = fs
        self.n_leads = n_leads
        self.lead = lead
        self.decimation = decimation
        self.window = window or BeatWindow()
        self._filters = [BlockFilter(fs) for _ in range(n_leads)]
        self._detector = StreamingPeakDetector(fs, config=detector_config)
        # Large caller blocks are chopped internally so every stage's
        # scheduling lag — and therefore the retained history — stays
        # bounded no matter how the caller chunks the stream.
        self._chop = max(1, int(round(fs)))
        keep = self._detector.window + self.window.length + 2 * self._chop
        self._delineator = StreamingDelineator(
            fs, config=delineation_config, lookback_s=(keep + self._chop) / fs
        )
        self._seg_keep = keep
        self._seg_buf = np.empty(0)
        self._seg_start = 0
        self._count = 0  # filtered samples consumed so far
        self._origin = 0  # absolute index where the current stream began
        self._queue: deque[_PendingBeat] = deque()
        self._done: dict[int, BeatFiducials] = {}
        self._last_kept: int | None = None
        self._full_bytes = FULL_FIDUCIAL_PAYLOAD + overhead_bytes
        self._peak_bytes = PEAK_ONLY_PAYLOAD + overhead_bytes
        self.defer_classification = bool(defer_classification)
        self._outbox: list[tuple[_PendingBeat, np.ndarray]] = []
        self._coalesce = int(coalesce)
        self._stash: list[np.ndarray] = []
        self._stashed = 0

    @property
    def n_pending(self) -> int:
        """Beats detected but not yet emitted."""
        return len(self._queue)

    @property
    def n_awaiting_labels(self) -> int:
        """Deferred-mode beats extracted but not yet delivered."""
        return sum(
            1 for b in self._queue if b.extracted and not b.classified and not b.dropped
        )

    def snapshot(self) -> NodeSnapshot:
        """Capture the full session state (everything but the classifier).

        The snapshot is an independent deep copy: the live node can
        keep streaming after taking it.  Restore any number of times
        with :meth:`restore` — each restored node continues the stream
        exactly where the snapshot was taken, emitting bit-identical
        events to the uninterrupted original.
        """
        state = {k: v for k, v in self.__dict__.items() if k != "classifier"}
        return NodeSnapshot(state=copy.deepcopy(state))

    @classmethod
    def restore(cls, classifier, snapshot: NodeSnapshot) -> "StreamingNode":
        """Rebuild a session from a :meth:`snapshot`, attaching ``classifier``.

        The classifier is supplied by the restoring shard (it is not
        part of the snapshot); with the integer classifier any shard's
        copy yields identical labels, so a migrated session's events
        stay bit-exact.

        Classification handles do not cross the snapshot boundary:
        beats whose labels were still in flight when the snapshot was
        taken re-enter the restored node's outbox (each beat keeps its
        extracted window until its label arrives), so the restoring
        caller re-collects and classifies them — the original handles
        become irrelevant, and nothing is lost or double-labeled.
        """
        node = cls.__new__(cls)
        node.classifier = classifier
        node.__dict__.update(copy.deepcopy(snapshot.state))
        if node.defer_classification:
            node._outbox = [
                (beat, beat.row)
                for beat in node._queue
                if beat.extracted and not beat.classified and not beat.dropped
            ]
        return node

    def push(self, block: np.ndarray) -> list[StreamBeatEvent]:
        """Feed raw samples ``(n,)`` or ``(n, n_leads)``; return new events."""
        block = np.asarray(block, dtype=float)
        if block.ndim == 1:
            block = block[:, np.newaxis]
        if block.ndim != 2 or block.shape[1] != self.n_leads:
            raise ValueError(f"blocks must be (n,) or (n, {self.n_leads})")
        if self._coalesce > 1:
            # Stash sub-threshold pushes; run the kernels once enough
            # samples accumulate.  The stages are partition-invariant,
            # so this only shifts *when* events surface, never which.
            self._stash.append(block)
            self._stashed += block.shape[0]
            if self._stashed < self._coalesce:
                return []
            block = (
                self._stash[0] if len(self._stash) == 1
                else np.concatenate(self._stash, axis=0)
            )
            self._stash.clear()
            self._stashed = 0
        return self._process(block)

    def _process(self, block: np.ndarray) -> list[StreamBeatEvent]:
        events: list[StreamBeatEvent] = []
        for i in range(0, block.shape[0], self._chop):
            chunk = block[i : i + self._chop]
            filtered = np.column_stack(
                [self._filters[j].push(chunk[:, j]) for j in range(self.n_leads)]
            )
            events.extend(self._advance(filtered, final=False))
        return events

    def flush(self) -> list[StreamBeatEvent]:
        """Finalize the stream; return the remaining events.

        Applies the record-end edge handling of the batch path (filter
        tail, detector tail window, clamped delineation segments) and
        resets the node for a fresh stream on the same timeline.

        In deferred-classify mode the stream end is a three-step
        handshake instead — :meth:`finish_input`, then classification
        of the outbox (:meth:`take_pending` / :meth:`deliver`), then
        :meth:`finalize` — because the remaining beats cannot be
        emitted until their labels come back.
        """
        if self.defer_classification:
            raise RuntimeError(
                "deferred-classify node: end the stream with finish_input(), "
                "deliver the remaining labels, then finalize() "
                "(StreamGateway.close_session drives this)"
            )
        events = self._drain_stash()
        tail = np.column_stack([f.flush() for f in self._filters])
        events += self._advance(tail, final=True)
        self._reset_stream()
        return events

    def _drain_stash(self) -> list[StreamBeatEvent]:
        """Process any coalesced samples still waiting in the stash."""
        if not self._stash:
            return []
        block = (
            self._stash[0] if len(self._stash) == 1
            else np.concatenate(self._stash, axis=0)
        )
        self._stash.clear()
        self._stashed = 0
        return self._process(block)

    def finish_input(self) -> list[StreamBeatEvent]:
        """Deferred mode, step 1 of the stream end: flush the front end.

        Runs the filter tails and the detector's tail window, and
        extracts every remaining classifiable beat into the outbox
        (beats whose window no longer fits are dropped, exactly as
        batch segmentation drops them at a record end).  Returns any
        events that were already fully resolved.  The delineator is
        *not* flushed yet — flagged beats among the outbox still need
        their labels first.
        """
        if not self.defer_classification:
            raise RuntimeError("finish_input() applies to deferred-classify nodes; use flush()")
        events = self._drain_stash()
        tail = np.column_stack([f.flush() for f in self._filters])
        return events + self._advance(tail, final=True)

    def finalize(self) -> list[StreamBeatEvent]:
        """Deferred mode, step 3 of the stream end: emit the tail events.

        Requires every extracted beat to have been :meth:`deliver`-ed.
        Flushes the delineator (stream-end clamped segments, like the
        batch path at a record edge), emits the remaining events and
        resets the node for a fresh stream on the same timeline.
        """
        if not self.defer_classification:
            raise RuntimeError("finalize() applies to deferred-classify nodes; use flush()")
        if self._outbox or self.n_awaiting_labels:
            raise RuntimeError(
                "beats still await classification; take_pending()/deliver() them first"
            )
        for peak, fiducials in self._delineator.flush():
            self._done[peak] = fiducials
        events = self._emit_ready()
        self._reset_stream()
        return events

    def take_pending(self) -> list[tuple[object, np.ndarray]]:
        """Drain the outbox: ``(handle, decimated_window)`` per beat.

        The handles are opaque; pass each back to :meth:`deliver` with
        its label.  Rows are 1-D decimated beat windows ready to be
        stacked into one batched ``predict`` call, in beat order.
        """
        out = self._outbox
        self._outbox = []
        return out

    def deliver(self, resolved) -> list[StreamBeatEvent]:
        """Apply classifier labels to extracted beats; return new events.

        Parameters
        ----------
        resolved:
            Iterable of ``(handle, label)`` pairs, in the order the
            handles came out of :meth:`take_pending`.  Partial
            deliveries are fine (labels may arrive across several
            batch flushes) as long as order is preserved.
        """
        from repro.core.defuzz import is_abnormal

        if not self.defer_classification:
            raise RuntimeError("deliver() applies to deferred-classify nodes")
        resolved = list(resolved)
        flagged = is_abnormal(
            np.asarray([label for _, label in resolved], dtype=np.int64)
        )
        scheduled: list[tuple[int, int | None]] = []
        for (beat, label), flag in zip(resolved, flagged):
            if not isinstance(beat, _PendingBeat) or not beat.extracted:
                raise ValueError("unknown classification handle")
            if beat.classified:
                raise ValueError(f"beat at {beat.peak} was already delivered")
            beat.label = int(label)
            beat.flagged = bool(flag)
            beat.classified = True
            beat.row = None  # window no longer needed once labeled
            previous = self._last_kept
            self._last_kept = beat.peak
            if beat.flagged:
                scheduled.append((beat.peak, previous))
        if scheduled:
            # One vectorized delineation pass for the whole delivery —
            # the pre-delivery hold floor keeps every scheduled beat's
            # left context buffered, so batching the adds is safe.
            for peak, fiducials in self._delineator.add_beats(scheduled):
                self._done[peak] = fiducials
        self._update_hold()
        return self._emit_ready()

    def _reset_stream(self) -> None:
        self._seg_buf = np.empty(0)
        self._origin = self._seg_start = self._count
        self._done.clear()
        self._last_kept = None
        self._stash.clear()
        self._stashed = 0

    def _advance(self, filtered: np.ndarray, final: bool) -> list[StreamBeatEvent]:
        if filtered.shape[0]:
            for peak, fiducials in self._delineator.push(filtered):
                self._done[peak] = fiducials
            self._append_segment_buffer(filtered[:, self.lead])
            new_peaks = self._detector.push(filtered[:, self.lead])
            self._count += filtered.shape[0]
        else:
            new_peaks = []
        if final:
            new_peaks = list(new_peaks) + self._detector.flush()
        for peak in new_peaks:
            self._queue.append(_PendingBeat(int(peak)))
        if self.defer_classification:
            self._extract_ready(final)
        else:
            self._classify_ready(final)
            if final:
                for peak, fiducials in self._delineator.flush():
                    self._done[peak] = fiducials
        return self._emit_ready()

    def _append_segment_buffer(self, filtered_lead: np.ndarray) -> None:
        self._seg_buf = np.concatenate([self._seg_buf, filtered_lead])
        excess = self._seg_buf.size - self._seg_keep
        if excess > 0:
            self._seg_buf = self._seg_buf[excess:]
            self._seg_start += excess

    def _window_ready(self, beat: _PendingBeat, final: bool) -> bool | None:
        """Shared eligibility logic: can this beat's window be cut now?

        Returns ``True`` when the full window is available, ``False``
        when the beat was dropped (window can never fit — the batch
        path's segmentation drops it too), ``None`` when the beat must
        keep waiting for right context (every later beat waits too).
        """
        if beat.peak + self.window.post > self._count:
            if final:
                beat.dropped = True
                return False
            return None
        if beat.peak < self._origin + self.window.pre:
            beat.dropped = True
            return False
        return True

    def _cut_window(self, beat: _PendingBeat) -> np.ndarray:
        from repro.ecg.resample import decimate_beats

        lo = beat.peak - self.window.pre - self._seg_start
        if lo < 0:
            raise RuntimeError("segmentation context discarded before use")
        segment = self._seg_buf[np.newaxis, lo : lo + self.window.length]
        decimated, _ = decimate_beats(segment, self.window, self.decimation)
        return decimated

    def _classify_ready(self, final: bool) -> None:
        from repro.core.defuzz import is_abnormal

        for beat in self._queue:
            if beat.classified or beat.dropped:
                continue
            ready = self._window_ready(beat, final)
            if ready is None:
                break  # later beats have larger peaks — also waiting
            if not ready:
                continue
            label = int(np.asarray(self.classifier.predict(self._cut_window(beat)))[0])
            beat.label = label
            beat.flagged = bool(is_abnormal(np.asarray([label]))[0])
            beat.classified = True
            previous = self._last_kept
            self._last_kept = beat.peak
            if beat.flagged:
                for peak, fiducials in self._delineator.add_beat(
                    beat.peak, previous_peak=previous
                ):
                    self._done[peak] = fiducials

    def _extract_ready(self, final: bool) -> None:
        """Deferred mode: move ready beats into the outbox, unlabeled.

        Windows are cut at exactly the points :meth:`_classify_ready`
        would classify them (same segment buffer content), so deferred
        and inline modes see identical decimated windows; only the
        ``predict`` call moves.  The delineator is told to keep the
        earliest unresolved beat's context alive until the labels
        arrive (a flagged verdict schedules delineation retroactively).
        """
        for beat in self._queue:
            if beat.classified or beat.dropped or beat.extracted:
                continue
            ready = self._window_ready(beat, final)
            if ready is None:
                break
            if not ready:
                continue
            beat.extracted = True
            beat.row = self._cut_window(beat)[0]
            self._outbox.append((beat, beat.row))
        self._update_hold()

    def _update_hold(self) -> None:
        """Point the delineator's retention floor at the earliest beat
        whose verdict is still unknown (it may yet be flagged)."""
        for beat in self._queue:
            if not beat.classified and not beat.dropped:
                self._delineator.hold(beat.peak)
                return
        self._delineator.hold(None)

    def _emit_ready(self) -> list[StreamBeatEvent]:
        events: list[StreamBeatEvent] = []
        while self._queue:
            beat = self._queue[0]
            if beat.dropped:
                self._queue.popleft()
                continue
            if not beat.classified:
                break
            fiducials = None
            if beat.flagged:
                if beat.peak not in self._done:
                    break  # delineation context still arriving
                fiducials = self._done.pop(beat.peak)
            events.append(
                StreamBeatEvent(
                    peak=beat.peak,
                    label=beat.label,
                    flagged=beat.flagged,
                    tx_bytes=self._full_bytes if beat.flagged else self._peak_bytes,
                    fiducials=fiducials,
                )
            )
            self._queue.popleft()
        return events
