"""Streaming (block-wise) processing — truly incremental, front to back.

The batch functions in :mod:`repro.dsp.morphological` and
:mod:`repro.dsp.peak_detection` consume whole records; a WBSN consumes
an ADC stream and must process it in small blocks with bounded memory.
This module provides that engine:

* :class:`BlockFilter` — a cascade of :class:`~repro.dsp.kernels.StreamingExtremum`
  stages (erosion/dilation for baseline removal, opening/closing for
  denoising) plus a delay line for the baseline subtraction.  Every
  stage carries its sliding-extremum running state across ``push``
  calls, so each sample is touched a constant number of times no
  matter the block size — amortized O(block) work per push, instead of
  re-filtering a ``context + block`` buffer with the batch kernels on
  every call.  The cascade seeds each stage with its first input
  (matching the batch operators' left edge replication) and ``flush``
  replicates each stage's last input (matching the right edge), which
  makes the streamed output **bit-exact** with
  ``filter_lead(whole_record)`` from the very first sample.
* :class:`StreamingPeakDetector` — wavelet peak detection over the
  filtered stream.  A :class:`~repro.dsp.wavelet.StreamingWavelet`
  carries the FIR state of all eight à-trous filters (each sample is
  filtered once; the per-window transform recomputation of the old
  scheduler is gone) and per-scale running energy sums carry the
  detection thresholds across windows.  Only the cheap pairing /
  refractory / search-back logic runs per analysis window, on the
  buffered coefficients.

* :class:`StreamingNode` — the whole gated node of Figure 6 as one
  incremental engine: per-lead :class:`BlockFilter` front ends, the
  :class:`StreamingPeakDetector`, per-beat classification, and the
  gated :class:`~repro.dsp.delineation.StreamingDelineator` for beats
  flagged abnormal.  It emits one :class:`StreamBeatEvent` per beat
  (label, fiducials, tx payload) incrementally, in beat order, and is
  bit-exact with the batch pipeline over the completed record.

The filter/detector classes record no op counts: the counters model
the embedded firmware's *batch-equivalent* arithmetic, which is
unchanged (see :mod:`repro.dsp.morphological`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dsp.delineation import (
    BeatFiducials,
    DelineationConfig,
    StreamingDelineator,
)
from repro.dsp.kernels import StreamingExtremum
from repro.dsp.morphological import structuring_element_length
from repro.dsp.peak_detection import PeakDetectorConfig, detect_peaks_from_wavelet
from repro.dsp.wavelet import StreamingWavelet

#: Window durations (seconds) of the filter_lead chain, shared with
#: :mod:`repro.dsp.morphological`'s defaults.
OPENING_WINDOW_S = 0.2
CLOSING_WINDOW_S = 0.3
DENOISE_WINDOW_S = 0.014


def filter_context_samples(fs: float) -> int:
    """One-sided context (= exact latency) of the filtering chain.

    The baseline-removal opening/closing use structuring elements of
    0.2 s and 0.3 s; a cascade of erosion+dilation with element length
    ``m`` looks ``m - 1`` samples in each direction, so two cascaded
    stages need the sum of their supports, and the denoising stage
    adds its short element.  Equals
    :attr:`BlockFilter.delay_samples`: output ``i`` is final once
    input ``i + context`` has arrived.
    """
    opening = structuring_element_length(OPENING_WINDOW_S, fs)
    closing = structuring_element_length(CLOSING_WINDOW_S, fs)
    denoise = structuring_element_length(DENOISE_WINDOW_S, fs)
    return (opening - 1) + (closing - 1) + (denoise - 1)


class BlockFilter:
    """Incremental morphological filtering, bit-exact with the batch path.

    Parameters
    ----------
    fs:
        Sampling frequency in Hz.

    Notes
    -----
    ``push(block)`` returns the filtered samples that became *final*
    with this block (their two-sided context is complete); ``flush()``
    returns the tail, computed with the same edge replication the batch
    path applies at the record end, and resets the filter for a fresh
    stream.  Concatenating every return value reproduces
    ``filter_lead(whole_record)`` exactly — including the first
    ``context`` samples, because each streaming stage seeds itself with
    its first input value, which is precisely the batch operators'
    left edge padding.

    Unlike the original scheduler, which re-ran the batch kernels over
    a ``context + block`` buffer on every call (O((context + block)·m)
    work per push), each stage here advances its own running state:
    the amortized work per push is O(block), independent of both the
    structuring-element lengths and the retained context.
    """

    def __init__(self, fs: float):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        self.fs = fs
        self.context = filter_context_samples(fs)
        self._opening_length = structuring_element_length(OPENING_WINDOW_S, fs)
        self._closing_length = structuring_element_length(CLOSING_WINDOW_S, fs)
        self._denoise_length = structuring_element_length(DENOISE_WINDOW_S, fs)
        self._reset_stages()

    def _reset_stages(self) -> None:
        m1, m2, m3 = self._opening_length, self._closing_length, self._denoise_length
        # remove_baseline: closing(opening(x, m1), m2), then x - baseline.
        self._baseline = [
            StreamingExtremum(m1, maximum=False),
            StreamingExtremum(m1, maximum=True),
            StreamingExtremum(m2, maximum=True),
            StreamingExtremum(m2, maximum=False),
        ]
        # suppress_noise: (opening(y, m3) + closing(y, m3)) / 2.
        self._open = [
            StreamingExtremum(m3, maximum=False),
            StreamingExtremum(m3, maximum=True),
        ]
        self._close = [
            StreamingExtremum(m3, maximum=True),
            StreamingExtremum(m3, maximum=False),
        ]
        self._raw = np.empty(0)  # delay line for the baseline subtraction

    @property
    def delay_samples(self) -> int:
        """Exact output latency: output ``i`` is emitted once input
        ``i + delay_samples`` has been pushed (each stage of the
        cascade withholds its one-sided lookahead)."""
        stages = self._baseline + self._open
        return sum(stage.right for stage in stages)

    @staticmethod
    def _through(stages: list[StreamingExtremum], block: np.ndarray) -> np.ndarray:
        for stage in stages:
            block = stage.push(block)
        return block

    def push(self, block: np.ndarray) -> np.ndarray:
        """Feed a block; return newly finalized filtered samples."""
        block = np.asarray(block, dtype=float)
        if block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        self._raw = np.concatenate([self._raw, block])
        baseline = self._through(self._baseline, block)
        return self._denoise(self._debase(baseline))

    def flush(self) -> np.ndarray:
        """Finalize the tail (edge-replicated, like the batch path).

        Resets the filter afterwards: a subsequent ``push`` starts a
        fresh stream.
        """
        baseline = self._flush_cascade(self._baseline)
        debased = self._debase(baseline)
        opened = np.concatenate(
            [self._through(self._open, debased), self._flush_cascade(self._open)]
        )
        closed = np.concatenate(
            [self._through(self._close, debased), self._flush_cascade(self._close)]
        )
        out = (opened + closed) / 2.0
        self._reset_stages()
        return out

    @staticmethod
    def _flush_cascade(stages: list[StreamingExtremum]) -> np.ndarray:
        """Flush a stage cascade in order, forwarding tails downstream."""
        out = np.empty(0)
        for i, stage in enumerate(stages):
            out = np.concatenate([stage.push(out), stage.flush()])
        return out

    def _debase(self, baseline: np.ndarray) -> np.ndarray:
        """Pair finalized baseline samples with the delayed raw signal."""
        if baseline.size == 0:
            return baseline
        debased = self._raw[: baseline.size] - baseline
        self._raw = self._raw[baseline.size :]
        return debased

    def _denoise(self, debased: np.ndarray) -> np.ndarray:
        opened = self._through(self._open, debased)
        closed = self._through(self._close, debased)
        return (opened + closed) / 2.0


class StreamingPeakDetector:
    """Incremental wavelet peak detection over the filtered stream.

    Parameters
    ----------
    fs:
        Sampling frequency.
    window_s:
        Analysis window length in seconds (detections are confirmed
        per window, matching how the embedded code schedules the
        pairing logic).
    overlap_s:
        Overlap between consecutive windows; must exceed one beat so no
        peak can fall entirely inside a window seam.
    config:
        Detector tunables.
    threshold_time_constant_s:
        Time constant of the exponentially decayed energy estimate the
        detection thresholds derive from.  The default (3 s, a few
        beats) recovers from large amplitude steps within a window or
        two, preserving the adaptivity the per-window RMS thresholds
        had on non-stationary streams.

    Notes
    -----
    The original scheduler re-ran the whole batch detector — including
    the four-scale à-trous transform — over every 10 s analysis
    window.  This detector is stateful end to end: the
    :class:`~repro.dsp.wavelet.StreamingWavelet` filters each sample
    exactly once (bit-exact with the batch transform), exponentially
    decayed per-scale energy sums carry the detection thresholds
    across windows, and only the pairing / refractory / search-back
    logic runs per window, on the buffered coefficient columns.

    ``flush`` analyzes the remaining tail and *resets the stream
    state*: the absolute sample origin of a subsequent ``push`` is
    preserved, so peak indices keep referring to the same global
    timeline (the original implementation left the origin stale).
    """

    def __init__(
        self,
        fs: float,
        window_s: float = 10.0,
        overlap_s: float = 1.5,
        config: PeakDetectorConfig | None = None,
        threshold_time_constant_s: float = 3.0,
    ):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if overlap_s <= 0 or window_s <= 2 * overlap_s:
            raise ValueError("need window_s > 2 * overlap_s > 0")
        if threshold_time_constant_s <= 0:
            raise ValueError("threshold time constant must be positive")
        self.fs = fs
        self.window = int(round(window_s * fs))
        self.overlap = int(round(overlap_s * fs))
        self.config = config or PeakDetectorConfig()
        self._wavelet = StreamingWavelet(n_scales=4)
        self._coeffs = np.empty((4, 0))
        self._offset = 0  # absolute index of coeffs[:, 0]
        self._consumed = 0  # absolute samples pushed so far
        # Exponentially decayed per-scale energy: keeps the adaptivity
        # the old per-window RMS thresholds had, without recomputing
        # any RMS over the buffer.
        self._decay = float(np.exp(-1.0 / (threshold_time_constant_s * fs)))
        self._sumsq = np.zeros(4)
        self._count = 0.0
        self._energy_pos = 0  # absolute index energy is folded through
        self._peaks: list[int] = []

    def _thresholds(self) -> np.ndarray:
        """Running per-scale thresholds from the carried energy sums."""
        if self._count <= 0.0:
            return np.zeros(4)
        return self.config.threshold_factor * np.sqrt(self._sumsq / self._count)

    def _append(self, columns: np.ndarray) -> None:
        if columns.shape[1]:
            self._coeffs = np.concatenate([self._coeffs, columns], axis=1)

    def _fold_energy(self, through: int) -> None:
        """Fold buffered coefficient energy into the decayed sums.

        ``through`` is an absolute sample index; energy is folded
        strictly causally (never past the window being analyzed) and
        at window-consumption points only, so detections are invariant
        to how the caller chunks the stream.
        """
        k = through - self._energy_pos
        if k <= 0:
            return
        columns = self._coeffs[:, self._energy_pos - self._offset : through - self._offset]
        weights = self._decay ** np.arange(k - 1, -1, -1)
        decayed = self._decay**k
        self._sumsq = self._sumsq * decayed + np.square(columns) @ weights
        self._count = self._count * decayed + float(weights.sum())
        self._energy_pos = through

    def push(self, filtered_block: np.ndarray) -> list[int]:
        """Feed filtered samples; return newly confirmed peak indices."""
        filtered_block = np.asarray(filtered_block, dtype=float)
        if filtered_block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        self._consumed += filtered_block.size
        self._append(self._wavelet.push(filtered_block))
        new_peaks: list[int] = []
        while self._coeffs.shape[1] >= self.window:
            segment = self._coeffs[:, : self.window]
            self._fold_energy(self._offset + self.window)
            detected = (
                detect_peaks_from_wavelet(segment, self._thresholds(), self.fs, self.config)
                + self._offset
            )
            # Peaks inside the trailing overlap are re-examined by the
            # next window (they may lack right context here).
            confirm_before = self._offset + self.window - self.overlap
            for peak in detected:
                if peak < confirm_before:
                    new_peaks.append(int(peak))
            advance = self.window - self.overlap
            self._coeffs = self._coeffs[:, advance:]
            self._offset += advance
        return self._merge(new_peaks)

    def flush(self) -> list[int]:
        """Analyze the remaining tail and return its confirmed peaks.

        Afterwards the detector is ready for more ``push`` calls: the
        wavelet state restarts (the stream was cut), but the absolute
        origin advances past all consumed samples so later peak indices
        stay on the global timeline, and confirmed peaks plus running
        thresholds are retained.
        """
        self._append(self._wavelet.flush())
        out: list[int] = []
        if self._coeffs.shape[1] >= int(0.5 * self.fs):
            self._fold_energy(self._offset + self._coeffs.shape[1])
            detected = (
                detect_peaks_from_wavelet(
                    self._coeffs, self._thresholds(), self.fs, self.config
                )
                + self._offset
            )
            out = self._merge(int(p) for p in detected)
        self._coeffs = np.empty((4, 0))
        self._offset = self._consumed
        self._energy_pos = self._consumed
        return out

    def _merge(self, candidates) -> list[int]:
        """Deduplicate against already-confirmed peaks (refractory)."""
        refractory = int(round(self.config.refractory * self.fs))
        accepted: list[int] = []
        for peak in sorted(candidates):
            last = self._peaks[-1] if self._peaks else None
            if last is not None and peak - last < refractory:
                continue
            self._peaks.append(peak)
            accepted.append(peak)
        return accepted

    @property
    def peaks(self) -> np.ndarray:
        """All confirmed peaks so far (absolute sample indices)."""
        return np.asarray(self._peaks, dtype=np.int64)


@dataclass(frozen=True)
class StreamBeatEvent:
    """One beat, fully processed by the gated node.

    ``fiducials`` is populated only for beats the classifier flagged
    abnormal (the gated detailed analysis); ``tx_bytes`` is the radio
    payload the node queues for this beat — full-fiducial for flagged
    beats, peak-only otherwise.
    """

    peak: int
    label: int
    flagged: bool
    tx_bytes: int
    fiducials: BeatFiducials | None = None


class _PendingBeat:
    """Mutable per-beat state while a beat moves through the node."""

    __slots__ = ("peak", "label", "flagged", "classified", "dropped")

    def __init__(self, peak: int):
        self.peak = peak
        self.label = 0
        self.flagged = False
        self.classified = False
        self.dropped = False


class StreamingNode:
    """The whole gated node of Figure 6 as one incremental engine.

    Wires the per-lead :class:`BlockFilter` front ends, the
    :class:`StreamingPeakDetector`, per-beat classification and the
    gated :class:`~repro.dsp.delineation.StreamingDelineator` into a
    single push/flush interface that emits one
    :class:`StreamBeatEvent` per beat, in beat order, as soon as each
    beat's context is complete — with memory bounded by the detector's
    analysis window plus the delineation search span, independent of
    stream length.

    Over a completed stream the events are bit-exact with running the
    same stages at record scale: peaks match the streaming front end
    (:class:`BlockFilter` + :class:`StreamingPeakDetector`, the pair
    ``repro.serving.classify_streams`` runs) kept by segmentation,
    labels match one batched ``classifier.predict`` over the
    segmented, decimated beats, and fiducials of flagged beats match
    :func:`~repro.dsp.delineation.delineate_multilead` on the filtered
    leads with the previous kept peak as guard — the same gated
    schedule :class:`~repro.platform.node_sim.NodeSimulator` replays.
    Events are also invariant to how the stream is chunked.

    Parameters
    ----------
    classifier:
        Anything with ``predict(beats)`` — the float pipeline or the
        integer :class:`~repro.fixedpoint.convert.EmbeddedClassifier`.
    fs:
        Sampling frequency in Hz.
    n_leads:
        Leads per pushed block; all are filtered continuously and feed
        the gated delineation.
    lead:
        Lead driving detection and classification.
    decimation:
        Beat decimation factor before classification (paper: 4).
    window:
        Segmentation window (paper default 100 + 100).
    detector_config / delineation_config:
        Stage tunables.
    overhead_bytes:
        Link-layer overhead added to each queued payload.
    """

    def __init__(
        self,
        classifier,
        fs: float,
        n_leads: int = 1,
        lead: int = 0,
        decimation: int = 4,
        window=None,
        detector_config: PeakDetectorConfig | None = None,
        delineation_config: DelineationConfig | None = None,
        overhead_bytes: int = 2,
    ):
        from repro.ecg.segmentation import BeatWindow
        from repro.platform.radio import FULL_FIDUCIAL_PAYLOAD, PEAK_ONLY_PAYLOAD

        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if n_leads < 1:
            raise ValueError("need at least one lead")
        if not 0 <= lead < n_leads:
            raise ValueError("classification lead outside the pushed leads")
        if decimation < 1:
            raise ValueError("decimation must be >= 1")
        if overhead_bytes < 0:
            raise ValueError("overhead must be non-negative")
        self.classifier = classifier
        self.fs = fs
        self.n_leads = n_leads
        self.lead = lead
        self.decimation = decimation
        self.window = window or BeatWindow()
        self._filters = [BlockFilter(fs) for _ in range(n_leads)]
        self._detector = StreamingPeakDetector(fs, config=detector_config)
        # Large caller blocks are chopped internally so every stage's
        # scheduling lag — and therefore the retained history — stays
        # bounded no matter how the caller chunks the stream.
        self._chop = max(1, int(round(fs)))
        keep = self._detector.window + self.window.length + 2 * self._chop
        self._delineator = StreamingDelineator(
            fs, config=delineation_config, lookback_s=(keep + self._chop) / fs
        )
        self._seg_keep = keep
        self._seg_buf = np.empty(0)
        self._seg_start = 0
        self._count = 0  # filtered samples consumed so far
        self._origin = 0  # absolute index where the current stream began
        self._queue: deque[_PendingBeat] = deque()
        self._done: dict[int, BeatFiducials] = {}
        self._last_kept: int | None = None
        self._full_bytes = FULL_FIDUCIAL_PAYLOAD + overhead_bytes
        self._peak_bytes = PEAK_ONLY_PAYLOAD + overhead_bytes

    @property
    def n_pending(self) -> int:
        """Beats detected but not yet emitted."""
        return len(self._queue)

    def push(self, block: np.ndarray) -> list[StreamBeatEvent]:
        """Feed raw samples ``(n,)`` or ``(n, n_leads)``; return new events."""
        block = np.asarray(block, dtype=float)
        if block.ndim == 1:
            block = block[:, np.newaxis]
        if block.ndim != 2 or block.shape[1] != self.n_leads:
            raise ValueError(f"blocks must be (n,) or (n, {self.n_leads})")
        events: list[StreamBeatEvent] = []
        for i in range(0, block.shape[0], self._chop):
            chunk = block[i : i + self._chop]
            filtered = np.column_stack(
                [self._filters[j].push(chunk[:, j]) for j in range(self.n_leads)]
            )
            events.extend(self._advance(filtered, final=False))
        return events

    def flush(self) -> list[StreamBeatEvent]:
        """Finalize the stream; return the remaining events.

        Applies the record-end edge handling of the batch path (filter
        tail, detector tail window, clamped delineation segments) and
        resets the node for a fresh stream on the same timeline.
        """
        tail = np.column_stack([f.flush() for f in self._filters])
        events = self._advance(tail, final=True)
        self._seg_buf = np.empty(0)
        self._origin = self._seg_start = self._count
        self._done.clear()
        self._last_kept = None
        return events

    def _advance(self, filtered: np.ndarray, final: bool) -> list[StreamBeatEvent]:
        if filtered.shape[0]:
            for peak, fiducials in self._delineator.push(filtered):
                self._done[peak] = fiducials
            self._append_segment_buffer(filtered[:, self.lead])
            new_peaks = self._detector.push(filtered[:, self.lead])
            self._count += filtered.shape[0]
        else:
            new_peaks = []
        if final:
            new_peaks = list(new_peaks) + self._detector.flush()
        for peak in new_peaks:
            self._queue.append(_PendingBeat(int(peak)))
        self._classify_ready(final)
        if final:
            for peak, fiducials in self._delineator.flush():
                self._done[peak] = fiducials
        return self._emit_ready()

    def _append_segment_buffer(self, filtered_lead: np.ndarray) -> None:
        self._seg_buf = np.concatenate([self._seg_buf, filtered_lead])
        excess = self._seg_buf.size - self._seg_keep
        if excess > 0:
            self._seg_buf = self._seg_buf[excess:]
            self._seg_start += excess

    def _classify_ready(self, final: bool) -> None:
        from repro.core.defuzz import is_abnormal
        from repro.ecg.resample import decimate_beats

        for beat in self._queue:
            if beat.classified or beat.dropped:
                continue
            if beat.peak + self.window.post > self._count:
                if final:
                    # The stream ended before the window fit: the batch
                    # path's segmentation drops this beat too.
                    beat.dropped = True
                    continue
                break  # later beats have larger peaks — also waiting
            if beat.peak < self._origin + self.window.pre:
                # Too close to the stream start for a full window: the
                # batch path's segmentation drops this beat too.
                beat.dropped = True
                continue
            lo = beat.peak - self.window.pre - self._seg_start
            if lo < 0:
                raise RuntimeError("segmentation context discarded before use")
            segment = self._seg_buf[np.newaxis, lo : lo + self.window.length]
            decimated, _ = decimate_beats(segment, self.window, self.decimation)
            label = int(np.asarray(self.classifier.predict(decimated))[0])
            beat.label = label
            beat.flagged = bool(is_abnormal(np.asarray([label]))[0])
            beat.classified = True
            previous = self._last_kept
            self._last_kept = beat.peak
            if beat.flagged:
                for peak, fiducials in self._delineator.add_beat(
                    beat.peak, previous_peak=previous
                ):
                    self._done[peak] = fiducials

    def _emit_ready(self) -> list[StreamBeatEvent]:
        events: list[StreamBeatEvent] = []
        while self._queue:
            beat = self._queue[0]
            if beat.dropped:
                self._queue.popleft()
                continue
            if not beat.classified:
                break
            fiducials = None
            if beat.flagged:
                if beat.peak not in self._done:
                    break  # delineation context still arriving
                fiducials = self._done.pop(beat.peak)
            events.append(
                StreamBeatEvent(
                    peak=beat.peak,
                    label=beat.label,
                    flagged=beat.flagged,
                    tx_bytes=self._full_bytes if beat.flagged else self._peak_bytes,
                    fiducials=fiducials,
                )
            )
            self._queue.popleft()
        return events
