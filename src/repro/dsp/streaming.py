"""Streaming (block-wise) front-end processing.

The batch functions in :mod:`repro.dsp.morphological` and
:mod:`repro.dsp.peak_detection` consume whole records; a WBSN consumes
an ADC stream and must process it in small blocks with bounded memory.
This module provides the block scheduler that firmware uses:

* :class:`BlockFilter` — feeds arbitrary-sized sample blocks through
  the morphological filtering chain and emits filtered samples exactly
  equal to the batch output (once enough context has arrived; the
  stitching context is sized from the filters' supports);
* :class:`StreamingPeakDetector` — runs the wavelet detector over
  overlapping analysis windows of the filtered stream and merges the
  per-window detections into one strictly-increasing peak sequence.

Both are *schedulers*: they reuse the exact batch kernels, so every
numerical property (and op count) of the batch path carries over — the
tests assert bit-exact filtered samples and matched peak sets.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import PeakDetectorConfig, detect_peaks


def filter_context_samples(fs: float) -> int:
    """One-sided context the filtering chain needs for exact stitching.

    The baseline-removal opening/closing use structuring elements of
    0.2 s and 0.3 s; a cascade of erosion+dilation with element length
    ``m`` looks ``m - 1`` samples in each direction, so two cascaded
    stages need the sum of their supports; the denoising stage adds its
    short element.  One extra sample absorbs the odd-length rounding.
    """
    opening = max(3, int(round(0.2 * fs)) | 1)
    closing = max(3, int(round(0.3 * fs)) | 1)
    denoise = max(3, int(round(0.014 * fs)) | 1)
    return (opening - 1) + (closing - 1) + (denoise - 1) + 1


class BlockFilter:
    """Incremental morphological filtering with exact batch equivalence.

    Parameters
    ----------
    fs:
        Sampling frequency in Hz.

    Notes
    -----
    ``push(block)`` returns the filtered samples that became *final*
    with this block (their two-sided context is complete); ``flush()``
    returns the tail, computed with the same edge replication the batch
    path applies at the record end.  Concatenating every return value
    reproduces ``filter_lead(whole_record)`` except in the first
    ``context`` samples, where the streaming path has seen less left
    context than the batch path's edge padding assumed — firmware
    discards that warm-up period anyway.
    """

    def __init__(self, fs: float):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        self.fs = fs
        self.context = filter_context_samples(fs)
        self._buffer = np.empty(0, dtype=float)
        self._emitted = 0  # samples already returned to the caller

    @property
    def delay_samples(self) -> int:
        """Output latency: samples withheld until their context arrives."""
        return self.context

    def push(self, block: np.ndarray) -> np.ndarray:
        """Feed a block; return newly finalized filtered samples."""
        block = np.asarray(block, dtype=float)
        if block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        self._buffer = np.concatenate([self._buffer, block])
        # Samples up to len(buffer) - context have full right context.
        finalized_end = self._buffer.size - self.context
        if finalized_end <= self._emitted:
            return np.empty(0, dtype=float)
        filtered = filter_lead(self._buffer, self.fs)
        out = filtered[self._emitted : finalized_end]
        self._emitted = finalized_end
        # Keep only what future samples still need as left context.
        keep_from = max(0, self._emitted - self.context)
        self._buffer = self._buffer[keep_from:]
        self._emitted -= keep_from
        return out

    def flush(self) -> np.ndarray:
        """Finalize the tail (edge-replicated, like the batch path)."""
        if self._buffer.size == 0 or self._emitted >= self._buffer.size:
            return np.empty(0, dtype=float)
        filtered = filter_lead(self._buffer, self.fs)
        out = filtered[self._emitted :]
        self._emitted = self._buffer.size
        return out


class StreamingPeakDetector:
    """Block-wise wavelet peak detection over the filtered stream.

    Parameters
    ----------
    fs:
        Sampling frequency.
    window_s:
        Analysis window length in seconds (the detector's thresholds
        are derived per window, matching how the embedded code adapts
        to slow amplitude changes).
    overlap_s:
        Overlap between consecutive windows; must exceed one beat so no
        peak can fall entirely inside a window seam.
    config:
        Detector tunables.
    """

    def __init__(
        self,
        fs: float,
        window_s: float = 10.0,
        overlap_s: float = 1.5,
        config: PeakDetectorConfig | None = None,
    ):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if overlap_s <= 0 or window_s <= 2 * overlap_s:
            raise ValueError("need window_s > 2 * overlap_s > 0")
        self.fs = fs
        self.window = int(round(window_s * fs))
        self.overlap = int(round(overlap_s * fs))
        self.config = config or PeakDetectorConfig()
        self._buffer = np.empty(0, dtype=float)
        self._offset = 0  # absolute index of buffer[0]
        self._peaks: list[int] = []

    def push(self, filtered_block: np.ndarray) -> list[int]:
        """Feed filtered samples; return newly confirmed peak indices."""
        filtered_block = np.asarray(filtered_block, dtype=float)
        if filtered_block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        self._buffer = np.concatenate([self._buffer, filtered_block])
        new_peaks: list[int] = []
        while self._buffer.size >= self.window:
            segment = self._buffer[: self.window]
            detected = detect_peaks(segment, self.fs, self.config) + self._offset
            # Peaks inside the trailing overlap are re-examined by the
            # next window (they may lack right context here).
            confirm_before = self._offset + self.window - self.overlap
            for peak in detected:
                if peak < confirm_before:
                    new_peaks.append(int(peak))
            advance = self.window - self.overlap
            self._buffer = self._buffer[advance:]
            self._offset += advance
        merged = self._merge(new_peaks)
        return merged

    def flush(self) -> list[int]:
        """Analyze the remaining tail and return its confirmed peaks."""
        if self._buffer.size < int(0.5 * self.fs):
            return []
        detected = detect_peaks(self._buffer, self.fs, self.config) + self._offset
        out = self._merge(int(p) for p in detected)
        self._buffer = np.empty(0, dtype=float)
        return out

    def _merge(self, candidates) -> list[int]:
        """Deduplicate against already-confirmed peaks (refractory)."""
        refractory = int(round(self.config.refractory * self.fs))
        accepted: list[int] = []
        for peak in sorted(candidates):
            last = self._peaks[-1] if self._peaks else None
            if last is not None and peak - last < refractory:
                continue
            self._peaks.append(peak)
            accepted.append(peak)
        return accepted

    @property
    def peaks(self) -> np.ndarray:
        """All confirmed peaks so far (absolute sample indices)."""
        return np.asarray(self._peaks, dtype=np.int64)
