"""Streaming (block-wise) front-end processing — truly incremental.

The batch functions in :mod:`repro.dsp.morphological` and
:mod:`repro.dsp.peak_detection` consume whole records; a WBSN consumes
an ADC stream and must process it in small blocks with bounded memory.
This module provides that engine:

* :class:`BlockFilter` — a cascade of :class:`~repro.dsp.kernels.StreamingExtremum`
  stages (erosion/dilation for baseline removal, opening/closing for
  denoising) plus a delay line for the baseline subtraction.  Every
  stage carries its sliding-extremum running state across ``push``
  calls, so each sample is touched a constant number of times no
  matter the block size — amortized O(block) work per push, instead of
  re-filtering a ``context + block`` buffer with the batch kernels on
  every call.  The cascade seeds each stage with its first input
  (matching the batch operators' left edge replication) and ``flush``
  replicates each stage's last input (matching the right edge), which
  makes the streamed output **bit-exact** with
  ``filter_lead(whole_record)`` from the very first sample.
* :class:`StreamingPeakDetector` — wavelet peak detection over the
  filtered stream.  A :class:`~repro.dsp.wavelet.StreamingWavelet`
  carries the FIR state of all eight à-trous filters (each sample is
  filtered once; the per-window transform recomputation of the old
  scheduler is gone) and per-scale running energy sums carry the
  detection thresholds across windows.  Only the cheap pairing /
  refractory / search-back logic runs per analysis window, on the
  buffered coefficients.

Neither class records op counts: the counters model the embedded
firmware's *batch-equivalent* arithmetic, which is unchanged (see
:mod:`repro.dsp.morphological`).
"""

from __future__ import annotations

import numpy as np

from repro.dsp.kernels import StreamingExtremum
from repro.dsp.morphological import structuring_element_length
from repro.dsp.peak_detection import PeakDetectorConfig, detect_peaks_from_wavelet
from repro.dsp.wavelet import StreamingWavelet

#: Window durations (seconds) of the filter_lead chain, shared with
#: :mod:`repro.dsp.morphological`'s defaults.
OPENING_WINDOW_S = 0.2
CLOSING_WINDOW_S = 0.3
DENOISE_WINDOW_S = 0.014


def filter_context_samples(fs: float) -> int:
    """One-sided context (= exact latency) of the filtering chain.

    The baseline-removal opening/closing use structuring elements of
    0.2 s and 0.3 s; a cascade of erosion+dilation with element length
    ``m`` looks ``m - 1`` samples in each direction, so two cascaded
    stages need the sum of their supports, and the denoising stage
    adds its short element.  Equals
    :attr:`BlockFilter.delay_samples`: output ``i`` is final once
    input ``i + context`` has arrived.
    """
    opening = structuring_element_length(OPENING_WINDOW_S, fs)
    closing = structuring_element_length(CLOSING_WINDOW_S, fs)
    denoise = structuring_element_length(DENOISE_WINDOW_S, fs)
    return (opening - 1) + (closing - 1) + (denoise - 1)


class BlockFilter:
    """Incremental morphological filtering, bit-exact with the batch path.

    Parameters
    ----------
    fs:
        Sampling frequency in Hz.

    Notes
    -----
    ``push(block)`` returns the filtered samples that became *final*
    with this block (their two-sided context is complete); ``flush()``
    returns the tail, computed with the same edge replication the batch
    path applies at the record end, and resets the filter for a fresh
    stream.  Concatenating every return value reproduces
    ``filter_lead(whole_record)`` exactly — including the first
    ``context`` samples, because each streaming stage seeds itself with
    its first input value, which is precisely the batch operators'
    left edge padding.

    Unlike the original scheduler, which re-ran the batch kernels over
    a ``context + block`` buffer on every call (O((context + block)·m)
    work per push), each stage here advances its own running state:
    the amortized work per push is O(block), independent of both the
    structuring-element lengths and the retained context.
    """

    def __init__(self, fs: float):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        self.fs = fs
        self.context = filter_context_samples(fs)
        self._opening_length = structuring_element_length(OPENING_WINDOW_S, fs)
        self._closing_length = structuring_element_length(CLOSING_WINDOW_S, fs)
        self._denoise_length = structuring_element_length(DENOISE_WINDOW_S, fs)
        self._reset_stages()

    def _reset_stages(self) -> None:
        m1, m2, m3 = self._opening_length, self._closing_length, self._denoise_length
        # remove_baseline: closing(opening(x, m1), m2), then x - baseline.
        self._baseline = [
            StreamingExtremum(m1, maximum=False),
            StreamingExtremum(m1, maximum=True),
            StreamingExtremum(m2, maximum=True),
            StreamingExtremum(m2, maximum=False),
        ]
        # suppress_noise: (opening(y, m3) + closing(y, m3)) / 2.
        self._open = [
            StreamingExtremum(m3, maximum=False),
            StreamingExtremum(m3, maximum=True),
        ]
        self._close = [
            StreamingExtremum(m3, maximum=True),
            StreamingExtremum(m3, maximum=False),
        ]
        self._raw = np.empty(0)  # delay line for the baseline subtraction

    @property
    def delay_samples(self) -> int:
        """Exact output latency: output ``i`` is emitted once input
        ``i + delay_samples`` has been pushed (each stage of the
        cascade withholds its one-sided lookahead)."""
        stages = self._baseline + self._open
        return sum(stage.right for stage in stages)

    @staticmethod
    def _through(stages: list[StreamingExtremum], block: np.ndarray) -> np.ndarray:
        for stage in stages:
            block = stage.push(block)
        return block

    def push(self, block: np.ndarray) -> np.ndarray:
        """Feed a block; return newly finalized filtered samples."""
        block = np.asarray(block, dtype=float)
        if block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        self._raw = np.concatenate([self._raw, block])
        baseline = self._through(self._baseline, block)
        return self._denoise(self._debase(baseline))

    def flush(self) -> np.ndarray:
        """Finalize the tail (edge-replicated, like the batch path).

        Resets the filter afterwards: a subsequent ``push`` starts a
        fresh stream.
        """
        baseline = self._flush_cascade(self._baseline)
        debased = self._debase(baseline)
        opened = np.concatenate(
            [self._through(self._open, debased), self._flush_cascade(self._open)]
        )
        closed = np.concatenate(
            [self._through(self._close, debased), self._flush_cascade(self._close)]
        )
        out = (opened + closed) / 2.0
        self._reset_stages()
        return out

    @staticmethod
    def _flush_cascade(stages: list[StreamingExtremum]) -> np.ndarray:
        """Flush a stage cascade in order, forwarding tails downstream."""
        out = np.empty(0)
        for i, stage in enumerate(stages):
            out = np.concatenate([stage.push(out), stage.flush()])
        return out

    def _debase(self, baseline: np.ndarray) -> np.ndarray:
        """Pair finalized baseline samples with the delayed raw signal."""
        if baseline.size == 0:
            return baseline
        debased = self._raw[: baseline.size] - baseline
        self._raw = self._raw[baseline.size :]
        return debased

    def _denoise(self, debased: np.ndarray) -> np.ndarray:
        opened = self._through(self._open, debased)
        closed = self._through(self._close, debased)
        return (opened + closed) / 2.0


class StreamingPeakDetector:
    """Incremental wavelet peak detection over the filtered stream.

    Parameters
    ----------
    fs:
        Sampling frequency.
    window_s:
        Analysis window length in seconds (detections are confirmed
        per window, matching how the embedded code schedules the
        pairing logic).
    overlap_s:
        Overlap between consecutive windows; must exceed one beat so no
        peak can fall entirely inside a window seam.
    config:
        Detector tunables.
    threshold_time_constant_s:
        Time constant of the exponentially decayed energy estimate the
        detection thresholds derive from.  The default (3 s, a few
        beats) recovers from large amplitude steps within a window or
        two, preserving the adaptivity the per-window RMS thresholds
        had on non-stationary streams.

    Notes
    -----
    The original scheduler re-ran the whole batch detector — including
    the four-scale à-trous transform — over every 10 s analysis
    window.  This detector is stateful end to end: the
    :class:`~repro.dsp.wavelet.StreamingWavelet` filters each sample
    exactly once (bit-exact with the batch transform), exponentially
    decayed per-scale energy sums carry the detection thresholds
    across windows, and only the pairing / refractory / search-back
    logic runs per window, on the buffered coefficient columns.

    ``flush`` analyzes the remaining tail and *resets the stream
    state*: the absolute sample origin of a subsequent ``push`` is
    preserved, so peak indices keep referring to the same global
    timeline (the original implementation left the origin stale).
    """

    def __init__(
        self,
        fs: float,
        window_s: float = 10.0,
        overlap_s: float = 1.5,
        config: PeakDetectorConfig | None = None,
        threshold_time_constant_s: float = 3.0,
    ):
        if fs <= 0:
            raise ValueError("sampling frequency must be positive")
        if overlap_s <= 0 or window_s <= 2 * overlap_s:
            raise ValueError("need window_s > 2 * overlap_s > 0")
        if threshold_time_constant_s <= 0:
            raise ValueError("threshold time constant must be positive")
        self.fs = fs
        self.window = int(round(window_s * fs))
        self.overlap = int(round(overlap_s * fs))
        self.config = config or PeakDetectorConfig()
        self._wavelet = StreamingWavelet(n_scales=4)
        self._coeffs = np.empty((4, 0))
        self._offset = 0  # absolute index of coeffs[:, 0]
        self._consumed = 0  # absolute samples pushed so far
        # Exponentially decayed per-scale energy: keeps the adaptivity
        # the old per-window RMS thresholds had, without recomputing
        # any RMS over the buffer.
        self._decay = float(np.exp(-1.0 / (threshold_time_constant_s * fs)))
        self._sumsq = np.zeros(4)
        self._count = 0.0
        self._energy_pos = 0  # absolute index energy is folded through
        self._peaks: list[int] = []

    def _thresholds(self) -> np.ndarray:
        """Running per-scale thresholds from the carried energy sums."""
        if self._count <= 0.0:
            return np.zeros(4)
        return self.config.threshold_factor * np.sqrt(self._sumsq / self._count)

    def _append(self, columns: np.ndarray) -> None:
        if columns.shape[1]:
            self._coeffs = np.concatenate([self._coeffs, columns], axis=1)

    def _fold_energy(self, through: int) -> None:
        """Fold buffered coefficient energy into the decayed sums.

        ``through`` is an absolute sample index; energy is folded
        strictly causally (never past the window being analyzed) and
        at window-consumption points only, so detections are invariant
        to how the caller chunks the stream.
        """
        k = through - self._energy_pos
        if k <= 0:
            return
        columns = self._coeffs[:, self._energy_pos - self._offset : through - self._offset]
        weights = self._decay ** np.arange(k - 1, -1, -1)
        decayed = self._decay**k
        self._sumsq = self._sumsq * decayed + np.square(columns) @ weights
        self._count = self._count * decayed + float(weights.sum())
        self._energy_pos = through

    def push(self, filtered_block: np.ndarray) -> list[int]:
        """Feed filtered samples; return newly confirmed peak indices."""
        filtered_block = np.asarray(filtered_block, dtype=float)
        if filtered_block.ndim != 1:
            raise ValueError("blocks must be 1-D")
        self._consumed += filtered_block.size
        self._append(self._wavelet.push(filtered_block))
        new_peaks: list[int] = []
        while self._coeffs.shape[1] >= self.window:
            segment = self._coeffs[:, : self.window]
            self._fold_energy(self._offset + self.window)
            detected = (
                detect_peaks_from_wavelet(segment, self._thresholds(), self.fs, self.config)
                + self._offset
            )
            # Peaks inside the trailing overlap are re-examined by the
            # next window (they may lack right context here).
            confirm_before = self._offset + self.window - self.overlap
            for peak in detected:
                if peak < confirm_before:
                    new_peaks.append(int(peak))
            advance = self.window - self.overlap
            self._coeffs = self._coeffs[:, advance:]
            self._offset += advance
        return self._merge(new_peaks)

    def flush(self) -> list[int]:
        """Analyze the remaining tail and return its confirmed peaks.

        Afterwards the detector is ready for more ``push`` calls: the
        wavelet state restarts (the stream was cut), but the absolute
        origin advances past all consumed samples so later peak indices
        stay on the global timeline, and confirmed peaks plus running
        thresholds are retained.
        """
        self._append(self._wavelet.flush())
        out: list[int] = []
        if self._coeffs.shape[1] >= int(0.5 * self.fs):
            self._fold_energy(self._offset + self._coeffs.shape[1])
            detected = (
                detect_peaks_from_wavelet(
                    self._coeffs, self._thresholds(), self.fs, self.config
                )
                + self._offset
            )
            out = self._merge(int(p) for p in detected)
        self._coeffs = np.empty((4, 0))
        self._offset = self._consumed
        self._energy_pos = self._consumed
        return out

    def _merge(self, candidates) -> list[int]:
        """Deduplicate against already-confirmed peaks (refractory)."""
        refractory = int(round(self.config.refractory * self.fs))
        accepted: list[int] = []
        for peak in sorted(candidates):
            last = self._peaks[-1] if self._peaks else None
            if last is not None and peak - last < refractory:
                continue
            self._peaks.append(peak)
            accepted.append(peak)
        return accepted

    @property
    def peaks(self) -> np.ndarray:
        """All confirmed peaks so far (absolute sample indices)."""
        return np.asarray(self._peaks, dtype=np.int64)
