"""Multi-scale morphological derivative (MMD) operator.

The delineation stage of Rincon et al. locates wave onsets and ends with
a *multi-scale morphological derivative*: at scale ``s`` the operator

.. math::

    \\mathrm{MMD}_s x(n) = (x \\oplus B_s)(n) + (x \\ominus B_s)(n) - 2 x(n)

(dilation plus erosion minus twice the signal, with a flat structuring
element of ``2 s + 1`` samples) behaves like a second-derivative probe
whose support grows with ``s``: it is strongly positive at concave
corners (wave onsets/ends of positive waves) and strongly negative at
convex corners (the peaks), while staying near zero on straight
segments.  Evaluating it at a few scales and picking extremum locations
yields noise-robust fiducial points with only comparisons and additions
— the reason the operator suits WBSN processors.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.morphological import charge_extremum_ops, dilation, erosion


def charge_mmd_ops(counter, n: int, scale: int) -> None:
    """Charge the op counts :func:`mmd_transform` records over ``n`` samples.

    The count-only mirror of :func:`mmd_transform` (one dilation, one
    erosion, plus the combination arithmetic), used by the batched and
    streaming delineation paths to attribute the reference per-beat
    work without re-running the per-beat operators.
    """
    if counter is None or n <= 0:
        return
    length = 2 * scale + 1
    charge_extremum_ops(counter, n, length)  # dilation
    charge_extremum_ops(counter, n, length)  # erosion
    counter.add("add", n)
    counter.add("sub", n)
    counter.add("shift", n)  # the 2*x term as a left shift


def mmd_transform(x: np.ndarray, scale: int, counter=None) -> np.ndarray:
    """Multi-scale morphological derivative at one scale.

    Parameters
    ----------
    x:
        1-D signal segment.
    scale:
        Half-width ``s`` of the flat structuring element (its length is
        ``2 s + 1`` samples).
    counter:
        Optional op-counter.

    Returns
    -------
    np.ndarray
        ``MMD_s x``, same length as ``x``.
    """
    if scale < 1:
        raise ValueError("MMD scale must be >= 1")
    x = np.asarray(x, dtype=float)
    length = 2 * scale + 1
    dilated = dilation(x, length, counter)
    eroded = erosion(x, length, counter)
    if counter is not None:
        counter.add("add", x.size)
        counter.add("sub", x.size)
        counter.add("shift", x.size)  # the 2*x term as a left shift
    return dilated + eroded - 2.0 * x


def mmd_multiscale(x: np.ndarray, scales: tuple[int, ...], counter=None) -> np.ndarray:
    """Stack of MMD responses at several scales, shape ``(len(scales), n)``."""
    return np.stack([mmd_transform(x, s, counter) for s in scales], axis=0)
