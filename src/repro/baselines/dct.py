"""Discrete Cosine Transform features (related-work baseline, Neagoe et al.).

Keeps the ``k`` lowest-frequency DCT-II coefficients of each beat.
The DCT compacts most beat energy into few coefficients (beats are
smooth, peak-aligned signals), which made it a popular NFC front end —
at the cost of ``O(d log d)`` float arithmetic per beat that a WBSN
cannot afford.

The transform matrix is built explicitly (orthonormal DCT-II), keeping
the module dependency-free and the arithmetic auditable; for beat-sized
inputs (d <= a few hundred) the dense product is plenty fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def dct_matrix(d: int) -> np.ndarray:
    """Orthonormal DCT-II matrix of size ``(d, d)``.

    Row ``m`` holds :math:`w_m \\cos(\\pi (2n + 1) m / (2d))` with the
    orthonormalization weights :math:`w_0 = \\sqrt{1/d}`,
    :math:`w_{m>0} = \\sqrt{2/d}`.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    n = np.arange(d)
    m = n[:, np.newaxis]
    matrix = np.cos(np.pi * (2 * n + 1) * m / (2 * d))
    matrix[0] *= np.sqrt(1.0 / d)
    matrix[1:] *= np.sqrt(2.0 / d)
    return matrix


@dataclass
class DCTFeatures:
    """First-k DCT-II coefficients as features.

    Parameters
    ----------
    n_components:
        Number of retained low-frequency coefficients.
    """

    n_components: int
    _matrix: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError("n_components must be >= 1")

    def fit(self, X: np.ndarray) -> "DCTFeatures":
        """Cache the transform rows for the beat length of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be (n, d)")
        d = X.shape[1]
        if self.n_components > d:
            raise ValueError("n_components exceeds the beat length")
        self._matrix = dct_matrix(d)[: self.n_components]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Leading DCT coefficients: ``(n, d) -> (n, k)``."""
        if self._matrix is None:
            raise RuntimeError("DCTFeatures must be fitted before transform")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[np.newaxis, :]
        if X.shape[1] != self._matrix.shape[1]:
            raise ValueError("beat length does not match the fitted dimension")
        coefficients = X @ self._matrix.T
        return coefficients[0] if single else coefficients

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(X).transform(X)
