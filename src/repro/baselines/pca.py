"""Principal Component Analysis feature extraction (Table II baseline).

Implements the PCA front end of Ceylan & Ozbay: beats are mean-centered
with the *training* mean and projected onto the top-k principal
directions of the training covariance.  PCA is the natural "informed"
counterpart of the data-agnostic random projection — it needs a
training pass, floating-point arithmetic and k dense dot products per
beat, which is exactly why the paper relegates it to the PC.

Implemented from scratch on top of ``numpy.linalg.svd`` (no sklearn).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PCAFeatures:
    """Top-k principal-component scores.

    Parameters
    ----------
    n_components:
        Number of retained components k.

    Attributes (after :meth:`fit`)
    ------------------------------
    mean_:
        ``(d,)`` training mean.
    components_:
        ``(k, d)`` principal directions (rows, unit norm).
    explained_variance_:
        ``(k,)`` variance captured by each direction.
    """

    n_components: int
    mean_: np.ndarray | None = field(default=None, repr=False)
    components_: np.ndarray | None = field(default=None, repr=False)
    explained_variance_: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError("n_components must be >= 1")

    def fit(self, X: np.ndarray) -> "PCAFeatures":
        """Fit on training beats ``(n, d)``; returns self."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be (n, d)")
        n, d = X.shape
        if self.n_components > min(n, d):
            raise ValueError(
                f"n_components={self.n_components} exceeds min(n, d)={min(n, d)}"
            )
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # Thin SVD: rows of Vt are the principal directions.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[: self.n_components]
        self.explained_variance_ = (singular_values[: self.n_components] ** 2) / max(n - 1, 1)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project beats onto the fitted components: ``(n, d) -> (n, k)``."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCAFeatures must be fitted before transform")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[np.newaxis, :]
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError("beat length does not match the fitted dimension")
        scores = (X - self.mean_) @ self.components_.T
        return scores[0] if single else scores

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(X).transform(X)

    def explained_variance_ratio(self, X: np.ndarray) -> np.ndarray:
        """Fraction of the total variance of ``X`` captured per component."""
        if self.explained_variance_ is None:
            raise RuntimeError("PCAFeatures must be fitted first")
        X = np.asarray(X, dtype=float)
        total = float(np.var(X - X.mean(axis=0), axis=0, ddof=1).sum())
        if total <= 0:
            return np.zeros_like(self.explained_variance_)
        return self.explained_variance_ / total
