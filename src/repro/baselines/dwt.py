"""Haar discrete wavelet transform features (related-work baseline).

Computes a full multi-level Haar decomposition of each beat and keeps
the ``k`` coefficient positions with the highest *training-set*
variance — the standard DWT feature-selection recipe of the ECG
classification literature (Guler & Ubeyli).  Like PCA, the selection
needs a training pass; like the DCT, the transform needs float
arithmetic per beat, which is what disqualifies it on the WBSN.

The Haar transform is implemented from scratch (orthonormal pairwise
averages/differences, recursing on the approximation); odd-length
levels carry the last sample through unchanged so any beat length is
accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_SQRT2 = float(np.sqrt(2.0))


def haar_decompose(x: np.ndarray, n_levels: int | None = None) -> np.ndarray:
    """Multi-level orthonormal Haar DWT of the rows of ``x``.

    Parameters
    ----------
    x:
        ``(n, d)`` beats (or ``(d,)``).
    n_levels:
        Decomposition depth; defaults to the maximum
        (``floor(log2(d))``).

    Returns
    -------
    np.ndarray
        Same shape as ``x``: per row, the concatenation
        ``[approximation, detail_deepest, ..., detail_1]``.
    """
    x = np.asarray(x, dtype=float)
    single = x.ndim == 1
    if single:
        x = x[np.newaxis, :]
    d = x.shape[1]
    if d < 2:
        raise ValueError("need at least two samples")
    max_levels = int(np.floor(np.log2(d)))
    if n_levels is None:
        n_levels = max_levels
    if not 1 <= n_levels <= max_levels:
        raise ValueError(f"n_levels must be in [1, {max_levels}]")

    approximation = x
    details: list[np.ndarray] = []
    for _ in range(n_levels):
        length = approximation.shape[1]
        even = length - (length % 2)
        pairs = approximation[:, :even]
        a = (pairs[:, 0::2] + pairs[:, 1::2]) / _SQRT2
        detail = (pairs[:, 0::2] - pairs[:, 1::2]) / _SQRT2
        if length % 2:
            # Odd tail: carry the last sample into the approximation.
            a = np.concatenate([a, approximation[:, -1:]], axis=1)
        details.append(detail)
        approximation = a
    out = np.concatenate([approximation] + details[::-1], axis=1)
    return out[0] if single else out


@dataclass
class HaarWaveletFeatures:
    """Variance-selected Haar DWT coefficients.

    Parameters
    ----------
    n_components:
        Number of retained coefficient positions.
    n_levels:
        Haar decomposition depth (default: maximum for the beat length).
    """

    n_components: int
    n_levels: int | None = None
    selected_: np.ndarray | None = field(default=None, repr=False)
    _d: int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError("n_components must be >= 1")

    def fit(self, X: np.ndarray) -> "HaarWaveletFeatures":
        """Select the highest-variance coefficient positions on ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be (n, d)")
        coefficients = haar_decompose(X, self.n_levels)
        if self.n_components > coefficients.shape[1]:
            raise ValueError("n_components exceeds the coefficient count")
        variance = coefficients.var(axis=0)
        self.selected_ = np.sort(np.argsort(variance)[::-1][: self.n_components])
        self._d = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Selected Haar coefficients: ``(n, d) -> (n, k)``."""
        if self.selected_ is None or self._d is None:
            raise RuntimeError("HaarWaveletFeatures must be fitted before transform")
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        if single:
            X = X[np.newaxis, :]
        if X.shape[1] != self._d:
            raise ValueError("beat length does not match the fitted dimension")
        coefficients = haar_decompose(X, self.n_levels)
        out = coefficients[:, self.selected_]
        return out[0] if single else out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(X).transform(X)
