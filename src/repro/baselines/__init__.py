"""Feature-extraction baselines the paper compares against.

Table II's third row uses "the off-line Principal Component Analysis
(PCA) algorithm proposed in [3] to reduce the representation
dimensionality"; Section II also cites DCT- and DWT-based feature
extraction as alternatives whose "computation effort [is] not
compatible with WBSN resources".  All three are implemented here behind
a common fit/transform interface so they can feed the *same* NFC as the
random projection, isolating the effect of the dimensionality-reduction
choice:

* :mod:`repro.baselines.pca` — principal component scores;
* :mod:`repro.baselines.dct` — leading DCT-II coefficients;
* :mod:`repro.baselines.dwt` — Haar wavelet coefficients selected by
  training-set variance;
* :mod:`repro.baselines.harness` — a pipeline wrapper mirroring
  :class:`repro.core.pipeline.RPClassifierPipeline` for any extractor.
"""

from repro.baselines.dct import DCTFeatures
from repro.baselines.dwt import HaarWaveletFeatures
from repro.baselines.harness import FeaturePipeline
from repro.baselines.pca import PCAFeatures

__all__ = ["PCAFeatures", "DCTFeatures", "HaarWaveletFeatures", "FeaturePipeline"]
