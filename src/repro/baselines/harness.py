"""A classifier pipeline generic over the feature extractor.

:class:`FeaturePipeline` mirrors
:class:`repro.core.pipeline.RPClassifierPipeline` but accepts any
fit/transform extractor (PCA, DCT, Haar DWT), so Table II's ``PCA-PC``
row and the feature-ablation benchmark train the *same* NFC with the
*same* two-step alpha tuning — only the dimensionality reduction
differs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Protocol

import numpy as np

from repro.core.defuzz import defuzzify, sweep_alpha, tune_alpha
from repro.core.metrics import ClassificationReport, normal_discard_rate
from repro.core.nfc import NeuroFuzzyClassifier
from repro.ecg.mitbih import LabeledBeats


class FeatureExtractor(Protocol):
    """Fit/transform interface shared by all baselines."""

    def fit(self, X: np.ndarray) -> "FeatureExtractor":  # pragma: no cover - protocol
        ...

    def transform(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class FeaturePipeline:
    """Feature extractor + NFC + defuzzification coefficient."""

    extractor: FeatureExtractor
    nfc: NeuroFuzzyClassifier
    alpha: float

    @classmethod
    def train(
        cls,
        extractor: FeatureExtractor,
        train1: LabeledBeats,
        train2: LabeledBeats,
        target_arr: float = 0.97,
        scg_iterations: int = 120,
    ) -> "FeaturePipeline":
        """Fit the extractor and NFC, then tune alpha on training set 2.

        The extractor is fitted on the union of both training sets (the
        paper's PCA is equally "off-line": it sees only training data;
        using both sets keeps ``n >= k`` even for scaled-down runs).
        """
        import numpy as _np

        extractor.fit(_np.concatenate([train1.X, train2.X], axis=0))
        U1 = extractor.transform(train1.X)
        nfc = NeuroFuzzyClassifier.fit(U1, train1.y, max_iterations=scg_iterations)
        fuzzy = nfc.fuzzy_values(extractor.transform(train2.X))
        alpha = tune_alpha(fuzzy, train2.y, target_arr)
        return cls(extractor, nfc, alpha)

    def with_alpha(self, alpha: float) -> "FeaturePipeline":
        """Same classifier, different defuzzification coefficient."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        return replace(self, alpha=alpha)

    def tuned_for(self, beats: LabeledBeats, target_arr: float) -> "FeaturePipeline":
        """Re-tune ``alpha_test`` for an ARR target."""
        fuzzy = self.fuzzy_values(beats.X)
        return self.with_alpha(tune_alpha(fuzzy, beats.y, target_arr))

    def fuzzy_values(self, X: np.ndarray) -> np.ndarray:
        """Per-class fuzzy values of beats."""
        return self.nfc.fuzzy_values(self.extractor.transform(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Defuzzified labels."""
        return defuzzify(np.atleast_2d(self.fuzzy_values(X)), self.alpha)

    def evaluate(self, beats: LabeledBeats) -> ClassificationReport:
        """Evaluation report on a labeled set."""
        return ClassificationReport.from_labels(beats.y, self.predict(beats.X))

    def sweep(self, beats: LabeledBeats, alphas: np.ndarray | None = None):
        """NDR/ARR trade-off curve over ``alpha_test``."""
        fuzzy = self.fuzzy_values(beats.X)
        return sweep_alpha(fuzzy, beats.y, alphas)

    def score(self, beats: LabeledBeats) -> float:
        """NDR at the current alpha (the paper's scalar score)."""
        return normal_discard_rate(beats.y, self.predict(beats.X))
