"""Reproduction of "A Methodology for Embedded Classification of Heartbeats
Using Random Projections" (Braojos, Ansaloni, Atienza — DATE 2013).

The package is organised as one subpackage per subsystem:

``repro.core``
    The paper's primary contribution: Achlioptas random projections, the
    three-layer neuro-fuzzy classifier (NFC), scaled-conjugate-gradient
    training, genetic optimization of the projection matrix, and the
    NDR/ARR figures of merit.
``repro.fixedpoint``
    The resource-constrained optimization phase: membership-function
    linearization, integer block-floating-point fuzzification, 2-bit
    packed projection matrices, and the float-to-embedded converter.
``repro.ecg``
    A synthetic MIT-BIH-like ECG substrate (beat morphologies for the
    N / V / L classes, record synthesis with realistic noise, database
    containers, segmentation, downsampling).
``repro.dsp``
    The embedded signal-processing chain: morphological filtering,
    dyadic wavelet transform, wavelet-based R-peak detection and
    multi-scale morphological-derivative (MMD) delineation.
``repro.baselines``
    PCA / DCT / DWT feature-extraction baselines from the paper's
    related-work comparison.
``repro.platform``
    An operation-level model of the IcyHeart WBSN SoC: cycle counting,
    duty cycles, code/data memory and radio energy.
``repro.serving``
    The serving layer: sharded multi-record / multi-stream batch
    execution behind pluggable serial/thread/process executors, and
    the live-session ``StreamGateway`` multiplexing many open streams
    into cross-session classifier batches.
``repro.experiments``
    Harnesses that regenerate every table and figure of the paper.

Quickstart
----------
>>> from repro.experiments.datasets import make_beat_datasets
>>> from repro.core.pipeline import RPClassifierPipeline
>>> data = make_beat_datasets(scale=0.05, seed=7)
>>> pipe = RPClassifierPipeline.train(data.train1, data.train2, n_coefficients=8, seed=7)
>>> result = pipe.evaluate(data.test)
>>> result.arr > 0.9
True
"""

from repro._version import __version__

__all__ = ["__version__"]
