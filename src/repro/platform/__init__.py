"""Operation-level model of the IcyHeart WBSN platform.

The paper reports code size, duty cycle and energy on the IcyHeart SoC
(6 MHz icyflex-class microprocessor, 96 KB RAM, integrated radio).
Without the silicon, this subpackage models the platform at the
operation level:

* :mod:`repro.platform.opcount` — the op-counter every DSP/classifier
  stage can record its arithmetic into;
* :mod:`repro.platform.cpu` — a cycles-per-operation table converting
  counts into cycles and duty cycles at a given clock;
* :mod:`repro.platform.memory` — code-size and data-memory model;
* :mod:`repro.platform.radio` — packet formats and transmit energy;
* :mod:`repro.platform.profiles` — measured per-stage operation
  profiles (filtering, peak detection, classification, delineation);
* :mod:`repro.platform.energy` — system-level energy accounting for the
  gated architecture of Figure 6;
* :mod:`repro.platform.icyheart` — the SoC configuration constants.

Dynamic behaviour (duty cycles, energy) is *measured* from the actual
op counts the implementations execute; only the cycles-per-op table and
the per-routine code-size estimates are calibrated models, documented
in :mod:`repro.platform.icyheart`.
"""

from repro.platform.cpu import CycleModel, ICYFLEX_CYCLES
from repro.platform.energy import EnergyBreakdown, SystemEnergyModel
from repro.platform.icyheart import IcyHeartConfig
from repro.platform.memory import CodeSizeModel
from repro.platform.opcount import OpCounter
from repro.platform.radio import RadioModel, TransmissionPolicy

__all__ = [
    "OpCounter",
    "CycleModel",
    "ICYFLEX_CYCLES",
    "CodeSizeModel",
    "RadioModel",
    "TransmissionPolicy",
    "SystemEnergyModel",
    "EnergyBreakdown",
    "IcyHeartConfig",
]
