"""System-level energy accounting (Section IV-E).

Combines the duty-cycle model (signal processing) with the radio model
(transmission) to reproduce the paper's three headline numbers:

* ~63% reduction of *bio-signal analysis* energy — the duty-cycle
  ratio of the gated system (3) to the always-on delineator (2);
* ~68% reduction of *wireless* energy — the byte-ratio of the gated
  transmission policy to the send-everything baseline;
* ~23% reduction of *total node* energy — the two component savings
  weighted by the share of the node budget that computation and radio
  jointly represent (~34% in typical WBSN implementations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.icyheart import IcyHeartConfig
from repro.platform.opcount import OpCounter
from repro.platform.radio import RadioModel


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy report of one system configuration over an interval.

    Attributes
    ----------
    compute_j:
        CPU active energy (duty cycle x active power x duration).
    radio_j:
        Transmit energy.
    duration_s:
        Accounted interval.
    duty_cycle:
        The underlying CPU duty cycle.
    radio_bytes:
        Bytes transmitted.
    """

    compute_j: float
    radio_j: float
    duration_s: float
    duty_cycle: float
    radio_bytes: int

    @property
    def total_j(self) -> float:
        """Compute + radio energy."""
        return self.compute_j + self.radio_j


@dataclass(frozen=True)
class SystemEnergyModel:
    """Joint compute + radio energy model for one node configuration."""

    config: IcyHeartConfig
    radio: RadioModel

    def breakdown(
        self,
        profile_per_second: OpCounter,
        predicted_labels: np.ndarray,
        duration_s: float,
        gated: bool,
    ) -> EnergyBreakdown:
        """Energy of running a per-second profile for ``duration_s``
        while reporting the given classified beat stream."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        duty = self.config.cycle_model.duty_cycle(profile_per_second, self.config.clock_hz)
        compute_j = duty * self.config.active_power_w * duration_s
        radio_bytes = self.radio.bytes_for_stream(predicted_labels, gated=gated)
        radio_j = radio_bytes * self.radio.energy_per_byte_j
        return EnergyBreakdown(
            compute_j=compute_j,
            radio_j=radio_j,
            duration_s=duration_s,
            duty_cycle=duty,
            radio_bytes=radio_bytes,
        )

    def savings(
        self,
        gated_profile: OpCounter,
        baseline_profile: OpCounter,
        predicted_labels: np.ndarray,
        duration_s: float,
    ) -> dict[str, float]:
        """The Section IV-E summary: compute / radio / total savings.

        Parameters
        ----------
        gated_profile, baseline_profile:
            Per-second op profiles of the proposed system (3) and the
            always-on delineator (2).
        predicted_labels:
            Classifier output over the evaluated beat stream (drives
            the gated radio traffic).
        duration_s:
            Length of the evaluated stream.

        Returns
        -------
        dict
            ``compute_saving``, ``radio_saving`` (component ratios) and
            ``total_saving`` (weighted by the node's energy shares),
            plus the two absolute breakdowns for reporting.
        """
        gated = self.breakdown(gated_profile, predicted_labels, duration_s, gated=True)
        baseline = self.breakdown(baseline_profile, predicted_labels, duration_s, gated=False)
        compute_saving = 1.0 - gated.compute_j / baseline.compute_j if baseline.compute_j else 0.0
        radio_saving = 1.0 - gated.radio_j / baseline.radio_j if baseline.radio_j else 0.0
        total_saving = (
            compute_saving * self.config.compute_energy_share
            + radio_saving * self.config.radio_energy_share
        )
        return {
            "compute_saving": compute_saving,
            "radio_saving": radio_saving,
            "total_saving": total_saving,
            "gated_duty": gated.duty_cycle,
            "baseline_duty": baseline.duty_cycle,
            "gated_bytes": float(gated.radio_bytes),
            "baseline_bytes": float(baseline.radio_bytes),
        }
