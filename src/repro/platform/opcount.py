"""Operation counters.

Every stage of the embedded chain accepts an optional ``counter`` and
records the arithmetic a straight C implementation would execute:
``add``, ``sub``, ``mul``, ``cmp``, ``shift``, ``and``, ``abs``,
``load``, ``store``.  :class:`OpCounter` is that sink; it also supports
merging and scaling so per-beat profiles can be extrapolated to
per-second traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Operation kinds the cycle model knows about.
OP_KINDS = ("add", "sub", "mul", "div", "cmp", "shift", "and", "abs", "load", "store")


@dataclass
class OpCounter:
    """A bag of named operation counts."""

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, op: str, n: int) -> None:
        """Record ``n`` operations of kind ``op``."""
        if op not in OP_KINDS:
            raise ValueError(f"unknown op kind {op!r}; expected one of {OP_KINDS}")
        if n < 0:
            raise ValueError("operation counts are non-negative")
        self.counts[op] = self.counts.get(op, 0) + int(n)

    def add_counts(self, counts: dict[str, int]) -> None:
        """Record a whole dict of counts (e.g. an analytic profile)."""
        for op, n in counts.items():
            self.add(op, n)

    def merge(self, other: "OpCounter") -> "OpCounter":
        """Return a new counter with the sum of both."""
        merged = OpCounter(dict(self.counts))
        merged.add_counts(other.counts)
        return merged

    def scaled(self, factor: float) -> "OpCounter":
        """Return a new counter with counts scaled (rounded) by ``factor``.

        Used to extrapolate a measured per-beat or per-block profile to
        a different traffic rate.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return OpCounter({op: int(round(n * factor)) for op, n in self.counts.items()})

    @property
    def total(self) -> int:
        """Total number of recorded operations."""
        return sum(self.counts.values())

    def __getitem__(self, op: str) -> int:
        return self.counts.get(op, 0)

    def __bool__(self) -> bool:
        return self.total > 0
