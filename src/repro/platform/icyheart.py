"""IcyHeart SoC configuration constants.

"This platform integrates a wireless transmitter, a multi-channel ADC
converter and a low-power microprocessor (featuring a clock frequency
of 6 MHz and an embedded RAM of 96 KBs), on a single die."

The numeric model constants below are documented here in one place so
every Table III / Section IV-E figure can be traced to its assumption:

``CLOCK_HZ``, ``RAM_BYTES``
    From the paper.
``ACTIVE_POWER_W``
    CPU active power at 6 MHz; icyflex-class cores run at ~100 uA/MHz
    around 1.2 V, giving ~0.7 mW active.  Only *ratios* of duty cycles
    enter the reproduced results, so this constant affects absolute
    joules only.
``RADIO_ENERGY_PER_BYTE_J``
    Low-power TX energy; ~0.4 uJ/byte is typical of sub-GHz/BLE-class
    links at 0 dBm (50 nJ/bit).
``COMPUTE_ENERGY_SHARE`` / ``RADIO_ENERGY_SHARE``
    Section IV-E states computation and wireless communication
    "combined figures accounting for approximately 34% total energy in
    typical WBSN implementations" and derives a 23% total saving from
    63% (compute) and 68% (radio) component savings; that decomposition
    implies the radio share dominates, and the split below (10% + 24%)
    reproduces the arithmetic: 0.63*0.10 + 0.68*0.24 = 0.226 ~ 23%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platform.cpu import CycleModel, ICYFLEX_CYCLES


@dataclass(frozen=True)
class IcyHeartConfig:
    """Constants of the modelled IcyHeart node."""

    clock_hz: float = 6_000_000.0
    ram_bytes: int = 96 * 1024
    sampling_rate_hz: float = 360.0
    active_power_w: float = 0.7e-3
    radio_energy_per_byte_j: float = 0.4e-6
    compute_energy_share: float = 0.10
    radio_energy_share: float = 0.24
    cycle_model: CycleModel = field(default_factory=lambda: ICYFLEX_CYCLES)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.sampling_rate_hz <= 0:
            raise ValueError("frequencies must be positive")
        if self.ram_bytes <= 0:
            raise ValueError("ram_bytes must be positive")
        if not 0 < self.compute_energy_share + self.radio_energy_share <= 1:
            raise ValueError("energy shares must sum into (0, 1]")

    @property
    def combined_energy_share(self) -> float:
        """Compute + radio share of the node's total energy (~34%)."""
        return self.compute_energy_share + self.radio_energy_share
