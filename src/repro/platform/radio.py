"""Radio model: packet formats and transmit energy.

Section IV-E's scenario: "a WBSN reports only the peak of normal beats,
and all fiducial points (onset, peak and end of the three
characteristic waves composing the beat) for abnormal ones", compared
against a baseline that sends all fiducial points of every beat.

Packet formats (payload bytes):

* **peak-only** — a 2-byte sample offset of the R peak plus a 1-byte
  beat flag: 3 bytes;
* **full fiducials** — nine 2-byte sample offsets plus a 1-byte beat
  flag and a 1-byte fiducial-presence bitmap: 20 bytes.

Each message additionally pays the link-layer ``overhead_bytes``.
Transmit energy is ``energy_per_byte * bytes``; only byte *ratios*
enter the reproduced 68% figure, so the absolute energy constant
matters only for joule-denominated outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.defuzz import is_abnormal

#: Payload sizes in bytes.
PEAK_ONLY_PAYLOAD = 3
FULL_FIDUCIAL_PAYLOAD = 20


@dataclass(frozen=True)
class TransmissionPolicy:
    """What gets transmitted per beat.

    ``gated=True`` is the paper's proposal (peak-only for beats the
    classifier discards, full fiducials for flagged beats);
    ``gated=False`` is the baseline sending full fiducials for all.
    """

    gated: bool = True

    def bytes_for_beats(self, flagged_abnormal: np.ndarray, overhead_bytes: int = 2) -> int:
        """Total bytes for a stream of beats given the per-beat flags."""
        flagged_abnormal = np.asarray(flagged_abnormal, dtype=bool)
        n = flagged_abnormal.size
        n_abnormal = int(flagged_abnormal.sum())
        per_full = FULL_FIDUCIAL_PAYLOAD + overhead_bytes
        per_peak = PEAK_ONLY_PAYLOAD + overhead_bytes
        if not self.gated:
            return n * per_full
        return n_abnormal * per_full + (n - n_abnormal) * per_peak


@dataclass(frozen=True)
class RadioModel:
    """Transmit-energy model of the node's radio."""

    energy_per_byte_j: float = 0.4e-6
    overhead_bytes: int = 2

    def __post_init__(self) -> None:
        if self.energy_per_byte_j <= 0:
            raise ValueError("energy per byte must be positive")
        if self.overhead_bytes < 0:
            raise ValueError("overhead must be non-negative")

    def bytes_for_stream(self, predicted_labels: np.ndarray, gated: bool = True) -> int:
        """Bytes to report a stream of classified beats."""
        flagged = is_abnormal(predicted_labels)
        return TransmissionPolicy(gated).bytes_for_beats(flagged, self.overhead_bytes)

    def energy_for_stream(self, predicted_labels: np.ndarray, gated: bool = True) -> float:
        """Joules to report a stream of classified beats."""
        return self.bytes_for_stream(predicted_labels, gated) * self.energy_per_byte_j

    def saving(self, predicted_labels: np.ndarray) -> float:
        """Fractional radio-energy saving of gating vs the baseline.

        This is the paper's "68% energy consumption reduction in the
        wireless module" metric: it depends only on the activation rate
        of the classifier and the packet-size ratio.
        """
        baseline = self.bytes_for_stream(predicted_labels, gated=False)
        gated = self.bytes_for_stream(predicted_labels, gated=True)
        if baseline == 0:
            return 0.0
        return 1.0 - gated / baseline
