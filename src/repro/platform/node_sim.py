"""Event-driven WBSN node simulation.

The profiles in :mod:`repro.platform.profiles` answer "what is the
average duty cycle?".  This module answers the harder real-time
question the paper's Section IV-D implies: *does every beat finish
processing before the next one arrives?*  It replays a record through
the deployed firmware schedule beat by beat:

1. the continuous front end (filtering + peak detection) charges its
   per-sample work against the samples between consecutive beats;
2. each detected beat pays the classifier's fixed instruction sequence;
3. beats the classifier flags additionally pay the (measured,
   beat-specific) multi-lead delineation plus the on-demand filtering
   of the extra leads, and queue a full-fiducial radio packet; the
   rest queue a peak-only packet.

The result is a :class:`NodeTrace` with per-beat cycle counts, radio
bytes and slack (cycles left before the next beat), from which the
simulator derives the worst-case real-time margin — the number Table
III's duty cycles cannot show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.defuzz import is_abnormal
from repro.dsp.delineation import delineate_beats
from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.ecg.database import Record
from repro.ecg.resample import decimate_beats
from repro.ecg.segmentation import BeatWindow, segment_beats
from repro.fixedpoint.convert import EmbeddedClassifier
from repro.platform.icyheart import IcyHeartConfig
from repro.platform.opcount import OpCounter
from repro.platform.radio import FULL_FIDUCIAL_PAYLOAD, PEAK_ONLY_PAYLOAD, RadioModel


@dataclass(frozen=True)
class BeatEvent:
    """Everything the node did for one beat."""

    peak: int
    label: int
    flagged: bool
    frontend_cycles: float
    classify_cycles: float
    delineate_cycles: float
    tx_bytes: int
    budget_cycles: float

    @property
    def total_cycles(self) -> float:
        """All CPU work attributed to this beat."""
        return self.frontend_cycles + self.classify_cycles + self.delineate_cycles

    @property
    def slack_cycles(self) -> float:
        """Cycles left before the next beat's deadline."""
        return self.budget_cycles - self.total_cycles

    @property
    def meets_deadline(self) -> bool:
        """True when the beat finished inside its inter-beat budget."""
        return self.slack_cycles >= 0.0


@dataclass
class NodeTrace:
    """The full simulation outcome."""

    events: list[BeatEvent] = field(default_factory=list)
    duration_s: float = 0.0
    clock_hz: float = 0.0

    def __len__(self) -> int:
        return len(self.events)

    @property
    def n_flagged(self) -> int:
        """Beats that activated the delineator."""
        return sum(e.flagged for e in self.events)

    @property
    def activation_rate(self) -> float:
        """Fraction of beats flagged abnormal."""
        return self.n_flagged / len(self.events) if self.events else 0.0

    @property
    def total_cycles(self) -> float:
        """CPU cycles over the whole record."""
        return sum(e.total_cycles for e in self.events)

    @property
    def duty_cycle(self) -> float:
        """Average CPU utilization over the record."""
        if self.duration_s <= 0 or self.clock_hz <= 0:
            return 0.0
        return self.total_cycles / (self.duration_s * self.clock_hz)

    @property
    def total_tx_bytes(self) -> int:
        """Radio bytes over the whole record."""
        return sum(e.tx_bytes for e in self.events)

    @property
    def worst_case_utilization(self) -> float:
        """Max per-beat cycles over budget (< 1 means real-time safe).

        Beats without a positive budget (e.g. a final beat coinciding
        with the record end) carry no deadline and are skipped; a trace
        with only such beats reports 0.0.
        """
        loads = [
            e.total_cycles / e.budget_cycles for e in self.events if e.budget_cycles > 0
        ]
        return max(loads) if loads else 0.0

    @property
    def deadline_misses(self) -> int:
        """Beats whose processing exceeded the inter-beat budget."""
        return sum(not e.meets_deadline for e in self.events)

    def summary(self) -> str:
        """One-paragraph report."""
        return (
            f"{len(self.events)} beats over {self.duration_s:.1f}s: "
            f"duty={self.duty_cycle:.3f}, activation={100 * self.activation_rate:.1f}%, "
            f"tx={self.total_tx_bytes} B, worst-case load="
            f"{100 * self.worst_case_utilization:.1f}% of a beat budget, "
            f"{self.deadline_misses} deadline misses"
        )


class NodeSimulator:
    """Replays records through the deployed gated-processing schedule."""

    def __init__(
        self,
        classifier: EmbeddedClassifier,
        platform: IcyHeartConfig | None = None,
        radio: RadioModel | None = None,
        decimation: int = 4,
    ):
        if decimation < 1:
            raise ValueError("decimation must be >= 1")
        self.classifier = classifier
        self.platform = platform or IcyHeartConfig()
        self.radio = radio or RadioModel(
            energy_per_byte_j=self.platform.radio_energy_per_byte_j
        )
        self.decimation = decimation
        # The classifier's per-beat cycle cost is a fixed straight-line
        # sequence; compute it once.
        counter = OpCounter()
        counter.add_counts(classifier.beat_op_counts())
        self._classify_cycles = self.platform.cycle_model.cycles(counter)

    def process_record(self, record: Record, lead: int = 0) -> NodeTrace:
        """Simulate the node over one multi-lead record.

        Parameters
        ----------
        record:
            Physical-units record; lead ``lead`` drives detection and
            classification, all leads feed the gated delineation.
        lead:
            Classification lead index.

        Returns
        -------
        NodeTrace
        """
        fs = record.fs
        cycle_model = self.platform.cycle_model

        # Continuous front end, instrumented once over the record: its
        # per-sample cost is charged to beats proportionally to their
        # inter-beat sample counts.
        frontend_counter = OpCounter()
        filtered_main = filter_lead(record.lead(lead), fs, counter=frontend_counter)
        peaks = detect_peaks(filtered_main, fs, counter=frontend_counter)
        frontend_cycles_per_sample = (
            cycle_model.cycles(frontend_counter) / record.n_samples
        )

        window = BeatWindow(100, 100)
        beats, kept = segment_beats(filtered_main, peaks, window)
        kept_peaks = peaks[kept]
        if kept_peaks.size == 0:
            return NodeTrace([], record.duration, self.platform.clock_hz)
        beats_ds, _ = decimate_beats(beats, window, self.decimation)
        labels = self.classifier.predict(beats_ds)
        flagged = is_abnormal(labels)

        # Per-beat budgets and continuous-front-end charges, vectorized
        # over the whole record: only flagged beats still need the
        # event loop (for the measured, beat-specific delineation).
        boundaries = np.append(kept_peaks, record.n_samples)
        inter_beat_samples = boundaries[1:] - kept_peaks
        budgets = inter_beat_samples / fs * self.platform.clock_hz
        frontend = frontend_cycles_per_sample * inter_beat_samples
        tx_bytes = np.where(
            flagged,
            FULL_FIDUCIAL_PAYLOAD + self.radio.overhead_bytes,
            PEAK_ONLY_PAYLOAD + self.radio.overhead_bytes,
        )

        delineate_cycles = np.zeros(kept_peaks.size)
        flagged_indices = np.flatnonzero(flagged)
        if flagged_indices.size:
            # Filtered extra leads for the gated path (cost charged per
            # activation; the signal itself is needed to delineate).
            other_leads = [i for i in range(record.n_leads) if i != lead]
            filtered_all = np.column_stack(
                [filtered_main]
                + [filter_lead(record.lead(i), fs) for i in other_leads]
            )
            window_samples = int(0.77 * fs)
            window_filter_cycles = (
                frontend_cycles_per_sample * window_samples * len(other_leads)
            )
            # Batched delineation kernel: every MMD scale is computed
            # once per lead over the union of the flagged segments, but
            # the per-beat counters still receive the measured, beat-
            # specific counts of the firmware's per-beat path (bit-exact
            # with delineate_multilead, fiducials and counts alike).
            counters = [OpCounter() for _ in range(flagged_indices.size)]
            previous = [
                int(kept_peaks[i - 1]) if i > 0 else None for i in flagged_indices
            ]
            delineate_beats(
                filtered_all,
                kept_peaks[flagged_indices],
                fs,
                counters=counters,
                previous_peaks=previous,
            )
            delineate_cycles[flagged_indices] = [
                cycle_model.cycles(counter) + window_filter_cycles
                for counter in counters
            ]

        events = [
            BeatEvent(
                peak=int(kept_peaks[i]),
                label=int(labels[i]),
                flagged=bool(flagged[i]),
                frontend_cycles=float(frontend[i]),
                classify_cycles=self._classify_cycles,
                delineate_cycles=float(delineate_cycles[i]),
                tx_bytes=int(tx_bytes[i]),
                budget_cycles=float(budgets[i]),
            )
            for i in range(kept_peaks.size)
        ]
        return NodeTrace(events, record.duration, self.platform.clock_hz)
