"""Cycle model: converting operation counts into cycles and duty cycles.

The icyflex1 is a small load/store DSP core: single-cycle ALU
operations, a hardware multiplier, two-cycle memory accesses.  The
table below assigns a cycle cost to each operation kind recorded by the
op counters; multiplying and summing yields the cycle count of a stage,
and dividing by the clock (6 MHz on IcyHeart) yields its duty cycle.

The per-op costs are a calibrated model (documented constants, not
measurements); every *relative* Table III conclusion — classifier ≪
filtering ≪ delineation, gating saves ~60% — follows from the measured
op counts and is insensitive to reasonable cost-table changes, which
the ablation test ``tests/platform/test_cpu.py`` checks explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platform.opcount import OP_KINDS, OpCounter


@dataclass(frozen=True)
class CycleModel:
    """Cycles per operation kind.

    Attributes
    ----------
    cycles_per_op:
        Mapping from op kind to its cycle cost.
    overhead_factor:
        Multiplier covering loop/branch/addressing overhead a compiled
        loop executes around the counted arithmetic (1.0 = none).
    """

    cycles_per_op: dict[str, float] = field(default_factory=dict)
    overhead_factor: float = 1.0

    def __post_init__(self) -> None:
        unknown = set(self.cycles_per_op) - set(OP_KINDS)
        if unknown:
            raise ValueError(f"unknown op kinds in cycle table: {sorted(unknown)}")
        if any(v <= 0 for v in self.cycles_per_op.values()):
            raise ValueError("cycle costs must be positive")
        if self.overhead_factor < 1.0:
            raise ValueError("overhead_factor must be >= 1")

    def cycles(self, counter: OpCounter) -> float:
        """Total cycles of a recorded op profile."""
        total = 0.0
        for op, n in counter.counts.items():
            total += n * self.cycles_per_op.get(op, 1.0)
        return total * self.overhead_factor

    def duty_cycle(self, counter_per_second: OpCounter, clock_hz: float) -> float:
        """Fraction of the CPU the profile occupies at a given clock."""
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        return self.cycles(counter_per_second) / clock_hz

    def runtime_seconds(self, counter: OpCounter, clock_hz: float) -> float:
        """Wall-clock execution time of a profile at a given clock."""
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        return self.cycles(counter) / clock_hz


#: Calibrated icyflex-class cost table.  ALU ops are single-cycle, the
#: multiplier takes two, memory takes two; ``overhead_factor`` folds in
#: the loop/branch/address arithmetic of compiled inner loops (~1.6x
#: the counted payload ops for the dense compare/accumulate loops of
#: this workload).
ICYFLEX_CYCLES = CycleModel(
    cycles_per_op={
        "add": 1.0,
        "sub": 1.0,
        "cmp": 1.0,
        "shift": 1.0,
        "and": 1.0,
        "abs": 1.0,
        "mul": 2.0,
        "div": 18.0,
        "load": 2.0,
        "store": 2.0,
    },
    overhead_factor=1.6,
)
