"""Code-size and data-memory model.

Dynamic duty cycles are *measured* from op counts, but static code size
cannot be measured without compiling the reference C for the icyflex
ISA.  The model below therefore carries per-routine *instruction
estimates*, converted at 4 bytes/instruction (the icyflex long
instruction word), with the estimates calibrated once against the
binary sizes the paper reports in Table III:

* RP classifier (projection loop + MF evaluation + fuzzification +
  defuzzification + parameter access): ~420 instructions -> 1.64 KB.
* Filtering + peak detection (morphology kernels for three structuring
  elements, four wavelet filter cascades, the modulus-maxima pairing
  state machine and search-back): ~7300 instructions -> 28.65 KB, so
  sub-system (1) = classifier + filtering + detection = 30.29 KB.
* Multi-lead delineation (its own 3-lead filtering, MMD at three
  scales, per-wave window logic, multi-lead combination): ~11900
  instructions -> 46.39 KB.

The proposed system (3) links all of the above: 76.68 KB — Table III's
totals are additive, matching the paper exactly.  *Data* memory, by
contrast, is computed analytically from the deployed configuration
(packed matrix bytes, MF parameters, signal and beat buffers) and
checked against the 96 KB RAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fixedpoint.convert import EmbeddedClassifier

#: icyflex instruction width (bytes).
BYTES_PER_INSTRUCTION = 4

#: Calibrated instruction estimates per routine (see module docstring).
DEFAULT_ROUTINE_INSTRUCTIONS = {
    "rp_classifier": 420,
    "filtering_peak_detection": 7334,
    "delineation": 11876,
}


@dataclass(frozen=True)
class CodeSizeModel:
    """Static code-size estimates for the Table III sub-systems."""

    routine_instructions: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_ROUTINE_INSTRUCTIONS)
    )
    bytes_per_instruction: int = BYTES_PER_INSTRUCTION

    def __post_init__(self) -> None:
        if self.bytes_per_instruction < 1:
            raise ValueError("bytes_per_instruction must be >= 1")
        if any(v < 0 for v in self.routine_instructions.values()):
            raise ValueError("instruction counts are non-negative")

    def routine_bytes(self, routine: str) -> int:
        """Code bytes of one routine."""
        try:
            instructions = self.routine_instructions[routine]
        except KeyError as exc:
            raise KeyError(
                f"unknown routine {routine!r}; known: {sorted(self.routine_instructions)}"
            ) from exc
        return instructions * self.bytes_per_instruction

    # ------------------------------------------------------------------
    # Table III rows
    # ------------------------------------------------------------------
    def rp_classifier_bytes(self) -> int:
        """Row 1: the RP classifier alone."""
        return self.routine_bytes("rp_classifier")

    def subsystem1_bytes(self) -> int:
        """Row 2: RP + filtering + peak detection (sub-system (1))."""
        return self.rp_classifier_bytes() + self.routine_bytes("filtering_peak_detection")

    def delineation_bytes(self) -> int:
        """Row 3: multi-lead delineation (sub-system (2))."""
        return self.routine_bytes("delineation")

    def proposed_system_bytes(self) -> int:
        """Row 4: the complete gated system (3) = (1) + (2)."""
        return self.subsystem1_bytes() + self.delineation_bytes()

    def table3_column(self) -> dict[str, float]:
        """All four code sizes in KB, keyed like the Table III rows."""
        kb = 1024.0
        return {
            "rp_classifier": self.rp_classifier_bytes() / kb,
            "subsystem1": self.subsystem1_bytes() / kb,
            "delineation": self.delineation_bytes() / kb,
            "proposed_system": self.proposed_system_bytes() / kb,
        }


def data_memory_report(
    classifier: EmbeddedClassifier,
    fs: float,
    n_leads: int = 3,
    buffer_seconds: float = 1.0,
    sample_bytes: int = 2,
) -> dict[str, int]:
    """Analytic data-memory footprint of the deployed system (bytes).

    Covers the classifier's own tables (packed matrix, MF parameters)
    plus the signal buffering the filtering/delineation chain needs:
    ``n_leads`` circular buffers of ``buffer_seconds`` of samples, and
    the four wavelet scale buffers of the peak detector on one lead.
    """
    if fs <= 0 or buffer_seconds <= 0:
        raise ValueError("fs and buffer_seconds must be positive")
    classifier_memory = classifier.memory_report()
    lead_buffer = int(fs * buffer_seconds) * sample_bytes
    wavelet_buffers = 4 * lead_buffer
    report = {
        "classifier_tables": classifier_memory["total"],
        "lead_buffers": n_leads * lead_buffer,
        "wavelet_buffers": wavelet_buffers,
    }
    report["total"] = sum(report.values())
    return report


def fits_in_ram(report: dict[str, int], ram_bytes: int) -> bool:
    """True when a data-memory report fits the node's RAM."""
    return report["total"] <= ram_bytes
