"""Battery-life estimation for the monitoring node.

The paper's motivation is "long time monitoring of subjects"; its
energy result (23% total saving) translates directly into monitoring
days.  This module closes that loop: given a battery capacity and the
node's power decomposition (compute + radio = ~34% of the budget, the
rest being acquisition, leakage and the always-on analog front end),
it converts the gated system's duty cycle and radio traffic into an
expected battery lifetime, and compares architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platform.icyheart import IcyHeartConfig

#: Typical coin-cell / small LiPo capacities (joules).
#: A CR2032 stores ~225 mAh x 3 V ~ 2430 J; a small 100 mAh LiPo ~1330 J.
CR2032_ENERGY_J = 2430.0


@dataclass(frozen=True)
class BatteryModel:
    """Node-level power decomposition and battery capacity.

    The *baseline* node (always-on delineation, send-everything radio)
    defines the reference power budget: ``compute + radio`` of it is
    ``config.combined_energy_share`` of the total, the remaining
    fraction (``1 - share``) is fixed overhead (ADC, analog front end,
    leakage) that no classifier can reduce.
    """

    capacity_j: float = CR2032_ENERGY_J
    config: IcyHeartConfig = IcyHeartConfig()

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError("battery capacity must be positive")

    def baseline_power_w(self, baseline_compute_w: float, baseline_radio_w: float) -> float:
        """Total node power implied by the measured compute+radio power.

        Solves ``compute + radio = share * total`` for ``total``.
        """
        combined = baseline_compute_w + baseline_radio_w
        if combined <= 0:
            raise ValueError("baseline compute+radio power must be positive")
        return combined / self.config.combined_energy_share

    def lifetime_days(self, total_power_w: float) -> float:
        """Battery lifetime at a constant total power draw."""
        if total_power_w <= 0:
            raise ValueError("power must be positive")
        return self.capacity_j / total_power_w / 86_400.0

    def compare(
        self,
        baseline_compute_w: float,
        baseline_radio_w: float,
        gated_compute_w: float,
        gated_radio_w: float,
    ) -> dict[str, float]:
        """Lifetime of the always-on vs the gated architecture.

        Parameters are average power draws of the two subsystems under
        each architecture (from the energy model's breakdowns divided
        by their durations).

        Returns
        -------
        dict
            Baseline/gated total power (W), lifetimes (days) and the
            lifetime extension factor.
        """
        total_baseline = self.baseline_power_w(baseline_compute_w, baseline_radio_w)
        overhead = total_baseline - baseline_compute_w - baseline_radio_w
        total_gated = overhead + gated_compute_w + gated_radio_w
        baseline_days = self.lifetime_days(total_baseline)
        gated_days = self.lifetime_days(total_gated)
        return {
            "baseline_power_w": total_baseline,
            "gated_power_w": total_gated,
            "baseline_days": baseline_days,
            "gated_days": gated_days,
            "extension_factor": gated_days / baseline_days,
            "total_saving": 1.0 - total_gated / total_baseline,
        }
