"""Measured per-stage operation profiles.

Each function runs the *actual implementation* of a stage over
representative synthetic input with an :class:`OpCounter` attached and
normalizes the recorded work to per-second (continuous stages) or
per-beat (event-driven stages) profiles.  The Table III duty cycles are
then pure arithmetic: profile x cycle model / clock.

Stage inventory (Figure 6):

* ``filtering`` — per lead, continuous (morphological baseline removal
  + denoising);
* ``peak detection`` — one lead, continuous (wavelet + modulus-maxima
  pairing);
* ``rp classification`` — per beat (projection + integer NFC);
* ``delineation`` — per beat and per lead set (MMD multi-lead), plus
  the on-demand filtering of the two extra leads over the beat window
  when the gated system activates.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.delineation import delineate_multilead
from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.fixedpoint.convert import EmbeddedClassifier
from repro.platform.opcount import OpCounter

#: Default traffic assumption: the MIT-BIH mean heart rate (~77 bpm).
DEFAULT_HEART_RATE_HZ = 1.28

#: Window of signal (seconds) the delineator inspects per beat.
DELINEATION_SPAN_S = 0.77


def _synthetic_leads(fs: float, n_seconds: float, n_leads: int, seed: int) -> np.ndarray:
    """A short multi-lead synthetic record for profiling."""
    synthesizer = RecordSynthesizer(SynthesisConfig(fs=fs, n_leads=n_leads), seed=seed)
    record = synthesizer.synthesize(n_seconds, name="profile")
    return record.signal


def filtering_profile(
    fs: float, n_seconds: float = 4.0, seed: int = 0
) -> OpCounter:
    """Per-second op profile of the single-lead filtering stage."""
    signal = _synthetic_leads(fs, n_seconds, 1, seed)[:, 0]
    counter = OpCounter()
    filter_lead(signal, fs, counter=counter)
    return counter.scaled(1.0 / n_seconds)


def peak_detection_profile(
    fs: float, n_seconds: float = 4.0, seed: int = 0
) -> OpCounter:
    """Per-second op profile of the wavelet peak detector (one lead)."""
    signal = _synthetic_leads(fs, n_seconds, 1, seed)[:, 0]
    filtered = filter_lead(signal, fs)
    counter = OpCounter()
    detect_peaks(filtered, fs, counter=counter)
    return counter.scaled(1.0 / n_seconds)


def classifier_beat_profile(classifier: EmbeddedClassifier) -> OpCounter:
    """Per-beat op profile of the embedded RP classifier.

    Uses the analytic straight-line counts of the integer program (the
    embedded classifier executes a fixed instruction sequence per beat,
    so the analytic count *is* the measurement).
    """
    counter = OpCounter()
    counter.add_counts(classifier.beat_op_counts())
    return counter


def delineation_beat_profile(
    fs: float, n_leads: int = 3, seed: int = 0
) -> OpCounter:
    """Per-beat op profile of multi-lead MMD delineation.

    Measured by delineating every annotated beat of a short synthetic
    record and averaging the recorded work.
    """
    synthesizer = RecordSynthesizer(SynthesisConfig(fs=fs, n_leads=n_leads), seed=seed)
    record = synthesizer.synthesize(8.0, name="delineation-profile")
    filtered = np.column_stack(
        [filter_lead(record.signal[:, lead], fs) for lead in range(n_leads)]
    )
    assert record.annotation is not None
    peaks = record.annotation.samples
    if peaks.size == 0:
        raise RuntimeError("profiling record contains no beats")
    counter = OpCounter()
    for peak in peaks:
        delineate_multilead(filtered, int(peak), fs, counter=counter)
    return counter.scaled(1.0 / peaks.size)


def window_filtering_beat_profile(
    fs: float, n_leads: int = 2, span_s: float = DELINEATION_SPAN_S, seed: int = 0
) -> OpCounter:
    """Per-beat cost of filtering the extra leads over one beat window.

    In the gated system the two non-classification leads are only
    filtered when a beat is flagged, over the delineation span rather
    than continuously.
    """
    n_samples = max(int(span_s * fs), 8)
    signal = _synthetic_leads(fs, max(span_s, 1.0), 1, seed)[:n_samples, 0]
    counter = OpCounter()
    filter_lead(signal, fs, counter=counter)
    return counter.scaled(float(n_leads))


def subsystem1_profile(
    classifier: EmbeddedClassifier,
    fs: float,
    heart_rate_hz: float = DEFAULT_HEART_RATE_HZ,
    seed: int = 0,
) -> OpCounter:
    """Per-second profile of sub-system (1): filter + detect + classify."""
    profile = filtering_profile(fs, seed=seed)
    profile = profile.merge(peak_detection_profile(fs, seed=seed))
    profile = profile.merge(classifier_beat_profile(classifier).scaled(heart_rate_hz))
    return profile


def delineator_system_profile(
    fs: float,
    heart_rate_hz: float = DEFAULT_HEART_RATE_HZ,
    n_leads: int = 3,
    seed: int = 0,
) -> OpCounter:
    """Per-second profile of sub-system (2): always-on 3-lead delineation.

    Includes continuous filtering of all three leads, peak detection on
    one, and per-beat multi-lead delineation of *every* beat.
    """
    profile = filtering_profile(fs, seed=seed).scaled(float(n_leads))
    profile = profile.merge(peak_detection_profile(fs, seed=seed))
    profile = profile.merge(delineation_beat_profile(fs, n_leads, seed).scaled(heart_rate_hz))
    return profile


def proposed_system_profile(
    classifier: EmbeddedClassifier,
    activation_rate: float,
    fs: float,
    heart_rate_hz: float = DEFAULT_HEART_RATE_HZ,
    n_leads: int = 3,
    seed: int = 0,
) -> OpCounter:
    """Per-second profile of the proposed gated system (3).

    Sub-system (1) runs continuously; for the ``activation_rate``
    fraction of beats flagged abnormal, the node additionally filters
    the two extra leads over the beat window and runs the multi-lead
    delineation.
    """
    if not 0.0 <= activation_rate <= 1.0:
        raise ValueError("activation_rate must be in [0, 1]")
    profile = subsystem1_profile(classifier, fs, heart_rate_hz, seed)
    activated_beats_per_s = activation_rate * heart_rate_hz
    profile = profile.merge(
        window_filtering_beat_profile(fs, n_leads - 1, seed=seed).scaled(activated_beats_per_s)
    )
    profile = profile.merge(
        delineation_beat_profile(fs, n_leads, seed).scaled(activated_beats_per_s)
    )
    return profile
