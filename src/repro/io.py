"""Serialization of trained classifiers.

Training costs minutes (GA over NFC fits); deployment and evaluation
should not have to repeat it.  This module persists both classifier
forms to a single ``.npz`` archive:

* the float :class:`~repro.core.pipeline.RPClassifierPipeline`
  (projection matrix, MF centers/sigmas, shape, alpha);
* the integer :class:`~repro.fixedpoint.convert.EmbeddedClassifier`
  (packed matrix bytes, quantized MF tables, alpha_q16, ADC gain).

Archives are versioned; loading a future-versioned archive fails
loudly rather than mis-reading tables.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.achlioptas import AchlioptasMatrix
from repro.core.nfc import NeuroFuzzyClassifier
from repro.core.pipeline import RPClassifierPipeline
from repro.fixedpoint.convert import EmbeddedClassifier
from repro.fixedpoint.integer_nfc import IntegerNFC
from repro.fixedpoint.packed_matrix import PackedTernaryMatrix

#: Current archive format version.
FORMAT_VERSION = 1

_SHAPES = ("gaussian", "linear", "triangular")


def save_pipeline(pipeline: RPClassifierPipeline, path: str | Path) -> None:
    """Persist a float pipeline to ``path`` (``.npz``)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind=np.array("pipeline"),
        version=np.array(FORMAT_VERSION),
        matrix=pipeline.projection.matrix,
        centers=pipeline.nfc.centers,
        sigmas=pipeline.nfc.sigmas,
        shape=np.array(_SHAPES.index(pipeline.nfc.shape)),
        alpha=np.array(pipeline.alpha),
    )


def load_pipeline(path: str | Path) -> RPClassifierPipeline:
    """Load a float pipeline saved by :func:`save_pipeline`."""
    with np.load(Path(path)) as archive:
        _check(archive, "pipeline")
        nfc = NeuroFuzzyClassifier(
            archive["centers"],
            archive["sigmas"],
            shape=_SHAPES[int(archive["shape"])],
        )
        return RPClassifierPipeline(
            AchlioptasMatrix(archive["matrix"]),
            nfc,
            float(archive["alpha"]),
        )


def save_embedded(classifier: EmbeddedClassifier, path: str | Path) -> None:
    """Persist an embedded classifier to ``path`` (``.npz``)."""
    path = Path(path)
    np.savez_compressed(
        path,
        kind=np.array("embedded"),
        version=np.array(FORMAT_VERSION),
        packed=classifier.matrix.data,
        shape_kd=np.array(classifier.matrix.shape),
        centers=classifier.nfc.centers,
        s_values=classifier.nfc.s_values,
        slope_inner=classifier.nfc.slope_inner_q16,
        slope_outer=classifier.nfc.slope_outer_q16,
        mf_shape=np.array(0 if classifier.nfc.shape == "linear" else 1),
        alpha_q16=np.array(classifier.alpha_q16),
        adc_gain=np.array(classifier.adc_gain),
    )


def load_embedded(path: str | Path) -> EmbeddedClassifier:
    """Load an embedded classifier saved by :func:`save_embedded`."""
    with np.load(Path(path)) as archive:
        _check(archive, "embedded")
        matrix = PackedTernaryMatrix(
            archive["packed"], tuple(int(v) for v in archive["shape_kd"])
        )
        nfc = IntegerNFC(
            archive["centers"],
            archive["s_values"],
            archive["slope_inner"],
            archive["slope_outer"],
            shape="linear" if int(archive["mf_shape"]) == 0 else "triangular",
        )
        return EmbeddedClassifier(
            matrix=matrix,
            nfc=nfc,
            alpha_q16=int(archive["alpha_q16"]),
            adc_gain=float(archive["adc_gain"]),
        )


def _check(archive, expected_kind: str) -> None:
    kind = str(archive["kind"])
    if kind != expected_kind:
        raise ValueError(f"archive holds a {kind!r}, expected {expected_kind!r}")
    version = int(archive["version"])
    if version > FORMAT_VERSION:
        raise ValueError(
            f"archive format v{version} is newer than this library (v{FORMAT_VERSION})"
        )
