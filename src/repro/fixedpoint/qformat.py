"""Shared fixed-point helpers.

Small, dependency-free utilities used across the embedded path:
rounding float quantities to integer grids, saturating to a bit width,
and the integer base-2 logarithm that implements the "left-shift to the
maximum amount so that none of them overflow" normalization of the
fuzzification layer.

All functions are vectorized over numpy arrays and keep everything in
``int64`` so Python-side arithmetic can *model* 16/32-bit hardware
without accidentally wrapping; explicit saturation enforces the target
widths where the paper's implementation requires them.
"""

from __future__ import annotations

import numpy as np


def quantize(values: np.ndarray, scale: float) -> np.ndarray:
    """Round ``values * scale`` to the nearest integer (``int64``).

    The embedded pipeline quantizes millivolt quantities with the ADC
    gain (MIT-BIH: 200 adu/mV), so float-trained parameters and integer
    samples land on the same grid.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return np.rint(np.asarray(values, dtype=float) * scale).astype(np.int64)


def saturate(values: np.ndarray, bits: int, signed: bool = True) -> np.ndarray:
    """Clamp to the representable range of a ``bits``-wide register."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    values = np.asarray(values, dtype=np.int64)
    if signed:
        lo = -(1 << (bits - 1))
        hi = (1 << (bits - 1)) - 1
    else:
        lo = 0
        hi = (1 << bits) - 1
    return np.clip(values, lo, hi)


def fits(values: np.ndarray, bits: int, signed: bool = True) -> bool:
    """True when every value is representable in ``bits`` bits."""
    values = np.asarray(values, dtype=np.int64)
    return bool(np.array_equal(values, saturate(values, bits, signed)))


def ilog2(values: np.ndarray) -> np.ndarray:
    """Floor of log2 for positive integers (0 maps to -1).

    ``ilog2(v)`` is the index of the most significant set bit — the
    quantity a WBSN CPU obtains with a count-leading-zeros instruction
    (or a short shift loop), used to compute the block-normalization
    shift of the fuzzification layer.
    """
    values = np.asarray(values, dtype=np.int64)
    if np.any(values < 0):
        raise ValueError("ilog2 is defined for non-negative integers")
    # Exact binary search on the bit position (no float log2, which
    # loses precision above ~2^52).  Six masked halvings cover int64.
    remaining = values.copy()
    out = np.zeros(values.shape, dtype=np.int64)
    for step in (32, 16, 8, 4, 2, 1):
        big = remaining >= (np.int64(1) << step)
        out[big] += step
        remaining[big] >>= step
    out[values == 0] = -1
    return out


def float_to_q(value: float, frac_bits: int) -> int:
    """Encode a float as a Qx.``frac_bits`` fixed-point integer."""
    if frac_bits < 0:
        raise ValueError("frac_bits must be >= 0")
    return int(round(value * (1 << frac_bits)))


def q_to_float(value: int, frac_bits: int) -> float:
    """Decode a Qx.``frac_bits`` fixed-point integer to float."""
    if frac_bits < 0:
        raise ValueError("frac_bits must be >= 0")
    return value / float(1 << frac_bits)
