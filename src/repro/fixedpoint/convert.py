"""Float-to-embedded conversion of a trained pipeline.

Applied "after training and before execution": quantizes the beat
samples onto the ADC grid, packs the projection matrix at 2 bits per
element, linearizes the Gaussian membership functions, and encodes
``alpha`` in Q0.16 for the division-free defuzzifier.  The result — an
:class:`EmbeddedClassifier` — is the integer-only program the WBSN
executes, and the object the platform model profiles for Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.metrics import ClassificationReport
from repro.core.pipeline import RPClassifierPipeline
from repro.ecg.database import DEFAULT_ADC_GAIN
from repro.ecg.mitbih import LabeledBeats
from repro.fixedpoint.integer_nfc import (
    ALPHA_FRAC_BITS,
    IntegerNFC,
    integer_defuzzify,
)
from repro.fixedpoint.linearize import linearize_mf
from repro.fixedpoint.packed_matrix import PackedTernaryMatrix
from repro.fixedpoint.qformat import float_to_q, quantize


@dataclass(frozen=True)
class EmbeddedClassifier:
    """The integer-only WBSN classifier.

    Attributes
    ----------
    matrix:
        Packed 2-bit projection matrix.
    nfc:
        Quantized membership layer + fuzzification.
    alpha_q16:
        Defuzzification coefficient in Q0.16.
    adc_gain:
        Gain mapping millivolts to the integer sample grid (used only
        when callers pass float beats; integer beats are consumed
        as-is, like on the node).
    """

    matrix: PackedTernaryMatrix
    nfc: IntegerNFC
    alpha_q16: int
    adc_gain: float = DEFAULT_ADC_GAIN

    def __post_init__(self) -> None:
        if self.matrix.shape[0] != self.nfc.n_coefficients:
            raise ValueError("matrix and NFC disagree on k")
        if not 0 <= self.alpha_q16 <= (1 << ALPHA_FRAC_BITS):
            raise ValueError("alpha_q16 out of range")
        if self.adc_gain <= 0:
            raise ValueError("adc_gain must be positive")

    @property
    def n_coefficients(self) -> int:
        """Projection size k."""
        return int(self.matrix.shape[0])

    @property
    def n_inputs(self) -> int:
        """Beat length d consumed by the classifier."""
        return int(self.matrix.shape[1])

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def quantize_beats(self, X: np.ndarray) -> np.ndarray:
        """Map float millivolt beats onto the integer ADC grid."""
        return quantize(X, self.adc_gain)

    def _as_integer(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        if np.issubdtype(X.dtype, np.integer):
            return X.astype(np.int64)
        return self.quantize_beats(X)

    def project(self, X: np.ndarray, counter=None) -> np.ndarray:
        """Integer random projection ``(n, d) -> (n, k)``."""
        return self.matrix.project(self._as_integer(np.atleast_2d(X)), counter)

    def fuzzy_values(self, X: np.ndarray, counter=None) -> np.ndarray:
        """Integer fuzzy values ``(n, L)``."""
        return self.nfc.fuzzy_values(self.project(X, counter), counter)

    def predict(self, X: np.ndarray, counter=None) -> np.ndarray:
        """Defuzzified labels (class index or Unknown)."""
        return integer_defuzzify(self.fuzzy_values(X, counter), self.alpha_q16, counter)

    def predict_serial(self, X: np.ndarray, counter=None) -> np.ndarray:
        """Per-beat reference for :meth:`predict`.

        Classifies one beat at a time, exactly like the node firmware's
        main loop; the batched :meth:`predict` is bit-exact with this
        path in labels and charged op counts (all charges are linear in
        the batch size and the block-normalization shift is per beat).
        """
        X = np.atleast_2d(np.asarray(X))
        if X.shape[0] == 0:
            return self.predict(X, counter)
        labels = [int(self.predict(X[i : i + 1], counter)[0]) for i in range(X.shape[0])]
        return np.asarray(labels, dtype=np.int64)

    def evaluate(self, beats: LabeledBeats) -> ClassificationReport:
        """Evaluation report on a labeled set."""
        return ClassificationReport.from_labels(beats.y, self.predict(beats.X))

    # ------------------------------------------------------------------
    # Variants and footprint
    # ------------------------------------------------------------------
    def with_alpha(self, alpha: float) -> "EmbeddedClassifier":
        """Same classifier with a re-tuned ``alpha_test``."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        return replace(self, alpha_q16=float_to_q(alpha, ALPHA_FRAC_BITS))

    def memory_report(self) -> dict[str, int]:
        """Data-memory footprint in bytes, by component."""
        matrix_bytes = self.matrix.n_bytes
        nfc_bytes = self.nfc.memory_bytes()
        beat_buffer = 2 * self.n_inputs  # 16-bit sample window
        coefficients = 4 * self.n_coefficients  # 32-bit projected values
        accumulators = 4 * self.nfc.n_classes
        return {
            "projection_matrix": matrix_bytes,
            "projection_matrix_unpacked": self.matrix.n_bytes_unpacked,
            "nfc_parameters": nfc_bytes,
            "beat_buffer": beat_buffer,
            "work_buffers": coefficients + accumulators,
            "total": matrix_bytes + nfc_bytes + beat_buffer + coefficients + accumulators,
        }

    def beat_op_counts(self) -> dict[str, int]:
        """Analytic per-beat operation counts of the embedded program.

        Derived from the algorithm structure (not measured): the
        projection visits all ``k x d`` two-bit codes and adds the
        ~``k x d / 3`` non-zero ones; each of the ``k x L`` MFs costs a
        fixed straight-line sequence; fuzzification runs ``k - 1``
        block-multiply/normalize steps over ``L`` classes; the
        defuzzifier is a constant tail.  These counts feed the platform
        cycle model for the Table III rows.
        """
        k = self.n_coefficients
        d = self.n_inputs
        n_classes = self.nfc.n_classes
        nnz = int(np.count_nonzero(self.matrix.unpack()))
        counts = {
            # projection: decode 2-bit code (load amortized 1/4, shift,
            # mask, test) then conditional add/sub.
            "load": k * (d // 4 + d) + k * n_classes * 4,
            "shift": k * d + (k - 1) * (n_classes + 1) + k * n_classes + 1,
            "and": k * d,
            "cmp": k * d + 3 * k * n_classes + (k - 1) * (n_classes - 1) + 2 * n_classes,
            "add": nnz + n_classes,
            "sub": k * n_classes + 1,
            "abs": k * n_classes,
            "mul": k * n_classes + (k - 1) * n_classes + 1,
            "store": k + n_classes,
        }
        return counts


def convert_pipeline(
    pipeline: RPClassifierPipeline,
    adc_gain: float = DEFAULT_ADC_GAIN,
    shape: str = "linear",
    alpha: float | None = None,
) -> EmbeddedClassifier:
    """Convert a float pipeline into the integer WBSN classifier.

    Parameters
    ----------
    pipeline:
        Trained float pipeline (Gaussian NFC).
    adc_gain:
        Millivolt-to-count gain of the node's ADC (MIT-BIH: 200).
    shape:
        Embedded membership shape: ``"linear"`` (the paper's 4-segment
        approximation) or ``"triangular"`` (the simpler comparison).
    alpha:
        Optional ``alpha_test`` override; defaults to the pipeline's
        trained alpha.

    Returns
    -------
    EmbeddedClassifier
    """
    matrix = PackedTernaryMatrix.pack(pipeline.projection)
    centers_int, s_int, slope_inner, slope_outer = linearize_mf(
        pipeline.nfc.centers, pipeline.nfc.sigmas, adc_gain
    )
    nfc = IntegerNFC(
        centers=centers_int,
        s_values=s_int,
        slope_inner_q16=slope_inner,
        slope_outer_q16=slope_outer,
        shape=shape,
    )
    effective_alpha = pipeline.alpha if alpha is None else alpha
    return EmbeddedClassifier(
        matrix=matrix,
        nfc=nfc,
        alpha_q16=float_to_q(effective_alpha, ALPHA_FRAC_BITS),
        adc_gain=adc_gain,
    )


def tune_embedded_alpha(
    classifier: EmbeddedClassifier, beats: LabeledBeats, target_arr: float
) -> EmbeddedClassifier:
    """Re-tune ``alpha_test`` of an embedded classifier on labeled beats.

    Works directly on the Q0.16 grid the node compares against: because
    ARR is non-decreasing in ``alpha_q16``, a binary search over the
    65537 representable alphas finds the smallest one meeting the
    target *under the exact integer rule* — no float/integer rounding
    mismatch at the threshold.
    """
    if not 0.0 <= target_arr <= 1.0:
        raise ValueError("target_arr must be in [0, 1]")
    fuzzy = classifier.fuzzy_values(beats.X)
    y = np.asarray(beats.y)
    abnormal = y != 0
    n_abnormal = int(abnormal.sum())
    if n_abnormal == 0:
        return replace(classifier, alpha_q16=0)

    def arr_at(alpha_q16: int) -> float:
        labels = integer_defuzzify(fuzzy, alpha_q16)
        return float(np.mean(labels[abnormal] != 0))

    lo, hi = 0, 1 << ALPHA_FRAC_BITS
    if arr_at(lo) >= target_arr:
        return replace(classifier, alpha_q16=lo)
    if arr_at(hi) < target_arr:
        return replace(classifier, alpha_q16=hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if arr_at(mid) >= target_arr:
            hi = mid
        else:
            lo = mid
    return replace(classifier, alpha_q16=hi)
