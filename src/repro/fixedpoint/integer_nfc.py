"""Integer NFC: block-normalized fuzzification and division-free defuzz.

Fuzzification (Section III-B): "the membership grades related to the
two first coefficients are multiplied for each of the three classes.
The three resulting numbers are left-shifted to the maximum amount so
that none of them overflow and then the rightmost 16 bits are
discarded.  All subsequent membership grades are then processed in a
similar fashion."  This is block floating point: the shift is *shared*
across classes, so the per-class ratios — the only thing the
defuzzifier consumes — survive to within one truncation LSB per
coefficient, while every product stays inside 32 bits.

Defuzzification compares ``M1 - M2 >= alpha * S`` without dividing:
``alpha`` is carried as a Q0.16 integer and the comparison is evaluated
as ``(M1 - M2) << 16 >= alpha_q16 * S`` in a wide register.

The Python model keeps values in ``int64`` but asserts the 32-bit
envelope the WBSN implementation relies on; property tests exercise
that envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.defuzz import UNKNOWN_LABEL
from repro.fixedpoint.linearize import (
    GRADE_MAX,
    evaluate_linearized,
    evaluate_triangular,
)
from repro.fixedpoint.qformat import ilog2

#: Fractional bits of the embedded alpha representation.
ALPHA_FRAC_BITS = 16

#: Supported embedded membership shapes.
EMBEDDED_SHAPES = ("linear", "triangular")


def block_fuzzify(grades: np.ndarray, counter=None) -> np.ndarray:
    """Integer product of membership grades with block normalization.

    Parameters
    ----------
    grades:
        ``(n, k, L)`` integer grades in ``[0, GRADE_MAX]``.
    counter:
        Optional op-counter.

    Returns
    -------
    np.ndarray
        ``(n, L)`` integer fuzzy values (each < 2^16 after the final
        truncation).  A row is all-zero when every class's product
        collapsed to zero (possible for the triangular shape only).

    Notes
    -----
    The loop mirrors the embedded schedule exactly: multiply (32-bit
    product of two 16-bit operands), find the largest accumulator,
    left-shift all classes so that the largest occupies bit 31, drop
    the low 16 bits.  Because the shift is common, class *ratios* are
    preserved up to truncation.
    """
    grades = np.asarray(grades, dtype=np.int64)
    if grades.ndim != 3:
        raise ValueError("grades must be (n, k, L)")
    if grades.size and (grades.min() < 0 or grades.max() > GRADE_MAX):
        raise ValueError(f"grades must lie in [0, {GRADE_MAX}]")
    n, k, n_classes = grades.shape
    if k < 1:
        raise ValueError("need at least one coefficient")

    acc = grades[:, 0, :].copy()
    for j in range(1, k):
        # Both operands are < 2^16 (grades by definition, acc by the
        # previous truncation), so the product is < 2^32: exactly the
        # 32-bit envelope of the modelled multiplier.
        acc = acc * grades[:, j, :]
        # Shared normalization shift: align the per-beat max to bit 31.
        peak = acc.max(axis=1)
        shift = np.where(peak > 0, 31 - ilog2(np.maximum(peak, 1)), 0)
        shift = np.maximum(shift, 0)
        acc = (acc << shift[:, np.newaxis]) >> 16
        if counter is not None:
            counter.add("mul", n * n_classes)
            counter.add("cmp", n * (n_classes - 1))  # max scan
            counter.add("shift", n * (n_classes + 1))  # clz + normalize
    # 32-bit envelope check of the modelled hardware.
    if acc.size and acc.max() >= (np.int64(1) << 32):
        raise OverflowError("fuzzification accumulator exceeded 32 bits")
    return acc


def block_fuzzify_serial(grades: np.ndarray, counter=None) -> np.ndarray:
    """Per-beat reference loop for :func:`block_fuzzify`.

    Runs the embedded schedule one beat at a time — exactly what the
    node's firmware does — and stacks the results.  The batched
    :func:`block_fuzzify` is bit-exact with this loop in both the
    fuzzy values and the charged op counts (the block-normalization
    shift is derived per beat in either path, and every charge is
    linear in ``n``); the regression suite pins that equivalence.
    """
    grades = np.asarray(grades, dtype=np.int64)
    if grades.ndim != 3:
        raise ValueError("grades must be (n, k, L)")
    n, _, n_classes = grades.shape
    if n == 0:
        # Validate shape/range exactly like the batched path would.
        return block_fuzzify(grades, counter)
    return np.vstack([block_fuzzify(grades[i : i + 1], counter) for i in range(n)])


def integer_defuzzify(
    fuzzy: np.ndarray, alpha_q16: int, counter=None
) -> np.ndarray:
    """Division-free defuzzification on integer fuzzy values.

    Parameters
    ----------
    fuzzy:
        ``(n, L)`` non-negative integer fuzzy values.
    alpha_q16:
        ``alpha`` in Q0.16 (0 .. 65536 for alpha in [0, 1]).
    counter:
        Optional op-counter.

    Returns
    -------
    np.ndarray
        ``(n,)`` labels: argmax class when
        ``(M1 - M2) << 16 >= alpha_q16 * S``, else
        :data:`UNKNOWN_LABEL`.  All-zero rows are Unknown.
    """
    fuzzy = np.asarray(fuzzy, dtype=np.int64)
    if fuzzy.ndim != 2 or fuzzy.shape[1] < 2:
        raise ValueError("fuzzy must be (n, L) with L >= 2")
    if np.any(fuzzy < 0):
        raise ValueError("fuzzy values must be non-negative")
    if not 0 <= alpha_q16 <= (1 << ALPHA_FRAC_BITS):
        raise ValueError("alpha_q16 must encode an alpha in [0, 1]")
    order = np.sort(fuzzy, axis=1)
    m1 = order[:, -1]
    m2 = order[:, -2]
    total = fuzzy.sum(axis=1)
    confident = ((m1 - m2) << ALPHA_FRAC_BITS) >= alpha_q16 * total
    alive = total > 0
    winners = fuzzy.argmax(axis=1)
    labels = np.where(alive & confident, winners, UNKNOWN_LABEL)
    if counter is not None:
        n, n_classes = fuzzy.shape
        counter.add("cmp", n * (2 * n_classes))  # find M1, M2
        counter.add("add", n * n_classes)  # S
        counter.add("mul", n)
        counter.add("shift", n)
        counter.add("sub", n)
    return labels.astype(np.int64)


@dataclass(frozen=True)
class IntegerNFC:
    """Quantized membership layer + integer fuzzification.

    Attributes
    ----------
    centers:
        ``(k, L)`` integer MF centers (coefficient grid).
    s_values:
        ``(k, L)`` integer breakpoint units ``S = 2.35 sigma``.
    slope_inner_q16, slope_outer_q16:
        ``(k, L)`` precomputed Q0.16 segment slopes (linear shape).
    shape:
        ``"linear"`` or ``"triangular"``.
    """

    centers: np.ndarray
    s_values: np.ndarray
    slope_inner_q16: np.ndarray
    slope_outer_q16: np.ndarray
    shape: str = "linear"

    def __post_init__(self) -> None:
        arrays = {
            "centers": self.centers,
            "s_values": self.s_values,
            "slope_inner_q16": self.slope_inner_q16,
            "slope_outer_q16": self.slope_outer_q16,
        }
        reference_shape = np.asarray(self.centers).shape
        for name, arr in arrays.items():
            arr = np.asarray(arr, dtype=np.int64)
            if arr.ndim != 2 or arr.shape != reference_shape:
                raise ValueError(f"{name} must be (k, L) and consistent")
            object.__setattr__(self, name, arr)
        if np.any(self.s_values < 1):
            raise ValueError("s_values must be >= 1")
        if self.shape not in EMBEDDED_SHAPES:
            raise ValueError(f"shape must be one of {EMBEDDED_SHAPES}")

    @property
    def n_coefficients(self) -> int:
        """Number of input coefficients k."""
        return int(self.centers.shape[0])

    @property
    def n_classes(self) -> int:
        """Number of classes L."""
        return int(self.centers.shape[1])

    def membership_grades(self, U: np.ndarray, counter=None) -> np.ndarray:
        """Grades of integer coefficients, shape ``(n, k, L)``."""
        U = np.asarray(U, dtype=np.int64)
        if U.ndim != 2 or U.shape[1] != self.n_coefficients:
            raise ValueError("U must be (n, k)")
        x = U[:, :, np.newaxis]
        if self.shape == "linear":
            grades = evaluate_linearized(
                x,
                self.centers[np.newaxis],
                self.s_values[np.newaxis],
                self.slope_inner_q16[np.newaxis],
                self.slope_outer_q16[np.newaxis],
            )
        else:
            grades = evaluate_triangular(x, self.centers[np.newaxis], self.s_values[np.newaxis])
        if counter is not None:
            n = U.shape[0]
            per_mf = n * self.n_coefficients * self.n_classes
            counter.add("sub", per_mf)
            counter.add("abs", per_mf)
            counter.add("cmp", 3 * per_mf)  # segment selection
            counter.add("mul", per_mf)
            counter.add("shift", per_mf)
        return grades

    def fuzzy_values(self, U: np.ndarray, counter=None) -> np.ndarray:
        """Integer fuzzy values ``(n, L)`` via block fuzzification."""
        return block_fuzzify(self.membership_grades(U, counter), counter)

    def fuzzy_values_serial(self, U: np.ndarray, counter=None) -> np.ndarray:
        """Per-beat reference for :meth:`fuzzy_values`.

        Processes one beat at a time, like the firmware's main loop.
        The batched path is bit-exact with this one in values and in
        charged op counts; ``tests/fixedpoint`` pins the equivalence.
        """
        U = np.asarray(U, dtype=np.int64)
        if U.ndim != 2 or U.shape[1] != self.n_coefficients:
            raise ValueError("U must be (n, k)")
        if U.shape[0] == 0:
            return self.fuzzy_values(U, counter)
        return np.vstack(
            [self.fuzzy_values(U[i : i + 1], counter) for i in range(U.shape[0])]
        )

    def memory_bytes(self) -> int:
        """Parameter footprint per (k, L) MF.

        Centers and S values fit 16-bit words on the target (the
        projected-coefficient grid stays well under 2^15 for the
        paper's beat lengths and ADC gain); the two precomputed Q16.16
        slopes need 32-bit words: 2 + 2 + 4 + 4 = 12 bytes per MF.
        """
        return int(12 * self.centers.size)
