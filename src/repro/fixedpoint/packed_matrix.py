"""2-bits-per-element packed representation of the projection matrix.

"The P matrix is generated in such a way that its elements only assume
three values (+1, -1 and 0).  We therefore use a compact representation
where each element is coded using two bits, which requires 1/4 of the
memory with respect to a corresponding matrix of 8-bits values."

Encoding (2 bits per element, 4 elements per byte, row-major,
little-endian within the byte):

====  =======
code  element
====  =======
0b00     0
0b01    +1
0b10    -1
====  =======

Code ``0b11`` is invalid; the decoder rejects it, which doubles as a
corruption check for stored matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.achlioptas import AchlioptasMatrix

#: Two-bit codes by element value.
_CODE_OF = {0: 0b00, 1: 0b01, -1: 0b10}
_VALUE_OF = {0b00: 0, 0b01: 1, 0b10: -1}


@dataclass(frozen=True)
class PackedTernaryMatrix:
    """A ternary matrix stored at two bits per element.

    Attributes
    ----------
    data:
        ``uint8`` buffer, 4 elements per byte, rows padded to byte
        boundaries (each row starts on a fresh byte so rows can be
        streamed independently during the projection loop).
    shape:
        Logical ``(k, d)`` shape.
    """

    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        k, d = self.shape
        if k < 1 or d < 1:
            raise ValueError("matrix dimensions must be positive")
        expected = k * self._row_bytes(d)
        data = np.asarray(self.data, dtype=np.uint8)
        if data.shape != (expected,):
            raise ValueError(f"packed buffer must hold {expected} bytes, got {data.shape}")
        object.__setattr__(self, "data", data)

    @staticmethod
    def _row_bytes(d: int) -> int:
        return (d + 3) // 4

    # ------------------------------------------------------------------
    # Construction / reconstruction
    # ------------------------------------------------------------------
    @classmethod
    def pack(cls, matrix: AchlioptasMatrix | np.ndarray) -> "PackedTernaryMatrix":
        """Pack a ternary matrix into the 2-bit representation."""
        if isinstance(matrix, AchlioptasMatrix):
            matrix = matrix.matrix
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D ternary matrix")
        if not np.all(np.isin(matrix, (-1, 0, 1))):
            raise ValueError("entries must be in {-1, 0, +1}")
        k, d = matrix.shape
        row_bytes = cls._row_bytes(d)
        codes = np.zeros((k, row_bytes * 4), dtype=np.uint8)
        lookup = np.array([_CODE_OF[-1], _CODE_OF[0], _CODE_OF[1]], dtype=np.uint8)
        codes[:, :d] = lookup[matrix.astype(np.int64) + 1]
        codes = codes.reshape(k, row_bytes, 4)
        packed = (
            codes[:, :, 0]
            | (codes[:, :, 1] << 2)
            | (codes[:, :, 2] << 4)
            | (codes[:, :, 3] << 6)
        ).astype(np.uint8)
        return cls(packed.reshape(-1), (k, d))

    def unpack(self) -> np.ndarray:
        """Reconstruct the ``(k, d)`` ``int8`` ternary matrix."""
        k, d = self.shape
        row_bytes = self._row_bytes(d)
        packed = self.data.reshape(k, row_bytes)
        codes = np.empty((k, row_bytes, 4), dtype=np.uint8)
        codes[:, :, 0] = packed & 0b11
        codes[:, :, 1] = (packed >> 2) & 0b11
        codes[:, :, 2] = (packed >> 4) & 0b11
        codes[:, :, 3] = (packed >> 6) & 0b11
        flat = codes.reshape(k, row_bytes * 4)[:, :d]
        if np.any(flat == 0b11):
            raise ValueError("corrupt packed matrix: code 0b11 encountered")
        table = np.array([_VALUE_OF[0b00], _VALUE_OF[0b01], _VALUE_OF[0b10]], dtype=np.int8)
        return table[flat]

    def to_achlioptas(self) -> AchlioptasMatrix:
        """Unpack into an :class:`AchlioptasMatrix`."""
        return AchlioptasMatrix(self.unpack())

    def _decoded(self) -> dict:
        """Decode-once cache for the projection hot path.

        The packed buffer is the canonical (immutable) state; the dense
        matrix, its transposed integer/float operand forms and the
        non-zero count are derived views computed on first use.  The
        cache is dropped on pickling (see ``__getstate__``) so worker
        hand-offs ship only the 2-bit representation, like the node's
        radio would.
        """
        cache = self.__dict__.get("_decoded_cache")
        if cache is None:
            dense = self.unpack()
            cache = {
                "nnz": int(np.count_nonzero(dense)),
                "t_i64": np.ascontiguousarray(dense.T.astype(np.int64)),
                "t_f64": np.ascontiguousarray(dense.T.astype(np.float64)),
            }
            object.__setattr__(self, "_decoded_cache", cache)
        return cache

    def __getstate__(self) -> dict:
        return {"data": self.data, "shape": self.shape}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Projection and footprint
    # ------------------------------------------------------------------
    def project(self, v: np.ndarray, counter=None) -> np.ndarray:
        """Integer projection ``u = P v`` from the packed form.

        The embedded loop decodes two bits at a time and conditionally
        adds/subtracts the sample; here the decode runs once per matrix
        (cached, see :meth:`_decoded`) but the recorded operation counts
        still match the element-serial loop.
        """
        decoded = self._decoded()
        v = np.asarray(v)
        single = v.ndim == 1
        if single:
            v = v[np.newaxis, :]
        if v.shape[1] != self.shape[1]:
            raise ValueError("beat length does not match matrix width")
        if counter is not None:
            n = v.shape[0]
            counter.add("load", n * self.shape[0] * self._row_bytes(self.shape[1]))
            counter.add("shift", n * self.shape[0] * self.shape[1])  # 2-bit decode
            counter.add("add", n * decoded["nnz"])
            counter.add("store", n * self.shape[0])
        if np.issubdtype(v.dtype, np.integer):
            u = v.astype(np.int64) @ decoded["t_i64"]
        else:
            u = v @ decoded["t_f64"]
        return u[0] if single else u

    @property
    def n_bytes(self) -> int:
        """Actual packed footprint in bytes."""
        return int(self.data.size)

    @property
    def n_bytes_unpacked(self) -> int:
        """Footprint of the naive 8-bit representation (the 4x baseline)."""
        return int(self.shape[0] * self.shape[1])

    @property
    def compression_ratio(self) -> float:
        """Unpacked / packed size (~4 up to row padding)."""
        return self.n_bytes_unpacked / self.n_bytes
