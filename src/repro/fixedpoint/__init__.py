"""Resource-constrained optimization phase (Section III-B).

The trained float classifier "cannot be employed as-is in a WBSN
platform": data must become integers, Gaussian exponentials must go,
products must not overflow 32 bits, and the projection matrix must fit
the node's memory.  This subpackage implements the four transformations
the paper proposes:

* :mod:`repro.fixedpoint.linearize` — 4-segment linear (and triangular)
  integer membership functions on the ``[0, 2^16 - 1]`` range;
* :mod:`repro.fixedpoint.integer_nfc` — integer fuzzification with
  block left-shift normalization and 16-bit truncation, plus the
  division-free defuzzifier;
* :mod:`repro.fixedpoint.packed_matrix` — the 2-bits-per-element
  projection matrix representation;
* :mod:`repro.fixedpoint.convert` — the float-to-embedded converter
  applied after training;
* :mod:`repro.fixedpoint.qformat` — shared fixed-point helpers.
"""

from repro.fixedpoint.convert import EmbeddedClassifier, convert_pipeline
from repro.fixedpoint.integer_nfc import IntegerNFC
from repro.fixedpoint.linearize import LinearizedMF, linearize_mf
from repro.fixedpoint.packed_matrix import PackedTernaryMatrix

__all__ = [
    "convert_pipeline",
    "EmbeddedClassifier",
    "IntegerNFC",
    "LinearizedMF",
    "linearize_mf",
    "PackedTernaryMatrix",
]
