"""Integer membership functions: the 4-segment linearization of Figure 4.

Given a trained Gaussian MF with center ``c`` and standard deviation
``sigma``, the embedded MF maps an integer coefficient ``x`` to the
range ``[0, 2^16 - 1]`` using ``S = 2.35 sigma`` (the Gaussian FWHM):

========================  ==============================================
region                    value
========================  ==============================================
``|c - x| >= 4S``         0
``2S <= |c - x| < 4S``    1 (the positive floor that keeps products
                          alive through the fuzzification stage)
``S <= |c - x| < 2S``     linear segment from the Gaussian's value at S
                          (~0.0632 -> 4142) down to 1 at 2S
``|c - x| < S``           linear segment from 65535 at 0 down to 4142
                          at S
========================  ==============================================

Divisions by ``S`` are folded into per-MF reciprocal multipliers
computed *once at conversion time* (Q0.16 fixed point), so the per-beat
evaluation needs only a subtraction, an absolute value, two compares, a
multiply and a shift — no runtime division, matching the paper's "can
therefore be efficiently implemented in WBSNs".

The triangular MF (the simpler comparison shape of Figure 4) is a
single segment from 65535 at 0 to 0 at 2S.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.membership import GAUSSIAN_AT_S, S_FACTOR

#: Full-scale grade value (2^16 - 1).
GRADE_MAX = (1 << 16) - 1

#: Grade of the linearized MF at distance S (the true Gaussian there).
GRADE_AT_S = int(round(GAUSSIAN_AT_S * GRADE_MAX))

#: Fractional bits of the precomputed reciprocal slopes.
SLOPE_FRAC_BITS = 16


@dataclass(frozen=True)
class LinearizedMF:
    """Integer MF parameters for one (coefficient, class) pair.

    Attributes
    ----------
    center:
        Integer MF center (same grid as the projected coefficients).
    s:
        Integer breakpoint unit ``S = 2.35 sigma`` (>= 1).
    slope_inner_q16:
        Q0.16 slope of the ``r < S`` segment:
        ``(GRADE_MAX - GRADE_AT_S) / S``, premultiplied by ``2^16``.
    slope_outer_q16:
        Q0.16 slope of the ``S <= r < 2S`` segment:
        ``(GRADE_AT_S - 1) / S`` premultiplied.
    """

    center: int
    s: int
    slope_inner_q16: int
    slope_outer_q16: int

    @classmethod
    def from_float(cls, center: float, sigma: float, scale: float) -> "LinearizedMF":
        """Quantize a trained Gaussian MF.

        Parameters
        ----------
        center, sigma:
            Float MF parameters in the training units (e.g. mV after
            projection).
        scale:
            Multiplier mapping the training units onto the integer
            coefficient grid (the ADC gain for mV-trained pipelines).
        """
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        s = max(1, int(round(S_FACTOR * sigma * scale)))
        slope_inner = ((GRADE_MAX - GRADE_AT_S) << SLOPE_FRAC_BITS) // s
        slope_outer = ((GRADE_AT_S - 1) << SLOPE_FRAC_BITS) // s
        return cls(
            center=int(round(center * scale)),
            s=s,
            slope_inner_q16=int(slope_inner),
            slope_outer_q16=int(slope_outer),
        )

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Grades of integer coefficients ``x`` (vectorized, ``int64``)."""
        return evaluate_linearized(
            np.asarray(x, dtype=np.int64),
            np.int64(self.center),
            np.int64(self.s),
            np.int64(self.slope_inner_q16),
            np.int64(self.slope_outer_q16),
        )


def evaluate_linearized(
    x: np.ndarray,
    center: np.ndarray,
    s: np.ndarray,
    slope_inner_q16: np.ndarray,
    slope_outer_q16: np.ndarray,
) -> np.ndarray:
    """Vectorized 4-segment MF; broadcasts like ``x - center``.

    All operands are integer arrays; the result is in
    ``[0, GRADE_MAX]``.  The distance is clamped at ``4S`` before the
    fixed-point multiply so every intermediate fits in 32 + 16 bits on
    the target, independent of how far an outlier coefficient lands.
    """
    r = np.minimum(np.abs(x - center), 4 * s)
    # Every branch value is computed with the exact arithmetic the
    # segment-selected path used, then selected per element — no
    # boolean gather/scatter on the hot path.  The clamp above bounds
    # r * slope at 4S * slope < 2^35, so evaluating the inner product
    # outside its own segment cannot overflow int64.
    inner = GRADE_MAX - ((r * slope_inner_q16) >> SLOPE_FRAC_BITS)
    middle = GRADE_AT_S - (((r - s) * slope_outer_q16) >> SLOPE_FRAC_BITS)
    grades = np.where(
        r < s,
        inner,
        np.where(r < 2 * s, middle, np.where(r < 4 * s, np.int64(1), np.int64(0))),
    )
    return np.clip(grades, 0, GRADE_MAX)


def evaluate_triangular(x: np.ndarray, center: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Integer triangular MF: 65535 at r = 0 down to 0 at r = 2S.

    The slope is folded the same way (the caller precomputes nothing
    here because the expression needs one multiply and one division by
    ``2S`` that we evaluate with a reciprocal in Q16 derived on the
    fly; tests check it matches the float shape to 1 LSB).
    """
    x = np.asarray(x, dtype=np.int64)
    center = np.asarray(center, dtype=np.int64)
    s = np.asarray(s, dtype=np.int64)
    if np.any(s < 1):
        raise ValueError("s must be >= 1")
    r = np.abs(x - center)
    slope_q16 = (GRADE_MAX << SLOPE_FRAC_BITS) // (2 * s)
    r_clamped = np.minimum(r, 2 * s)
    grades = GRADE_MAX - ((r_clamped * slope_q16) >> SLOPE_FRAC_BITS)
    grades = np.where(r >= 2 * s, 0, grades)
    return np.clip(grades, 0, GRADE_MAX)


def linearize_mf(
    centers: np.ndarray, sigmas: np.ndarray, scale: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Quantize whole ``(k, L)`` MF parameter arrays at once.

    Returns
    -------
    (centers_int, s_int, slope_inner_q16, slope_outer_q16):
        Integer arrays of shape ``(k, L)`` ready for
        :func:`evaluate_linearized`.
    """
    centers = np.asarray(centers, dtype=float)
    sigmas = np.asarray(sigmas, dtype=float)
    if centers.shape != sigmas.shape:
        raise ValueError("centers and sigmas must have equal shapes")
    if np.any(sigmas <= 0):
        raise ValueError("sigmas must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    s_int = np.maximum(1, np.rint(S_FACTOR * sigmas * scale)).astype(np.int64)
    centers_int = np.rint(centers * scale).astype(np.int64)
    slope_inner = ((GRADE_MAX - GRADE_AT_S) << SLOPE_FRAC_BITS) // s_int
    slope_outer = ((GRADE_AT_S - 1) << SLOPE_FRAC_BITS) // s_int
    return centers_int, s_int, slope_inner, slope_outer
