"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists
only so environments without the ``wheel`` package (offline CI boxes)
can still do an editable install via ``python setup.py develop``.
"""

from setuptools import setup

setup()
