"""Holter-style monitoring: the full Figure 6 system on a live record.

Synthesizes a multi-lead ambulatory ECG record (baseline wander, muscle
noise, powerline interference, premature ventricular beats), then runs
the complete embedded chain exactly as the WBSN would:

1. morphological filtering of the classification lead;
2. wavelet R-peak detection;
3. beat segmentation + 4x downsampling;
4. integer RP classification of every beat;
5. gated 3-lead MMD delineation of the beats flagged abnormal;
6. transmission accounting (peak-only vs full-fiducial packets).

Usage::

    python examples/holter_monitoring.py [--minutes 3] [--pvc-rate 0.1]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.defuzz import is_abnormal
from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig
from repro.dsp.delineation import delineate_beats
from repro.dsp.morphological import filter_lead
from repro.dsp.peak_detection import detect_peaks
from repro.dsp.streaming import StreamingNode
from repro.ecg.morphologies import BEAT_CLASSES
from repro.ecg.resample import decimate_beats
from repro.ecg.segmentation import BeatWindow, match_peaks_to_annotation, segment_beats
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.experiments.datasets import make_embedded_datasets
from repro.fixedpoint.convert import convert_pipeline, tune_embedded_alpha
from repro.platform.radio import RadioModel


def train_node_classifier(seed: int):
    """Train and quantize the classifier deployed on the node."""
    data = make_embedded_datasets(scale=0.05, seed=seed)
    config = TrainingConfig(
        n_coefficients=8, genetic=GeneticConfig(population_size=8, generations=5)
    )
    pipeline = RPClassifierPipeline.train(data.train1, data.train2, 8, seed=seed, config=config)
    classifier = convert_pipeline(pipeline, shape="linear")
    return tune_embedded_alpha(classifier, data.test, 0.97)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=3.0)
    parser.add_argument("--pvc-rate", type=float, default=0.10)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    print("Training + quantizing the node classifier ...")
    classifier = train_node_classifier(args.seed)

    print(f"Synthesizing a {args.minutes:.1f}-minute 3-lead recording ...")
    synth = RecordSynthesizer(SynthesisConfig(n_leads=3), seed=args.seed)
    mix = {"N": 1.0 - args.pvc_rate - 0.05, "V": args.pvc_rate, "L": 0.05}
    record = synth.synthesize(args.minutes * 60.0, class_mix=mix, name="holter")
    print(f"  {len(record.annotation)} reference beats: {record.annotation.counts()}")

    print("Filtering and detecting peaks ...")
    filtered = np.column_stack(
        [filter_lead(record.signal[:, i], record.fs) for i in range(3)]
    )
    peaks = detect_peaks(filtered[:, 0], record.fs)
    window = BeatWindow(100, 100)
    beats, kept = segment_beats(filtered[:, 0], peaks, window)
    kept_peaks = peaks[kept]
    print(f"  {kept_peaks.size} beats detected and segmented")

    print("Classifying every beat on the (simulated) node ...")
    beats_90hz, _ = decimate_beats(beats, window, 4)
    labels = classifier.predict(beats_90hz)
    flagged = is_abnormal(labels)
    print(f"  flagged abnormal: {int(flagged.sum())} "
          f"({100 * flagged.mean():.1f}% of traffic)")

    true_labels, matched = match_peaks_to_annotation(kept_peaks, record.annotation, 18)
    usable = matched
    agreement_lines = []
    for idx, symbol in enumerate(BEAT_CLASSES):
        mask = usable & (true_labels == idx)
        if mask.sum():
            caught = np.mean(is_abnormal(labels[mask])) if idx else np.mean(labels[mask] == 0)
            verb = "discarded as normal" if idx == 0 else "flagged abnormal"
            agreement_lines.append(f"  true {symbol}: {100 * caught:5.1f}% {verb}")
    print("Per-class outcome (vs reference annotations):")
    print("\n".join(agreement_lines))

    print("Gated delineation of flagged beats (batched kernel) ...")
    flagged_indices = np.flatnonzero(flagged)
    previous = [
        int(kept_peaks[i - 1]) if i > 0 else None for i in flagged_indices
    ]
    all_fiducials = delineate_beats(
        filtered, kept_peaks[flagged_indices], record.fs, previous_peaks=previous
    )
    for i, fiducials in zip(flagged_indices[:3], all_fiducials[:3]):
        print(f"  beat @ {kept_peaks[i]}: fiducials {fiducials.as_array().tolist()}")
    print(f"  delineated {len(all_fiducials)} beats in one pass "
          f"({kept_peaks.size - len(all_fiducials)} skipped by the gate)")

    radio = RadioModel()
    gated = radio.bytes_for_stream(labels, gated=True)
    always = radio.bytes_for_stream(labels, gated=False)
    print("\nTransmission accounting:")
    print(f"  gated policy:   {gated} bytes")
    print(f"  send-all:       {always} bytes")
    print(f"  radio saving:   {100 * (1 - gated / always):.1f}%  (paper: 68%)")

    print("\nLive replay through the incremental StreamingNode "
          "(0.5 s ADC blocks, bounded memory) ...")
    node = StreamingNode(classifier, record.fs, n_leads=3)
    block = int(0.5 * record.fs)
    events = []
    for i in range(0, record.n_samples, block):
        events.extend(node.push(record.signal[i : i + block]))
    events.extend(node.flush())
    streamed_flagged = sum(e.flagged for e in events)
    streamed_bytes = sum(e.tx_bytes for e in events)
    print(f"  {len(events)} beat events, {streamed_flagged} with fiducial payloads, "
          f"{streamed_bytes} radio bytes queued")


if __name__ == "__main__":
    main()
