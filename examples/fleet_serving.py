"""Fleet serving: many monitored patients through one gateway process.

Demonstrates the batched throughput layer of :mod:`repro.serving` on
top of the incremental streaming engine:

1. synthesize a fleet of multi-lead ambulatory records (one per
   simulated patient, different seeds and PVC burdens);
2. ``simulate_records`` — replay every record through the WBSN node
   model and print the fleet-level real-time / radio report;
3. ``classify_streams`` — run the O(n) incremental front end
   (``BlockFilter`` + ``StreamingPeakDetector``) over every stream in
   ADC-sized blocks, then classify the beats of each shard in one
   batched projection + fuzzification pass.

Both steps run through a ``ServingEngine``: pick ``--executor
processes --workers 4`` to shard the fleet across a process pool
(results are byte-identical to the serial path; the speedup needs
multiple CPUs).

With ``--gateway``, a third section serves the same fleet as
*concurrently live sessions* through a ``StreamGateway``: every
patient's stream is ingested in small interleaved chunks, pending
beats from all sessions queue in one cross-session batch, and each
flush classifies them in a single batched pass — per-session events
bit-identical to a standalone per-patient ``StreamingNode``.  With
``--gateway-workers N`` (> 1) the live sessions are hash-sharded
across a ``ShardedGateway`` pool of N worker processes instead — same
events, one batched classifier flush per worker per tick, and true
multi-core parallelism for the per-sample front ends.

With ``--autoscale`` the pool is *elastic*: it starts at
``--min-workers``, an ``Autoscaler`` grows it (up to
``--max-workers``) while the live load exceeds its target depth per
worker and retires workers (draining their sessions losslessly) when
load falls, and an ``AutoBalancer`` live-migrates sessions off hot
workers under a hysteresis band — per-session events still
bit-identical to standalone nodes through every scale/rebalance event.

Usage::

    python examples/fleet_serving.py [--patients 6] [--minutes 1.0]
        [--executor serial|threads|processes] [--workers 4]
        [--gateway] [--gateway-workers 2] [--chunk-ms 250] [--max-batch 64]
        [--autoscale] [--min-workers 1] [--max-workers 4]
"""

from __future__ import annotations

import argparse
import time
from contextlib import nullcontext

import numpy as np

from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig
from repro.ecg.synth import RecordSynthesizer, SynthesisConfig
from repro.experiments.datasets import make_embedded_datasets
from repro.fixedpoint.convert import convert_pipeline, tune_embedded_alpha
from repro.platform.node_sim import NodeSimulator
from repro.serving import (
    EXECUTORS,
    AutoBalancer,
    Autoscaler,
    ServingEngine,
    ShardedGateway,
    StreamGateway,
    classify_streams,
    serve_autoscaled,
    serve_round_robin,
    simulate_records,
)


def train_node_classifier(seed: int):
    """Train and quantize the classifier deployed on every node."""
    data = make_embedded_datasets(scale=0.05, seed=seed)
    config = TrainingConfig(
        n_coefficients=8, genetic=GeneticConfig(population_size=8, generations=5)
    )
    pipeline = RPClassifierPipeline.train(data.train1, data.train2, 8, seed=seed, config=config)
    classifier = convert_pipeline(pipeline, shape="linear")
    return tune_embedded_alpha(classifier, data.test, 0.97)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=6)
    parser.add_argument("--minutes", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument("--executor", choices=EXECUTORS, default="serial")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--gateway", action="store_true",
                        help="also serve the fleet as live sessions via StreamGateway")
    parser.add_argument("--gateway-workers", type=int, default=1,
                        help="worker processes for the gateway section; "
                             "> 1 shards live sessions across a ShardedGateway pool")
    parser.add_argument("--chunk-ms", type=float, default=250.0,
                        help="gateway ingest chunk size in milliseconds")
    parser.add_argument("--max-batch", type=int, default=64,
                        help="gateway cross-session batch size bound")
    parser.add_argument("--autoscale", action="store_true",
                        help="serve the gateway section through an elastic "
                             "ShardedGateway pool driven by an Autoscaler "
                             "and AutoBalancer (implies --gateway)")
    parser.add_argument("--min-workers", type=int, default=1,
                        help="autoscale lower pool bound (and starting size)")
    parser.add_argument("--max-workers", type=int, default=4,
                        help="autoscale upper pool bound")
    args = parser.parse_args()
    if args.patients < 1:
        parser.error("--patients must be >= 1")
    if args.minutes <= 0:
        parser.error("--minutes must be positive")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.gateway_workers < 1:
        parser.error("--gateway-workers must be >= 1")
    if args.autoscale:
        args.gateway = True
        if not 1 <= args.min_workers <= args.max_workers:
            parser.error("need 1 <= --min-workers <= --max-workers")
    engine = ServingEngine(executor=args.executor, workers=args.workers)

    print("Training + quantizing the node classifier ...")
    classifier = train_node_classifier(args.seed)

    print(f"Synthesizing {args.patients} patient records ...")
    rng = np.random.default_rng(args.seed)
    records = []
    for i in range(args.patients):
        pvc = float(rng.uniform(0.05, 0.25))
        mix = {"N": 1.0 - pvc - 0.05, "V": pvc, "L": 0.05}
        records.append(
            RecordSynthesizer(SynthesisConfig(n_leads=3), seed=args.seed + i).synthesize(
                60.0 * args.minutes, class_mix=mix, name=f"patient-{i}"
            )
        )

    print(f"\n== Node simulation ({args.executor} engine, {args.workers} workers) ==")
    start = time.perf_counter()
    fleet = simulate_records(NodeSimulator(classifier), records, engine=engine)
    elapsed = time.perf_counter() - start
    print(fleet.summary())
    print(f"simulated {fleet.n_beats} beats in {elapsed * 1e3:.0f} ms")

    print(f"\n== Streaming classification ({args.executor} engine) ==")
    streams = [record.lead(0) for record in records]
    start = time.perf_counter()
    results = classify_streams(classifier, streams, records[0].fs, engine=engine)
    elapsed = time.perf_counter() - start
    signal_s = sum(s.size for s in streams) / records[0].fs
    for record, result in zip(records, results):
        print(
            f"  {record.name}: {result.n_beats} beats, "
            f"{int(result.abnormal.sum())} flagged abnormal"
        )
    print(
        f"classified {sum(r.n_beats for r in results)} beats from "
        f"{signal_s:.0f} s of signal in {elapsed * 1e3:.0f} ms "
        f"({signal_s / elapsed:.0f}x realtime)"
    )

    if args.gateway:
        streams = {record.name: record.signal for record in records}
        chunk = max(1, int(round(args.chunk_ms * 1e-3 * records[0].fs)))
        sharded = args.autoscale or args.gateway_workers > 1
        if args.autoscale:
            print(
                f"\n== Autoscaled session gateway (elastic pool "
                f"{args.min_workers}..{args.max_workers} workers, "
                f"max_batch={args.max_batch}) =="
            )
            context = ShardedGateway(
                classifier, records[0].fs, workers=args.min_workers,
                placement="least-loaded", n_leads=3, max_batch=args.max_batch,
            )
        elif sharded:
            print(
                f"\n== Sharded session gateway ({args.gateway_workers} worker "
                f"processes, live ingestion, max_batch={args.max_batch}) =="
            )
            context = ShardedGateway(
                classifier, records[0].fs, workers=args.gateway_workers,
                n_leads=3, max_batch=args.max_batch,
            )
        else:
            print(f"\n== Session gateway (live ingestion, max_batch={args.max_batch}) ==")
            context = nullcontext(StreamGateway(
                classifier, records[0].fs, n_leads=3, max_batch=args.max_batch
            ))
        with context as gateway:
            start = time.perf_counter()
            if args.autoscale:
                autoscaler = Autoscaler(
                    gateway, target_depth=4,
                    min_workers=args.min_workers, max_workers=args.max_workers,
                )
                balancer = AutoBalancer(gateway)
                events = serve_autoscaled(
                    gateway, streams, chunk,
                    autoscaler=autoscaler, balancer=balancer,
                )
            else:
                events = serve_round_robin(gateway, streams, chunk)
            elapsed = time.perf_counter() - start
            if sharded:
                stats = gateway.stats()
                n_classified, n_flushes = stats["n_classified"], stats["n_flushes"]
                if args.autoscale:
                    # Retired workers take their counters with them, so
                    # the batching figures describe the final pool.
                    print(
                        f"  autoscaler: {stats['workers']} workers at end, "
                        f"{stats['scale_events']} scale events, "
                        f"{stats['migrations']} session migrations; "
                        f"batching stats cover the final pool"
                    )
            else:
                n_classified, n_flushes = gateway.n_classified, gateway.n_flushes
        for record in records:
            session = events[record.name]
            flagged = sum(1 for e in session if e.flagged)
            print(f"  {record.name}: {len(session)} beats, {flagged} flagged abnormal")
        total = sum(len(session) for session in events.values())
        print(
            f"served {total} live events in {elapsed * 1e3:.0f} ms "
            f"({total / elapsed:.0f} events/s, {signal_s / elapsed:.0f}x realtime); "
            f"{n_classified} beats in {n_flushes} batched passes "
            f"({n_classified / max(1, n_flushes):.1f} beats/pass)"
        )


if __name__ == "__main__":
    main()
