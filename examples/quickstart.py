"""Quickstart: train, evaluate and embed an RP heartbeat classifier.

Runs the paper's two-step training (scaled down so it finishes in
seconds), evaluates NDR/ARR on the test set, converts the classifier to
the integer WBSN form, and compares float vs embedded accuracy.

Usage::

    python examples/quickstart.py [--scale 0.05] [--coefficients 8]
"""

from __future__ import annotations

import argparse

from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig
from repro.experiments.datasets import make_embedded_datasets
from repro.fixedpoint.convert import convert_pipeline, tune_embedded_alpha


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="fraction of the paper's dataset sizes (1.0 = Table I)")
    parser.add_argument("--coefficients", type=int, default=8,
                        help="random-projection size k (paper: 8, 16, 32)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--target-arr", type=float, default=0.97,
                        help="minimum abnormal recognition rate")
    args = parser.parse_args()

    print(f"Generating Table-I-shaped datasets (scale={args.scale}) ...")
    data = make_embedded_datasets(scale=args.scale, seed=args.seed)
    print(f"  train1: {data.train1.counts()}")
    print(f"  train2: {data.train2.counts()}")
    print(f"  test:   {data.test.counts()}")

    print(f"\nTwo-step training (k={args.coefficients}, GA + SCG) ...")
    config = TrainingConfig(
        n_coefficients=args.coefficients,
        target_arr=args.target_arr,
        genetic=GeneticConfig(population_size=8, generations=5),
    )
    pipeline = RPClassifierPipeline.train(
        data.train1, data.train2, args.coefficients, seed=args.seed, config=config
    )
    print(f"  optimized projection: {pipeline.projection.n_coefficients} x "
          f"{pipeline.projection.n_inputs}, density {pipeline.projection.density:.2f}")
    print(f"  alpha_train = {pipeline.alpha:.4f}")

    print("\nFloat (PC) evaluation at the ARR target:")
    tuned = pipeline.tuned_for(data.test, args.target_arr)
    print(f"  {tuned.evaluate(data.test).summary()}")

    print("\nConverting to the integer WBSN classifier ...")
    classifier = convert_pipeline(pipeline, shape="linear")
    classifier = tune_embedded_alpha(classifier, data.test, args.target_arr)
    memory = classifier.memory_report()
    print(f"  packed matrix: {memory['projection_matrix']} B "
          f"(8-bit would be {memory['projection_matrix_unpacked']} B)")
    print(f"  total classifier data: {memory['total']} B")
    print("\nEmbedded (WBSN) evaluation:")
    print(f"  {classifier.evaluate(data.test).summary()}")


if __name__ == "__main__":
    main()
