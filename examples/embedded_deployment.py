"""Embedded deployment study: duty cycles, memory and energy on IcyHeart.

Reproduces the Table III / Section IV-E analysis for a freshly trained
classifier: measures per-stage operation profiles, converts them to
duty cycles at 6 MHz through the icyflex cycle table, reports code and
data memory, and computes the system-level energy savings of gating.

Usage::

    python examples/embedded_deployment.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

from repro.core.genetic import GeneticConfig
from repro.experiments.energy import battery_outlook, format_energy, run_energy
from repro.experiments.table3 import (
    Table3Config,
    build_embedded_classifier,
    format_table3,
    run_table3,
)
from repro.platform.icyheart import IcyHeartConfig
from repro.platform.memory import data_memory_report, fits_in_ram


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = Table3Config(
        scale=args.scale,
        seed=args.seed,
        genetic=GeneticConfig(population_size=8, generations=5),
    )
    platform = IcyHeartConfig()

    print("Training and quantizing the 90 Hz classifier ...")
    classifier, activation = build_embedded_classifier(config)
    print(f"  activation rate on test traffic: {100 * activation:.1f}%")

    print("\n=== Table III (this build) ===")
    rows = run_table3(config, classifier, activation, platform)
    print(format_table3(rows))
    print("(paper: 1.64 / 30.29 / 46.39 / 76.68 KB; duty <0.01 / 0.12 / 0.83 / 0.30)")

    print("\n=== Data memory ===")
    report = data_memory_report(classifier, platform.sampling_rate_hz)
    for key, value in report.items():
        print(f"  {key:<24} {value:>8} B")
    verdict = "fits" if fits_in_ram(report, platform.ram_bytes) else "DOES NOT FIT"
    print(f"  -> {verdict} the {platform.ram_bytes // 1024} KB IcyHeart RAM")

    print("\n=== Section IV-E energy ===")
    energy = run_energy(config, platform)
    print(format_energy(energy))

    print("\n=== Battery outlook (CR2032-class cell) ===")
    outlook = battery_outlook(energy, platform)
    print(f"  always-on architecture: {outlook['baseline_days']:.0f} days")
    print(f"  gated architecture:     {outlook['gated_days']:.0f} days "
          f"({outlook['extension_factor']:.2f}x)")


if __name__ == "__main__":
    main()
