"""Firmware workflow: train -> quantize -> save -> generate C tables.

The end product of the paper's methodology is node firmware.  This
example walks the whole deployment path:

1. train the classifier at the 90 Hz embedded configuration;
2. quantize it (linearized MFs, 2-bit matrix, Q16 alpha);
3. persist both model forms to ``.npz`` archives;
4. reload the embedded model (as a build pipeline would);
5. emit the C header with the constant tables and reference code;
6. cross-check the emitted tables against the live classifier.

Usage::

    python examples/firmware_workflow.py [--output-dir build]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.core.genetic import GeneticConfig
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig
from repro.experiments.datasets import make_embedded_datasets
from repro.fixedpoint.codegen import generate_c_header, parse_c_header
from repro.fixedpoint.convert import convert_pipeline, tune_embedded_alpha
from repro.io import load_embedded, save_embedded, save_pipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output-dir", default="build")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    out = Path(args.output_dir)
    out.mkdir(parents=True, exist_ok=True)

    print("[1/6] training at the 90 Hz deployment configuration ...")
    data = make_embedded_datasets(scale=args.scale, seed=args.seed)
    config = TrainingConfig(
        n_coefficients=8, genetic=GeneticConfig(population_size=8, generations=5)
    )
    pipeline = RPClassifierPipeline.train(data.train1, data.train2, 8, seed=args.seed, config=config)

    print("[2/6] quantizing (linearized MFs, 2-bit matrix, Q16 alpha) ...")
    classifier = tune_embedded_alpha(
        convert_pipeline(pipeline, shape="linear"), data.test, 0.97
    )
    print(f"      embedded accuracy: {classifier.evaluate(data.test).summary()}")

    print("[3/6] saving model archives ...")
    save_pipeline(pipeline, out / "classifier.pipeline.npz")
    save_embedded(classifier, out / "classifier.embedded.npz")

    print("[4/6] reloading the embedded model ...")
    reloaded = load_embedded(out / "classifier.embedded.npz")
    sample = reloaded.predict(data.test.X[:500])
    assert np.array_equal(sample, classifier.predict(data.test.X[:500]))
    print("      reload verified: 500/500 identical decisions")

    print("[5/6] emitting the C header ...")
    header = generate_c_header(reloaded, name="rp_classifier")
    header_path = out / "rp_classifier.h"
    header_path.write_text(header)
    print(f"      wrote {header_path} ({len(header)} bytes)")

    print("[6/6] cross-checking emitted tables ...")
    parsed = parse_c_header(header)
    assert np.array_equal(parsed.arrays["rp_classifier_matrix"], reloaded.matrix.data)
    assert parsed.macros["RP_CLASSIFIER_ALPHA_Q16"] == reloaded.alpha_q16
    k, L = reloaded.nfc.centers.shape
    assert np.array_equal(
        parsed.arrays["rp_classifier_mf_center"].reshape(k, L), reloaded.nfc.centers
    )
    memory = reloaded.memory_report()
    print(f"      tables OK; node data footprint {memory['total']} bytes "
          f"(matrix {memory['projection_matrix']} B, MFs {memory['nfc_parameters']} B)")
    print("\nDrop rp_classifier.h plus the reference implementation in its"
          " trailing comment into the node firmware to deploy.")


if __name__ == "__main__":
    main()
