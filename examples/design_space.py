"""Design-space exploration: coefficients, MF shapes and downsampling.

Sweeps the three design axes the paper explores and prints the
resulting accuracy/resource trade-offs:

* number of RP coefficients k (Table II's axis);
* membership-function shape (Figure 5's axis);
* downsampling factor (Section III-B's memory optimization).

Also demonstrates the Johnson–Lindenstrauss context: how far below the
JL-guaranteed dimension the paper's operating point sits.

Usage::

    python examples/design_space.py [--scale 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.achlioptas import johnson_lindenstrauss_bound, projection_distortion
from repro.core.genetic import GeneticConfig
from repro.core.metrics import ndr_at_arr
from repro.core.pipeline import RPClassifierPipeline
from repro.core.training import TrainingConfig
from repro.experiments.datasets import decimate_labeled, make_beat_datasets
from repro.fixedpoint.packed_matrix import PackedTernaryMatrix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    data = make_beat_datasets(scale=args.scale, seed=args.seed)
    ga = GeneticConfig(population_size=6, generations=4)

    print("=== Johnson–Lindenstrauss context ===")
    n_beats = len(data.train2)
    for eps in (0.3, 0.5, 0.9):
        k0 = johnson_lindenstrauss_bound(n_beats, eps)
        print(f"  JL bound for {n_beats} beats at eps={eps}: k >= {k0}")
    print("  paper operates at k = 8..32 — far below the guarantee;")
    print("  the GA finds projections that classify well anyway.")

    print("\n=== Coefficient sweep (NDR @ ARR >= 97%) ===")
    pipelines = {}
    for k in (4, 8, 16, 32):
        config = TrainingConfig(n_coefficients=k, genetic=ga, scg_iterations=80)
        pipeline = RPClassifierPipeline.train(
            data.train1, data.train2, k, seed=args.seed, config=config
        )
        pipelines[k] = pipeline
        report = pipeline.tuned_for(data.test, 0.97).evaluate(data.test)
        matrix_bytes = PackedTernaryMatrix.pack(pipeline.projection).n_bytes
        empirical = projection_distortion(
            pipeline.projection.matrix, data.test.X[:200], n_pairs=100, rng=0
        )
        print(
            f"  k={k:>2}: NDR={100 * report.ndr:6.2f}%  matrix={matrix_bytes:>4} B"
            f"  JL distortion median={np.median(empirical):.2f}"
        )

    print("\n=== Membership-shape sweep (8 coefficients) ===")
    pipeline = pipelines[8]
    for shape in ("gaussian", "linear", "triangular"):
        _, ndr, arr = pipeline.with_shape(shape).sweep(data.test)
        print(
            f"  {shape:<10} NDR@97%={100 * ndr_at_arr(ndr, arr, 0.97):6.2f}%"
            f"  NDR@98.5%={100 * ndr_at_arr(ndr, arr, 0.985):6.2f}%"
            f"  max ARR={100 * arr.max():6.2f}%"
        )

    print("\n=== Downsampling sweep (8 coefficients) ===")
    for factor in (1, 2, 4, 8):
        if factor == 1:
            t1, t2, te = data.train1, data.train2, data.test
        else:
            t1 = decimate_labeled(data.train1, factor)
            t2 = decimate_labeled(data.train2, factor)
            te = decimate_labeled(data.test, factor)
        config = TrainingConfig(n_coefficients=8, genetic=ga, scg_iterations=80)
        pipeline = RPClassifierPipeline.train(t1, t2, 8, seed=args.seed, config=config)
        report = pipeline.tuned_for(te, 0.97).evaluate(te)
        matrix_bytes = PackedTernaryMatrix.pack(pipeline.projection).n_bytes
        print(
            f"  factor={factor}: {t1.X.shape[1]:>3} samples/beat"
            f"  NDR={100 * report.ndr:6.2f}%  matrix={matrix_bytes:>4} B"
        )


if __name__ == "__main__":
    main()
